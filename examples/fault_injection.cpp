// Fault injection walkthrough: what a failing game-based test run
// looks like, for three characteristic implementation faults of the
// Smart Light (a slow box, a wrong-output box, a forgotten-reset box).
//
// Build & run:  ./build/examples/fault_injection
#include <cstdio>

#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/executor.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"

int main() {
  using namespace tigat;
  constexpr std::int64_t kScale = 16;

  models::SmartLight spec = models::make_smart_light();
  models::SmartLight plant = models::make_smart_light_plant_only();

  game::GameSolver solver(
      spec.system,
      tsystem::TestPurpose::parse(spec.system, "control: A<> IUT.Bright"));
  game::Strategy strategy(solver.solve());

  // Reference: the unmutated plant passes.
  {
    testing::SimulatedImplementation imp(plant.system, kScale,
                                         testing::ImpPolicy{kScale, {}});
    testing::TestExecutor exec(strategy, imp, kScale);
    const auto report = exec.run();
    std::printf("reference (no fault):  %s\n  trace: %s\n\n",
                testing::to_string(report.verdict),
                report.trace_string().c_str());
  }

  // Walk the mutant catalogue and demonstrate one representative kill
  // per interesting operator.
  const auto mutants = testing::enumerate_mutants(plant.system);
  int shown = 0;
  for (const auto kind :
       {testing::MutationKind::kInvariantWiden,
        testing::MutationKind::kOutputSwap, testing::MutationKind::kResetDrop,
        testing::MutationKind::kGuardShift}) {
    bool demonstrated = false;
    for (const auto& m : mutants) {
      if (demonstrated) break;
      if (m.kind != kind) continue;
      const tsystem::System mutated = testing::apply_mutant(plant.system, m);
      // A lazy policy exposes timing faults; urgent exposes the rest.
      for (const std::int64_t latency : {3 * kScale, std::int64_t{0}}) {
        testing::SimulatedImplementation imp(mutated, kScale,
                                             testing::ImpPolicy{latency, {}});
        testing::TestExecutor exec(strategy, imp, kScale);
        const auto report = exec.run();
        if (report.verdict == testing::Verdict::kFail) {
          std::printf("fault:   %s (%s)\n", m.description.c_str(),
                      testing::to_string(m.kind));
          std::printf("verdict: fail — %s\n", report.detail.c_str());
          std::printf("trace:   %s\n\n", report.trace_string().c_str());
          ++shown;
          demonstrated = true;
          break;
        }
      }
    }
  }

  std::printf("%d fault classes demonstrated; every fail verdict is sound:\n",
              shown);
  std::printf(
      "it exhibits a concrete timed trace the specification forbids\n"
      "(Theorem 10 — a failing run implies non-conformance).  Operators\n"
      "with no kill here (e.g. forgotten resets or shifted input guards\n"
      "off the strategy's path) survive because targeted testing only\n"
      "answers for its purpose — see bench_fault_detection for the full\n"
      "campaign across purposes and timing policies.\n");
  return 0;
}
