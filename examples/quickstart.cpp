// Quickstart: the full game-based testing workflow in one file.
//
//   1. model an uncontrollable system as a TIOGA network (a tiny
//      request/response server with a response window);
//   2. state a test purpose (`control: A<> ...`);
//   3. synthesize a winning strategy with the game solver;
//   4. execute the strategy as a test case against a black-box
//      implementation (here: a simulated one) and get a verdict.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "game/solver.h"
#include "game/strategy.h"
#include "testing/executor.h"
#include "testing/simulated_imp.h"
#include "tsystem/property.h"
#include "tsystem/system.h"

using namespace tigat;

namespace {

// The plant: after a request it answers ok! or retry! (its choice —
// output uncontrollability) some time within 3 time units (timing
// uncertainty).  A prompt re-request right after a retry (within one
// time unit) is prioritised and answered ok! for sure.
tsystem::System make_server(bool with_client) {
  tsystem::System sys(with_client ? "server" : "server_plant");
  const auto x = sys.add_clock("x");
  const auto req = sys.add_channel("req", tsystem::Controllability::kControllable);
  const auto ok = sys.add_channel("ok", tsystem::Controllability::kUncontrollable);
  const auto retry =
      sys.add_channel("retry", tsystem::Controllability::kUncontrollable);

  auto& srv = sys.add_process("Server", tsystem::Controllability::kUncontrollable);
  const auto idle = srv.add_location("Idle");
  const auto busy = srv.add_location("Busy");
  const auto second = srv.add_location("Second");
  const auto done = srv.add_location("Done");
  srv.set_invariant(busy, x <= 3);
  srv.set_invariant(second, x <= 3);
  srv.add_edge(idle, busy).receive(req).guard(x >= 1).reset(x);
  srv.add_edge(busy, done).send(ok).reset(x);
  srv.add_edge(busy, idle).send(retry).guard(x >= 1).reset(x);
  srv.add_edge(idle, second).receive(req).guard(x < 1).reset(x);
  srv.add_edge(second, done).send(ok).reset(x);
  // Strong input-enabledness: extra requests are absorbed.
  srv.add_edge(busy, busy).receive(req);
  srv.add_edge(second, second).receive(req);
  srv.add_edge(done, done).receive(req);

  if (with_client) {
    const auto z = sys.add_clock("z");
    auto& client =
        sys.add_process("Client", tsystem::Controllability::kControllable);
    const auto c0 = client.add_location("C0");
    client.add_edge(c0, c0).send(req).guard(z >= 1).reset(z);
    for (const auto chan : {ok, retry}) client.add_edge(c0, c0).receive(chan);
  }
  sys.finalize();
  return sys;
}

}  // namespace

int main() {
  // 1–2. Model and purpose.  "Whatever the server does, the tester can
  // force an ok! response."
  tsystem::System spec = make_server(/*with_client=*/true);
  const auto purpose =
      tsystem::TestPurpose::parse(spec, "control: A<> Server.Done");

  // 3. Winning strategy.
  game::GameSolver solver(spec, purpose);
  const auto solution = solver.solve();
  std::printf("purpose controllable: %s  (states: %zu, rounds: %zu)\n",
              solution->winning_from_initial() ? "yes" : "no",
              solution->stats().keys, solution->stats().rounds);
  game::Strategy strategy(solution);
  std::printf("\n%s\n", strategy.to_string().c_str());

  // 4. Execute against a black box.  The simulated IMP resolves the
  // spec's freedom deterministically: it prefers retry! and answers as
  // late as allowed — a hostile but conforming implementation.
  constexpr std::int64_t kScale = 16;
  tsystem::System plant = make_server(/*with_client=*/false);
  testing::SimulatedImplementation imp(
      plant, kScale, testing::ImpPolicy{2 * kScale, {"retry", "ok"}});
  testing::TestExecutor executor(strategy, imp, kScale);
  const testing::TestReport report = executor.run();

  std::printf("verdict: %s (%s)\n", testing::to_string(report.verdict),
              report.detail.c_str());
  std::printf("trace:   %s\n", report.trace_string().c_str());
  std::printf("elapsed: %lld ticks (%lld time units)\n",
              static_cast<long long>(report.total_ticks),
              static_cast<long long>(report.total_ticks / kScale));
  return report.verdict == testing::Verdict::kPass ? 0 : 1;
}
