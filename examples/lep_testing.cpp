// The Leader Election Protocol case study (Sec. 4): synthesize winning
// strategies for the paper's purposes TP1–TP3 on a small instance and
// inspect what game-based test generation produces.
//
// Build & run:  ./build/examples/lep_testing [nodes]
#include <cstdio>
#include <cstdlib>

#include "game/solver.h"
#include "game/strategy.h"
#include "models/lep.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"

int main(int argc, char** argv) {
  using namespace tigat;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;

  models::Lep lep = models::make_lep({.nodes = nodes});
  std::printf("LEP instance: %u nodes, buffer capacity %u, IUT address %u\n\n",
              nodes, nodes, nodes - 1);

  const std::vector<std::pair<std::string, std::string>> purposes = {
      {"TP1", models::lep_tp1()},
      {"TP2", models::lep_tp2()},
      {"TP3", models::lep_tp3()},
  };

  util::TablePrinter table({"purpose", "controllable", "states", "rounds",
                            "strategy rows", "time (s)", "mem (MB)"});

  for (const auto& [label, prop] : purposes) {
    util::zone_memory().reset();
    util::Stopwatch watch;
    game::GameSolver solver(lep.system,
                            tsystem::TestPurpose::parse(lep.system, prop));
    const auto solution = solver.solve();
    game::Strategy strategy(solution);
    table.add_row({label, solution->winning_from_initial() ? "yes" : "no",
                   util::format("%zu", solution->stats().keys),
                   util::format("%zu", solution->stats().rounds),
                   util::format("%zu", strategy.size()),
                   util::format("%.3f", watch.seconds()),
                   util::format("%.1f", util::to_mebibytes(
                                            solution->stats().peak_zone_bytes))});

    if (label == "TP1") {
      // Show the first prescriptions of the TP1 strategy: how the
      // tester starts driving the node towards a forward of better
      // information.
      const std::string full = strategy.to_string();
      std::printf("--- %s: %s\n", label.c_str(), prop.c_str());
      std::size_t shown = 0, pos = 0;
      while (shown < 12 && pos < full.size()) {
        const std::size_t nl = full.find('\n', pos);
        std::printf("%s\n", full.substr(pos, nl - pos).c_str());
        pos = nl + 1;
        ++shown;
      }
      std::printf("... (%zu rows total)\n\n", strategy.size());
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "TP1 drives the node to forward better information; TP2 fills\n"
      "every buffer slot; TP3 additionally requires the node to be\n"
      "idle.  All three are controllable despite the node's timeout\n"
      "window and free choice of forwarding slots.\n");
  return 0;
}
