// Generic model runner: the full parse → elaborate → solve pipeline
// from a .tg file path — no C++ modelling required.
//
//   ./build/examples/run_model examples/models/smart_light.tg
//   ./build/examples/run_model examples/models/lep.tg --print-model
//   ./build/examples/run_model model.tg "control: A<> IUT.Bright"
//   ./build/examples/run_model model.tg --threads=4   # 0 = hardware
//   ./build/examples/run_model model.tg --compact-zones  # pooled zone
//                      # storage; what lets LEP n=6 fit in memory
//
// Subcommands name the pipeline stage explicitly; each takes the same
// flags as the legacy flag-driven interface (which remains supported —
// a first argument that is not a subcommand keeps its old meaning):
//
//   run_model solve    model.tg [--strategy-out=F.tgs] ...
//   run_model serve    model.tg --strategy-in=F.tgs ...
//   run_model run      model.tg ...        # one test run (campaign K=1)
//   run_model campaign model.tg --runs=K ...
//   run_model explain  model.tg ...        # campaign + post-mortems
//
// `serve` opens the .tgs with the zero-copy v3 reader
// (DecisionTable::map): a v1/v2 file exits 1 with a "re-solve to
// migrate" diagnostic (use `tigat-serve migrate` to upgrade without
// re-solving), a corrupt file exits 2.
//
// Templated models rescale from the command line: --param NAME=VALUE
// overrides a `const` declaration before elaboration, so one file
// serves every instance size (the whole of Table 1 is
// `run_model examples/models/lep.tg --param N=3..8`):
//
//   run_model examples/models/lep.tg --param N=5
//
// Every `control:` declaration in the file is solved (plus any extra
// purposes given on the command line); for each one the winnability
// verdict, solver statistics and strategy size are reported.  Both
// purpose kinds solve: `control: A<> φ` (reachability) and
// `control: A[] φ` (safety).  Safety campaigns PASS by keeping φ true
// for --pass-ticks of model time (default: the step budget) and FAIL
// the moment a run breaks φ.
//
// Compiled strategies (the offline/online split):
//
//   # solve once, compile the first purpose's strategy, save it
//   run_model model.tg --strategy-out=model.tgs
//   # serving path: load the compiled strategy — no solving at all
//   run_model model.tg --strategy-in=model.tgs
//
// --strategy-in validates the .tgs fingerprint against the model,
// reports the table shape and times the compiled decide() at the
// initial state, which is the whole per-step cost a test-execution
// service pays once the game is solved offline.
//
// Observability (see src/obs/): all opt-in, near-zero cost when off.
//
//   --trace-out=FILE    Chrome trace-event JSON of the run (open in
//                       Perfetto / chrome://tracing): per-worker spans
//                       for expand, merge, fixpoint rounds, decide.
//   --metrics-out=FILE  versioned metrics snapshot (counters, gauges,
//                       histograms; superset of the solver stats).
//   --progress[=SECS]   heartbeat JSONL on stderr every SECS (default
//                       5) with keys/zones/round/RSS while solving.
//   --stats-json        print the metrics snapshot to stdout instead
//                       of the human table (parse from the line
//                       starting with {"schema").
//
// Test campaigns (see src/testing/campaign.h): solve the first purpose,
// extract one process as the IUT (simulated), run it K times behind an
// optionally fault-injected boundary, and emit the deterministic
// campaign JSON:
//
//   run_model model.tg --runs=50 --faults="drop=0.05,delay=0..8"
//       --fault-seed=7 --run-deadline-ms=2000 --retries=2
//       --campaign-out=campaign.json
//   run_model model.tg --runs=20 --mutant=3   # test a mutated IUT
//
// Flight recorder + post-mortems (src/obs/recorder.h, explain.h):
// every non-PASS attempt's full step journal becomes a replayable,
// self-explaining artifact.
//
//   --ledger-out=DIR    write runR_attemptA.ledger.jsonl (tigat.ledger
//                       v1) and the matching .explain.json
//                       (tigat.explain v1) for every non-PASS attempt;
//                       validate with tools/explain_check.py --dir DIR.
//   --explain           print a human post-mortem per non-PASS attempt
//                       to stderr (stdout keeps the campaign JSON).
//
// Both flags imply campaign mode (default --runs=1).
//
// Exit codes (stable; scripts may branch on them):
//   0  all purposes winnable / campaign verdict PASS
//   1  usage error, model error, or unwinnable purpose
//   2  I/O error (cannot read model / write a requested artifact)
//   3  solver resource limit hit (semantics::ExplorationLimit)
//   4  campaign verdict FAIL (sound evidence of non-conformance)
//   5  campaign verdict FLAKY or UNRESPONSIVE (inconclusive)
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "decision/compiler.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "lang/lang.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "semantics/concrete.h"
#include "semantics/symbolic.h"
#include "testing/campaign.h"
#include "testing/faults.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"
#include "tsystem/rebuild.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"

namespace {

// Exit taxonomy — documented in the header comment; keep both in sync.
constexpr int kExitPass = 0;
constexpr int kExitUsageOrModel = 1;
constexpr int kExitIo = 2;
constexpr int kExitSolverLimit = 3;
constexpr int kExitFailVerdict = 4;
constexpr int kExitInconclusive = 5;

// Exports whatever telemetry was requested; called on every exit path
// that completed the pipeline (solve and serve).  Returns false only
// if a requested artifact could not be written.
bool write_obs_artifacts(const std::string& trace_out,
                         const std::string& metrics_out, bool stats_json) {
  bool ok = true;
  if (!trace_out.empty()) {
    tigat::obs::Tracer::instance().disable();
    ok &= tigat::obs::Tracer::instance().write_chrome_trace(trace_out);
  }
  if (!metrics_out.empty()) {
    ok &= tigat::obs::metrics().write_snapshot(metrics_out);
  }
  if (stats_json) {
    const std::string json = tigat::obs::metrics().snapshot_json();
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  return ok;
}

int serve_strategy(const tigat::lang::LoadedModel& model,
                   const std::vector<tigat::tsystem::TestPurpose>& purposes,
                   const std::string& path) {
  using namespace tigat;
  // The zero-copy path: mmap + validate, no deserialization.  Old
  // formats are a usage condition (the file is fine, just outdated),
  // not an I/O failure.
  const decision::DecisionTable table = [&] {
    try {
      return decision::DecisionTable::map(path);
    } catch (const decision::VersionError& e) {
      std::fprintf(stderr, "cannot serve '%s': %s\n", path.c_str(), e.what());
      std::exit(kExitUsageOrModel);
    } catch (const decision::SerializeError& e) {
      std::fprintf(stderr, "cannot load '%s': %s\n", path.c_str(), e.what());
      std::exit(kExitIo);
    }
  }();
  // The fingerprint covers system AND purpose, so the serve check finds
  // which of the model's purposes this table was compiled for (a safety
  // table never passes as a reachability one, or vice versa).
  const tsystem::TestPurpose* purpose = nullptr;
  for (const tsystem::TestPurpose& p : purposes) {
    if (table.matches(model.system, p)) {
      purpose = &p;
      break;
    }
  }
  if (purpose == nullptr) {
    std::fprintf(stderr,
                 "'%s' was compiled for a different model or purpose "
                 "(fingerprint mismatch)\n",
                 path.c_str());
    return kExitUsageOrModel;
  }
  std::printf("loaded compiled strategy %s for '%s' (%s game): %zu keys, "
              "%zu nodes, %zu arcs, %zu leaves, %zu zones (%.1f KiB "
              "resident)\n",
              path.c_str(), purpose->source.c_str(),
              table.purpose_kind() == 1 ? "safety" : "reachability",
              table.key_count(), table.node_count(), table.arc_count(),
              table.leaf_count(), table.zone_count(),
              static_cast<double>(table.memory_bytes()) / 1024.0);

  constexpr std::int64_t kScale = 16;
  semantics::ConcreteSemantics sem(model.system, kScale);
  const auto initial = sem.initial();
  const game::Move move = table.decide(initial, kScale);
  const char* kinds[] = {"goal reached", "action", "delay", "unwinnable"};
  std::printf("decision at the initial state: %s\n",
              kinds[static_cast<int>(move.kind)]);

  constexpr int kReps = 200000;
  util::Stopwatch watch;
  std::int64_t sink = 0;
  for (int r = 0; r < kReps; ++r) {
    sink += static_cast<std::int64_t>(table.decide(initial, kScale).kind);
  }
  const double ns = watch.seconds() * 1e9 / kReps;
  std::printf("compiled decide(): %.0f ns/decision (%d reps, checksum %lld)\n",
              ns, kReps, static_cast<long long>(sink));
  return kExitPass;
}

// Subcommand dispatch: argv[1] may name the pipeline stage.  Flags are
// 1:1 with the legacy interface; the subcommand only pins the mode, so
// scripts can spell intent without learning new options.
enum class Mode { kLegacy, kSolve, kServe, kRun, kCampaign, kExplain };

Mode parse_mode(const char* arg) {
  if (arg == nullptr) return Mode::kLegacy;
  if (std::strcmp(arg, "solve") == 0) return Mode::kSolve;
  if (std::strcmp(arg, "serve") == 0) return Mode::kServe;
  if (std::strcmp(arg, "run") == 0) return Mode::kRun;
  if (std::strcmp(arg, "campaign") == 0) return Mode::kCampaign;
  if (std::strcmp(arg, "explain") == 0) return Mode::kExplain;
  return Mode::kLegacy;
}

int run_main(int argc, char** argv) {
  using namespace tigat;

  const Mode mode = parse_mode(argc > 1 ? argv[1] : nullptr);
  const int first_arg = mode == Mode::kLegacy ? 1 : 2;

  std::string path;
  bool print_model = false;
  bool compact_zones = false;  // dictionary-compressed zone storage
  unsigned threads = 0;        // 0 = hardware concurrency
  std::string strategy_out;
  std::string strategy_in;
  std::string trace_out;
  std::string metrics_out;
  bool stats_json = false;
  double progress_secs = -1.0;  // < 0: heartbeat off
  bool campaign_mode = false;   // set by --runs / --faults
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  long runs = 0;
  long long run_deadline_ms = 0;
  long retries = 0;
  long long pass_ticks = 0;     // safety: PASS after this much model time
  int mutant = -1;              // < 0: test the unmutated IUT
  std::string iut_name = "IUT";
  std::string campaign_out;
  std::string ledger_out;       // directory for ledger + explain files
  bool explain = false;         // human post-mortems on stderr
  lang::CompileOptions compile_options;
  std::vector<std::string> extra_purposes;
  const auto add_param = [&](const char* spec) {
    const char* eq = spec ? std::strchr(spec, '=') : nullptr;
    char* end = nullptr;
    errno = 0;
    const long long value = eq ? std::strtoll(eq + 1, &end, 10) : 0;
    if (!eq || eq == spec || end == eq + 1 || (end && *end != '\0') ||
        errno == ERANGE) {
      std::fprintf(stderr, "--param expects NAME=VALUE, got '%s'\n",
                   spec ? spec : "");
      std::exit(kExitUsageOrModel);
    }
    compile_options.params.emplace_back(std::string(spec, eq),
                                        static_cast<std::int64_t>(value));
  };
  for (int i = first_arg; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-model") == 0) {
      print_model = true;
    } else if (std::strcmp(argv[i], "--compact-zones") == 0) {
      compact_zones = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--strategy-out=", 15) == 0) {
      strategy_out = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--strategy-in=", 14) == 0) {
      strategy_in = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      stats_json = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress_secs = 5.0;
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      progress_secs = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      fault_spec = argv[i] + 9;
      campaign_mode = true;
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      fault_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atol(argv[i] + 7);
      campaign_mode = true;
    } else if (std::strncmp(argv[i], "--run-deadline-ms=", 18) == 0) {
      run_deadline_ms = std::atoll(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      retries = std::atol(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--pass-ticks=", 13) == 0) {
      pass_ticks = std::atoll(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--mutant=", 9) == 0) {
      mutant = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--iut=", 6) == 0) {
      iut_name = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--campaign-out=", 15) == 0) {
      campaign_out = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--ledger-out=", 13) == 0) {
      ledger_out = argv[i] + 13;
      campaign_mode = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
      campaign_mode = true;
    } else if (std::strncmp(argv[i], "--param=", 8) == 0) {
      add_param(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--param") == 0) {
      add_param(i + 1 < argc ? argv[++i] : nullptr);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      extra_purposes.emplace_back(argv[i]);
    }
  }
  // Mode overrides: the subcommand pins what the flags would otherwise
  // have to imply, and rejects contradictions up front.
  switch (mode) {
    case Mode::kLegacy:
      break;
    case Mode::kSolve:
      if (campaign_mode || !strategy_in.empty()) {
        std::fprintf(stderr,
                     "run_model solve: campaign/serve flags do not apply "
                     "(use `run_model campaign` or `run_model serve`)\n");
        return kExitUsageOrModel;
      }
      break;
    case Mode::kServe:
      if (strategy_in.empty()) {
        std::fprintf(stderr,
                     "run_model serve: --strategy-in=FILE.tgs is required\n");
        return kExitUsageOrModel;
      }
      break;
    case Mode::kRun:
      campaign_mode = true;
      runs = 1;
      break;
    case Mode::kCampaign:
      campaign_mode = true;
      break;
    case Mode::kExplain:
      campaign_mode = true;
      explain = true;
      break;
  }

  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: run_model [solve|serve|run|campaign|explain] "
                 "<model.tg> [--print-model] "
                 "[--threads=N] [--compact-zones] [--param NAME=VALUE]... "
                 "[--strategy-out=FILE.tgs] "
                 "[--strategy-in=FILE.tgs] "
                 "[--trace-out=FILE] [--metrics-out=FILE] "
                 "[--progress[=SECS]] [--stats-json] "
                 "[--runs=K] [--faults=SPEC] [--fault-seed=N] "
                 "[--run-deadline-ms=M] [--retries=R] [--iut=NAME] "
                 "[--mutant=K] [--pass-ticks=T] [--campaign-out=FILE] "
                 "[--ledger-out=DIR] [--explain] "
                 "[\"control: A<> ...\" | \"control: A[] ...\"]...\n"
                 "exit codes: 0 pass, 1 usage/model, 2 I/O, "
                 "3 solver limit, 4 FAIL, 5 flaky/inconclusive\n");
    return kExitUsageOrModel;
  }

  // Arm the requested telemetry before any pipeline work runs.
  obs::set_thread_name("tigat-main");
  if (!trace_out.empty()) obs::Tracer::instance().enable();
  if (!metrics_out.empty() || stats_json) obs::enable_metrics();
  if (progress_secs >= 0.0) obs::progress().enable(progress_secs);

  lang::LoadedModel model = [&] {
    try {
      return lang::load_model(path, compile_options);
    } catch (const lang::LangError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(kExitUsageOrModel);
    }
  }();

  std::printf("loaded %s: system '%s', %u clock(s), %zu channel(s), "
              "%zu process(es), %zu purpose(s)\n",
              path.c_str(), model.system.name().c_str(),
              model.system.clock_count() - 1, model.system.channels().size(),
              model.system.processes().size(), model.purposes.size());
  if (print_model) std::printf("\n%s\n", model.system.to_string().c_str());

  std::vector<tsystem::TestPurpose> purposes = std::move(model.purposes);
  for (const std::string& text : extra_purposes) {
    try {
      purposes.push_back(tsystem::TestPurpose::parse(model.system, text));
    } catch (const tsystem::ModelError& e) {
      std::fprintf(stderr, "bad purpose '%s': %s\n", text.c_str(), e.what());
      return kExitUsageOrModel;
    }
  }

  // Serving path: a compiled strategy replaces solving entirely.  The
  // purposes are parsed first so the fingerprint check can tell which
  // one the table was compiled for.  In campaign modes the table is
  // consumed below as the campaign's decide source instead.
  if (!strategy_in.empty() && !campaign_mode) {
    const int rc = serve_strategy(model, purposes, strategy_in);
    if (!write_obs_artifacts(trace_out, metrics_out, stats_json)) return kExitIo;
    return rc;
  }
  if (purposes.empty()) {
    if (campaign_mode) {
      std::fprintf(stderr, "campaign mode needs a test purpose (add "
                   "'control: A<> ...;' to the model or pass one)\n");
      return kExitUsageOrModel;
    }
    std::printf("no test purposes (add 'control: A<> ...;' to the model "
                "or pass one on the command line)\n");
    if (!strategy_out.empty()) {
      std::fprintf(stderr,
                   "--strategy-out: nothing to compile, '%s' was not "
                   "written\n",
                   strategy_out.c_str());
      return kExitUsageOrModel;
    }
    return kExitPass;
  }

  // Campaign mode: solve the first purpose, run its strategy against a
  // simulated IUT (one process of the model, optionally mutated) behind
  // an optionally fault-injected boundary.
  if (campaign_mode) {
    if (runs <= 0) runs = 1;
    // The campaign's decide source: a freshly solved strategy walk, or
    // a compiled .tgs mapped zero-copy (`campaign --strategy-in=`) —
    // the DecisionTable IS a DecisionSource, so the executor cannot
    // tell the difference.
    std::shared_ptr<const game::GameSolution> solution;
    std::unique_ptr<game::Strategy> strategy;
    std::unique_ptr<decision::StrategySource> walk_source;
    std::unique_ptr<decision::DecisionTable> table_source;
    const decision::DecisionSource* source = nullptr;
    const tsystem::TestPurpose* purpose = &purposes.front();
    if (!strategy_in.empty()) {
      try {
        table_source = std::make_unique<decision::DecisionTable>(
            decision::DecisionTable::map(strategy_in));
      } catch (const decision::VersionError& e) {
        std::fprintf(stderr, "cannot serve '%s': %s\n", strategy_in.c_str(),
                     e.what());
        return kExitUsageOrModel;
      } catch (const decision::SerializeError& e) {
        std::fprintf(stderr, "cannot load '%s': %s\n", strategy_in.c_str(),
                     e.what());
        return kExitIo;
      }
      purpose = nullptr;
      for (const tsystem::TestPurpose& p : purposes) {
        if (table_source->matches(model.system, p)) {
          purpose = &p;
          break;
        }
      }
      if (purpose == nullptr) {
        std::fprintf(stderr,
                     "'%s' was compiled for a different model or purpose "
                     "(fingerprint mismatch)\n",
                     strategy_in.c_str());
        return kExitUsageOrModel;
      }
      source = table_source.get();
    } else {
      game::SolverOptions options;
      options.threads = threads;
      options.compact_zones = compact_zones;
      game::GameSolver solver(model.system, purposes.front(), options);
      solution = solver.solve();
      if (!solution->winning_from_initial()) {
        std::fprintf(stderr,
                     "campaign: purpose '%s' is not winnable from the "
                     "initial state — no sound strategy to execute\n",
                     purposes.front().source.c_str());
        return kExitUsageOrModel;
      }
      strategy = std::make_unique<game::Strategy>(solution);
      walk_source = std::make_unique<decision::StrategySource>(*strategy);
      source = walk_source.get();
    }

    tsystem::System plant = tsystem::extract_process(model.system, iut_name);
    if (mutant >= 0) {
      const auto mutants = testing::enumerate_mutants(plant);
      if (static_cast<std::size_t>(mutant) >= mutants.size()) {
        std::fprintf(stderr, "--mutant=%d out of range (%zu mutants)\n",
                     mutant, mutants.size());
        return kExitUsageOrModel;
      }
      plant = testing::apply_mutant(plant, mutants[mutant]);
    }
    constexpr std::int64_t kScale = 16;
    testing::SimulatedImplementation imp(plant, kScale);

    testing::CampaignOptions copts;
    copts.runs = static_cast<std::size_t>(runs);
    copts.retries = static_cast<std::size_t>(retries);
    copts.run_deadline_ms = run_deadline_ms;
    copts.backoff_base_ms = 25;
    copts.fault_spec = fault_spec;
    copts.fault_seed = fault_seed;
    copts.record_ledgers = !ledger_out.empty() || explain;
    // The executor needs the purpose to know whether this is a safety
    // run (φ checked after every discrete move, PASS by outlasting the
    // budget); the DecisionSource alone cannot provide the formula.
    copts.executor.purpose = *purpose;
    copts.executor.pass_ticks = pass_ticks;
    const testing::CampaignReport report = [&] {
      try {
        return testing::campaign_run(*source, model.system, imp, kScale, copts);
      } catch (const testing::FaultSpecError& e) {
        std::fprintf(stderr, "--faults: %s\n", e.what());
        std::exit(kExitUsageOrModel);
      }
    }();

    const std::string json = report.to_json();
    if (!campaign_out.empty()) {
      std::FILE* f = std::fopen(campaign_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write campaign report to %s\n",
                     campaign_out.c_str());
        return kExitIo;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fwrite(json.data(), 1, json.size(), stdout);
    }
    // Flight-recorder artifacts: one ledger + explain JSON per
    // non-PASS attempt, named runR_attemptA so a campaign directory is
    // self-describing.
    if (!ledger_out.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(ledger_out, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create ledger directory %s: %s\n",
                     ledger_out.c_str(), ec.message().c_str());
        return kExitIo;
      }
      const auto write_file = [&](const std::string& file,
                                  const std::string& body) {
        std::FILE* f = std::fopen(file.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot write %s\n", file.c_str());
          return false;
        }
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        return true;
      };
      std::size_t written = 0;
      for (const testing::RunOutcome& o : report.outcomes) {
        for (const obs::RunLedger& led : o.ledgers) {
          const std::string stem = util::format(
              "%s/run%zu_attempt%zu", ledger_out.c_str(), led.run,
              led.attempt);
          if (!write_file(stem + ".ledger.jsonl", led.to_jsonl()) ||
              !write_file(stem + ".explain.json",
                          obs::explain(led).to_json())) {
            return kExitIo;
          }
          ++written;
        }
      }
      std::fprintf(stderr, "ledger-out: %zu non-PASS attempt(s) -> %s\n",
                   written, ledger_out.c_str());
    }
    if (explain) {
      for (const testing::RunOutcome& o : report.outcomes) {
        for (const obs::RunLedger& led : o.ledgers) {
          const std::string text = obs::explain(led).to_text();
          std::fwrite(text.data(), 1, text.size(), stderr);
        }
      }
    }
    std::fprintf(stderr,
                 "campaign: %s (%zu runs: %zu pass, %zu fail, "
                 "%zu inconclusive; %zu attempts, %zu deadline hits)\n",
                 testing::to_string(report.verdict), report.runs,
                 report.passes, report.fails, report.inconclusive,
                 report.attempts, report.deadline_hits);
    if (!write_obs_artifacts(trace_out, metrics_out, stats_json)) {
      return kExitIo;
    }
    switch (report.verdict) {
      case testing::CampaignVerdict::kPass: return kExitPass;
      case testing::CampaignVerdict::kFail: return kExitFailVerdict;
      case testing::CampaignVerdict::kFlaky:
      case testing::CampaignVerdict::kUnresponsive: return kExitInconclusive;
    }
    return kExitInconclusive;
  }

  util::TablePrinter table({"purpose", "controllable", "states", "rounds",
                            "strategy rows", "time (s)", "mem (MB)"});
  bool all_winning = true;
  for (const tsystem::TestPurpose& purpose : purposes) {
    util::zone_memory().reset();
    util::Stopwatch watch;
    try {
      game::SolverOptions options;
      options.threads = threads;
      options.compact_zones = compact_zones;
      game::GameSolver solver(model.system, purpose, options);
      const auto solution = solver.solve();
      game::Strategy strategy(solution);
      all_winning &= solution->winning_from_initial();
      table.add_row(
          {purpose.source, solution->winning_from_initial() ? "yes" : "no",
           util::format("%zu", solution->stats().keys),
           util::format("%zu", solution->stats().rounds),
           util::format("%zu", strategy.size()),
           util::format("%.3f", watch.seconds()),
           util::format("%.1f",
                        util::to_mebibytes(solution->stats().peak_zone_bytes))});

      // Offline compile of the first purpose's strategy.
      if (!strategy_out.empty()) {
        decision::CompileStats stats;
        const decision::DecisionTable compiled =
            decision::compile(*solution, &stats);
        decision::save(compiled, strategy_out);
        std::printf("compiled '%s' in %.3f s: %zu keys, %zu nodes, %zu arcs, "
                    "%zu leaves, %zu zones -> %s\n",
                    purpose.source.c_str(), stats.compile_seconds,
                    compiled.key_count(), compiled.node_count(),
                    compiled.arc_count(), compiled.leaf_count(),
                    compiled.zone_count(), strategy_out.c_str());
        strategy_out.clear();  // first purpose only
      }
    } catch (const tsystem::ModelError& e) {
      // A purpose the model rejects at solve time (e.g. a formula whose
      // bindings no longer elaborate) is a model error, not a solver
      // limit: report it and exit 1 via all_winning.
      std::fprintf(stderr, "cannot solve '%s': %s\n", purpose.source.c_str(),
                   e.what());
      all_winning = false;
    }
  }
  if (!stats_json) std::printf("\n%s\n", table.to_string().c_str());
  const bool obs_ok = write_obs_artifacts(trace_out, metrics_out, stats_json);
  if (!strategy_out.empty()) {
    // Never silently skip the artifact the caller asked for: a later
    // --strategy-in would fail far from the actual cause.
    std::fprintf(stderr,
                 "--strategy-out: no purpose was solved, '%s' was not "
                 "written\n",
                 strategy_out.c_str());
    return kExitUsageOrModel;
  }
  if (!obs_ok) return kExitIo;
  return all_winning ? kExitPass : kExitUsageOrModel;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const tigat::semantics::ExplorationLimit& e) {
    std::fprintf(stderr, "solver limit: %s\n", e.what());
    return kExitSolverLimit;
  } catch (const tigat::tsystem::ModelError& e) {
    std::fprintf(stderr, "model error: %s\n", e.what());
    return kExitUsageOrModel;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsageOrModel;
  }
}
