// Generic model runner: the full parse → elaborate → solve pipeline
// from a .tg file path — no C++ modelling required.
//
//   ./build/examples/run_model examples/models/smart_light.tg
//   ./build/examples/run_model examples/models/lep.tg --print-model
//   ./build/examples/run_model model.tg "control: A<> IUT.Bright"
//   ./build/examples/run_model model.tg --threads=4   # 0 = hardware
//
// Every `control:` declaration in the file is solved (plus any extra
// purposes given on the command line); for each one the winnability
// verdict, solver statistics and strategy size are reported.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "game/solver.h"
#include "game/strategy.h"
#include "lang/lang.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"

int main(int argc, char** argv) {
  using namespace tigat;

  std::string path;
  bool print_model = false;
  unsigned threads = 0;  // 0 = hardware concurrency
  std::vector<std::string> extra_purposes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-model") == 0) {
      print_model = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (path.empty()) {
      path = argv[i];
    } else {
      extra_purposes.emplace_back(argv[i]);
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: run_model <model.tg> [--print-model] "
                 "[--threads=N] [\"control: A<> ...\"]...\n");
    return 2;
  }

  lang::LoadedModel model = [&] {
    try {
      return lang::load_model(path);
    } catch (const lang::LangError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(1);
    }
  }();

  std::printf("loaded %s: system '%s', %u clock(s), %zu channel(s), "
              "%zu process(es), %zu purpose(s)\n",
              path.c_str(), model.system.name().c_str(),
              model.system.clock_count() - 1, model.system.channels().size(),
              model.system.processes().size(), model.purposes.size());
  if (print_model) std::printf("\n%s\n", model.system.to_string().c_str());

  std::vector<tsystem::TestPurpose> purposes = std::move(model.purposes);
  for (const std::string& text : extra_purposes) {
    try {
      purposes.push_back(tsystem::TestPurpose::parse(model.system, text));
    } catch (const tsystem::ModelError& e) {
      std::fprintf(stderr, "bad purpose '%s': %s\n", text.c_str(), e.what());
      return 1;
    }
  }
  if (purposes.empty()) {
    std::printf("no test purposes (add 'control: A<> ...;' to the model "
                "or pass one on the command line)\n");
    return 0;
  }

  util::TablePrinter table({"purpose", "controllable", "states", "rounds",
                            "strategy rows", "time (s)", "mem (MB)"});
  bool all_winning = true;
  for (const tsystem::TestPurpose& purpose : purposes) {
    util::zone_memory().reset();
    util::Stopwatch watch;
    try {
      game::SolverOptions options;
      options.threads = threads;
      game::GameSolver solver(model.system, purpose, options);
      const auto solution = solver.solve();
      game::Strategy strategy(solution);
      all_winning &= solution->winning_from_initial();
      table.add_row(
          {purpose.source, solution->winning_from_initial() ? "yes" : "no",
           util::format("%zu", solution->stats().keys),
           util::format("%zu", solution->stats().rounds),
           util::format("%zu", strategy.size()),
           util::format("%.3f", watch.seconds()),
           util::format("%.1f",
                        util::to_mebibytes(solution->stats().peak_zone_bytes))});
    } catch (const tsystem::ModelError& e) {
      // E.g. `A[]` safety purposes parse but have no solver yet.
      std::fprintf(stderr, "cannot solve '%s': %s\n", purpose.source.c_str(),
                   e.what());
      all_winning = false;
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  return all_winning ? 0 : 1;
}
