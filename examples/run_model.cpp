// Generic model runner: the full parse → elaborate → solve pipeline
// from a .tg file path — no C++ modelling required.
//
//   ./build/examples/run_model examples/models/smart_light.tg
//   ./build/examples/run_model examples/models/lep.tg --print-model
//   ./build/examples/run_model model.tg "control: A<> IUT.Bright"
//   ./build/examples/run_model model.tg --threads=4   # 0 = hardware
//   ./build/examples/run_model model.tg --compact-zones  # pooled zone
//                      # storage; what lets LEP n=6 fit in memory
//
// Templated models rescale from the command line: --param NAME=VALUE
// overrides a `const` declaration before elaboration, so one file
// serves every instance size (the whole of Table 1 is
// `run_model examples/models/lep.tg --param N=3..8`):
//
//   run_model examples/models/lep.tg --param N=5
//
// Every `control:` declaration in the file is solved (plus any extra
// purposes given on the command line); for each one the winnability
// verdict, solver statistics and strategy size are reported.
//
// Compiled strategies (the offline/online split):
//
//   # solve once, compile the first purpose's strategy, save it
//   run_model model.tg --strategy-out=model.tgs
//   # serving path: load the compiled strategy — no solving at all
//   run_model model.tg --strategy-in=model.tgs
//
// --strategy-in validates the .tgs fingerprint against the model,
// reports the table shape and times the compiled decide() at the
// initial state, which is the whole per-step cost a test-execution
// service pays once the game is solved offline.
//
// Observability (see src/obs/): all opt-in, near-zero cost when off.
//
//   --trace-out=FILE    Chrome trace-event JSON of the run (open in
//                       Perfetto / chrome://tracing): per-worker spans
//                       for expand, merge, fixpoint rounds, decide.
//   --metrics-out=FILE  versioned metrics snapshot (counters, gauges,
//                       histograms; superset of the solver stats).
//   --progress[=SECS]   heartbeat JSONL on stderr every SECS (default
//                       5) with keys/zones/round/RSS while solving.
//   --stats-json        print the metrics snapshot to stdout instead
//                       of the human table (parse from the line
//                       starting with {"schema").
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "decision/compiler.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "lang/lang.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "semantics/concrete.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"

namespace {

// Exports whatever telemetry was requested; called on every exit path
// that completed the pipeline (solve and serve).  Returns false only
// if a requested artifact could not be written.
bool write_obs_artifacts(const std::string& trace_out,
                         const std::string& metrics_out, bool stats_json) {
  bool ok = true;
  if (!trace_out.empty()) {
    tigat::obs::Tracer::instance().disable();
    ok &= tigat::obs::Tracer::instance().write_chrome_trace(trace_out);
  }
  if (!metrics_out.empty()) {
    ok &= tigat::obs::metrics().write_snapshot(metrics_out);
  }
  if (stats_json) {
    const std::string json = tigat::obs::metrics().snapshot_json();
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  return ok;
}

int serve_strategy(const tigat::lang::LoadedModel& model,
                   const std::string& path) {
  using namespace tigat;
  const decision::DecisionTable table = [&] {
    try {
      return decision::load(path);
    } catch (const decision::SerializeError& e) {
      std::fprintf(stderr, "cannot load '%s': %s\n", path.c_str(), e.what());
      std::exit(1);
    }
  }();
  if (!table.matches(model.system)) {
    std::fprintf(stderr,
                 "'%s' was compiled for a different model (fingerprint "
                 "mismatch)\n",
                 path.c_str());
    return 1;
  }
  std::printf("loaded compiled strategy %s: %zu keys, %zu nodes, %zu arcs, "
              "%zu leaves, %zu zones (%.1f KiB resident)\n",
              path.c_str(), table.key_count(), table.node_count(),
              table.arc_count(), table.leaf_count(), table.zone_count(),
              static_cast<double>(table.memory_bytes()) / 1024.0);

  constexpr std::int64_t kScale = 16;
  semantics::ConcreteSemantics sem(model.system, kScale);
  const auto initial = sem.initial();
  const game::Move move = table.decide(initial, kScale);
  const char* kinds[] = {"goal reached", "action", "delay", "unwinnable"};
  std::printf("decision at the initial state: %s\n",
              kinds[static_cast<int>(move.kind)]);

  constexpr int kReps = 200000;
  util::Stopwatch watch;
  std::int64_t sink = 0;
  for (int r = 0; r < kReps; ++r) {
    sink += static_cast<std::int64_t>(table.decide(initial, kScale).kind);
  }
  const double ns = watch.seconds() * 1e9 / kReps;
  std::printf("compiled decide(): %.0f ns/decision (%d reps, checksum %lld)\n",
              ns, kReps, static_cast<long long>(sink));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tigat;

  std::string path;
  bool print_model = false;
  bool compact_zones = false;  // dictionary-compressed zone storage
  unsigned threads = 0;        // 0 = hardware concurrency
  std::string strategy_out;
  std::string strategy_in;
  std::string trace_out;
  std::string metrics_out;
  bool stats_json = false;
  double progress_secs = -1.0;  // < 0: heartbeat off
  lang::CompileOptions compile_options;
  std::vector<std::string> extra_purposes;
  const auto add_param = [&](const char* spec) {
    const char* eq = spec ? std::strchr(spec, '=') : nullptr;
    char* end = nullptr;
    errno = 0;
    const long long value = eq ? std::strtoll(eq + 1, &end, 10) : 0;
    if (!eq || eq == spec || end == eq + 1 || (end && *end != '\0') ||
        errno == ERANGE) {
      std::fprintf(stderr, "--param expects NAME=VALUE, got '%s'\n",
                   spec ? spec : "");
      std::exit(2);
    }
    compile_options.params.emplace_back(std::string(spec, eq),
                                        static_cast<std::int64_t>(value));
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-model") == 0) {
      print_model = true;
    } else if (std::strcmp(argv[i], "--compact-zones") == 0) {
      compact_zones = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--strategy-out=", 15) == 0) {
      strategy_out = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--strategy-in=", 14) == 0) {
      strategy_in = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      stats_json = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress_secs = 5.0;
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      progress_secs = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--param=", 8) == 0) {
      add_param(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--param") == 0) {
      add_param(i + 1 < argc ? argv[++i] : nullptr);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      extra_purposes.emplace_back(argv[i]);
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: run_model <model.tg> [--print-model] "
                 "[--threads=N] [--compact-zones] [--param NAME=VALUE]... "
                 "[--strategy-out=FILE.tgs] "
                 "[--strategy-in=FILE.tgs] "
                 "[--trace-out=FILE] [--metrics-out=FILE] "
                 "[--progress[=SECS]] [--stats-json] "
                 "[\"control: A<> ...\"]...\n");
    return 2;
  }

  // Arm the requested telemetry before any pipeline work runs.
  obs::set_thread_name("tigat-main");
  if (!trace_out.empty()) obs::Tracer::instance().enable();
  if (!metrics_out.empty() || stats_json) obs::enable_metrics();
  if (progress_secs >= 0.0) obs::progress().enable(progress_secs);

  lang::LoadedModel model = [&] {
    try {
      return lang::load_model(path, compile_options);
    } catch (const lang::LangError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(1);
    }
  }();

  std::printf("loaded %s: system '%s', %u clock(s), %zu channel(s), "
              "%zu process(es), %zu purpose(s)\n",
              path.c_str(), model.system.name().c_str(),
              model.system.clock_count() - 1, model.system.channels().size(),
              model.system.processes().size(), model.purposes.size());
  if (print_model) std::printf("\n%s\n", model.system.to_string().c_str());

  // Serving path: a compiled strategy replaces solving entirely.
  if (!strategy_in.empty()) {
    const int rc = serve_strategy(model, strategy_in);
    if (!write_obs_artifacts(trace_out, metrics_out, stats_json)) return 1;
    return rc;
  }

  std::vector<tsystem::TestPurpose> purposes = std::move(model.purposes);
  for (const std::string& text : extra_purposes) {
    try {
      purposes.push_back(tsystem::TestPurpose::parse(model.system, text));
    } catch (const tsystem::ModelError& e) {
      std::fprintf(stderr, "bad purpose '%s': %s\n", text.c_str(), e.what());
      return 1;
    }
  }
  if (purposes.empty()) {
    std::printf("no test purposes (add 'control: A<> ...;' to the model "
                "or pass one on the command line)\n");
    if (!strategy_out.empty()) {
      std::fprintf(stderr,
                   "--strategy-out: nothing to compile, '%s' was not "
                   "written\n",
                   strategy_out.c_str());
      return 1;
    }
    return 0;
  }

  util::TablePrinter table({"purpose", "controllable", "states", "rounds",
                            "strategy rows", "time (s)", "mem (MB)"});
  bool all_winning = true;
  for (const tsystem::TestPurpose& purpose : purposes) {
    util::zone_memory().reset();
    util::Stopwatch watch;
    try {
      game::SolverOptions options;
      options.threads = threads;
      options.compact_zones = compact_zones;
      game::GameSolver solver(model.system, purpose, options);
      const auto solution = solver.solve();
      game::Strategy strategy(solution);
      all_winning &= solution->winning_from_initial();
      table.add_row(
          {purpose.source, solution->winning_from_initial() ? "yes" : "no",
           util::format("%zu", solution->stats().keys),
           util::format("%zu", solution->stats().rounds),
           util::format("%zu", strategy.size()),
           util::format("%.3f", watch.seconds()),
           util::format("%.1f",
                        util::to_mebibytes(solution->stats().peak_zone_bytes))});

      // Offline compile of the first purpose's strategy.
      if (!strategy_out.empty()) {
        decision::CompileStats stats;
        const decision::DecisionTable compiled =
            decision::compile(*solution, &stats);
        decision::save(compiled, strategy_out);
        std::printf("compiled '%s' in %.3f s: %zu keys, %zu nodes, %zu arcs, "
                    "%zu leaves, %zu zones -> %s\n",
                    purpose.source.c_str(), stats.compile_seconds,
                    compiled.key_count(), compiled.node_count(),
                    compiled.arc_count(), compiled.leaf_count(),
                    compiled.zone_count(), strategy_out.c_str());
        strategy_out.clear();  // first purpose only
      }
    } catch (const tsystem::ModelError& e) {
      // E.g. `A[]` safety purposes parse but have no solver yet.
      std::fprintf(stderr, "cannot solve '%s': %s\n", purpose.source.c_str(),
                   e.what());
      all_winning = false;
    }
  }
  if (!stats_json) std::printf("\n%s\n", table.to_string().c_str());
  const bool obs_ok = write_obs_artifacts(trace_out, metrics_out, stats_json);
  if (!strategy_out.empty()) {
    // Never silently skip the artifact the caller asked for: a later
    // --strategy-in would fail far from the actual cause.
    std::fprintf(stderr,
                 "--strategy-out: no purpose was solved, '%s' was not "
                 "written\n",
                 strategy_out.c_str());
    return 1;
  }
  if (!obs_ok) return 1;
  return all_winning ? 0 : 1;
}
