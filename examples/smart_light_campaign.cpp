// The paper's running example end to end: the Smart Light (Fig. 2/3)
// tested for several purposes against a family of conforming
// implementations — every combination must PASS (Theorem 10 in
// action), whatever latency and output preference the implementation
// exhibits inside the SPEC's uncertainty windows.
//
// Build & run:  ./build/examples/smart_light_campaign
#include <cstdio>
#include <vector>

#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/executor.h"
#include "testing/simulated_imp.h"
#include "util/table_printer.h"
#include "util/text.h"

int main() {
  using namespace tigat;
  constexpr std::int64_t kScale = 16;

  models::SmartLight spec = models::make_smart_light();
  models::SmartLight plant = models::make_smart_light_plant_only();

  const std::vector<std::string> purposes = {
      "control: A<> IUT.Bright",
      "control: A<> IUT.Dim",
      "control: A<> IUT.L5",
      "control: A<> IUT.L6",
  };

  const std::vector<std::pair<std::string, testing::ImpPolicy>> imps = {
      {"urgent", {0, {}}},
      {"half-window", {kScale, {}}},
      {"deadline", {2 * kScale, {}}},
      {"dim-lover", {kScale / 2, {"dim", "off", "bright"}}},
      {"bright-lover", {kScale / 2, {"bright", "dim", "off"}}},
  };

  util::TablePrinter table({"purpose", "imp", "verdict", "ticks", "trace"});
  int failures = 0;

  for (const auto& prop : purposes) {
    game::GameSolver solver(spec.system,
                            tsystem::TestPurpose::parse(spec.system, prop));
    const auto solution = solver.solve();
    if (!solution->winning_from_initial()) {
      std::printf("%s: not controllable — skipped\n", prop.c_str());
      continue;
    }
    game::Strategy strategy(solution);
    for (const auto& [imp_name, policy] : imps) {
      testing::SimulatedImplementation imp(plant.system, kScale, policy);
      testing::TestExecutor exec(strategy, imp, kScale);
      const auto report = exec.run();
      failures += report.verdict != testing::Verdict::kPass;
      std::string trace = report.trace_string();
      if (trace.size() > 48) trace = trace.substr(0, 45) + "...";
      table.add_row({prop.substr(std::string("control: A<> ").size()),
                     imp_name, testing::to_string(report.verdict),
                     util::format("%lld", static_cast<long long>(
                                              report.total_ticks)),
                     trace});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  if (failures == 0) {
    std::printf("all conforming implementations passed — soundness holds.\n");
  } else {
    std::printf("UNEXPECTED: %d failing runs against conforming IMPs!\n",
                failures);
  }
  return failures == 0 ? 0 : 1;
}
