// Cooperative testing (paper future-work item 4): what to do when no
// winning strategy exists.
//
// `control: A<> IUT.L6` is NOT controllable for the Smart Light: L6 is
// only entered by touching during the L5 output window, and the light
// may answer dim!/bright! before the user's reaction time allows a
// second touch.  The tester "makes a small retreat": it computes a
// cooperative plan (all actions treated as controllable) and hopes the
// light plays along.
//
//   * a patient light (output latency ≥ 1) cooperates → PASS
//   * an eager light (latency 0) answers first     → INCONCLUSIVE
//   * a broken light still gets caught             → FAIL (sound)
//
// Build & run:  ./build/examples/cooperative_testing
#include <cstdio>

#include "game/cooperative.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/cooperative_executor.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"

int main() {
  using namespace tigat;
  constexpr std::int64_t kScale = 16;

  models::SmartLight spec = models::make_smart_light();
  models::SmartLight plant = models::make_smart_light_plant_only();
  const auto purpose =
      tsystem::TestPurpose::parse(spec.system, "control: A<> IUT.L6");

  // No winning strategy exists...
  game::GameSolver solver(spec.system, purpose);
  const auto strict = solver.solve();
  std::printf("winning strategy for %s: %s\n", purpose.source.c_str(),
              strict->winning_from_initial() ? "exists" : "none");

  // ...so retreat to a cooperative plan.
  game::CooperativeResult coop = game::solve_cooperative(spec.system, purpose);
  std::printf("cooperatively reachable: %s\n\n",
              coop.reachable ? "yes" : "no");
  if (!coop.reachable) return 1;
  game::Strategy plan(coop.solution);

  const auto run_against = [&](const char* label, const tsystem::System& sys,
                               std::int64_t latency) {
    testing::SimulatedImplementation imp(sys, kScale,
                                         testing::ImpPolicy{latency, {}});
    testing::CooperativeExecutor exec(spec.system, plan, imp, kScale);
    const auto report = exec.run();
    std::printf("%-16s verdict: %-13s %s\n", label,
                testing::to_string(report.verdict), report.detail.c_str());
    std::printf("%-16s trace:   %s\n\n", "", report.trace_string().c_str());
  };

  run_against("patient light", plant.system, 2 * kScale);
  run_against("eager light", plant.system, 0);

  // Soundness carries over: against a plan with output obligations
  // (A<> Bright hopes for bright!), a genuinely faulty box still fails.
  game::CooperativeResult coop2 = game::solve_cooperative(
      spec.system,
      tsystem::TestPurpose::parse(spec.system, "control: A<> IUT.Bright"));
  game::Strategy plan2(coop2.solution);
  for (const auto& m : testing::enumerate_mutants(plant.system)) {
    const tsystem::System mutated = testing::apply_mutant(plant.system, m);
    testing::SimulatedImplementation imp(mutated, kScale,
                                         testing::ImpPolicy{3 * kScale, {}});
    testing::CooperativeExecutor exec(spec.system, plan2, imp, kScale);
    const auto report = exec.run();
    if (report.verdict == testing::Verdict::kFail) {
      std::printf("faulty light     verdict: fail          %s\n",
                  report.detail.c_str());
      std::printf("                 fault:   %s\n", m.description.c_str());
      break;
    }
  }
  return 0;
}
