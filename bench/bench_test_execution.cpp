// Ablation A3 (DESIGN.md): cost of strategy-based test execution —
// per-decision strategy lookup and full Algorithm 3.1 runs.  Relevant
// to the paper's future-work concern about "efficient strategy
// representation": lookups walk the ranked zone federations (served
// from the cumulative winning_up_to cache since the parallel-pipeline
// change).  --json / TIGAT_BENCH_JSON writes the gbench JSON to
// BENCH_test_execution.json.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/executor.h"
#include "testing/simulated_imp.h"

namespace {

using namespace tigat;

constexpr std::int64_t kScale = 16;

struct Fixture {
  Fixture()
      : light(models::make_smart_light()),
        plant(models::make_smart_light_plant_only()),
        strategy(game::GameSolver(
                     light.system,
                     tsystem::TestPurpose::parse(light.system,
                                                 "control: A<> IUT.Bright"))
                     .solve()) {}
  models::SmartLight light;
  models::SmartLight plant;
  game::Strategy strategy;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_StrategyDecideInitial(benchmark::State& state) {
  auto& f = fixture();
  semantics::ConcreteSemantics sem(f.light.system, kScale);
  const auto s = sem.initial();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.strategy.decide(s, kScale));
  }
}
BENCHMARK(BM_StrategyDecideInitial);

void BM_StrategyDecideMidGame(benchmark::State& state) {
  auto& f = fixture();
  semantics::ConcreteSemantics sem(f.light.system, kScale);
  auto s = sem.initial();
  sem.delay(s, kScale);  // user may touch
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.strategy.decide(s, kScale));
  }
}
BENCHMARK(BM_StrategyDecideMidGame);

void BM_FullTestRun(benchmark::State& state) {
  auto& f = fixture();
  testing::SimulatedImplementation imp(
      f.plant.system, kScale,
      testing::ImpPolicy{static_cast<std::int64_t>(state.range(0)), {}});
  testing::TestExecutor exec(f.strategy, imp, kScale);
  std::size_t passes = 0;
  for (auto _ : state) {
    const auto report = exec.run();
    passes += report.verdict == testing::Verdict::kPass;
  }
  state.counters["pass_rate"] =
      static_cast<double>(passes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FullTestRun)->Arg(0)->Arg(kScale)->Arg(2 * kScale);

void BM_StrategySynthesisSmartLight(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    game::GameSolver solver(
        f.light.system,
        tsystem::TestPurpose::parse(f.light.system, "control: A<> IUT.Bright"));
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_StrategySynthesisSmartLight);

}  // namespace

int main(int argc, char** argv) {
  return tigat::benchio::gbench_main(argc, argv, "test_execution");
}
