// Ablation A3 (DESIGN.md): cost of strategy-based test execution —
// per-decision strategy lookup and full Algorithm 3.1 runs, for both
// backends: the federation WALK (game::Strategy, served from the
// winning_up_to cache) and the COMPILED decision table
// (decision::DecisionTable, the answer to the paper's future-work
// concern about "efficient strategy representation").  The
// BM_TableDecide* benchmarks carry `speedup_vs_walk` counters — the
// same state decided by both backends — so one JSON artifact holds the
// measured per-decision speedup.  --json / TIGAT_BENCH_JSON writes the
// gbench JSON to BENCH_test_execution.json.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "decision/compiler.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/executor.h"
#include "testing/simulated_imp.h"
#include "util/stopwatch.h"

namespace {

using namespace tigat;

constexpr std::int64_t kScale = 16;

struct Fixture {
  Fixture()
      : light(models::make_smart_light()),
        plant(models::make_smart_light_plant_only()),
        solution(game::GameSolver(
                     light.system,
                     tsystem::TestPurpose::parse(light.system,
                                                 "control: A<> IUT.Bright"))
                     .solve()),
        strategy(solution),
        table(decision::compile(*solution)) {}
  models::SmartLight light;
  models::SmartLight plant;
  std::shared_ptr<const game::GameSolution> solution;
  game::Strategy strategy;
  decision::DecisionTable table;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// Walk-vs-compiled timing at one state, for the speedup counters.
void set_speedup_counters(benchmark::State& state,
                          const semantics::ConcreteState& s) {
  auto& f = fixture();
  constexpr int kReps = 50000;
  util::Stopwatch walk_watch;
  for (int r = 0; r < kReps; ++r) {
    benchmark::DoNotOptimize(f.strategy.decide(s, kScale));
  }
  const double walk_ns = walk_watch.seconds() * 1e9 / kReps;
  util::Stopwatch table_watch;
  for (int r = 0; r < kReps; ++r) {
    benchmark::DoNotOptimize(f.table.decide(s, kScale));
  }
  const double table_ns = table_watch.seconds() * 1e9 / kReps;
  state.counters["walk_ns_per_decide"] = walk_ns;
  state.counters["table_ns_per_decide"] = table_ns;
  state.counters["speedup_vs_walk"] = walk_ns / table_ns;
}

void BM_StrategyDecideInitial(benchmark::State& state) {
  auto& f = fixture();
  semantics::ConcreteSemantics sem(f.light.system, kScale);
  const auto s = sem.initial();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.strategy.decide(s, kScale));
  }
}
BENCHMARK(BM_StrategyDecideInitial);

void BM_StrategyDecideMidGame(benchmark::State& state) {
  auto& f = fixture();
  semantics::ConcreteSemantics sem(f.light.system, kScale);
  auto s = sem.initial();
  sem.delay(s, kScale);  // user may touch
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.strategy.decide(s, kScale));
  }
}
BENCHMARK(BM_StrategyDecideMidGame);

void BM_TableDecideInitial(benchmark::State& state) {
  auto& f = fixture();
  semantics::ConcreteSemantics sem(f.light.system, kScale);
  const auto s = sem.initial();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.table.decide(s, kScale));
  }
  set_speedup_counters(state, s);
}
BENCHMARK(BM_TableDecideInitial);

void BM_TableDecideMidGame(benchmark::State& state) {
  auto& f = fixture();
  semantics::ConcreteSemantics sem(f.light.system, kScale);
  auto s = sem.initial();
  sem.delay(s, kScale);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.table.decide(s, kScale));
  }
  set_speedup_counters(state, s);
}
BENCHMARK(BM_TableDecideMidGame);

void BM_FullTestRun(benchmark::State& state) {
  auto& f = fixture();
  testing::SimulatedImplementation imp(
      f.plant.system, kScale,
      testing::ImpPolicy{static_cast<std::int64_t>(state.range(0)), {}});
  testing::TestExecutor exec(f.strategy, imp, kScale);
  std::size_t passes = 0;
  for (auto _ : state) {
    const auto report = exec.run();
    passes += report.verdict == testing::Verdict::kPass;
  }
  state.counters["pass_rate"] =
      static_cast<double>(passes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FullTestRun)->Arg(0)->Arg(kScale)->Arg(2 * kScale);

void BM_FullTestRunCompiled(benchmark::State& state) {
  auto& f = fixture();
  testing::SimulatedImplementation imp(
      f.plant.system, kScale,
      testing::ImpPolicy{static_cast<std::int64_t>(state.range(0)), {}});
  testing::TestExecutor exec(f.table, f.light.system, imp, kScale);
  std::size_t passes = 0;
  for (auto _ : state) {
    const auto report = exec.run();
    passes += report.verdict == testing::Verdict::kPass;
  }
  state.counters["pass_rate"] =
      static_cast<double>(passes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FullTestRunCompiled)->Arg(0)->Arg(kScale)->Arg(2 * kScale);

void BM_StrategySynthesisSmartLight(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    game::GameSolver solver(
        f.light.system,
        tsystem::TestPurpose::parse(f.light.system, "control: A<> IUT.Bright"));
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_StrategySynthesisSmartLight);

void BM_StrategyCompile(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(decision::compile(*f.solution));
  }
}
BENCHMARK(BM_StrategyCompile);

void BM_StrategySerializeRoundTrip(benchmark::State& state) {
  auto& f = fixture();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto blob = decision::to_bytes(f.table);
    bytes = blob.size();
    benchmark::DoNotOptimize(decision::from_bytes(blob));
  }
  state.counters["tgs_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_StrategySerializeRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  return tigat::benchio::gbench_main(argc, argv, "test_execution");
}
