// Reproduces TABLE 1 of the paper: winning-strategy generation for the
// Leader Election Protocol, test purposes TP1–TP3, n = 3..8 nodes —
// time (s) and memory (MB) per cell, "/" when the cell exceeds the
// budget (the paper's machine ran out of memory at n = 8; a budget
// plays that role here, see EXPERIMENTS.md).
//
// Environment overrides:
//   TIGAT_TABLE1_MAX_N   largest n to attempt            (default 6)
//   TIGAT_TABLE1_BUDGET  per-cell wall-clock budget, s   (default 60)
//   TIGAT_TABLE1_MEM_MB  per-cell zone-memory budget, MB (default 1024)
//
// Once a cell blows the budget, larger n in the same row are reported
// "/" without being run (the growth is monotone).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "game/solver.h"
#include "models/lep.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"

namespace {

using namespace tigat;

struct Cell {
  bool completed = false;
  double seconds = 0.0;
  double mebibytes = 0.0;
};

Cell run_cell(std::uint32_t nodes, const std::string& purpose, double budget,
              std::size_t mem_budget_bytes) {
  Cell cell;
  try {
    models::Lep lep = models::make_lep({.nodes = nodes});
    game::SolverOptions options;
    options.exploration.deadline_seconds = budget;
    options.exploration.max_zone_bytes = mem_budget_bytes;
    util::Stopwatch watch;
    game::GameSolver solver(
        lep.system, tsystem::TestPurpose::parse(lep.system, purpose), options);
    const auto solution = solver.solve();
    cell.completed = true;
    cell.seconds = watch.seconds();
    cell.mebibytes = util::to_mebibytes(solution->stats().peak_zone_bytes);
    if (!solution->winning_from_initial()) {
      std::fprintf(stderr, "warning: %s not controllable at n=%u\n",
                   purpose.c_str(), nodes);
    }
  } catch (const semantics::ExplorationLimit&) {
    cell.completed = false;
  }
  return cell;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

int main() {
  const int max_n = env_int("TIGAT_TABLE1_MAX_N", 6);
  const double budget = env_int("TIGAT_TABLE1_BUDGET", 60);
  const auto mem_budget =
      static_cast<std::size_t>(env_int("TIGAT_TABLE1_MEM_MB", 1024)) << 20;

  const std::vector<std::pair<std::string, std::string>> purposes = {
      {"TP1", models::lep_tp1()},
      {"TP2", models::lep_tp2()},
      {"TP3", models::lep_tp3()},
  };

  std::printf("Table 1: strategy generation for the LEP protocol\n");
  std::printf("(budget per cell: %.0fs / %zu MB; '/' = out of budget, the\n",
              budget, mem_budget >> 20);
  std::printf(" paper's '/' cells were out-of-memory on 4 GB in 2008)\n\n");

  std::vector<std::string> header = {""};
  for (int n = 3; n <= max_n; ++n) header.push_back("n=" + std::to_string(n));
  util::TablePrinter time_table(header);
  util::TablePrinter mem_table(header);

  for (const auto& [label, purpose] : purposes) {
    std::vector<std::string> time_row = {label};
    std::vector<std::string> mem_row = {label};
    bool dead = false;
    for (int n = 3; n <= max_n; ++n) {
      if (dead) {
        time_row.push_back("/");
        mem_row.push_back("/");
        continue;
      }
      util::zone_memory().reset();
      const Cell cell =
          run_cell(static_cast<std::uint32_t>(n), purpose, budget, mem_budget);
      if (cell.completed) {
        time_row.push_back(util::format("%.2f", cell.seconds));
        mem_row.push_back(util::format("%.1f", cell.mebibytes));
      } else {
        time_row.push_back("/");
        mem_row.push_back("/");
        dead = true;  // larger n cannot fit either
      }
      std::fprintf(stderr, "  %s n=%d done\n", label.c_str(), n);
    }
    time_table.add_row(std::move(time_row));
    mem_table.add_row(std::move(mem_row));
  }

  std::printf("Time (s)\n%s\n", time_table.to_string().c_str());
  std::printf("Memory (MB)\n%s\n", mem_table.to_string().c_str());
  std::printf(
      "shape check: rows grow superlinearly in n and die within two\n"
      "steps of the last feasible instance, as in the paper.\n");
  return 0;
}
