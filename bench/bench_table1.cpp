// Reproduces TABLE 1 of the paper: winning-strategy generation for the
// Leader Election Protocol, test purposes TP1–TP3, n = 3..8 nodes —
// time (s) and memory (MB) per cell, "/" when the cell exceeds the
// budget (the paper's machine ran out of memory at n = 8; a budget
// plays that role here, see EXPERIMENTS.md).
//
// Every cell is elaborated from the ONE shipped template
// (examples/models/lep.tg with `N` overridden per column) — the same
// path `run_model --param N=n` takes — not from a C++ builder;
// tests/lang_template_test.cpp proves the two coincide exactly.
//
// Environment overrides:
//   TIGAT_TABLE1_MAX_N    largest n to attempt            (default 6)
//   TIGAT_TABLE1_BUDGET   per-cell wall-clock budget, s   (default 60)
//   TIGAT_TABLE1_MEM_MB   per-cell zone-memory budget, MB (default 1024)
//   TIGAT_TABLE1_THREADS  solver threads; 0 = hardware    (default 0)
//   TIGAT_TABLE1_SPEEDUP  0 disables the 1-vs-N rerun     (default 1)
//   TIGAT_TABLE1_COMPACT  1 = SolverOptions::compact_zones (default 0)
//
// Once a cell blows the budget, larger n in the same row are reported
// "/" without being run (the growth is monotone).
//
// With --json (or TIGAT_BENCH_JSON, see bench_json.h) every cell lands
// in BENCH_table1.json with its deterministic shape counters (keys,
// zones, edges, rounds — what the CI bench gate pins), the zone-pool
// dictionary counters and the process peak RSS, plus the
// 1-thread-vs-N-thread speedup figure with its merge-phase split (the
// serial share the striped interner attacks).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "game/solver.h"
#include "lang/lang.h"
#include "models/lep.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"
#include "util/thread_pool.h"

#ifndef TIGAT_MODEL_DIR
#error "TIGAT_MODEL_DIR must point at examples/models"
#endif

namespace {

using namespace tigat;

struct Cell {
  bool completed = false;
  bool winning = false;
  double seconds = 0.0;
  double mebibytes = 0.0;
  game::SolverStats stats;
};

// One templated model file serves every column: `--param N=n`.
tsystem::System elaborate_lep(std::uint32_t nodes) {
  lang::CompileOptions options;
  options.params = {{"N", static_cast<std::int64_t>(nodes)}};
  return lang::load_model(std::string(TIGAT_MODEL_DIR) + "/lep.tg", options)
      .system;
}

Cell run_cell(std::uint32_t nodes, const std::string& purpose, double budget,
              std::size_t mem_budget_bytes, unsigned threads, bool compact) {
  Cell cell;
  try {
    const tsystem::System lep_system = elaborate_lep(nodes);
    game::SolverOptions options;
    options.exploration.deadline_seconds = budget;
    options.exploration.max_zone_bytes = mem_budget_bytes;
    options.threads = threads;
    options.compact_zones = compact;
    util::Stopwatch watch;
    game::GameSolver solver(
        lep_system, tsystem::TestPurpose::parse(lep_system, purpose), options);
    const auto solution = solver.solve();
    cell.completed = true;
    cell.seconds = watch.seconds();
    cell.stats = solution->stats();
    cell.mebibytes = util::to_mebibytes(solution->stats().peak_zone_bytes);
    cell.winning = solution->winning_from_initial();
    if (!cell.winning) {
      std::fprintf(stderr, "warning: %s not controllable at n=%u\n",
                   purpose.c_str(), nodes);
    }
  } catch (const semantics::ExplorationLimit&) {
    cell.completed = false;
  } catch (const tsystem::ModelError& e) {
    // E.g. n outside the template's declared parameter range: report
    // the cell as infeasible instead of killing the whole table.
    std::fprintf(stderr, "error: n=%u: %s\n", nodes, e.what());
    cell.completed = false;
  }
  return cell;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_n = env_int("TIGAT_TABLE1_MAX_N", 6);
  const double budget = env_int("TIGAT_TABLE1_BUDGET", 60);
  const auto mem_budget =
      static_cast<std::size_t>(env_int("TIGAT_TABLE1_MEM_MB", 1024)) << 20;
  const auto threads =
      static_cast<unsigned>(env_int("TIGAT_TABLE1_THREADS", 0));
  const bool with_speedup = env_int("TIGAT_TABLE1_SPEEDUP", 1) != 0;
  const bool compact = env_int("TIGAT_TABLE1_COMPACT", 0) != 0;

  benchio::BenchReport report("table1", argc, argv);
  report.root().set("max_n", max_n);
  report.root().set("budget_s", budget);
  report.root().set("mem_budget_mb", static_cast<long long>(mem_budget >> 20));
  report.root().set("compact_zones", compact);
  report.root().set(
      "threads",
      static_cast<long long>(threads == 0 ? util::ThreadPool::hardware_threads()
                                          : threads));

  const std::vector<std::pair<std::string, std::string>> purposes = {
      {"TP1", models::lep_tp1()},
      {"TP2", models::lep_tp2()},
      {"TP3", models::lep_tp3()},
  };

  std::printf("Table 1: strategy generation for the LEP protocol\n");
  std::printf("(cells elaborated from the lep.tg template, N overridden "
              "per column;\n");
  std::printf(" budget per cell: %.0fs / %zu MB; '/' = out of budget, the\n",
              budget, mem_budget >> 20);
  std::printf(" paper's '/' cells were out-of-memory on 4 GB in 2008)\n\n");

  std::vector<std::string> header = {""};
  for (int n = 3; n <= max_n; ++n) header.push_back("n=" + std::to_string(n));
  util::TablePrinter time_table(header);
  util::TablePrinter mem_table(header);

  // Largest cell that completed, for the speedup figure below.
  int best_n = 0;
  std::string best_label, best_purpose;

  for (const auto& [label, purpose] : purposes) {
    std::vector<std::string> time_row = {label};
    std::vector<std::string> mem_row = {label};
    bool dead = false;
    for (int n = 3; n <= max_n; ++n) {
      if (dead) {
        time_row.push_back("/");
        mem_row.push_back("/");
        continue;
      }
      util::zone_memory().reset();
      const Cell cell = run_cell(static_cast<std::uint32_t>(n), purpose,
                                 budget, mem_budget, threads, compact);
      auto& row = report.add_row();
      row.set("purpose", label);
      row.set("n", n);
      row.set("completed", cell.completed);
      if (cell.completed) {
        row.set("seconds", cell.seconds);
        row.set("mem_mb", cell.mebibytes);
        row.set("winning", cell.winning);
        // Deterministic shape counters — identical across machines and
        // thread counts; what tools/bench_gate.py pins hardest.
        row.set("keys", cell.stats.keys);
        row.set("reach_zones", cell.stats.reach_zones);
        row.set("winning_zones", cell.stats.winning_zones);
        row.set("edges", cell.stats.edges);
        row.set("rounds", cell.stats.rounds);
        if (compact) {
          row.set("pool_rows", cell.stats.zone_pool_rows);
          row.set("pool_mb", util::to_mebibytes(cell.stats.zone_pool_bytes));
        }
        time_row.push_back(util::format("%.2f", cell.seconds));
        mem_row.push_back(util::format("%.1f", cell.mebibytes));
        if (n > best_n) {
          best_n = n;
          best_label = label;
          best_purpose = purpose;
        }
      } else {
        time_row.push_back("/");
        mem_row.push_back("/");
        dead = true;  // larger n cannot fit either
      }
      std::fprintf(stderr, "  %s n=%d done\n", label.c_str(), n);
    }
    time_table.add_row(std::move(time_row));
    mem_table.add_row(std::move(mem_row));
  }

  std::printf("Time (s)\n%s\n", time_table.to_string().c_str());
  std::printf("Memory (MB)\n%s\n", mem_table.to_string().c_str());
  std::printf(
      "shape check: rows grow superlinearly in n and die within two\n"
      "steps of the last feasible instance, as in the paper.\n");

  // Speedup figure: the largest completing cell, solved serially and
  // with the full pool.  Verdicts must agree (determinism contract).
  if (with_speedup && best_n != 0) {
    const unsigned many =
        threads > 1 ? threads : util::ThreadPool::hardware_threads();
    util::zone_memory().reset();
    const Cell serial = run_cell(static_cast<std::uint32_t>(best_n),
                                 best_purpose, budget, mem_budget, 1, compact);
    util::zone_memory().reset();
    const Cell pooled = run_cell(static_cast<std::uint32_t>(best_n),
                                 best_purpose, budget, mem_budget, many,
                                 compact);
    if (serial.completed && pooled.completed) {
      const double speedup =
          pooled.seconds > 0.0 ? serial.seconds / pooled.seconds : 0.0;
      // The exploration's serial remainder (seal + merge + subsumption)
      // is the Amdahl cap of the parallel pipeline; with the striped
      // interner the hashing/equality work left this phase, so the
      // split is worth tracking next to the end-to-end figure.
      const double merge_speedup =
          pooled.stats.explore_merge_seconds > 0.0
              ? serial.stats.explore_merge_seconds /
                    pooled.stats.explore_merge_seconds
              : 0.0;
      std::printf(
          "\nspeedup (%s, n=%d): 1 thread %.2fs vs %u threads %.2fs "
          "→ %.2fx  (explore merge phase %.2fs vs %.2fs → %.2fx)%s\n",
          best_label.c_str(), best_n, serial.seconds, many, pooled.seconds,
          speedup, serial.stats.explore_merge_seconds,
          pooled.stats.explore_merge_seconds, merge_speedup,
          serial.winning == pooled.winning ? "" : "  VERDICT MISMATCH!");
      std::string blob = "{\"purpose\": \"";
      blob += best_label;
      blob += "\", \"n\": " + std::to_string(best_n);
      blob += ", \"serial_s\": " + util::format("%.4f", serial.seconds);
      blob += ", \"pooled_s\": " + util::format("%.4f", pooled.seconds);
      blob += ", \"threads\": " + std::to_string(many);
      blob += ", \"speedup\": " + util::format("%.3f", speedup);
      blob += ", \"serial_expand_s\": " +
              util::format("%.4f", serial.stats.explore_expand_seconds);
      blob += ", \"pooled_expand_s\": " +
              util::format("%.4f", pooled.stats.explore_expand_seconds);
      blob += ", \"serial_merge_s\": " +
              util::format("%.4f", serial.stats.explore_merge_seconds);
      blob += ", \"pooled_merge_s\": " +
              util::format("%.4f", pooled.stats.explore_merge_seconds);
      blob += ", \"merge_speedup\": " + util::format("%.3f", merge_speedup);
      blob += ", \"verdicts_equal\": ";
      blob += serial.winning == pooled.winning ? "true" : "false";
      blob += "}";
      report.root().raw("speedup", std::move(blob));
    }
  }

  // Whole-process high-water RSS (ru_maxrss never decreases, so this
  // is a run-level figure — the largest cell dominates it — not a
  // per-cell one).
  report.root().set("peak_rss_mb", util::to_mebibytes(util::peak_rss_bytes()));

  report.flush();
  return 0;
}
