// Ablation A1 (DESIGN.md): zone-based solver vs. the region-graph
// baseline of Maler–Pnueli–Sifakis.  This is the comparison that
// motivated on-the-fly zone algorithms in the first place (the paper
// cites a "dramatic performance improvement" of UPPAAL-TIGA over
// earlier approaches): region graphs blow up with the magnitude of the
// clock constants, zones don't.
//
// The Smart Light's idle constant Tidle is swept; region counts grow
// with it while the zone solver's state count stays flat.
#include <cstdio>

#include "bench_json.h"
#include "game/region_solver.h"
#include "game/solver.h"
#include "models/smart_light.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/text.h"

int main(int argc, char** argv) {
  using namespace tigat;
  benchio::BenchReport report("ablation_solver", argc, argv);

  std::printf(
      "Ablation: zone solver (UPPAAL-TIGA style) vs region-graph baseline\n"
      "model: Smart Light, purpose: control: A<> IUT.Bright, sweeping "
      "Tidle\n\n");

  util::TablePrinter table({"Tidle", "zone states", "zone time (s)",
                            "region nodes", "region time (s)", "agree"});

  for (const dbm::bound_t t_idle : {5, 10, 20, 40, 80}) {
    models::SmartLightParams params;
    params.t_idle = t_idle;
    models::SmartLight light = models::make_smart_light(params);
    const auto purpose =
        tsystem::TestPurpose::parse(light.system, "control: A<> IUT.Bright");

    util::Stopwatch zone_watch;
    game::GameSolver zone_solver(light.system, purpose);
    const auto zone = zone_solver.solve();
    const double zone_time = zone_watch.seconds();

    util::Stopwatch region_watch;
    game::RegionGameSolver region_solver(light.system, purpose);
    region_solver.solve();
    const double region_time = region_watch.seconds();

    table.add_row({util::format("%d", t_idle),
                   util::format("%zu", zone->stats().keys),
                   util::format("%.4f", zone_time),
                   util::format("%zu", region_solver.stats().nodes),
                   util::format("%.4f", region_time),
                   zone->winning_from_initial() ==
                           region_solver.winning_from_initial()
                       ? "yes"
                       : "NO"});
    auto& row = report.add_row();
    row.set("t_idle", static_cast<int>(t_idle));
    row.set("zone_states", zone->stats().keys);
    row.set("zone_s", zone_time);
    row.set("region_nodes", region_solver.stats().nodes);
    row.set("region_s", region_time);
    row.set("agree", zone->winning_from_initial() ==
                         region_solver.winning_from_initial());
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "expected shape: region nodes grow roughly linearly in Tidle (and\n"
      "multiplicatively per clock), zone states stay constant — the\n"
      "motivation for zone-based on-the-fly timed-game solving.\n");
  report.flush();
  return 0;
}
