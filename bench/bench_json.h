// Machine-readable benchmark output, shared by every bench_*.cpp.
//
// Activation (all benches):
//   --json              write BENCH_<name>.json in the working dir
//   --json=DIR          write DIR/BENCH_<name>.json
//   --json=FILE.json    write exactly FILE.json
//   TIGAT_BENCH_JSON=…  same values via the environment (CI artifacts)
//
// Plain benches build a BenchReport (scalar fields + a "rows" array) and
// flush it in main; Google-Benchmark benches pass the resolved path to
// gbench's own JSON reporter via --benchmark_out (see gbench_main).
// Either way one run yields one BENCH_<name>.json for the perf
// trajectory to ingest.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/memory_meter.h"

namespace tigat::benchio {

// Resolved output path, or "" when JSON output was not requested.
inline std::string resolve_json_path(int argc, char** argv,
                                     const std::string& bench_name) {
  bool enabled = false;
  std::string base;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      enabled = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      enabled = true;
      base = arg.substr(7);
    }
  }
  if (!enabled) {
    if (const char* env = std::getenv("TIGAT_BENCH_JSON")) {
      enabled = *env != '\0';
      base = env;
      if (base == "1") base.clear();  // TIGAT_BENCH_JSON=1 → working dir
    }
  }
  if (!enabled) return {};
  const std::string file = "BENCH_" + bench_name + ".json";
  if (base.empty()) return file;
  if (base.size() > 5 && base.compare(base.size() - 5, 5, ".json") == 0) {
    return base;
  }
  return base + "/" + file;
}

// Strips --json flags so they can coexist with other argument parsers
// (Google Benchmark rejects flags it does not know).
inline void strip_json_args(int& argc, char** argv) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) continue;
    argv[w++] = argv[i];
  }
  argc = w;
}

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

class JsonObject {
 public:
  void set(std::string_view key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    raw(key, buf);
  }
  void set(std::string_view key, long long value) {
    raw(key, std::to_string(value));
  }
  void set(std::string_view key, std::size_t value) {
    raw(key, std::to_string(value));
  }
  void set(std::string_view key, int value) {
    raw(key, std::to_string(value));
  }
  void set(std::string_view key, bool value) {
    raw(key, value ? "true" : "false");
  }
  void set(std::string_view key, std::string_view value) {
    std::string quoted = "\"";
    quoted += json_escape(value);
    quoted += "\"";
    raw(key, std::move(quoted));
  }
  void set(std::string_view key, const char* value) {
    set(key, std::string_view(value));
  }
  void raw(std::string_view key, std::string rendered) {
    fields_.emplace_back(std::string(key), std::move(rendered));
  }
  [[nodiscard]] bool has(std::string_view key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) return true;
    }
    return false;
  }

  [[nodiscard]] std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ", ";
      out += '"';
      out += json_escape(fields_[i].first);
      out += "\": ";
      out += fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

class BenchReport {
 public:
  BenchReport(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)),
        path_(resolve_json_path(argc, argv, name_)) {
    root_.set("bench", name_);
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }
  JsonObject& root() { return root_; }
  JsonObject& add_row() { return rows_.emplace_back(); }

  // Writes the report; returns false (with a note on stderr) on I/O
  // failure.  No-op when JSON output was not requested.
  bool flush() {
    if (!enabled()) return true;
    // Every bench reports its peak RSS (bench_gate carries it into the
    // job summary); a bench that sampled it at a more meaningful
    // moment keeps its own value.
    if (!root_.has("peak_rss_mb")) {
      root_.set("peak_rss_mb", util::to_mebibytes(util::peak_rss_bytes()));
    }
    std::string out = root_.render();
    out.pop_back();  // reopen the root object to append "rows"
    if (out.size() > 1) out += ", ";
    out += "\"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != 0) out += ", ";
      out += rows_[i].render();
    }
    out += "]}\n";
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "bench_json: wrote %s\n", path_.c_str());
    return true;
  }

 private:
  std::string name_;
  std::string path_;
  JsonObject root_;
  std::vector<JsonObject> rows_;
};

// Shared main for Google-Benchmark benches (visible only after
// <benchmark/benchmark.h> was included): resolves --json /
// TIGAT_BENCH_JSON into gbench's own JSON reporter and keeps
// BENCHMARK_MAIN's unrecognized-argument check.
#ifdef BENCHMARK
inline int gbench_main(int argc, char** argv, const char* bench_name) {
  const std::string json = resolve_json_path(argc, argv, bench_name);
  strip_json_args(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!json.empty()) {
    out_flag = "--benchmark_out=" + json;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json.empty()) {
    // gbench owns the JSON file format; splice peak_rss_mb into the
    // root object after the fact so gbench benches report it like the
    // BenchReport ones do.
    if (std::FILE* f = std::fopen(json.c_str(), "r+")) {
      std::string doc;
      char buf[1 << 12];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) doc.append(buf, n);
      const std::size_t brace = doc.find('{');
      if (brace != std::string::npos) {
        char field[64];
        std::snprintf(field, sizeof field, "\"peak_rss_mb\": %.6f,",
                      tigat::util::to_mebibytes(tigat::util::peak_rss_bytes()));
        doc.insert(brace + 1, field);
        std::rewind(f);
        std::fwrite(doc.data(), 1, doc.size(), f);
      }
      std::fclose(f);
    }
  }
  return 0;
}
#endif  // BENCHMARK

}  // namespace tigat::benchio
