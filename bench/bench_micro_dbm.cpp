// Micro-benchmarks of the symbolic substrate (ablation A2 in
// DESIGN.md): the DBM/federation operations whose cost dominates the
// game fixpoint — closure, delay operators, subtraction, pred_t, and
// the federation maintenance (add/reduce with the bound-signature
// pre-filter).  --json / TIGAT_BENCH_JSON writes the gbench JSON to
// BENCH_micro_dbm.json.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_json.h"
#include "dbm/dbm.h"
#include "dbm/federation.h"
#include "util/rng.h"

namespace {

using namespace tigat::dbm;

Dbm random_zone(tigat::util::Rng& rng, std::uint32_t dim, std::int32_t k) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    Dbm z = Dbm::universal(dim);
    for (std::uint32_t i = 1; i < dim; ++i) {
      z.constrain(i, 0, make_weak(static_cast<bound_t>(rng.range(1, k))));
    }
    bool alive = true;
    for (int c = 0; c < 4 && alive; ++c) {
      const auto i = static_cast<std::uint32_t>(rng.range(0, dim - 1));
      const auto j = static_cast<std::uint32_t>(rng.range(0, dim - 1));
      if (i == j) continue;
      alive = z.constrain(i, j, make_weak(static_cast<bound_t>(rng.range(-k, k))));
    }
    if (alive) return z;
  }
  return Dbm::universal(dim);
}

void BM_Close(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  tigat::util::Rng rng(7);
  const Dbm z = random_zone(rng, dim, 50);
  for (auto _ : state) {
    Dbm copy(z);
    benchmark::DoNotOptimize(copy.close());
  }
}
BENCHMARK(BM_Close)->Arg(3)->Arg(6)->Arg(10)->Arg(16);

void BM_Constrain(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  tigat::util::Rng rng(11);
  const Dbm z = random_zone(rng, dim, 50);
  for (auto _ : state) {
    Dbm copy(z);
    benchmark::DoNotOptimize(copy.constrain(1, 0, make_weak(5)));
  }
}
BENCHMARK(BM_Constrain)->Arg(3)->Arg(6)->Arg(10)->Arg(16);

void BM_UpDown(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  tigat::util::Rng rng(13);
  const Dbm z = random_zone(rng, dim, 50);
  for (auto _ : state) {
    Dbm copy(z);
    copy.up();
    copy.down();
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_UpDown)->Arg(3)->Arg(6)->Arg(10);

void BM_Subtract(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  tigat::util::Rng rng(17);
  const Dbm a = random_zone(rng, dim, 50);
  const Dbm b = random_zone(rng, dim, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(subtract(a, b));
  }
}
BENCHMARK(BM_Subtract)->Arg(3)->Arg(6)->Arg(10);

void BM_PredT(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  const auto zones = static_cast<int>(state.range(1));
  tigat::util::Rng rng(23);
  Fed good(dim);
  Fed bad(dim);
  for (int i = 0; i < zones; ++i) {
    good.add(random_zone(rng, dim, 50));
    bad.add(random_zone(rng, dim, 50));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(good.pred_t(bad));
  }
}
BENCHMARK(BM_PredT)->Args({3, 1})->Args({3, 4})->Args({6, 1})->Args({6, 4});

void BM_FedSubset(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  tigat::util::Rng rng(29);
  Fed a(dim);
  Fed b(dim);
  for (int i = 0; i < 4; ++i) {
    a.add(random_zone(rng, dim, 50));
    b.add(random_zone(rng, dim, 50));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.is_subset_of(b));
  }
}
BENCHMARK(BM_FedSubset)->Arg(3)->Arg(6);

// Fed::add at growing member counts: the quadratic-in-practice path the
// single-pass relation() scan keeps flat.
void BM_FedAdd(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  const auto zones = static_cast<int>(state.range(1));
  tigat::util::Rng rng(31);
  std::vector<Dbm> pool;
  pool.reserve(static_cast<std::size_t>(zones));
  for (int i = 0; i < zones; ++i) pool.push_back(random_zone(rng, dim, 50));
  for (auto _ : state) {
    Fed f(dim);
    for (const Dbm& z : pool) f.add(z);
    benchmark::DoNotOptimize(f.size());
  }
}
BENCHMARK(BM_FedAdd)->Args({3, 8})->Args({3, 32})->Args({6, 8})->Args({6, 32});

// Fed::reduce with duplicates and strict subsets mixed in — exercises
// the bound-signature pre-filter (most pairs skip the full relation()).
void BM_FedReduce(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  const auto zones = static_cast<int>(state.range(1));
  tigat::util::Rng rng(37);
  std::vector<Dbm> pool;
  for (int i = 0; i < zones; ++i) {
    Dbm z = random_zone(rng, dim, 50);
    Dbm shrunk(z);
    shrunk.constrain(1, 0, make_weak(static_cast<bound_t>(rng.range(5, 40))));
    pool.push_back(std::move(z));
    if (!shrunk.is_empty()) pool.push_back(std::move(shrunk));
  }
  for (auto _ : state) {
    state.PauseTiming();
    Fed f(dim);
    for (const Dbm& z : pool) f |= z;
    state.ResumeTiming();
    f.reduce();
    benchmark::DoNotOptimize(f.size());
  }
}
BENCHMARK(BM_FedReduce)->Args({3, 16})->Args({6, 16})->Args({6, 64});

}  // namespace

int main(int argc, char** argv) {
  return tigat::benchio::gbench_main(argc, argv, "micro_dbm");
}
