// End-to-end .tg pipeline timing: parse → elaborate → solve on the
// shipped model files, one JSON-ish line per (model, purpose) so the
// perf trajectory can track the language frontend next to the solver:
//
//   {"bench": "lang_pipeline", "model": "smart_light", "purpose": 0,
//    "compile_s": 0.000123, "solve_s": 0.000456, "states": 10,
//    "winning": true, "mem_mb": 0.0}
//
// Environment overrides:
//   TIGAT_LANG_BENCH_REPS  compile repetitions for the timing (default 32)
//
// --json / TIGAT_BENCH_JSON additionally writes the same rows to
// BENCH_lang_pipeline.json (see bench_json.h).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "game/solver.h"
#include "lang/lang.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"

#ifndef TIGAT_MODEL_DIR
#define TIGAT_MODEL_DIR "examples/models"
#endif

namespace {

using namespace tigat;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = std::max(1, env_int("TIGAT_LANG_BENCH_REPS", 32));
  benchio::BenchReport report("lang_pipeline", argc, argv);
  report.root().set("reps", reps);
  const std::vector<std::string> models = {"smart_light", "lep"};

  for (const std::string& name : models) {
    const std::string path = std::string(TIGAT_MODEL_DIR) + "/" + name + ".tg";

    // Compile (parse + elaborate + purpose parse), amortised over reps.
    util::Stopwatch compile_watch;
    for (int r = 0; r < reps - 1; ++r) {
      const lang::LoadedModel warm = lang::load_model(path);
      (void)warm;
    }
    lang::LoadedModel model = lang::load_model(path);
    const double compile_s = compile_watch.seconds() / reps;

    for (std::size_t i = 0; i < model.purposes.size(); ++i) {
      util::zone_memory().reset();
      util::Stopwatch solve_watch;
      game::GameSolver solver(model.system, model.purposes[i]);
      const auto solution = solver.solve();
      const double solve_s = solve_watch.seconds();
      std::printf(
          "{\"bench\": \"lang_pipeline\", \"model\": \"%s\", "
          "\"purpose\": %zu, \"compile_s\": %.6f, \"solve_s\": %.6f, "
          "\"states\": %zu, \"rounds\": %zu, \"winning\": %s, "
          "\"mem_mb\": %.2f}\n",
          name.c_str(), i, compile_s, solve_s, solution->stats().keys,
          solution->stats().rounds,
          solution->winning_from_initial() ? "true" : "false",
          util::to_mebibytes(solution->stats().peak_zone_bytes));
      auto& row = report.add_row();
      row.set("model", name);
      row.set("purpose", i);
      row.set("compile_s", compile_s);
      row.set("solve_s", solve_s);
      row.set("states", solution->stats().keys);
      row.set("rounds", solution->stats().rounds);
      row.set("winning", solution->winning_from_initial());
      row.set("mem_mb",
              util::to_mebibytes(solution->stats().peak_zone_bytes));
    }
  }
  report.flush();
  return 0;
}
