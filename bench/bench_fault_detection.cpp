// Extension A4 (DESIGN.md; paper future-work item 3): fault-detection
// capability of strategy-based testing, measured by a mutation
// campaign on the Smart Light.
//
// For every mutant of the plant and every IMP timing policy, a single
// strategy-driven test run is executed; the table reports kill rates
// per mutation operator.  PASS rows are mutants that are conforming
// (or not observably faulty) along the strategy's chosen behaviour —
// targeted testing is complete only w.r.t. its purpose (Thm 11).
#include <cstdio>
#include <map>

#include "bench_json.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "testing/executor.h"
#include "testing/mutants.h"
#include "testing/simulated_imp.h"
#include "util/table_printer.h"
#include "util/text.h"

int main(int argc, char** argv) {
  using namespace tigat;
  constexpr std::int64_t kScale = 16;
  benchio::BenchReport report("fault_detection", argc, argv);

  models::SmartLight spec = models::make_smart_light();
  models::SmartLight plant = models::make_smart_light_plant_only();

  const std::vector<std::string> purposes = {
      "control: A<> IUT.Bright",
      "control: A<> IUT.Dim",
  };
  std::vector<game::Strategy> strategies;
  for (const auto& p : purposes) {
    game::GameSolver solver(spec.system,
                            tsystem::TestPurpose::parse(spec.system, p));
    strategies.emplace_back(solver.solve());
  }

  const auto mutants = testing::enumerate_mutants(plant.system);
  std::printf("Mutation campaign on the Smart Light: %zu mutants, %zu "
              "purposes, 4 timing policies each\n\n",
              mutants.size(), purposes.size());

  std::map<testing::MutationKind, std::pair<int, int>> per_kind;  // kill/total
  int killed_total = 0;
  for (const auto& m : mutants) {
    const tsystem::System mutated = testing::apply_mutant(plant.system, m);
    bool killed = false;
    for (const auto& strategy : strategies) {
      // 3·kScale exceeds the SPEC's 2-unit window: against the true
      // plant it is clamped into conformance, against lazy mutants it
      // exploits their widened windows.
      for (const std::int64_t latency :
           {std::int64_t{0}, kScale, 2 * kScale, 3 * kScale}) {
        testing::SimulatedImplementation imp(mutated, kScale,
                                             testing::ImpPolicy{latency, {}});
        testing::TestExecutor exec(strategy, imp, kScale);
        if (exec.run().verdict == testing::Verdict::kFail) {
          killed = true;
          break;
        }
      }
      if (killed) break;
    }
    auto& [kills, total] = per_kind[m.kind];
    kills += killed;
    total += 1;
    killed_total += killed;
  }

  util::TablePrinter table({"operator", "mutants", "killed", "kill rate"});
  for (const auto& [kind, counts] : per_kind) {
    table.add_row({testing::to_string(kind), util::format("%d", counts.second),
                   util::format("%d", counts.first),
                   util::format("%.0f%%", 100.0 * counts.first /
                                              counts.second)});
    auto& row = report.add_row();
    row.set("operator", testing::to_string(kind));
    row.set("mutants", counts.second);
    row.set("killed", counts.first);
  }
  report.root().set("total_mutants", mutants.size());
  report.root().set("total_killed", killed_total);
  table.add_row({"TOTAL", util::format("%zu", mutants.size()),
                 util::format("%d", killed_total),
                 util::format("%.0f%%",
                              100.0 * killed_total /
                                  static_cast<double>(mutants.size()))});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "surviving mutants are tioco-equivalent along the exercised\n"
      "behaviour (e.g. faults on edges the purposes never drive the\n"
      "light through) — targeted testing is purpose-complete, not\n"
      "exhaustive (Sec. 3.4).\n");
  report.flush();
  return 0;
}
