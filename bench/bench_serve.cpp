// The serving-path numbers the .tgs v3 redesign is for:
//
//   * cold_start_ms        — DecisionTable::map over a saved Smart
//                            Light table: one mmap + validation, the
//                            daemon's time-to-first-decide.
//   * decide_per_s         — aggregate in-process decide() throughput
//                            across N threads sharing one mapped
//                            table (the shared-nothing ceiling).
//   * socket_decide_per_s  — the same states answered over the
//                            Unix-domain socket by an in-process
//                            Server, N pipelining clients (batch
//                            --batch requests per flush).
//   * decide_p99_ns        — server-side decide latency p99 from the
//                            decide.latency_ns histogram.
//
//   bench_serve [--threads=N] [--states=K] [--batch=B] [--reps=R]
//               [--socket=PATH]   # drive an external daemon instead
//               [--json[=PATH]]   # gated by tools/bench_gate.py
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "decision/compiler.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "models/smart_light.h"
#include "obs/metrics.h"
#include "semantics/concrete.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

constexpr std::int64_t kScale = 16;

using tigat::semantics::ConcreteState;

std::vector<ConcreteState> fuzz_states(const tigat::game::GameSolution& sol,
                                       std::size_t count) {
  const auto& g = sol.graph();
  tigat::dbm::bound_t max_const = 1;
  for (const tigat::dbm::bound_t c : g.max_constants()) {
    max_const = std::max(max_const, c);
  }
  const std::int64_t hi = (static_cast<std::int64_t>(max_const) + 2) * kScale;
  tigat::util::Rng rng(0xbe7c5e77eULL);
  std::vector<ConcreteState> out;
  out.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    const auto k = static_cast<std::uint32_t>(
        rng.range(0, static_cast<std::int64_t>(g.key_count()) - 1));
    ConcreteState s;
    s.locs = g.key(k).locs;
    s.data = g.key(k).data;
    s.clocks.assign(g.system().clock_count(), 0);
    for (std::size_t c = 1; c < s.clocks.size(); ++c) {
      s.clocks[c] = rng.range(0, hi);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tigat;
  benchio::BenchReport report("serve", argc, argv);

  unsigned threads = 8;
  std::size_t states_n = 512;
  std::size_t batch = 64;
  std::size_t reps = 40;  // per-thread passes over the state vector
  std::string external_socket;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--states=", 9) == 0) {
      states_n = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      external_socket = argv[i] + 9;
    }
  }
  if (threads == 0) threads = 1;

  // ── solve + save the Smart Light table ──
  const auto light = models::make_smart_light();
  const auto purpose =
      tsystem::TestPurpose::parse(light.system, "control: A<> IUT.Bright");
  game::GameSolver solver(light.system, purpose);
  const auto solution = solver.solve();
  const decision::DecisionTable compiled = decision::compile(*solution);
  const std::string tgs = "/tmp/bench_serve_smart_light.tgs";
  decision::save(compiled, tgs);
  report.root().set("model", "smart_light");
  report.root().set("keys", compiled.key_count());
  report.root().set("tgs_bytes", compiled.memory_bytes());
  report.root().set("threads", static_cast<int>(threads));

  // ── cold start: mmap + validation, best of 5 ──
  double cold_best = 1e9;
  for (int r = 0; r < 5; ++r) {
    util::Stopwatch watch;
    const decision::DecisionTable mapped = decision::DecisionTable::map(tgs);
    cold_best = std::min(cold_best, watch.seconds() * 1e3);
    if (mapped.key_count() != compiled.key_count()) return 1;
  }
  report.root().set("cold_start_ms", cold_best);
  std::printf("cold start (mmap + validate): %.3f ms (%zu bytes)\n",
              cold_best, compiled.memory_bytes());

  const decision::DecisionTable table = decision::DecisionTable::map(tgs);
  const auto states = fuzz_states(*solution, states_n);

  // ── direct N-thread decide throughput over the mapped table ──
  {
    std::vector<std::thread> pool;
    util::Stopwatch watch;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        std::int64_t sink = 0;
        for (std::size_t r = 0; r < reps; ++r) {
          for (const ConcreteState& s : states) {
            sink += static_cast<std::int64_t>(table.decide(s, kScale).kind);
          }
        }
        // Defeat dead-code elimination without atomics in the loop.
        if (sink == -1) std::abort();
      });
    }
    for (auto& t : pool) t.join();
    const double secs = watch.seconds();
    const double total = static_cast<double>(threads) *
                         static_cast<double>(reps) *
                         static_cast<double>(states.size());
    report.root().set("decide_per_s", total / secs);
    std::printf("direct decide: %.0f/s aggregate (%u threads, %.3f s)\n",
                total / secs, threads, secs);
  }

  // ── socket throughput: pipelining clients against the daemon ──
  obs::enable_metrics();  // decide.latency_ns lands server-side
  std::unique_ptr<serve::Server> server;
  std::string socket_path = external_socket;
  if (socket_path.empty()) {
    socket_path = "/tmp/bench_serve.sock";
    server = std::make_unique<serve::Server>(
        table, serve::ServerConfig{.socket_path = socket_path});
    server->start();
  }
  {
    std::vector<std::thread> pool;
    util::Stopwatch watch;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        serve::Client client = serve::Client::connect(socket_path);
        std::size_t in_flight = 0, replies_at = 0;
        const auto drain = [&](std::size_t upto) {
          while (replies_at < upto) {
            (void)client.read_move();
            ++replies_at;
          }
        };
        std::size_t sent = 0;
        for (std::size_t r = 0; r < reps; ++r) {
          for (const ConcreteState& s : states) {
            client.send_decide(s, kScale);
            ++sent;
            if (++in_flight == batch) {
              client.flush();
              drain(sent);
              in_flight = 0;
            }
          }
        }
        client.flush();
        drain(sent);
      });
    }
    for (auto& t : pool) t.join();
    const double secs = watch.seconds();
    const double total = static_cast<double>(threads) *
                         static_cast<double>(reps) *
                         static_cast<double>(states.size());
    report.root().set("socket_decide_per_s", total / secs);
    report.root().set("batch", batch);
    std::printf("socket decide: %.0f/s aggregate (%u clients, batch %zu, "
                "%.3f s)\n",
                total / secs, threads, batch, secs);
  }
  const auto& latency =
      obs::metrics().histogram("decide.latency_ns", obs::latency_buckets_ns());
  report.root().set("decide_p50_ns", latency.percentile(0.50));
  report.root().set("decide_p99_ns", latency.percentile(0.99));
  std::printf("server-side decide latency: p50 <= %llu ns, p99 <= %llu ns "
              "(%llu samples)\n",
              static_cast<unsigned long long>(latency.percentile(0.50)),
              static_cast<unsigned long long>(latency.percentile(0.99)),
              static_cast<unsigned long long>(latency.count()));
  if (server) server->stop();
  std::remove(tgs.c_str());

  return report.flush() ? 0 : 1;
}
