// Reproduces FIG. 5 of the paper: the automatically generated winning
// strategy for the Smart Light and the test purpose
//
//     control: A<> IUT.Bright
//
// (Fig. 2 / Fig. 3 — the models themselves — are printed with
// --print-models.)  The output format mirrors the UPPAAL-TIGA style of
// Fig. 5: per discrete state, zone conditions mapped to "take <input>"
// or "delay" prescriptions; rank-0 rows read "goal reached".
//
// A second set of `safety_*` JSON keys benches the dual fixpoint on
// the same model (`control: A[] !IUT.Bright`): solve + compile shape,
// .tgs size and per-decision walk/table latency for a safety game.
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "decision/compiler.h"
#include "decision/serialize.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "semantics/concrete.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace tigat;
  benchio::BenchReport report("fig5_strategy", argc, argv);

  models::SmartLight light = models::make_smart_light();

  if (argc > 1 && std::strcmp(argv[1], "--print-models") == 0) {
    std::printf("Fig. 2 — TIOGA of the light (plus Fig. 3, the user):\n\n%s\n",
                light.system.to_string().c_str());
    return 0;
  }

  const auto purpose =
      tsystem::TestPurpose::parse(light.system, "control: A<> IUT.Bright");
  util::Stopwatch watch;
  game::GameSolver solver(light.system, purpose);
  const auto solution = solver.solve();
  game::Strategy strategy(solution);

  std::printf("Fig. 5 — example winning strategy (generated in %.3f s)\n",
              watch.seconds());
  std::printf("purpose satisfied from the initial state: %s\n",
              solution->winning_from_initial() ? "yes" : "NO (bug!)");
  std::printf("symbolic states: %zu   fixpoint rounds: %zu   rows: %zu\n\n",
              solution->stats().keys, solution->stats().rounds,
              strategy.size());
  std::printf("%s\n", strategy.to_string().c_str());
  report.root().set("generate_s", watch.seconds());
  report.root().set("winning", solution->winning_from_initial());
  report.root().set("states", solution->stats().keys);
  report.root().set("rounds", solution->stats().rounds);
  report.root().set("strategy_rows", strategy.size());

  // The compiled representation of the same strategy: shape, .tgs
  // size, and walk-vs-compiled per-decision latency one model-unit in
  // (the state where Fig. 5 prescribes the first touch).
  decision::CompileStats cstats;
  const decision::DecisionTable table = decision::compile(*solution, &cstats);
  const std::size_t tgs_bytes = decision::to_bytes(table).size();
  constexpr std::int64_t kScale = 16;
  semantics::ConcreteSemantics sem(light.system, kScale);
  auto state = sem.initial();
  sem.delay(state, kScale);
  constexpr int kReps = 200000;
  std::int64_t sink = 0;  // defeats dead-code elimination of the loops
  util::Stopwatch walk_watch;
  for (int r = 0; r < kReps; ++r) {
    sink += static_cast<std::int64_t>(strategy.decide(state, kScale).kind);
  }
  const double walk_ns = walk_watch.seconds() * 1e9 / kReps;
  util::Stopwatch table_watch;
  for (int r = 0; r < kReps; ++r) {
    sink -= static_cast<std::int64_t>(table.decide(state, kScale).kind);
  }
  const double table_ns = table_watch.seconds() * 1e9 / kReps;
  if (sink != 0) std::printf("backends disagreed at the probe state!\n");
  std::printf("compiled: %zu nodes, %zu arcs, %zu leaves, %zu zones "
              "(%.3f s compile, %zu bytes .tgs)\n",
              table.node_count(), table.arc_count(), table.leaf_count(),
              table.zone_count(), cstats.compile_seconds, tgs_bytes);
  std::printf("per-decision: walk %.0f ns, compiled %.0f ns (%.1fx)\n",
              walk_ns, table_ns, walk_ns / table_ns);
  report.root().set("compile_s", cstats.compile_seconds);
  report.root().set("table_nodes", table.node_count());
  report.root().set("table_arcs", table.arc_count());
  report.root().set("table_leaves", table.leaf_count());
  report.root().set("table_zones", table.zone_count());
  report.root().set("tgs_bytes", tgs_bytes);
  report.root().set("walk_ns_per_decide", walk_ns);
  report.root().set("table_ns_per_decide", table_ns);
  report.root().set("speedup_vs_walk", walk_ns / table_ns);

  // The safety-game row: the dual fixpoint on the same model, with the
  // compiled table's fat delay leaves (Safe zones + danger region +
  // boundary acts) — the per-decision cost a safety campaign pays.
  const auto safety_purpose =
      tsystem::TestPurpose::parse(light.system, "control: A[] !IUT.Bright");
  util::Stopwatch safety_watch;
  game::GameSolver safety_solver(light.system, safety_purpose);
  const auto safety_solution = safety_solver.solve();
  game::Strategy safety_strategy(safety_solution);
  const double safety_generate_s = safety_watch.seconds();
  decision::CompileStats safety_cstats;
  const decision::DecisionTable safety_table =
      decision::compile(*safety_solution, &safety_cstats);
  const std::size_t safety_tgs_bytes =
      decision::to_bytes(safety_table).size();
  util::Stopwatch safety_walk_watch;
  for (int r = 0; r < kReps; ++r) {
    sink +=
        static_cast<std::int64_t>(safety_strategy.decide(state, kScale).kind);
  }
  const double safety_walk_ns = safety_walk_watch.seconds() * 1e9 / kReps;
  util::Stopwatch safety_table_watch;
  for (int r = 0; r < kReps; ++r) {
    sink -= static_cast<std::int64_t>(safety_table.decide(state, kScale).kind);
  }
  const double safety_table_ns = safety_table_watch.seconds() * 1e9 / kReps;
  if (sink != 0) {
    std::printf("safety backends disagreed at the probe state!\n");
  }
  std::printf("\nsafety (A[] !IUT.Bright): winning %s, %zu states, %zu rows, "
              "%zu bytes .tgs\n",
              safety_solution->winning_from_initial() ? "yes" : "NO (bug!)",
              safety_solution->stats().keys, safety_strategy.size(),
              safety_tgs_bytes);
  std::printf("safety per-decision: walk %.0f ns, compiled %.0f ns (%.1fx)\n",
              safety_walk_ns, safety_table_ns,
              safety_walk_ns / safety_table_ns);
  report.root().set("safety_generate_s", safety_generate_s);
  report.root().set("safety_winning",
                    safety_solution->winning_from_initial());
  report.root().set("safety_states", safety_solution->stats().keys);
  report.root().set("safety_strategy_rows", safety_strategy.size());
  report.root().set("safety_table_leaves", safety_table.leaf_count());
  report.root().set("safety_table_zones", safety_table.zone_count());
  report.root().set("safety_tgs_bytes", safety_tgs_bytes);
  report.root().set("safety_walk_ns_per_decide", safety_walk_ns);
  report.root().set("safety_table_ns_per_decide", safety_table_ns);
  report.flush();
  return 0;
}
