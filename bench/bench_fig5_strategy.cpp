// Reproduces FIG. 5 of the paper: the automatically generated winning
// strategy for the Smart Light and the test purpose
//
//     control: A<> IUT.Bright
//
// (Fig. 2 / Fig. 3 — the models themselves — are printed with
// --print-models.)  The output format mirrors the UPPAAL-TIGA style of
// Fig. 5: per discrete state, zone conditions mapped to "take <input>"
// or "delay" prescriptions; rank-0 rows read "goal reached".
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "game/solver.h"
#include "game/strategy.h"
#include "models/smart_light.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace tigat;
  benchio::BenchReport report("fig5_strategy", argc, argv);

  models::SmartLight light = models::make_smart_light();

  if (argc > 1 && std::strcmp(argv[1], "--print-models") == 0) {
    std::printf("Fig. 2 — TIOGA of the light (plus Fig. 3, the user):\n\n%s\n",
                light.system.to_string().c_str());
    return 0;
  }

  const auto purpose =
      tsystem::TestPurpose::parse(light.system, "control: A<> IUT.Bright");
  util::Stopwatch watch;
  game::GameSolver solver(light.system, purpose);
  const auto solution = solver.solve();
  game::Strategy strategy(solution);

  std::printf("Fig. 5 — example winning strategy (generated in %.3f s)\n",
              watch.seconds());
  std::printf("purpose satisfied from the initial state: %s\n",
              solution->winning_from_initial() ? "yes" : "NO (bug!)");
  std::printf("symbolic states: %zu   fixpoint rounds: %zu   rows: %zu\n\n",
              solution->stats().keys, solution->stats().rounds,
              strategy.size());
  std::printf("%s\n", strategy.to_string().c_str());
  report.root().set("generate_s", watch.seconds());
  report.root().set("winning", solution->winning_from_initial());
  report.root().set("states", solution->stats().keys);
  report.root().set("rounds", solution->stats().rounds);
  report.root().set("strategy_rows", strategy.size());
  report.flush();
  return 0;
}
