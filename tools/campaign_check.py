#!/usr/bin/env python3
"""Validate tigat campaign reports (src/testing/campaign.h).

For every FILE given, checks:
  * schema "tigat.campaign" version 1, all required fields present;
  * the counts add up: len(outcomes) == runs,
    passes + fails + inconclusive == runs, attempts >= runs,
    attempts <= runs * (1 + retries);
  * verdict consistency: fail <=> fails > 0; pass <=> all runs passed;
    unresponsive only over crash/hang/deadline finals with zero passes;
  * soundness under faults: every FAIL outcome has harness_faults == 0
    (a FAIL verdict over a corrupted channel is the bug the executors
    exist to prevent);
  * per-outcome shape: attempts == len(attempt_codes), every retried
    attempt (all but the last) was inconclusive-class.

Flags:
  --expect-verdict V   additionally require every FILE's verdict == V
  --identical          require all FILEs to be byte-identical (the
                       determinism check: same seed+spec => same bytes)

Exit code 0 = every file validated, 1 = any failure.
"""

import argparse
import json
import sys
from pathlib import Path

failures = []

FAIL_CODES = {"quiescence-violation", "unexpected-output",
              "safety-violation"}
UNRESPONSIVE_CODES = {"imp-crash", "harness-hang", "run-deadline-exceeded"}


def check(name, ok, detail=""):
    if ok:
        print(f"  ok: {name}")
    else:
        failures.append(f"{name}: {detail}")
        print(f"  FAIL: {name}: {detail}")


def check_report(path):
    print(f"campaign {path}")
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        check("report parses as JSON", False, str(e))
        return None

    check("schema is tigat.campaign v1",
          doc.get("schema") == "tigat.campaign" and doc.get("version") == 1,
          f"schema={doc.get('schema')} version={doc.get('version')}")
    for field in ("verdict", "runs", "passes", "fails", "inconclusive",
                  "attempts", "retries_used", "deadline_hits", "fault_spec",
                  "fault_seed", "run_deadline_ms", "retries", "outcomes"):
        if field not in doc:
            check(f"field '{field}' present", False, "missing")
            return None

    runs, outcomes = doc["runs"], doc["outcomes"]
    check("one outcome per run", len(outcomes) == runs,
          f"{len(outcomes)} outcomes for {runs} runs")
    check("verdict counts add up",
          doc["passes"] + doc["fails"] + doc["inconclusive"] == runs,
          f"{doc['passes']}+{doc['fails']}+{doc['inconclusive']} != {runs}")
    check("attempts within the retry budget",
          runs <= doc["attempts"] <= runs * (1 + doc["retries"]),
          f"attempts={doc['attempts']} runs={runs} retries={doc['retries']}")

    verdicts = [o.get("verdict") for o in outcomes]
    codes = [o.get("code") for o in outcomes]
    verdict = doc["verdict"]
    check("fail verdict iff some run failed",
          (verdict == "fail") == (doc["fails"] > 0),
          f"verdict={verdict} fails={doc['fails']}")
    check("pass verdict iff every run passed",
          (verdict == "pass") == (doc["passes"] == runs),
          f"verdict={verdict} passes={doc['passes']}")
    if verdict == "unresponsive":
        check("unresponsive has no passes", doc["passes"] == 0,
              f"passes={doc['passes']}")
        bad = [c for v, c in zip(verdicts, codes)
               if v == "inconclusive" and c not in UNRESPONSIVE_CODES]
        check("unresponsive finals are all crash/hang/deadline", not bad,
              f"non-silent codes {bad}")

    for o in outcomes:
        run = o.get("run")
        if o.get("verdict") == "fail":
            check(f"run {run}: FAIL over a clean channel",
                  o.get("harness_faults") == 0,
                  f"harness_faults={o.get('harness_faults')} — "
                  "possible false FAIL from injected faults")
            check(f"run {run}: FAIL code is a conformance violation",
                  o.get("code") in FAIL_CODES, f"code={o.get('code')}")
        history = o.get("attempt_codes", [])
        check(f"run {run}: attempt history length matches",
              len(history) == o.get("attempts"),
              f"{len(history)} codes for {o.get('attempts')} attempts")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument("--expect-verdict",
                        choices=["pass", "fail", "flaky", "unresponsive"])
    parser.add_argument("--identical", action="store_true")
    args = parser.parse_args()

    for path in args.files:
        doc = check_report(path)
        if doc is not None and args.expect_verdict is not None:
            check(f"{path}: verdict is {args.expect_verdict}",
                  doc["verdict"] == args.expect_verdict,
                  f"got {doc['verdict']}")

    if args.identical and len(args.files) > 1:
        first = Path(args.files[0]).read_bytes()
        for path in args.files[1:]:
            check(f"{path} is byte-identical to {args.files[0]}",
                  Path(path).read_bytes() == first,
                  "reports differ — determinism broken")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall campaign checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
