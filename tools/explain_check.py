#!/usr/bin/env python3
"""Validate tigat run ledgers and explain post-mortems.

Ledgers (src/obs/recorder.h, `tigat.ledger` v1, JSONL):
  * header line: schema/version plus model, backend, scale, run,
    attempt, seed, fault_spec;
  * every event line has a known "ev" kind with that kind's fields;
  * step and t are non-decreasing across stepped events; fault calls
    are non-decreasing (boundary-call ordinals);
  * exactly one verdict event, and it is the last line;
  * verdict/code belong to the executor taxonomy, FAIL codes only ever
    come from the sound pair (quiescence-violation, unexpected-output),
    and a quiescence-violation observed nothing while an
    unexpected-output names the offending channel.

Explain JSON (src/obs/explain.h, `tigat.explain` v1):
  * schema/version and all required fields;
  * counts are internally consistent with the fault list.

When a ledger and its explain file are checked as a pair (--dir pairs
them by filename stem), the verdict, code, failing step and fault count
must agree between the two.

Usage:
  explain_check.py LEDGER.jsonl...          validate ledgers
  explain_check.py --explain EXPLAIN.json   validate explain JSON
  explain_check.py --dir DIR                validate every
                                            *.ledger.jsonl +
                                            *.explain.json pair in DIR
  --expect-code C    additionally require every ledger's verdict code
                     to be C (e.g. unexpected-output)
  --min-ledgers N    with --dir: require at least N ledgers (default 0;
                     guards CI legs that expect non-PASS artifacts)

Exit code 0 = everything validated, 1 = any failure.
"""

import argparse
import json
import sys
from pathlib import Path

failures = []

VERDICTS = {"pass", "fail", "inconclusive"}
CODES = {
    "none", "purpose-reached", "safety-maintained", "quiescence-violation",
    "unexpected-output", "safety-violation", "outside-winning-region",
    "step-budget-exhausted", "unbounded-wait", "sut-declined",
    "harness-fault", "imp-crash", "harness-hang", "run-deadline-exceeded",
}
FAIL_CODES = {"quiescence-violation", "unexpected-output",
              "safety-violation"}
EVENT_KINDS = {"decision", "input", "output", "delay", "fault", "verdict"}
MOVES = {"goal", "action", "delay", "unwinnable"}
FAULT_KINDS = {"drop", "delay", "dup", "spurious", "reject", "hang", "crash"}

LEDGER_HEADER_FIELDS = ("model", "backend", "scale", "run", "attempt",
                        "seed", "fault_spec")
EXPLAIN_FIELDS = ("model", "backend", "run", "attempt", "seed", "fault_spec",
                  "truncated", "verdict", "code", "detail", "failing_step",
                  "failing_t", "expected", "observed", "counts", "faults",
                  "tail")


def check(name, ok, detail=""):
    if ok:
        print(f"  ok: {name}")
    else:
        failures.append(f"{name}: {detail}")
        print(f"  FAIL: {name}: {detail}")


def check_ledger(path):
    """Returns the verdict event dict (or None) for pair cross-checks."""
    print(f"ledger {path}")
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as e:
        check("ledger readable", False, str(e))
        return None
    if not lines:
        check("ledger non-empty", False, "no lines")
        return None

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        check("header parses as JSON", False, str(e))
        return None
    check("header is tigat.ledger v1",
          header.get("schema") == "tigat.ledger" and header.get("version") == 1,
          f"schema={header.get('schema')} version={header.get('version')}")
    missing = [f for f in LEDGER_HEADER_FIELDS if f not in header]
    check("header fields present", not missing, f"missing {missing}")

    events = []
    for n, line in enumerate(lines[1:], start=2):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as e:
            check(f"line {n} parses as JSON", False, str(e))
            return None
    check("ledger has events", bool(events), "header only")
    if not events:
        return None

    bad_kinds = [e.get("ev") for e in events if e.get("ev") not in EVENT_KINDS]
    check("event kinds are known", not bad_kinds, f"unknown {bad_kinds}")

    steps = [e["step"] for e in events if "step" in e]
    check("steps non-decreasing",
          all(a <= b for a, b in zip(steps, steps[1:])), f"steps {steps}")
    ts = [e["t"] for e in events if "t" in e]
    check("symbolic time non-decreasing",
          all(a <= b for a, b in zip(ts, ts[1:])), f"t {ts}")

    decisions = [e for e in events if e.get("ev") == "decision"]
    check("at least one decision", bool(decisions), "no decision events")
    bad_moves = [d.get("move") for d in decisions if d.get("move") not in MOVES]
    check("decision moves are known", not bad_moves, f"unknown {bad_moves}")
    no_state = [d for d in decisions if not d.get("state")]
    check("every decision carries its state key", not no_state,
          f"{len(no_state)} without state")

    faults = [e for e in events if e.get("ev") == "fault"]
    calls = [f.get("call", 0) for f in faults]
    check("fault calls non-decreasing",
          all(a <= b for a, b in zip(calls, calls[1:])), f"calls {calls}")
    bad_faults = [f.get("kind") for f in faults
                  if f.get("kind") not in FAULT_KINDS]
    check("fault kinds are known", not bad_faults, f"unknown {bad_faults}")

    verdicts = [e for e in events if e.get("ev") == "verdict"]
    check("exactly one verdict event", len(verdicts) == 1,
          f"{len(verdicts)} verdict events")
    if not verdicts:
        return None
    verdict = verdicts[0]
    check("verdict event is the last line", events[-1] is verdict,
          "events after the verdict")
    check("verdict value is known", verdict.get("verdict") in VERDICTS,
          f"verdict={verdict.get('verdict')}")
    check("reason code is known", verdict.get("code") in CODES,
          f"code={verdict.get('code')}")
    check("expected is a list", isinstance(verdict.get("expected"), list),
          f"expected={verdict.get('expected')}")
    if verdict.get("verdict") == "fail":
        check("FAIL code is a conformance violation",
              verdict.get("code") in FAIL_CODES, f"code={verdict.get('code')}")
        check("FAIL over a clean channel (no fault events)", not faults,
              f"{len(faults)} injected faults in a FAIL ledger")
        if verdict.get("code") == "unexpected-output":
            check("unexpected-output names the offending channel",
                  bool(verdict.get("observed")), "observed is empty")
        if verdict.get("code") == "quiescence-violation":
            check("quiescence violation observed silence",
                  not verdict.get("observed"),
                  f"observed={verdict.get('observed')}")
    verdict["_fault_count"] = len(faults)
    return verdict


def check_explain(path):
    """Returns the explain doc for pair cross-checks."""
    print(f"explain {path}")
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        check("explain parses as JSON", False, str(e))
        return None
    check("explain is tigat.explain v1",
          doc.get("schema") == "tigat.explain" and doc.get("version") == 1,
          f"schema={doc.get('schema')} version={doc.get('version')}")
    missing = [f for f in EXPLAIN_FIELDS if f not in doc]
    check("explain fields present", not missing, f"missing {missing}")
    if missing:
        return None
    counts = doc["counts"]
    check("fault count matches fault list",
          counts.get("faults") == len(doc["faults"]),
          f"counts.faults={counts.get('faults')} len={len(doc['faults'])}")
    if not doc["truncated"]:
        check("verdict value is known", doc["verdict"] in VERDICTS,
              f"verdict={doc['verdict']}")
        check("reason code is known", doc["code"] in CODES,
              f"code={doc['code']}")
    return doc


def cross_check(ledger_verdict, explain_doc, stem):
    if ledger_verdict is None or explain_doc is None:
        return
    check(f"{stem}: verdicts agree",
          ledger_verdict.get("verdict") == explain_doc.get("verdict"),
          f"ledger={ledger_verdict.get('verdict')} "
          f"explain={explain_doc.get('verdict')}")
    check(f"{stem}: codes agree",
          ledger_verdict.get("code") == explain_doc.get("code"),
          f"ledger={ledger_verdict.get('code')} "
          f"explain={explain_doc.get('code')}")
    check(f"{stem}: failing steps agree",
          ledger_verdict.get("step") == explain_doc.get("failing_step"),
          f"ledger={ledger_verdict.get('step')} "
          f"explain={explain_doc.get('failing_step')}")
    check(f"{stem}: fault counts agree",
          ledger_verdict.get("_fault_count")
          == explain_doc["counts"].get("faults"),
          f"ledger={ledger_verdict.get('_fault_count')} "
          f"explain={explain_doc['counts'].get('faults')}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ledgers", nargs="*", metavar="LEDGER")
    parser.add_argument("--explain", action="append", default=[],
                        metavar="EXPLAIN")
    parser.add_argument("--dir", metavar="DIR")
    parser.add_argument("--expect-code", metavar="CODE")
    parser.add_argument("--min-ledgers", type=int, default=0)
    args = parser.parse_args()

    ledger_verdicts = []
    for path in args.ledgers:
        ledger_verdicts.append(check_ledger(path))
    for path in args.explain:
        check_explain(path)

    if args.dir:
        root = Path(args.dir)
        ledger_files = sorted(root.glob("*.ledger.jsonl"))
        print(f"dir {root}: {len(ledger_files)} ledger(s)")
        check(f"at least {args.min_ledgers} ledger(s)",
              len(ledger_files) >= args.min_ledgers,
              f"found {len(ledger_files)}")
        for ledger_path in ledger_files:
            stem = ledger_path.name[:-len(".ledger.jsonl")]
            verdict = check_ledger(ledger_path)
            ledger_verdicts.append(verdict)
            explain_path = root / f"{stem}.explain.json"
            check(f"{stem}: explain file exists", explain_path.exists(),
                  f"missing {explain_path}")
            if explain_path.exists():
                cross_check(verdict, check_explain(explain_path), stem)

    if args.expect_code is not None:
        codes = [v.get("code") for v in ledger_verdicts if v is not None]
        check(f"some ledger has code {args.expect_code}",
              args.expect_code in codes, f"codes {codes}")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall ledger/explain checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
