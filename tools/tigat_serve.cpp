// tigat-serve — the .tgs decide daemon and format tool.
//
//   tigat-serve serve --table=T.tgs --socket=PATH [--threads=N]
//                     [--metrics-out=FILE] [--progress[=SECS]]
//                     [--no-verify]
//   tigat-serve drive --table=T.tgs --socket=PATH [--clients=N]
//                     [--requests=R] [--batch=B] [--seed=S]
//   tigat-serve info FILE.tgs
//   tigat-serve migrate IN.tgs OUT.tgs
//
// `serve` maps the table read-only (DecisionTable::map — one mmap,
// zero deserialization) and answers decide() over a Unix-domain
// socket until SIGINT/SIGTERM; see src/serve/ for the wire protocol.
// `drive` is the matching load generator: it maps the SAME table,
// checks the daemon's hello fingerprint against it, synthesises
// concrete states from the table's own discrete keys, and pushes
// --requests pipelined decide()s from each of --clients concurrent
// connections, verifying every reply agrees with the local mapped
// table (model-agnostic: CI uses it against Smart Light and LEP
// daemons alike).
// `--no-verify` skips the checksum + zone-canonicality passes for the
// fastest possible cold start on trusted files (the structural bounds
// checks always run).  `info` prints the v3 header and section table
// without touching payload bytes beyond validation.  `migrate`
// upgrades a v1/v2 stream file to a v3 image via the compat loader.
//
// Exit codes follow run_model's taxonomy where it applies:
//   0  served and shut down cleanly / info printed / migrated
//   1  usage error, or the table needs re-solving (old format,
//      corrupt image rejected by validation)
//   2  I/O or socket failure
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <system_error>

#include <atomic>
#include <thread>
#include <vector>

#include "decision/format.h"
#include "decision/serialize.h"
#include "decision/table.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "semantics/concrete.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitIo = 2;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: tigat-serve serve --table=T.tgs --socket=PATH [--threads=N]\n"
      "                         [--metrics-out=FILE] [--progress[=SECS]]\n"
      "                         [--no-verify]\n"
      "       tigat-serve drive --table=T.tgs --socket=PATH [--clients=N]\n"
      "                         [--requests=R] [--batch=B] [--seed=S]\n"
      "       tigat-serve info FILE.tgs\n"
      "       tigat-serve migrate IN.tgs OUT.tgs\n");
  return kExitUsage;
}

const char* section_name(std::uint32_t id) {
  using namespace tigat::decision;
  switch (id) {
    case kSecKeyLocs: return "key_locs";
    case kSecKeyData: return "key_data";
    case kSecKeyRoots: return "key_roots";
    case kSecKeyBuckets: return "key_buckets";
    case kSecNodes: return "nodes";
    case kSecArcs: return "arcs";
    case kSecLeaves: return "leaves";
    case kSecActs: return "acts";
    case kSecZoneRefs: return "zone_refs";
    case kSecZones: return "zones";
    case kSecEdges: return "edges";
    case kSecEdgeLookup: return "edge_lookup";
    case kSecStrings: return "strings";
    case kSecStringBlob: return "string_blob";
    default: return "?";
  }
}

// `tigat-serve info` — the header, section table and provenance of a
// .tgs v3 image, fully validated first (so the dump is trustworthy).
int run_info(const std::string& path) {
  namespace decision = tigat::decision;
  decision::DecisionTable table = decision::DecisionTable::map(path);
  const decision::TgsView& view = table.view();
  std::printf("file:            %s\n", path.c_str());
  std::printf("format:          .tgs v3 (flat, little-endian, mmap)\n");
  std::printf("bytes:           %zu\n", view.bytes().size());
  std::printf("fingerprint:     %016llx\n",
              static_cast<unsigned long long>(view.fingerprint()));
  std::printf("system:          %.*s\n",
              static_cast<int>(view.system_name().size()),
              view.system_name().data());
  std::printf("purpose:         %.*s\n",
              static_cast<int>(view.purpose_source().size()),
              view.purpose_source().data());
  std::printf("purpose_kind:    %s\n",
              view.purpose_kind() == 1 ? "safety" : "reachability");
  std::printf("clock_dim:       %u\n", view.clock_dim());
  std::printf("processes:       %u\n", view.proc_count());
  std::printf("data_slots:      %u\n", view.slot_count());
  std::printf("keys:            %zu\n", view.key_count());
  std::printf("nodes:           %zu   arcs: %zu   leaves: %zu\n",
              view.node_count(), view.arc_count(), view.leaf_count());
  std::printf("zones:           %zu   edges: %zu\n", view.zone_count(),
              view.edge_count());
  std::printf("sections:\n");
  std::printf("  %-12s %10s %12s %10s\n", "name", "offset", "bytes",
              "records");
  for (const decision::SectionRec& sec : view.sections()) {
    std::printf("  %-12s %10llu %12llu %10llu\n", section_name(sec.id),
                static_cast<unsigned long long>(sec.offset),
                static_cast<unsigned long long>(sec.bytes),
                static_cast<unsigned long long>(sec.bytes / sec.record_size));
  }
  return kExitOk;
}

// `tigat-serve migrate` — load via the auto-migrating compat path
// (v1/v2 stream or v3 image in) and save the v3 image out.
int run_migrate(const std::string& in, const std::string& out) {
  namespace decision = tigat::decision;
  const decision::DecisionTable table = decision::load(in);
  decision::save(table, out);
  std::fprintf(stderr, "tigat-serve: migrated '%s' -> '%s' (%zu bytes, v3)\n",
               in.c_str(), out.c_str(), table.bytes().size());
  return kExitOk;
}

// `tigat-serve drive` — a model-agnostic load generator: states come
// from the mapped table's own discrete keys (so it works against any
// daemon whose .tgs it shares), replies are checked against the local
// table, byte-for-byte via Move's equality.
int run_drive(int argc, char** argv) {
  namespace decision = tigat::decision;
  namespace serve = tigat::serve;
  using tigat::semantics::ConcreteState;
  constexpr std::int64_t kScale = 16;

  std::string table_path, socket_path;
  unsigned clients = 4;
  std::size_t requests = 2000;  // per client
  std::size_t batch = 32;
  std::uint64_t seed = 0x7165a7d51beULL;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--table=", 8) == 0) {
      table_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socket_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<std::size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else {
      std::fprintf(stderr, "tigat-serve: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }
  if (table_path.empty() || socket_path.empty()) return usage();
  if (clients == 0) clients = 1;
  if (batch == 0) batch = 1;

  const decision::DecisionTable table = decision::DecisionTable::map(table_path);
  const decision::TableData data = table.export_data();

  // States over the table's own keys, clocks fuzzed well past any
  // constant a real model uses (decide() is total either way).
  tigat::util::Rng rng(seed);
  std::vector<ConcreteState> states;
  states.reserve(256);
  for (std::size_t n = 0; n < 256; ++n) {
    const auto& key =
        data.keys[static_cast<std::size_t>(rng.range(
            0, static_cast<std::int64_t>(data.keys.size()) - 1))];
    ConcreteState s;
    s.locs = key.locs;
    s.data = key.data;
    s.clocks.assign(table.clock_dim(), 0);
    for (std::size_t c = 1; c < s.clocks.size(); ++c) {
      s.clocks[c] = rng.range(0, 64 * kScale);
    }
    states.push_back(std::move(s));
  }

  std::atomic<std::size_t> mismatches{0};
  std::atomic<bool> io_failed{false};
  std::vector<std::thread> pool;
  struct timespec t0, t1;
  clock_gettime(CLOCK_MONOTONIC, &t0);
  for (unsigned t = 0; t < clients; ++t) {
    pool.emplace_back([&, t] {
      try {
        serve::Client client = serve::Client::connect(socket_path);
        if (client.hello().fingerprint != table.fingerprint()) {
          std::fprintf(stderr,
                       "tigat-serve: daemon fingerprint %016llx != table "
                       "%016llx\n",
                       static_cast<unsigned long long>(
                           client.hello().fingerprint),
                       static_cast<unsigned long long>(table.fingerprint()));
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::size_t base = t, in_flight = 0;
        std::vector<const ConcreteState*> window;
        for (std::size_t r = 0; r < requests; ++r) {
          const ConcreteState& s = states[(base + r) % states.size()];
          client.send_decide(s, kScale);
          window.push_back(&s);
          if (++in_flight == batch || r + 1 == requests) {
            client.flush();
            for (const ConcreteState* sent : window) {
              if (client.read_move() != table.decide(*sent, kScale)) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
            window.clear();
            in_flight = 0;
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tigat-serve: client %u: %s\n", t, e.what());
        io_failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : pool) th.join();
  clock_gettime(CLOCK_MONOTONIC, &t1);
  const double secs =
      (t1.tv_sec - t0.tv_sec) + (t1.tv_nsec - t0.tv_nsec) * 1e-9;
  const double total = static_cast<double>(clients) *
                       static_cast<double>(requests);
  std::fprintf(stderr,
               "tigat-serve: drove %.0f decide(s) over %u clients in %.3f s "
               "(%.0f/s), %zu mismatch(es)\n",
               total, clients, secs, secs > 0 ? total / secs : 0.0,
               mismatches.load());
  if (io_failed.load()) return kExitIo;
  return mismatches.load() == 0 ? kExitOk : kExitUsage;
}

int run_serve(int argc, char** argv) {
  namespace decision = tigat::decision;
  namespace obs = tigat::obs;
  std::string table_path;
  tigat::serve::ServerConfig config;
  std::string metrics_out;
  double progress_secs = -1.0;
  decision::TgsView::Options options;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--table=", 8) == 0) {
      table_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      config.socket_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      config.threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress_secs = 5.0;
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      progress_secs = std::atof(argv[i] + 11);
    } else if (std::strcmp(argv[i], "--no-verify") == 0) {
      options.verify_checksum = false;
      options.verify_zones = false;
    } else {
      std::fprintf(stderr, "tigat-serve: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }
  if (table_path.empty() || config.socket_path.empty()) return usage();

  if (!metrics_out.empty()) obs::enable_metrics();
  if (progress_secs >= 0.0) obs::progress().enable(progress_secs);

  // Cold start: one mmap + validation.  Time it for the startup line —
  // this is the number the v3 format exists to keep flat.
  struct timespec t0, t1;
  clock_gettime(CLOCK_MONOTONIC, &t0);
  decision::DecisionTable table = [&] {
    try {
      return decision::DecisionTable::map(table_path, options);
    } catch (const decision::VersionError& e) {
      std::fprintf(stderr, "tigat-serve: cannot serve '%s': %s\n",
                   table_path.c_str(), e.what());
      std::exit(kExitUsage);
    } catch (const decision::SerializeError& e) {
      std::fprintf(stderr, "tigat-serve: cannot serve '%s': %s\n",
                   table_path.c_str(), e.what());
      std::exit(kExitIo);
    }
  }();
  clock_gettime(CLOCK_MONOTONIC, &t1);
  const double cold_ms = (t1.tv_sec - t0.tv_sec) * 1e3 +
                         (t1.tv_nsec - t0.tv_nsec) * 1e-6;

  tigat::serve::Server server(table, config);
  try {
    server.start();
  } catch (const std::system_error& e) {
    std::fprintf(stderr, "tigat-serve: cannot listen on '%s': %s\n",
                 config.socket_path.c_str(), e.what());
    return kExitIo;
  }
  std::fprintf(stderr,
               "tigat-serve: serving '%.*s' (%s, %zu keys, fingerprint "
               "%016llx) on %s, %u workers, cold start %.2f ms\n",
               static_cast<int>(table.system_name().size()),
               table.system_name().data(),
               table.purpose_kind() == 1 ? "safety" : "reachability",
               table.key_count(),
               static_cast<unsigned long long>(table.fingerprint()),
               config.socket_path.c_str(), server.worker_count(), cold_ms);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop) {
    struct timespec nap = {0, 100 * 1000 * 1000};
    nanosleep(&nap, nullptr);
  }
  std::fprintf(stderr, "tigat-serve: shutting down (%llu connections, "
                       "%llu requests, %llu errors)\n",
               static_cast<unsigned long long>(server.connections_total()),
               static_cast<unsigned long long>(server.requests_total()),
               static_cast<unsigned long long>(server.errors_total()));
  server.stop();
  if (!metrics_out.empty() &&
      !obs::metrics().write_snapshot(metrics_out)) {
    std::fprintf(stderr, "tigat-serve: cannot write metrics to '%s'\n",
                 metrics_out.c_str());
    return kExitIo;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  namespace decision = tigat::decision;
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  try {
    if (mode == "serve") return run_serve(argc, argv);
    if (mode == "drive") return run_drive(argc, argv);
    if (mode == "info") {
      if (argc != 3) return usage();
      return run_info(argv[2]);
    }
    if (mode == "migrate") {
      if (argc != 4) return usage();
      return run_migrate(argv[2], argv[3]);
    }
  } catch (const decision::VersionError& e) {
    std::fprintf(stderr, "tigat-serve: %s\n", e.what());
    return kExitUsage;
  } catch (const decision::SerializeError& e) {
    std::fprintf(stderr, "tigat-serve: %s\n", e.what());
    // Unreadable/corrupt bytes: I/O class for serve (the file could
    // not be used), usage class for a structurally rejected image in
    // info/migrate is still a corrupt-file problem — keep it I/O.
    return kExitIo;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tigat-serve: %s\n", e.what());
    return kExitIo;
  }
  std::fprintf(stderr, "tigat-serve: unknown command '%s'\n", mode.c_str());
  return usage();
}
