#!/usr/bin/env python3
"""Validate tigat observability artifacts (src/obs/).

Checks, per artifact kind:
  --trace FILE     Chrome trace-event JSON: well-formed, a process_name
                   metadata event, at least one thread_name metadata
                   event, every B/E pair balanced per tid with matching
                   names, and zero spans dropped to the buffer cap.
  --metrics FILE   metrics snapshot: schema "tigat.metrics" version 1,
                   the solver counters run_model always publishes
                   (solver.keys / reach_zones / edges / rounds) present
                   and positive, every histogram shaped as
                   len(counts) == len(bounds) + 1 with count == the
                   bucket total.
  --progress FILE  heartbeat JSONL (one JSON object per line with the
                   tigat_hb / elapsed_s / phase / rss_mb keys); at
                   least one line.
  --serve FILE     tigat-serve metrics snapshot: same schema/version
                   as --metrics, the serve.* counters present with
                   connections/requests positive and errors zero,
                   decide.latency_ns populated (well-shaped, count > 0,
                   no more samples than requests), tgs.view.opens
                   exactly 1 (cold start really was one mmap) and no
                   tgs.migrations counter (the map path never
                   deserializes).

Any subset of the flags may be given; CI runs the first three against
a `run_model --trace-out --metrics-out --progress` solve and --serve
against a tigat-serve --metrics-out shutdown snapshot.

Exit code 0 = every requested artifact validated, 1 = any failure.
"""

import argparse
import json
import sys
from pathlib import Path

failures = []


def check(name, ok, detail=""):
    if ok:
        print(f"  ok: {name}")
    else:
        failures.append(f"{name}: {detail}")
        print(f"  FAIL: {name}: {detail}")


def check_trace(path):
    print(f"trace {path}")
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        check("trace parses as JSON", False, str(e))
        return
    events = doc.get("traceEvents")
    check("traceEvents array present", isinstance(events, list))
    if not isinstance(events, list):
        return

    dropped = doc.get("otherData", {}).get("dropped_spans")
    check("no spans dropped to the buffer cap", dropped == 0,
          f"dropped_spans = {dropped}")

    saw_process_name = False
    thread_names = {}
    stacks = {}
    durations = 0
    for i, e in enumerate(events):
        ph, name, tid = e.get("ph"), e.get("name"), e.get("tid")
        if ph == "M":
            if name == "process_name":
                saw_process_name = True
            elif name == "thread_name":
                thread_names[tid] = e.get("args", {}).get("name", "")
            continue
        if ph not in ("B", "E"):
            check(f"event {i} has a known phase", False, f"ph = {ph!r}")
            continue
        durations += 1
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
        elif not stack:
            check(f"event {i} (tid {tid})", False, "E without a matching B")
        elif stack[-1] != name:
            check(f"event {i} (tid {tid})", False,
                  f"E '{name}' closes B '{stack[-1]}'")
        else:
            stack.pop()

    check("process_name metadata present", saw_process_name)
    check("thread_name metadata present", bool(thread_names))
    check("duration events present", durations > 0)
    unbalanced = {tid: s for tid, s in stacks.items() if s}
    check("B/E balanced on every thread", not unbalanced,
          f"open spans: {unbalanced}")


REQUIRED_COUNTERS = ["solver.keys", "solver.reach_zones", "solver.edges",
                     "solver.rounds"]


def check_metrics(path):
    print(f"metrics {path}")
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        check("metrics parse as JSON", False, str(e))
        return
    check("schema is tigat.metrics", doc.get("schema") == "tigat.metrics",
          f"schema = {doc.get('schema')!r}")
    check("version is 1", doc.get("version") == 1,
          f"version = {doc.get('version')!r}")
    counters = doc.get("counters", {})
    for name in REQUIRED_COUNTERS:
        value = counters.get(name)
        check(f"counter {name} present and positive",
              isinstance(value, int) and value > 0, f"value = {value!r}")
    for name, h in doc.get("histograms", {}).items():
        bounds, counts = h.get("bounds"), h.get("counts")
        shaped = (isinstance(bounds, list) and isinstance(counts, list)
                  and len(counts) == len(bounds) + 1
                  and bounds == sorted(bounds))
        check(f"histogram {name} shape", shaped,
              f"bounds×{len(bounds or [])} counts×{len(counts or [])}")
        if shaped:
            check(f"histogram {name} count consistent",
                  h.get("count") == sum(counts),
                  f"count = {h.get('count')} vs sum = {sum(counts)}")


def check_serve(path):
    print(f"serve metrics {path}")
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        check("serve metrics parse as JSON", False, str(e))
        return
    check("schema is tigat.metrics", doc.get("schema") == "tigat.metrics",
          f"schema = {doc.get('schema')!r}")
    check("version is 1", doc.get("version") == 1,
          f"version = {doc.get('version')!r}")
    counters = doc.get("counters", {})

    connections = counters.get("serve.connections")
    requests = counters.get("serve.requests")
    check("counter serve.connections positive",
          isinstance(connections, int) and connections > 0,
          f"value = {connections!r}")
    check("counter serve.requests positive",
          isinstance(requests, int) and requests > 0,
          f"value = {requests!r}")
    check("counter serve.errors is zero", counters.get("serve.errors") == 0,
          f"value = {counters.get('serve.errors')!r}")

    # The v3 acceptance number: a daemon's cold start is ONE mmap.
    check("tgs.view.opens is exactly 1", counters.get("tgs.view.opens") == 1,
          f"value = {counters.get('tgs.view.opens')!r}")
    check("no tgs.migrations (map path never deserializes)",
          "tgs.migrations" not in counters,
          f"value = {counters.get('tgs.migrations')!r}")

    h = doc.get("histograms", {}).get("decide.latency_ns")
    check("decide.latency_ns histogram present", isinstance(h, dict))
    if not isinstance(h, dict):
        return
    bounds, counts = h.get("bounds"), h.get("counts")
    shaped = (isinstance(bounds, list) and isinstance(counts, list)
              and len(counts) == len(bounds) + 1
              and bounds == sorted(bounds))
    check("decide.latency_ns shape", shaped,
          f"bounds×{len(bounds or [])} counts×{len(counts or [])}")
    if shaped:
        total = sum(counts)
        check("decide.latency_ns count consistent", h.get("count") == total,
              f"count = {h.get('count')} vs sum = {total}")
        check("decide.latency_ns populated", total > 0, "zero samples")
        if isinstance(requests, int):
            # Every sample is a decide request; pings/info add requests
            # but no samples.
            check("decide samples <= serve.requests", total <= requests,
                  f"{total} samples vs {requests} requests")


def check_progress(path):
    print(f"progress {path}")
    try:
        lines = [ln for ln in Path(path).read_text().splitlines() if ln.strip()]
    except OSError as e:
        check("progress file readable", False, str(e))
        return
    check("at least one heartbeat line", bool(lines))
    for i, line in enumerate(lines):
        try:
            hb = json.loads(line)
        except json.JSONDecodeError as e:
            check(f"line {i + 1} parses as JSON", False, str(e))
            continue
        missing = [k for k in ("tigat_hb", "elapsed_s", "phase", "rss_mb")
                   if k not in hb]
        check(f"line {i + 1} has the heartbeat keys", not missing,
              f"missing {missing}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--metrics", help="metrics snapshot JSON to validate")
    ap.add_argument("--progress", help="heartbeat JSONL to validate")
    ap.add_argument("--serve", help="tigat-serve metrics snapshot to validate")
    args = ap.parse_args()
    if not (args.trace or args.metrics or args.progress or args.serve):
        ap.error("give at least one of --trace / --metrics / --progress "
                 "/ --serve")

    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics(args.metrics)
    if args.progress:
        check_progress(args.progress)
    if args.serve:
        check_serve(args.serve)

    if failures:
        print(f"\n{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nall artifacts valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
