#!/usr/bin/env python3
"""CI perf regression gate: compare fresh BENCH_*.json against committed
baselines (bench/baselines/*.json) with generous thresholds.

The benches emit two JSON shapes (see bench/bench_json.h):
  * BenchReport: {"bench": "...", <root fields>, "rows": [{...}, ...]}
  * Google Benchmark: {"benchmarks": [{"name": ..., "real_time": ...,
    <counters>}, ...]}

What is gated:
  * table1 cells (matched by purpose+n): a cell that completed in the
    baseline must still complete, verdicts must match, the
    deterministic shape counters (keys, reach_zones, winning_zones,
    edges, rounds) may drift at most COUNT_RATIO, and wall time at most
    TIME_RATIO; the 1-vs-N speedup blob must keep verdicts_equal and
    stay above SPEEDUP_FLOOR.
  * speedup_vs_walk (bench_test_execution counters, bench_fig5_strategy
    root): may shrink at most SPEEDUP_RATIO.
  * gbench real_time per benchmark: at most TIME_RATIO.

Thresholds (environment overrides):
  BENCH_GATE_TIME_RATIO     default 1.5   (CI sets it looser: runner
                                           machines vary)
  BENCH_GATE_COUNT_RATIO    default 1.3
  BENCH_GATE_SPEEDUP_RATIO  default 1.3
  BENCH_GATE_SPEEDUP_FLOOR  default 0.8   (1-vs-N must not go below)

Re-blessing after an intentional change:
  python3 tools/bench_gate.py --current build/bench-json --bless
copies the fresh JSON over bench/baselines/ (commit the result), or
download a Release leg's bench-json artifact and copy it manually.

Exit code 0 = all gates passed (or only warnings), 1 = regression.
"""

import argparse
import json
import os
import shutil
import sys
from pathlib import Path

TIME_RATIO = float(os.environ.get("BENCH_GATE_TIME_RATIO", "1.5"))
COUNT_RATIO = float(os.environ.get("BENCH_GATE_COUNT_RATIO", "1.3"))
SPEEDUP_RATIO = float(os.environ.get("BENCH_GATE_SPEEDUP_RATIO", "1.3"))
SPEEDUP_FLOOR = float(os.environ.get("BENCH_GATE_SPEEDUP_FLOOR", "0.8"))

TABLE1_COUNTERS = ["keys", "reach_zones", "winning_zones", "edges", "rounds"]

failures = []
warnings = []
checks = []  # (name, baseline, current, verdict)


def check(name, ok, detail, warn_only=False):
    checks.append((name, detail, "ok" if ok else ("warn" if warn_only else "FAIL")))
    if not ok:
        (warnings if warn_only else failures).append(f"{name}: {detail}")


def info(name, detail):
    # Carried into the summary table but never gated (machine-dependent
    # figures like peak RSS).
    checks.append((name, detail, "info"))


def info_peak_rss(name, base, cur):
    b, c = base.get("peak_rss_mb"), cur.get("peak_rss_mb")
    if c is None:
        return
    detail = (f"baseline {b:.1f} MB -> current {c:.1f} MB"
              if isinstance(b, (int, float)) else f"current {c:.1f} MB")
    info(f"{name} peak_rss_mb", detail)


def ratio_check(name, base, cur, max_ratio, warn_only=False):
    if base is None or cur is None:
        return
    if base <= 0:
        return
    r = cur / base
    check(name, r <= max_ratio,
          f"baseline {base:g} -> current {cur:g} ({r:.2f}x, limit {max_ratio:g}x)",
          warn_only)


def gate_table1(base, cur):
    def cells(doc):
        return {(row.get("purpose"), row.get("n")): row
                for row in doc.get("rows", [])}

    bcells, ccells = cells(base), cells(cur)
    for key, brow in sorted(bcells.items(), key=str):
        label = f"table1[{key[0]} n={key[1]}]"
        crow = ccells.get(key)
        if crow is None:
            # The current run may legitimately scan fewer columns
            # (e.g. TIGAT_TABLE1_MAX_N); warn, don't fail.
            check(label, False, "cell missing from current run", warn_only=True)
            continue
        if brow.get("completed"):
            check(f"{label} completed", bool(crow.get("completed")),
                  "was in budget at baseline, now out of budget")
            if not crow.get("completed"):
                continue
            check(f"{label} winning", brow.get("winning") == crow.get("winning"),
                  f"verdict flipped: {brow.get('winning')} -> {crow.get('winning')}")
            for counter in TABLE1_COUNTERS:
                ratio_check(f"{label} {counter}", brow.get(counter),
                            crow.get(counter), COUNT_RATIO)
            ratio_check(f"{label} seconds", brow.get("seconds"),
                        crow.get("seconds"), TIME_RATIO)

    bs, cs = base.get("speedup"), cur.get("speedup")
    if isinstance(bs, dict) and isinstance(cs, dict):
        check("table1 speedup verdicts_equal", cs.get("verdicts_equal") is True,
              "1-thread and N-thread verdicts diverged")
        if cs.get("speedup") is not None:
            check("table1 speedup floor", cs["speedup"] >= SPEEDUP_FLOOR,
                  f"1-vs-N speedup {cs['speedup']:.2f} below floor "
                  f"{SPEEDUP_FLOOR:g} (serial merge regression?)")


def gate_gbench(name, base, cur):
    def bench_map(doc):
        out = {}
        for b in doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            out[b.get("name")] = b
        return out

    bmap, cmap = bench_map(base), bench_map(cur)
    for bname, bb in sorted(bmap.items(), key=str):
        cb = cmap.get(bname)
        label = f"{name}[{bname}]"
        if cb is None:
            check(label, False, "benchmark disappeared", warn_only=True)
            continue
        ratio_check(f"{label} real_time", bb.get("real_time"),
                    cb.get("real_time"), TIME_RATIO)
        if "speedup_vs_walk" in bb and "speedup_vs_walk" in cb:
            sb, sc = bb["speedup_vs_walk"], cb["speedup_vs_walk"]
            if sb > 0:
                check(f"{label} speedup_vs_walk", sc >= sb / SPEEDUP_RATIO,
                      f"baseline {sb:.2f} -> current {sc:.2f} "
                      f"(limit /{SPEEDUP_RATIO:g})")


def gate_serve(base, cur):
    # bench_serve: the serving-path numbers.  Throughput may shrink at
    # most SPEEDUP_RATIO and must stay above an absolute floor (the
    # v3 redesign's acceptance number); cold start may grow at most
    # TIME_RATIO.  p99 latency is warn-only: shared runners make tail
    # latency too noisy to hard-gate.
    ratio_check("serve cold_start_ms", base.get("cold_start_ms"),
                cur.get("cold_start_ms"), TIME_RATIO)
    for field in ("decide_per_s", "socket_decide_per_s"):
        b, c = base.get(field), cur.get(field)
        if b and c and b > 0:
            check(f"serve {field}", c >= b / SPEEDUP_RATIO,
                  f"baseline {b:.0f}/s -> current {c:.0f}/s "
                  f"(limit /{SPEEDUP_RATIO:g})")
    floor = float(os.environ.get("BENCH_GATE_SERVE_DECIDE_FLOOR", "1e6"))
    c = cur.get("decide_per_s")
    if c is not None:
        check("serve decide_per_s floor", c >= floor,
              f"{c:.0f}/s below the {floor:.0f}/s floor")
    ratio_check("serve decide_p99_ns", base.get("decide_p99_ns"),
                cur.get("decide_p99_ns"), TIME_RATIO, warn_only=True)


def gate_report(name, base, cur):
    # Generic BenchReport: gate any root speedup_vs_walk; everything
    # else is informational.
    if "speedup_vs_walk" in base and "speedup_vs_walk" in cur:
        sb, sc = base["speedup_vs_walk"], cur["speedup_vs_walk"]
        if sb > 0:
            check(f"{name} speedup_vs_walk", sc >= sb / SPEEDUP_RATIO,
                  f"baseline {sb:.2f} -> current {sc:.2f} "
                  f"(limit /{SPEEDUP_RATIO:g})")


def gate_file(path_base, path_cur):
    base = json.loads(path_base.read_text())
    cur = json.loads(path_cur.read_text())
    name = path_base.name
    if base.get("bench") == "table1":
        gate_table1(base, cur)
    elif base.get("bench") == "serve":
        gate_serve(base, cur)
    elif "benchmarks" in base:
        gate_gbench(name, base, cur)
    else:
        gate_report(name, base, cur)
    info_peak_rss(name, base, cur)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="bench/baselines",
                    help="directory with committed BENCH_*.json baselines")
    ap.add_argument("--current", default="build/bench-json",
                    help="directory with freshly produced BENCH_*.json")
    ap.add_argument("--summary", default=None,
                    help="write a markdown comparison summary here")
    ap.add_argument("--bless", action="store_true",
                    help="copy current JSON over the baselines instead of "
                         "gating (then commit bench/baselines/)")
    args = ap.parse_args()

    baseline_dir, current_dir = Path(args.baseline), Path(args.current)
    if args.bless:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        blessed = 0
        for cur in sorted(current_dir.glob("BENCH_*.json")):
            shutil.copy(cur, baseline_dir / cur.name)
            print(f"blessed {baseline_dir / cur.name}")
            blessed += 1
        if blessed == 0:
            print(f"no BENCH_*.json under {current_dir}", file=sys.stderr)
            return 1
        return 0

    if not baseline_dir.is_dir():
        print(f"no baseline directory {baseline_dir}; nothing to gate "
              f"(bless one with --bless)", file=sys.stderr)
        return 0

    for base_path in sorted(baseline_dir.glob("BENCH_*.json")):
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            check(base_path.name, False,
                  "baseline exists but the current run produced no such file")
            continue
        try:
            gate_file(base_path, cur_path)
        except (json.JSONDecodeError, KeyError, TypeError) as e:
            check(base_path.name, False, f"unreadable bench JSON: {e}")

    lines = [
        "# bench gate",
        "",
        f"thresholds: time {TIME_RATIO:g}x · counters {COUNT_RATIO:g}x · "
        f"speedup_vs_walk /{SPEEDUP_RATIO:g} · 1-vs-N floor {SPEEDUP_FLOOR:g}",
        "",
        "| check | detail | verdict |",
        "|---|---|---|",
    ]
    for name, detail, verdict in checks:
        icon = {"ok": "✅", "warn": "⚠️", "FAIL": "❌", "info": "ℹ️"}[verdict]
        lines.append(f"| {name} | {detail} | {icon} {verdict} |")
    lines.append("")
    lines.append(f"**{len(failures)} regression(s), {len(warnings)} "
                 f"warning(s), {len(checks)} check(s).**")
    if failures:
        lines.append("")
        lines.append("Intentional change? Re-bless with "
                     "`python3 tools/bench_gate.py --current <dir> --bless` "
                     "and commit `bench/baselines/`.")
    summary = "\n".join(lines) + "\n"
    print(summary)
    if args.summary:
        Path(args.summary).write_text(summary)

    if failures:
        print("bench gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
