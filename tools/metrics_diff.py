#!/usr/bin/env python3
"""Diff two tigat.metrics snapshots (run_model --metrics-out).

Prints every counter, gauge and histogram whose value differs between
snapshot A and snapshot B, as `name: a -> b (delta)` lines.  Histograms
compare total count and sum (bucket-level drift always moves one of
those).  Metrics present in only one snapshot are reported as added or
removed.

The motivating CI use: run the SAME campaign twice — once with the
flight recorder attached, once without — snapshot metrics after each,
and require `metrics_diff.py --only solver. --fail-on-diff A B` to
exit 0.  Recording a run must not change what the solver computed;
any solver-counter drift means the recorder leaked into behaviour.

Flags:
  --only PREFIX     restrict the diff to metric names starting with
                    PREFIX (repeatable; e.g. --only solver. --only exec)
  --counters-only   ignore gauges and histograms (gauges and latency
                    histograms are wall-clock-fed, so they legitimately
                    differ between two runs of anything)
  --fail-on-diff    exit 1 if any compared metric differs

Exit code: 0 = no differences (under the active filters), 1 =
differences found with --fail-on-diff, 2 = snapshot unreadable/invalid.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"metrics_diff: cannot load {path}: {e}")
    if doc.get("schema") != "tigat.metrics" or doc.get("version") != 1:
        sys.exit(f"metrics_diff: {path} is not a tigat.metrics v1 snapshot "
                 f"(schema={doc.get('schema')} version={doc.get('version')})")
    return doc


def flatten(doc, counters_only):
    """{name: value} with histograms reduced to .count / .sum entries."""
    out = {}
    for name, value in doc.get("counters", {}).items():
        out[name] = value
    if counters_only:
        return out
    for name, value in doc.get("gauges", {}).items():
        out[name] = value
    for name, hist in doc.get("histograms", {}).items():
        out[f"{name}.count"] = hist.get("count", 0)
        out[f"{name}.sum"] = hist.get("sum", 0)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("a", metavar="SNAPSHOT_A")
    parser.add_argument("b", metavar="SNAPSHOT_B")
    parser.add_argument("--only", action="append", default=[],
                        metavar="PREFIX")
    parser.add_argument("--counters-only", action="store_true")
    parser.add_argument("--fail-on-diff", action="store_true")
    args = parser.parse_args()

    a = flatten(load(args.a), args.counters_only)
    b = flatten(load(args.b), args.counters_only)

    def keep(name):
        return not args.only or any(name.startswith(p) for p in args.only)

    names = sorted(n for n in set(a) | set(b) if keep(n))
    diffs = 0
    for name in names:
        if name not in a:
            print(f"{name}: (absent) -> {b[name]}  [added]")
            diffs += 1
        elif name not in b:
            print(f"{name}: {a[name]} -> (absent)  [removed]")
            diffs += 1
        elif a[name] != b[name]:
            try:
                delta = b[name] - a[name]
                print(f"{name}: {a[name]} -> {b[name]} ({delta:+})")
            except TypeError:
                print(f"{name}: {a[name]} -> {b[name]}")
            diffs += 1

    scope = f" (of {len(names)} compared)" if names else ""
    print(f"metrics_diff: {diffs} difference(s){scope}")
    if diffs and args.fail_on_diff:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
