// Run flight recorder: a byte-deterministic, versioned ledger of one
// test execution (`tigat.ledger` v1, JSONL).
//
// PR 7 made campaign verdicts sound; this layer makes them
// *explainable*.  A FAIL/FLAKY used to be a one-line verdict with no
// record of what happened inside the run — the forensic gap the
// off-line-testing literature assumes away.  When a RunRecorder is
// attached (ExecutorOptions::recorder), both executors journal every
// step of Algorithm 3.1 into an in-memory RunLedger:
//
//   * the decision taken at each step — the discrete key (rendered
//     SPEC state), the backend that answered (decision provenance,
//     DecisionSource::backend_name), the move kind, rank, prescribed
//     channel or delay bound;
//   * every boundary event with SYMBOLIC time — inputs offered,
//     outputs observed, delays elapsed (ticks, never wall clock);
//   * every fault the PR 7 FaultInjector injected, with its
//     boundary-call ordinal (the fault interleaving of a chaos run);
//   * the final verdict with reason code, detail, and the
//     expected-vs-observed output sets from the SPEC monitor at the
//     moment the run ended.
//
// Determinism contract: a ledger is a pure function of
// (model, strategy, IUT, fault spec, seed).  It contains no wall-clock
// values, no pointers, no thread ids — identical inputs produce
// byte-identical to_jsonl() output at any solver thread count, and
// recorded runs are bit-identical to unrecorded runs (verdict, report,
// solver counters): recording only ever appends to this buffer
// (tests/obs_ledger_test.cpp proves both).
//
// Cost contract, mirroring obs/trace.h and obs/metrics.h: every
// recording site is gated on a single `recorder != nullptr` branch —
// when no recorder is attached (the default) an executor step pays one
// pointer load and a branch, nothing else.  When attached, recording
// is plain vector appends; the recorder is owned by one executor run
// at a time and is NOT thread-safe (one recorder per concurrent run).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tigat::obs {

// One journaled event.  Flat tagged struct: only the fields named for
// a kind are meaningful, the rest stay at their defaults (and are
// omitted from the JSONL rendering).
struct LedgerEvent {
  enum class Kind : std::uint8_t {
    kDecision,  // the strategy/table answered decide()
    kInput,     // tester offered an input to the IUT
    kOutput,    // IUT output absorbed by the SPEC monitor
    kDelay,     // symbolic time passed
    kFault,     // FaultInjector corrupted the boundary
    kVerdict,   // terminal: verdict + reason + expected/observed
  };

  Kind kind = Kind::kDecision;
  std::uint64_t step = 0;  // executor step ordinal (0-based)
  std::int64_t t = 0;      // cumulative symbolic time, ticks

  // kDecision: move ("goal" / "action" / "delay" / "unwinnable"),
  // rank (-1 when the move carries none), the rendered SPEC state
  // (the decision key), and for actions the prescribed channel (empty
  // for tester-internal tau moves) / for delays the wait bound in
  // ticks (-1 when neither strategy nor SPEC bounded it).
  std::string move;
  std::int64_t rank = -1;
  std::string state;
  std::int64_t bound = -1;

  // kInput / kOutput: the channel crossing the boundary.
  std::string channel;

  // kDelay: ticks elapsed.
  std::int64_t ticks = 0;

  // kFault: injected fault kind + boundary-call ordinal (1-based,
  // non-decreasing; several faults can share one call).
  std::string fault;
  std::uint64_t call = 0;

  // kVerdict.
  std::string verdict;
  std::string code;
  std::string detail;
  std::vector<std::string> expected;  // Out(s After sigma), sorted
  std::string observed;               // offending channel, if any
};

// A complete recorded run: header + event journal.
struct RunLedger {
  std::string model;       // system name
  std::string backend;     // DecisionSource::backend_name()
  std::int64_t scale = 0;  // ticks per model time unit
  std::size_t run = 0;     // campaign run index
  std::size_t attempt = 0;  // attempt index within the run (0-based)
  std::uint64_t seed = 0;   // fault schedule of this attempt
  std::string fault_spec;   // canonical form; empty = clean boundary

  std::vector<LedgerEvent> events;

  // `tigat.ledger` v1 JSONL: one header object line, then one line per
  // event, fixed field order, no wall-clock values — byte-identical
  // for identical (model, strategy, IUT, spec, seed) inputs.
  [[nodiscard]] std::string to_jsonl() const;

  // Convenience for the explain layer: the terminal event, or nullptr
  // for a ledger that never reached a verdict (truncated file).
  [[nodiscard]] const LedgerEvent* verdict_event() const;
};

// The append-only writer the executors and the fault injector talk to.
// Reused across attempts: begin() resets the journal under a fresh
// header, take() moves the finished ledger out.
class RunRecorder {
 public:
  void begin(RunLedger header) {
    ledger_ = std::move(header);
    ledger_.events.clear();
  }
  [[nodiscard]] RunLedger take() { return std::move(ledger_); }
  [[nodiscard]] const RunLedger& ledger() const { return ledger_; }

  void decision(std::uint64_t step, std::int64_t t, std::string move,
                std::int64_t rank, std::string state, std::string channel,
                std::int64_t bound);
  void input(std::uint64_t step, std::int64_t t, std::string channel);
  void output(std::uint64_t step, std::int64_t t, std::string channel);
  void delay(std::uint64_t step, std::int64_t t, std::int64_t ticks);
  void fault(const char* kind, std::uint64_t call);
  void verdict(std::uint64_t step, std::int64_t t, std::string verdict,
               std::string code, std::string detail,
               std::vector<std::string> expected, std::string observed);

 private:
  RunLedger ledger_;
};

}  // namespace tigat::obs
