#include "obs/trace.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace tigat::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

// One recorded trace event.  `name == nullptr` marks an E event (its
// name is implied by the matching B — the exporter re-attaches it so
// validators that match names across the pair stay happy).
struct Event {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t arg;
  bool has_arg;
  bool is_end;
};

struct ThreadBuffer {
  std::vector<Event> events;
  std::size_t cap = 0;          // B events stop when events.size() >= cap
  std::uint64_t dropped = 0;    // spans not opened because of the cap
  std::uint32_t tid = 0;        // export row id (registration order)
  std::string name;             // thread name at registration time
};

namespace {
// Thread-name + buffer-cache thread locals.  The name is independent
// of tracing state so a ThreadPool can name its workers once at spawn
// whether or not a trace is running.
thread_local std::string t_thread_name;
thread_local ThreadBuffer* t_buffer = nullptr;
thread_local std::uint64_t t_buffer_epoch = 0;
}  // namespace

}  // namespace detail

using detail::Event;
using detail::ThreadBuffer;

struct Tracer::Impl {
  std::mutex mutex;  // guards buffers/epoch/origin, NOT event appends
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint64_t epoch = 1;  // bumped by enable(); invalidates t_buffer
  std::uint64_t origin_ns = 0;
  std::size_t capacity = std::size_t{1} << 20;  // spans per thread
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->buffers.clear();  // registered threads re-register via epoch
  ++impl_->epoch;
  impl_->origin_ns = now_ns();
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::set_thread_capacity(std::size_t spans) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity = spans;
}

ThreadBuffer* Tracer::thread_buffer() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (detail::t_buffer != nullptr &&
      detail::t_buffer_epoch == impl_->epoch) {
    return detail::t_buffer;
  }
  auto buf = std::make_unique<ThreadBuffer>();
  buf->cap = impl_->capacity;
  buf->tid = static_cast<std::uint32_t>(impl_->buffers.size());
  buf->name = detail::t_thread_name.empty()
                  ? "thread-" + std::to_string(impl_->buffers.size())
                  : detail::t_thread_name;
  buf->events.reserve(256);
  detail::t_buffer = buf.get();
  detail::t_buffer_epoch = impl_->epoch;
  impl_->buffers.push_back(std::move(buf));
  return detail::t_buffer;
}

void set_thread_name(std::string name) {
  // Copied into this thread's trace buffer at registration (first span
  // of a trace) — name threads before they record, as ThreadPool and
  // run_model do; a rename after that applies from the next enable().
  detail::t_thread_name = std::move(name);
}

void Span::open(const char* name, std::uint64_t arg, bool has_arg) {
  ThreadBuffer* buf = Tracer::instance().thread_buffer();
  // The cap bounds B events; E appends below the matching B are always
  // admitted (the vector may exceed cap by the open-span depth), so an
  // exported buffer is balanced by construction.
  if (buf->events.size() >= buf->cap) {
    ++buf->dropped;
    return;
  }
  buf->events.push_back({name, now_ns(), arg, has_arg, /*is_end=*/false});
  buf_ = buf;
  name_ = name;
}

void Span::close() {
  buf_->events.push_back({name_, now_ns(), 0, false, /*is_end=*/true});
}

std::size_t Tracer::recorded_spans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::size_t n = 0;
  for (const auto& buf : impl_->buffers) n += buf->events.size();
  return n / 2;
}

std::size_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::size_t n = 0;
  for (const auto& buf : impl_->buffers) n += buf->dropped;
  return n;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out;
  out.reserve(1 << 16);
  std::uint64_t dropped = 0;
  for (const auto& buf : impl_->buffers) dropped += buf->dropped;
  out += "{\"displayTimeUnit\": \"ms\", \"otherData\": {\"tool\": \"tigat\", "
         "\"schema_version\": 1, \"dropped_spans\": ";
  out += std::to_string(dropped);
  out += "},\n\"traceEvents\": [\n";
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": \"tigat\"}}";
  char num[64];
  for (const auto& buf : impl_->buffers) {
    out += ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": ";
    out += std::to_string(buf->tid);
    out += ", \"args\": {\"name\": \"";
    append_json_escaped(out, buf->name);
    out += "\"}}";
    for (const Event& e : buf->events) {
      out += ",\n{\"name\": \"";
      append_json_escaped(out, e.name);
      out += "\", \"ph\": \"";
      out += e.is_end ? 'E' : 'B';
      out += "\", \"pid\": 1, \"tid\": ";
      out += std::to_string(buf->tid);
      out += ", \"ts\": ";
      // Chrome trace timestamps are microseconds; keep ns precision in
      // the fraction.  Events before the origin (a span opened by a
      // not-yet-reset buffer cannot happen — enable() clears buffers —
      // but clamp defensively).
      const std::uint64_t rel =
          e.ts_ns >= impl_->origin_ns ? e.ts_ns - impl_->origin_ns : 0;
      std::snprintf(num, sizeof num, "%llu.%03llu",
                    static_cast<unsigned long long>(rel / 1000),
                    static_cast<unsigned long long>(rel % 1000));
      out += num;
      if (e.has_arg) {
        out += ", \"args\": {\"n\": ";
        out += std::to_string(e.arg);
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace tigat::obs
