// Progress heartbeat for long solves.
//
// An LEP n=6 solve runs for minutes with no output; the heartbeat
// turns that silence into periodic single-line JSONL records on stderr
// (or any FILE*), emitted from the hot loops that already know the
// interesting numbers — the explore wave loop and the fixpoint round
// loop call tick() with keys interned, zones allocated and the current
// round, and the heartbeat adds elapsed wall time and peak RSS:
//
//   {"tigat_hb": 3, "elapsed_s": 12.402, "phase": "fixpoint",
//    "keys": 81234, "zones": 220101, "round": 17, "rss_mb": 512.3}
//
// tick() is rate-limited to the configured period with one relaxed
// atomic load + a clock read when armed and a plain false branch when
// not, so it can sit inside per-wave/per-round code unconditionally.
// The FIRST tick after enable() emits immediately and the solver emits
// a final record when it finishes, so even sub-second solves with
// --progress produce at least one line.  emit() under a mutex — loops
// calling tick() concurrently produce interleaved records, never torn
// lines.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace tigat::obs {

class Progress {
 public:
  static Progress& instance();

  // Arms the heartbeat: at most one record per `period_seconds`, to
  // `out` (default stderr).  Period 0 emits on every tick.
  void enable(double period_seconds, std::FILE* out = stderr);
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Rate-limited record; call freely from wave/round loops.  Pass the
  // best currently-known figures; 0 is printed as 0, not suppressed.
  void tick(const char* phase, std::uint64_t keys, std::uint64_t zones,
            std::uint64_t round);

  // Unconditional record (no rate limit) — the solver's final "done"
  // line, guaranteeing at least one record per enabled solve.
  void emit(const char* phase, std::uint64_t keys, std::uint64_t zones,
            std::uint64_t round);

  // Campaign-phase heartbeat: same stream, same rate limit, but the
  // figures a long `--runs=N` campaign cares about — runs completed,
  // retries spent and the running verdict tallies:
  //
  //   {"tigat_hb": 7, "elapsed_s": 41.1, "phase": "campaign",
  //    "runs": 120, "total": 500, "retries": 3, "fails": 1,
  //    "inconclusive": 2, "rss_mb": 96.4}
  //
  // The campaign engine ticks after every run and emits one final
  // "campaign-done" record, mirroring the solver's contract that an
  // enabled heartbeat always produces at least one line.
  void tick_campaign(std::uint64_t runs_done, std::uint64_t runs_total,
                     std::uint64_t retries, std::uint64_t fails,
                     std::uint64_t inconclusive);
  void emit_campaign(const char* phase, std::uint64_t runs_done,
                     std::uint64_t runs_total, std::uint64_t retries,
                     std::uint64_t fails, std::uint64_t inconclusive);

  // Serve-phase heartbeat (tigat-serve): connection and request
  // throughput figures the daemon's supervisor watches:
  //
  //   {"tigat_hb": 9, "elapsed_s": 60.0, "phase": "serve",
  //    "connections": 8, "requests": 7201234, "errors": 0,
  //    "rss_mb": 42.1}
  //
  // The daemon ticks from its accept/worker loops and emits one final
  // "serve-done" record on shutdown, mirroring the solver/campaign
  // contract that an enabled heartbeat always produces at least one
  // line.
  void tick_serve(std::uint64_t connections, std::uint64_t requests,
                  std::uint64_t errors);
  void emit_serve(const char* phase, std::uint64_t connections,
                  std::uint64_t requests, std::uint64_t errors);

 private:
  Progress();
  struct Impl;
  Impl* impl_;  // never freed (process-lifetime singleton)
  std::atomic<bool> enabled_{false};
};

inline Progress& progress() { return Progress::instance(); }

}  // namespace tigat::obs
