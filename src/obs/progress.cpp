#include "obs/progress.h"

#include <mutex>

#include "obs/trace.h"
#include "util/memory_meter.h"

namespace tigat::obs {

struct Progress::Impl {
  std::mutex mutex;
  std::FILE* out = stderr;
  std::uint64_t period_ns = 0;
  std::uint64_t start_ns = 0;
  // 0 = "emit on the very next tick"; set on enable() so even a solve
  // that finishes within one period produces its first record.
  std::atomic<std::uint64_t> next_emit_ns{0};
  std::uint64_t seq = 0;
};

Progress::Progress() : impl_(new Impl) {}

Progress& Progress::instance() {
  static Progress progress;
  return progress;
}

void Progress::enable(double period_seconds, std::FILE* out) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out = out;
  impl_->period_ns =
      period_seconds <= 0.0
          ? 0
          : static_cast<std::uint64_t>(period_seconds * 1e9);
  impl_->start_ns = now_ns();
  impl_->next_emit_ns.store(0, std::memory_order_relaxed);
  impl_->seq = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Progress::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Progress::tick(const char* phase, std::uint64_t keys,
                    std::uint64_t zones, std::uint64_t round) {
  if (!enabled()) return;
  // Racy check on purpose: two threads ticking in the same instant may
  // both emit; emit() re-arms under the mutex so the steady state is
  // one record per period.
  if (now_ns() < impl_->next_emit_ns.load(std::memory_order_relaxed)) return;
  emit(phase, keys, zones, round);
}

void Progress::emit(const char* phase, std::uint64_t keys,
                    std::uint64_t zones, std::uint64_t round) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t now = now_ns();
  impl_->next_emit_ns.store(now + impl_->period_ns, std::memory_order_relaxed);
  const double elapsed =
      static_cast<double>(now - impl_->start_ns) * 1e-9;
  const double rss_mb = util::to_mebibytes(util::peak_rss_bytes());
  std::fprintf(impl_->out,
               "{\"tigat_hb\": %llu, \"elapsed_s\": %.3f, \"phase\": \"%s\", "
               "\"keys\": %llu, \"zones\": %llu, \"round\": %llu, "
               "\"rss_mb\": %.1f}\n",
               static_cast<unsigned long long>(impl_->seq++), elapsed, phase,
               static_cast<unsigned long long>(keys),
               static_cast<unsigned long long>(zones),
               static_cast<unsigned long long>(round), rss_mb);
  std::fflush(impl_->out);
}

void Progress::tick_campaign(std::uint64_t runs_done, std::uint64_t runs_total,
                             std::uint64_t retries, std::uint64_t fails,
                             std::uint64_t inconclusive) {
  if (!enabled()) return;
  if (now_ns() < impl_->next_emit_ns.load(std::memory_order_relaxed)) return;
  emit_campaign("campaign", runs_done, runs_total, retries, fails,
                inconclusive);
}

void Progress::emit_campaign(const char* phase, std::uint64_t runs_done,
                             std::uint64_t runs_total, std::uint64_t retries,
                             std::uint64_t fails, std::uint64_t inconclusive) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t now = now_ns();
  impl_->next_emit_ns.store(now + impl_->period_ns, std::memory_order_relaxed);
  const double elapsed = static_cast<double>(now - impl_->start_ns) * 1e-9;
  const double rss_mb = util::to_mebibytes(util::peak_rss_bytes());
  std::fprintf(impl_->out,
               "{\"tigat_hb\": %llu, \"elapsed_s\": %.3f, \"phase\": \"%s\", "
               "\"runs\": %llu, \"total\": %llu, \"retries\": %llu, "
               "\"fails\": %llu, \"inconclusive\": %llu, \"rss_mb\": %.1f}\n",
               static_cast<unsigned long long>(impl_->seq++), elapsed, phase,
               static_cast<unsigned long long>(runs_done),
               static_cast<unsigned long long>(runs_total),
               static_cast<unsigned long long>(retries),
               static_cast<unsigned long long>(fails),
               static_cast<unsigned long long>(inconclusive), rss_mb);
  std::fflush(impl_->out);
}

void Progress::tick_serve(std::uint64_t connections, std::uint64_t requests,
                          std::uint64_t errors) {
  if (!enabled()) return;
  if (now_ns() < impl_->next_emit_ns.load(std::memory_order_relaxed)) return;
  emit_serve("serve", connections, requests, errors);
}

void Progress::emit_serve(const char* phase, std::uint64_t connections,
                          std::uint64_t requests, std::uint64_t errors) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t now = now_ns();
  impl_->next_emit_ns.store(now + impl_->period_ns, std::memory_order_relaxed);
  const double elapsed = static_cast<double>(now - impl_->start_ns) * 1e-9;
  const double rss_mb = util::to_mebibytes(util::peak_rss_bytes());
  std::fprintf(impl_->out,
               "{\"tigat_hb\": %llu, \"elapsed_s\": %.3f, \"phase\": \"%s\", "
               "\"connections\": %llu, \"requests\": %llu, "
               "\"errors\": %llu, \"rss_mb\": %.1f}\n",
               static_cast<unsigned long long>(impl_->seq++), elapsed, phase,
               static_cast<unsigned long long>(connections),
               static_cast<unsigned long long>(requests),
               static_cast<unsigned long long>(errors), rss_mb);
  std::fflush(impl_->out);
}

}  // namespace tigat::obs
