#include "obs/recorder.h"

#include "util/text.h"

namespace tigat::obs {

namespace {

// Same escaping rules as the campaign JSON writer: the ledger holds
// rendered states and human detail strings, both of which may carry
// quotes from model names.
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += util::format("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_event(std::string& out, const LedgerEvent& e) {
  using Kind = LedgerEvent::Kind;
  switch (e.kind) {
    case Kind::kDecision:
      out += util::format("{\"ev\": \"decision\", \"step\": %llu, \"t\": %lld",
                          static_cast<unsigned long long>(e.step),
                          static_cast<long long>(e.t));
      out += ", \"move\": ";
      append_escaped(out, e.move);
      out += util::format(", \"rank\": %lld", static_cast<long long>(e.rank));
      if (!e.channel.empty()) {
        out += ", \"channel\": ";
        append_escaped(out, e.channel);
      }
      if (e.move == "delay") {
        out += util::format(", \"bound\": %lld",
                            static_cast<long long>(e.bound));
      }
      out += ", \"state\": ";
      append_escaped(out, e.state);
      out += "}";
      break;
    case Kind::kInput:
    case Kind::kOutput:
      out += util::format("{\"ev\": \"%s\", \"step\": %llu, \"t\": %lld",
                          e.kind == Kind::kInput ? "input" : "output",
                          static_cast<unsigned long long>(e.step),
                          static_cast<long long>(e.t));
      out += ", \"channel\": ";
      append_escaped(out, e.channel);
      out += "}";
      break;
    case Kind::kDelay:
      out += util::format(
          "{\"ev\": \"delay\", \"step\": %llu, \"t\": %lld, \"ticks\": %lld}",
          static_cast<unsigned long long>(e.step), static_cast<long long>(e.t),
          static_cast<long long>(e.ticks));
      break;
    case Kind::kFault:
      out += "{\"ev\": \"fault\", \"kind\": ";
      append_escaped(out, e.fault);
      out += util::format(", \"call\": %llu}",
                          static_cast<unsigned long long>(e.call));
      break;
    case Kind::kVerdict:
      out += util::format("{\"ev\": \"verdict\", \"step\": %llu, \"t\": %lld",
                          static_cast<unsigned long long>(e.step),
                          static_cast<long long>(e.t));
      out += ", \"verdict\": ";
      append_escaped(out, e.verdict);
      out += ", \"code\": ";
      append_escaped(out, e.code);
      out += ", \"detail\": ";
      append_escaped(out, e.detail);
      out += ", \"expected\": [";
      for (std::size_t i = 0; i < e.expected.size(); ++i) {
        if (i > 0) out += ", ";
        append_escaped(out, e.expected[i]);
      }
      out += "], \"observed\": ";
      append_escaped(out, e.observed);
      out += "}";
      break;
  }
  out += '\n';
}

}  // namespace

std::string RunLedger::to_jsonl() const {
  std::string out;
  out.reserve(256 + events.size() * 96);
  out += "{\"schema\": \"tigat.ledger\", \"version\": 1, \"model\": ";
  append_escaped(out, model);
  out += ", \"backend\": ";
  append_escaped(out, backend);
  out += util::format(", \"scale\": %lld, \"run\": %zu, \"attempt\": %zu",
                      static_cast<long long>(scale), run, attempt);
  out += util::format(", \"seed\": %llu",
                      static_cast<unsigned long long>(seed));
  out += ", \"fault_spec\": ";
  append_escaped(out, fault_spec);
  out += "}\n";
  for (const LedgerEvent& e : events) append_event(out, e);
  return out;
}

const LedgerEvent* RunLedger::verdict_event() const {
  if (events.empty() || events.back().kind != LedgerEvent::Kind::kVerdict) {
    return nullptr;
  }
  return &events.back();
}

void RunRecorder::decision(std::uint64_t step, std::int64_t t,
                           std::string move, std::int64_t rank,
                           std::string state, std::string channel,
                           std::int64_t bound) {
  LedgerEvent e;
  e.kind = LedgerEvent::Kind::kDecision;
  e.step = step;
  e.t = t;
  e.move = std::move(move);
  e.rank = rank;
  e.state = std::move(state);
  e.channel = std::move(channel);
  e.bound = bound;
  ledger_.events.push_back(std::move(e));
}

void RunRecorder::input(std::uint64_t step, std::int64_t t,
                        std::string channel) {
  LedgerEvent e;
  e.kind = LedgerEvent::Kind::kInput;
  e.step = step;
  e.t = t;
  e.channel = std::move(channel);
  ledger_.events.push_back(std::move(e));
}

void RunRecorder::output(std::uint64_t step, std::int64_t t,
                         std::string channel) {
  LedgerEvent e;
  e.kind = LedgerEvent::Kind::kOutput;
  e.step = step;
  e.t = t;
  e.channel = std::move(channel);
  ledger_.events.push_back(std::move(e));
}

void RunRecorder::delay(std::uint64_t step, std::int64_t t,
                        std::int64_t ticks) {
  LedgerEvent e;
  e.kind = LedgerEvent::Kind::kDelay;
  e.step = step;
  e.t = t;
  e.ticks = ticks;
  ledger_.events.push_back(std::move(e));
}

void RunRecorder::fault(const char* kind, std::uint64_t call) {
  LedgerEvent e;
  e.kind = LedgerEvent::Kind::kFault;
  if (!ledger_.events.empty()) {
    // Faults are journaled where they happen: mid-step, between the
    // decision and whatever the boundary returned.  Carry the current
    // step/t forward so the interleaving stays readable.
    e.step = ledger_.events.back().step;
    e.t = ledger_.events.back().t;
  }
  e.fault = kind;
  e.call = call;
  ledger_.events.push_back(std::move(e));
}

void RunRecorder::verdict(std::uint64_t step, std::int64_t t,
                          std::string verdict, std::string code,
                          std::string detail,
                          std::vector<std::string> expected,
                          std::string observed) {
  LedgerEvent e;
  e.kind = LedgerEvent::Kind::kVerdict;
  e.step = step;
  e.t = t;
  e.verdict = std::move(verdict);
  e.code = std::move(code);
  e.detail = std::move(detail);
  e.expected = std::move(expected);
  e.observed = std::move(observed);
  ledger_.events.push_back(std::move(e));
}

}  // namespace tigat::obs
