#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace tigat::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}

void enable_metrics() {
  detail::g_metrics_enabled.store(true, std::memory_order_relaxed);
}

void disable_metrics() {
  detail::g_metrics_enabled.store(false, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

std::size_t Histogram::bucket_index(std::span<const std::uint64_t> bounds,
                                    std::uint64_t v) noexcept {
  // First bound >= v; upper_bound would misplace exact boundary hits
  // (v == bounds[i] belongs to bucket i under le semantics).
  return static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // The rank of the requested quantile, 1-based; q=0 asks for the
  // first recorded value's bucket.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

std::span<const std::uint64_t> latency_buckets_ns() {
  static const std::vector<std::uint64_t> bounds = [] {
    std::vector<std::uint64_t> b;
    for (std::uint64_t v = 16; v <= (std::uint64_t{1} << 24); v <<= 1) {
      b.push_back(v);
    }
    return b;
  }();
  return bounds;
}

std::span<const std::uint64_t> duration_buckets_ms() {
  static const std::vector<std::uint64_t> bounds = [] {
    std::vector<std::uint64_t> b;
    for (std::uint64_t v = 1; v <= (std::uint64_t{1} << 16); v <<= 1) {
      b.push_back(v);
    }
    return b;
  }();
  return bounds;
}

// std::map keeps iteration sorted for the snapshot and never moves
// mapped values, so references handed out by counter()/gauge()/
// histogram() stay stable across later registrations.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->counters[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->gauges[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->histograms[std::string(name)];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        std::vector<std::uint64_t>(bounds.begin(), bounds.end()));
  }
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c->set(0);
  for (auto& [name, g] : impl_->gauges) g->set(0.0);
  for (auto& [name, h] : impl_->histograms) {
    for (auto& bucket : h->counts_) bucket.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
  }
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out;
  out.reserve(1 << 12);
  out += "{\"schema\": \"tigat.metrics\", \"version\": 1,\n";

  out += " \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": ";
    out += std::to_string(c->value());
  }
  out += first ? "},\n" : "\n },\n";

  out += " \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": ";
    append_double(out, g->value());
  }
  out += first ? "},\n" : "\n },\n";

  out += " \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds_.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(h->bounds_[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h->counts_.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(h->counts_[i].load(std::memory_order_relaxed));
    }
    out += "], \"count\": ";
    out += std::to_string(h->count());
    out += ", \"sum\": ";
    out += std::to_string(h->sum());
    out += "}";
  }
  out += first ? "}\n" : "\n }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_snapshot(const std::string& path) const {
  const std::string json = snapshot_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace tigat::obs
