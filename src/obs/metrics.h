// Named counters, gauges and fixed-bucket histograms for the whole
// pipeline, snapshotted into one versioned metrics JSON.
//
// Before this registry every component reported through its own side
// channel: the solver returned a SolverStats struct, run_model printed
// a human table, each bench invented JSON fields.  The registry is the
// one schema they all feed: the solver publishes its stats here
// (game/solver.cpp, names under "solver."), the compiled decision
// table records a decide() latency histogram, the executor counts
// steps and verdicts, the zone pool counts dictionary traffic — and a
// snapshot (write_snapshot / snapshot_json) serialises every metric
// with a schema version, so scripts parse ONE document instead of
// scraping tables (run_model --metrics-out / --stats-json).
//
// Cost contract, mirroring obs/trace.h:
//   * recording is gated on metrics_enabled() — a relaxed atomic load
//     and a branch per site when off (the default);
//   * when on, counters/gauges are single relaxed atomic ops and a
//     histogram record is a small binary search plus three of them.
//     Metrics never affect computation: solver results are
//     bit-identical with metrics on or off.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and may
// allocate; do it once at setup (constructors, function-local
// statics), keep the returned reference — it stays valid for the
// process lifetime, across reset().  Counters are u64 and exact:
// values published from SolverStats compare bit-for-bit
// (tests/obs_test.cpp).  Gauges are doubles for the wall-clock and
// byte figures where 53-bit mantissas are plenty.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tigat::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

// The single per-site branch every disabled record pays.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void enable_metrics();
void disable_metrics();

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  // Publishes an externally computed total (e.g. a SolverStats field).
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts values v with
// v <= bounds[i] (and v > bounds[i-1]); one implicit overflow bucket
// counts v > bounds.back().  Bounds are fixed at registration so
// snapshots from different runs line up bucket for bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t v) noexcept {
    counts_[bucket_index(bounds_, v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  // The bucket a value lands in — first i with v <= bounds[i], or
  // bounds.size() for overflow.  Static so the boundary math is
  // unit-testable without a registry (tests/obs_test.cpp).
  [[nodiscard]] static std::size_t bucket_index(
      std::span<const std::uint64_t> bounds, std::uint64_t v) noexcept;

  [[nodiscard]] std::span<const std::uint64_t> bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  // Approximate quantile from the bucket counts: the smallest bound
  // whose cumulative count reaches q * count() (so an upper bound on
  // the true quantile, off by at most one bucket — a factor of 2 with
  // the power-of-two bounds).  Values in the overflow bucket saturate
  // to bounds().back().  Returns 0 on an empty histogram.  q is
  // clamped to [0, 1].
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

 private:
  friend class MetricsRegistry;
  std::vector<std::uint64_t> bounds_;  // strictly increasing
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> sum_{0};
};

// Power-of-two nanosecond bounds, 16 ns .. 2^24 ns (~16.8 ms) — the
// shared vocabulary for latency histograms (decide() runs tens of ns
// to µs; anything past 16 ms is pathological and lands in overflow).
[[nodiscard]] std::span<const std::uint64_t> latency_buckets_ns();

// Power-of-two millisecond bounds, 1 ms .. 2^16 ms (~65 s) — the shared
// vocabulary for run-duration histograms (a test-campaign run takes
// milliseconds to tens of seconds; past that it hit its deadline).
[[nodiscard]] std::span<const std::uint64_t> duration_buckets_ms();

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Find-or-create by name.  A histogram re-registered with different
  // bounds keeps its original bounds (first registration wins).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> bounds);

  // Zeroes every value; registrations and references stay valid.
  void reset();

  // Versioned snapshot:
  //   {"schema": "tigat.metrics", "version": 1,
  //    "counters": {...}, "gauges": {...},
  //    "histograms": {name: {"bounds": [...], "counts": [...],
  //                          "count": N, "sum": S}}}
  // Names are emitted in sorted order (deterministic diffs).
  [[nodiscard]] std::string snapshot_json() const;
  bool write_snapshot(const std::string& path) const;

 private:
  MetricsRegistry();
  struct Impl;
  Impl* impl_;  // never freed (process-lifetime singleton)
};

inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

}  // namespace tigat::obs
