// Low-overhead span tracing for the solve → compile → serve pipeline.
//
// The pipeline runs at scales (LEP n = 6: minutes of wall time, 16
// worker threads) where aggregate wall-clock numbers no longer explain
// anything; what is the expand phase doing on worker 7 while the merge
// stalls?  The tracer answers that with per-thread timelines: RAII
// spans (`TIGAT_SPAN("explore.expand")`) record begin/end pairs with
// steady-clock nanosecond timestamps into PER-THREAD buffers — no
// locks, no allocation on the hot path once a buffer exists — and the
// whole set exports as one Chrome trace-event JSON file that Perfetto
// or chrome://tracing renders as a flame chart per worker thread.
//
// Cost model (the contract the solver's determinism relies on):
//   * disabled (the default): every TIGAT_SPAN is ONE relaxed atomic
//     load and a branch — no clock read, no buffer touch;
//   * enabled: two steady_clock reads and two buffer appends per span.
//     Spans never synchronize threads or alter control flow, so
//     solver results are bit-identical with tracing on or off at any
//     thread count (tests/solver_determinism_test.cpp covers this).
//
// Buffering: each thread owns one append-only buffer (registered with
// the global tracer under a mutex ON FIRST SPAN ONLY, then lock-free).
// A buffer that reaches its event cap stops opening NEW spans but
// always records the E of a B it recorded — exported traces stay
// balanced, and the drop count lands in the export metadata.  Buffers
// are owned by the tracer, not the thread, so worker threads may exit
// (ThreadPool teardown) before the trace is written.
//
// Lifecycle: enable() (re)starts a trace — clears all buffers, bumps
// the registration epoch, re-zeroes the time origin; write_chrome_trace
// exports everything recorded since.  enable/disable/export must not
// race live spans: call them from the orchestrating thread between
// parallel phases (run_model enables before solving and exports after).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace tigat::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
struct ThreadBuffer;
}  // namespace detail

// The single per-site branch every disabled TIGAT_SPAN pays.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// Steady-clock nanoseconds (arbitrary origin; the tracer subtracts its
// enable() time at export).  Shared with the metrics layer's latency
// histograms so one clock serves both.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Names the calling thread for trace metadata (and nothing else; OS
// thread naming is the caller's job, see util::ThreadPool).  Cheap and
// always safe to call — the name is stored thread-locally and copied
// into the trace buffer when (if) this thread records its first span.
void set_thread_name(std::string name);

class Tracer {
 public:
  // Process-wide instance; all spans and exports go through it.
  static Tracer& instance();

  // Starts a fresh trace: drops previously recorded events, restarts
  // the time origin, then flips the enabled flag.
  void enable();
  void disable();

  // Chrome trace-event JSON of everything recorded since enable():
  // one "B"/"E" pair per span, "M" thread_name/process_name metadata,
  // timestamps in microseconds relative to enable().  Loadable in
  // Perfetto / chrome://tracing as-is.
  [[nodiscard]] std::string chrome_trace_json() const;
  // Writes chrome_trace_json() to `path`; false (with a note on
  // stderr) on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  // Spans recorded / spans dropped to the buffer cap since enable().
  [[nodiscard]] std::size_t recorded_spans() const;
  [[nodiscard]] std::size_t dropped_spans() const;

  // Per-thread span cap (B/E pairs).  Takes effect for buffers
  // registered after the next enable().
  void set_thread_capacity(std::size_t spans);

 private:
  friend class Span;
  Tracer();

  // The calling thread's buffer, registering one on first use (or
  // after an enable() bumped the epoch).  Only called on enabled paths.
  detail::ThreadBuffer* thread_buffer();

  struct Impl;
  Impl* impl_;  // never freed (process-lifetime singleton)
};

// RAII span: records B on construction and E on destruction when
// tracing is enabled (decided at construction — a span started before
// disable() still closes, keeping buffers balanced).  `name` must be a
// string literal or otherwise outlive the tracer (it is stored by
// pointer).  The optional arg lands in the event's "args" (e.g. the
// fixpoint round number).
class Span {
 public:
  explicit Span(const char* name) {
    if (trace_enabled()) open(name, 0, false);
  }
  Span(const char* name, std::uint64_t arg) {
    if (trace_enabled()) open(name, arg, true);
  }
  ~Span() {
    if (buf_ != nullptr) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name, std::uint64_t arg, bool has_arg);
  void close();

  detail::ThreadBuffer* buf_ = nullptr;  // non-null iff a B was recorded
  const char* name_ = nullptr;
};

#define TIGAT_OBS_CONCAT2(a, b) a##b
#define TIGAT_OBS_CONCAT(a, b) TIGAT_OBS_CONCAT2(a, b)
// One relaxed load + branch when tracing is off.
#define TIGAT_SPAN(...) \
  ::tigat::obs::Span TIGAT_OBS_CONCAT(tigat_span_, __LINE__) { __VA_ARGS__ }

}  // namespace tigat::obs
