// Post-mortem explain pass over a RunLedger: turns the raw event
// journal into the two artifacts a human debugging a campaign actually
// wants — a readable post-mortem naming the exact step where the
// verdict was earned (where quiescence broke, where the unexpected
// output arrived), the expected-vs-observed output sets at that
// moment, and the injected-fault interleaving of a chaos run; and the
// same facts as machine JSON (`tigat.explain` v1) for dashboards and
// tools/explain_check.py.
//
// explain() is a pure function of the ledger — no clocks, no globals —
// so explain output inherits the ledger's byte-determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace tigat::obs {

// The distilled post-mortem.  `tail` holds the last few journal lines
// before the verdict, pre-rendered ("step 17 t=352 decision delay ...")
// — the "what led up to it" context both renderings share.
struct Explanation {
  // Header facts, copied from the ledger.
  std::string model;
  std::string backend;
  std::size_t run = 0;
  std::size_t attempt = 0;
  std::uint64_t seed = 0;
  std::string fault_spec;

  // The verdict and where it was earned.  `truncated` marks a ledger
  // with no terminal verdict event (a crash before the executor could
  // classify, or a cut-off file) — the step/code fields are then empty.
  bool truncated = false;
  std::string verdict;
  std::string code;
  std::string detail;
  std::uint64_t failing_step = 0;
  std::int64_t failing_t = 0;
  std::vector<std::string> expected;  // Out(s After sigma) at the end
  std::string observed;               // offending channel; "" = silence

  // Journal census.
  std::size_t decisions = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t delays = 0;

  // The chaos interleaving: every injected fault, in journal order.
  struct Fault {
    std::string kind;
    std::uint64_t call = 0;   // boundary-call ordinal
    std::uint64_t step = 0;   // executor step it landed inside
  };
  std::vector<Fault> faults;

  // Last journal events before the verdict, oldest first.
  std::vector<std::string> tail;

  // Human post-mortem, multi-line, ends in '\n'.
  [[nodiscard]] std::string to_text() const;

  // `tigat.explain` v1 machine JSON (single object, ends in '\n').
  [[nodiscard]] std::string to_json() const;
};

// How many pre-verdict events to keep in Explanation::tail.
inline constexpr std::size_t kExplainTailEvents = 8;

[[nodiscard]] Explanation explain(const RunLedger& ledger);

}  // namespace tigat::obs
