#include "obs/explain.h"

#include <algorithm>
#include <cctype>

#include "util/text.h"

namespace tigat::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += util::format("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

// One journal event as a single human-readable line (no trailing \n).
std::string render_event(const LedgerEvent& e) {
  using Kind = LedgerEvent::Kind;
  switch (e.kind) {
    case Kind::kDecision: {
      std::string line = util::format(
          "step %llu t=%lld  decide -> %s",
          static_cast<unsigned long long>(e.step),
          static_cast<long long>(e.t), e.move.c_str());
      if (!e.channel.empty()) line += " '" + e.channel + "'";
      if (e.move == "delay") {
        line += e.bound >= 0
                    ? util::format(" (bound %lld)",
                                   static_cast<long long>(e.bound))
                    : " (unbounded)";
      }
      if (e.rank >= 0) {
        line += util::format(" rank %lld", static_cast<long long>(e.rank));
      }
      line += "  at " + e.state;
      return line;
    }
    case Kind::kInput:
      return util::format("step %llu t=%lld  input '%s' offered",
                          static_cast<unsigned long long>(e.step),
                          static_cast<long long>(e.t), e.channel.c_str());
    case Kind::kOutput:
      return util::format("step %llu t=%lld  output '%s' observed",
                          static_cast<unsigned long long>(e.step),
                          static_cast<long long>(e.t), e.channel.c_str());
    case Kind::kDelay:
      return util::format("step %llu t=%lld  delay %lld ticks",
                          static_cast<unsigned long long>(e.step),
                          static_cast<long long>(e.t),
                          static_cast<long long>(e.ticks));
    case Kind::kFault:
      return util::format("step %llu        FAULT %s injected (boundary "
                          "call %llu)",
                          static_cast<unsigned long long>(e.step),
                          e.fault.c_str(),
                          static_cast<unsigned long long>(e.call));
    case Kind::kVerdict:
      return util::format("step %llu t=%lld  verdict %s (%s)",
                          static_cast<unsigned long long>(e.step),
                          static_cast<long long>(e.t), e.verdict.c_str(),
                          e.code.c_str());
  }
  return "?";
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

}  // namespace

Explanation explain(const RunLedger& ledger) {
  Explanation ex;
  ex.model = ledger.model;
  ex.backend = ledger.backend;
  ex.run = ledger.run;
  ex.attempt = ledger.attempt;
  ex.seed = ledger.seed;
  ex.fault_spec = ledger.fault_spec;

  for (const LedgerEvent& e : ledger.events) {
    switch (e.kind) {
      case LedgerEvent::Kind::kDecision: ++ex.decisions; break;
      case LedgerEvent::Kind::kInput: ++ex.inputs; break;
      case LedgerEvent::Kind::kOutput: ++ex.outputs; break;
      case LedgerEvent::Kind::kDelay: ++ex.delays; break;
      case LedgerEvent::Kind::kFault:
        ex.faults.push_back({e.fault, e.call, e.step});
        break;
      case LedgerEvent::Kind::kVerdict: break;
    }
  }

  const LedgerEvent* verdict = ledger.verdict_event();
  if (verdict == nullptr) {
    ex.truncated = true;
  } else {
    ex.verdict = verdict->verdict;
    ex.code = verdict->code;
    ex.detail = verdict->detail;
    ex.failing_step = verdict->step;
    ex.failing_t = verdict->t;
    ex.expected = verdict->expected;
    ex.observed = verdict->observed;
  }

  // The tail: the last kExplainTailEvents events before the verdict.
  const std::size_t body =
      ledger.events.size() - (verdict != nullptr ? 1 : 0);
  const std::size_t first =
      body > kExplainTailEvents ? body - kExplainTailEvents : 0;
  for (std::size_t i = first; i < body; ++i) {
    ex.tail.push_back(render_event(ledger.events[i]));
  }
  return ex;
}

std::string Explanation::to_text() const {
  std::string out;
  out += util::format("post-mortem: run %zu attempt %zu", run, attempt);
  if (truncated) {
    out += " — ledger truncated (no verdict event)\n";
  } else {
    std::string upper = verdict;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    out += util::format(" — %s (%s)\n", upper.c_str(), code.c_str());
  }
  out += util::format("  model '%s', backend %s, seed %llu", model.c_str(),
                      backend.c_str(),
                      static_cast<unsigned long long>(seed));
  out += fault_spec.empty() ? ", clean boundary\n"
                            : ", faults \"" + fault_spec + "\"\n";

  if (!truncated) {
    out += util::format("  verdict earned at step %llu, t=%lld ticks: ",
                        static_cast<unsigned long long>(failing_step),
                        static_cast<long long>(failing_t));
    out += detail + "\n";
    out += "  expected outputs there: ";
    out += expected.empty() ? "{} (none enabled)" : "{" + join(expected) + "}";
    out += "   observed: ";
    out += observed.empty() ? "nothing (silence)" : "'" + observed + "'";
    out += "\n";
  }

  out += util::format(
      "  journal: %zu decisions, %zu inputs, %zu outputs, %zu delays, "
      "%zu injected fault(s)\n",
      decisions, inputs, outputs, delays, faults.size());
  if (!faults.empty()) {
    out += "  fault interleaving:";
    for (const Fault& f : faults) {
      out += util::format(" %s@call%llu(step %llu)", f.kind.c_str(),
                          static_cast<unsigned long long>(f.call),
                          static_cast<unsigned long long>(f.step));
    }
    out += "\n";
  }
  if (!tail.empty()) {
    out += "  last events before the verdict:\n";
    for (const std::string& line : tail) out += "    " + line + "\n";
  }
  return out;
}

std::string Explanation::to_json() const {
  std::string out = "{\"schema\": \"tigat.explain\", \"version\": 1";
  out += ", \"model\": ";
  append_escaped(out, model);
  out += ", \"backend\": ";
  append_escaped(out, backend);
  out += util::format(", \"run\": %zu, \"attempt\": %zu, \"seed\": %llu", run,
                      attempt, static_cast<unsigned long long>(seed));
  out += ", \"fault_spec\": ";
  append_escaped(out, fault_spec);
  out += util::format(", \"truncated\": %s", truncated ? "true" : "false");
  out += ", \"verdict\": ";
  append_escaped(out, verdict);
  out += ", \"code\": ";
  append_escaped(out, code);
  out += ", \"detail\": ";
  append_escaped(out, detail);
  out += util::format(", \"failing_step\": %llu, \"failing_t\": %lld",
                      static_cast<unsigned long long>(failing_step),
                      static_cast<long long>(failing_t));
  out += ", \"expected\": [";
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (i > 0) out += ", ";
    append_escaped(out, expected[i]);
  }
  out += "], \"observed\": ";
  append_escaped(out, observed);
  out += util::format(
      ", \"counts\": {\"decisions\": %zu, \"inputs\": %zu, \"outputs\": %zu, "
      "\"delays\": %zu, \"faults\": %zu}",
      decisions, inputs, outputs, delays, faults.size());
  out += ", \"faults\": [";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"kind\": ";
    append_escaped(out, faults[i].kind);
    out += util::format(", \"call\": %llu, \"step\": %llu}",
                        static_cast<unsigned long long>(faults[i].call),
                        static_cast<unsigned long long>(faults[i].step));
  }
  out += "], \"tail\": [";
  for (std::size_t i = 0; i < tail.size(); ++i) {
    if (i > 0) out += ", ";
    append_escaped(out, tail[i]);
  }
  out += "]}\n";
  return out;
}

}  // namespace tigat::obs
