// Dictionary-compressed zone storage — the shared-substructure "passed
// list" representation that UPPAAL-family tools use to push state-space
// limits (Behrmann et al., UPPAAL 4.0; David et al., UPPAAL-Tiga).
//
// A ZonePool hash-conses DBM ROW vectors (dim raw_t bounds each) into
// one shared dictionary; a PooledFed stores each member zone as dim
// RowIds instead of a dim×dim matrix.  Extrapolation clamps every
// stored bound into a small per-clock vocabulary, so large zone graphs
// share rows massively: a dim-3 LEP zone shrinks from a 256-byte
// inline Dbm (plus vector slot) to 12 bytes of ids, and the dictionary
// itself stays tiny.  This is what makes LEP n = 6 strategy tables fit
// in CI-class memory (SolverOptions::compact_zones).
//
// Concurrency contract (matches the solving pipeline's fork-join
// structure): intern_row() and every PooledFed mutator are SERIAL-ONLY
// — they run in the serial merge sections between parallel waves /
// fixpoint rounds.  Reads (row(), materialize, covers, contains_point)
// are safe from any number of threads as long as no write is
// concurrent; the pool never hands out pointers that survive a later
// intern_row (the slab may grow).
//
// Both the pool slab and PooledFed id vectors report their bytes to
// util::zone_memory(), so the exploration budget and the Table 1
// memory column measure the COMPRESSED footprint when compaction is
// on.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dbm/federation.h"

namespace tigat::dbm {

class ZonePool {
 public:
  using RowId = std::uint32_t;

  explicit ZonePool(std::uint32_t dim);
  ZonePool(const ZonePool&) = delete;
  ZonePool& operator=(const ZonePool&) = delete;
  ~ZonePool();

  // Serial-only; returns the id of the dictionary row equal to
  // row[0..dim), interning it on first sight.
  RowId intern_row(const raw_t* row);

  // Safe for concurrent readers while no intern_row runs.  The pointer
  // is invalidated by the next intern_row.
  [[nodiscard]] const raw_t* row(RowId id) const {
    return slab_.data() + std::size_t{id} * dim_;
  }

  [[nodiscard]] std::uint32_t dimension() const noexcept { return dim_; }
  [[nodiscard]] std::size_t row_count() const noexcept {
    return slab_.size() / dim_;
  }
  // Slab + dictionary index, the pool's own footprint.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  std::uint32_t dim_;
  std::vector<raw_t> slab_;  // row r at slab_[r*dim_ .. r*dim_+dim_)
  std::unordered_map<std::size_t, std::vector<RowId>> index_;
  std::size_t metered_ = 0;  // slab bytes currently reported to the meter
};

// A federation stored as row ids into a ZonePool.  Mirrors the exact
// member-filtering semantics and member ORDER of Fed::add, so a
// PooledFed round-trips to a bit-identical Fed — the compact_zones
// on/off determinism the solver promises (tests/zone_pool_test.cpp).
class PooledFed {
 public:
  PooledFed() = default;
  explicit PooledFed(std::uint32_t dim) : dim_(dim) {}
  PooledFed(const PooledFed& other);
  PooledFed(PooledFed&& other) noexcept;
  PooledFed& operator=(const PooledFed& other);
  PooledFed& operator=(PooledFed&& other) noexcept;
  ~PooledFed();

  [[nodiscard]] std::uint32_t dimension() const noexcept { return dim_; }
  [[nodiscard]] bool is_empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return dim_ == 0 ? 0 : ids_.size() / dim_;
  }

  // Union with Fed::add's semantics: drop the zone if a member covers
  // it, drop members the zone covers, append otherwise.  Serial-only
  // (interns rows).  Returns true iff the zone was appended.
  bool add(const Dbm& zone, ZonePool& pool);

  // Row ids of the most recently appended member — lets callers reuse
  // the interning work add() already did (e.g. the exploration
  // frontier) instead of re-hashing the rows.
  [[nodiscard]] std::span<const ZonePool::RowId> last_zone_ids() const {
    return {ids_.data() + ids_.size() - dim_, dim_};
  }

  // Appends without the inclusion scan — for compressing a Fed whose
  // members are already pairwise-filtered.  Serial-only.
  void append(const Dbm& zone, ZonePool& pool);

  // Replaces the contents with `fed`'s zones (order preserved, no
  // filtering).  Serial-only.
  void assign(const Fed& fed, ZonePool& pool);

  void clear();

  // True iff some single member contains `zone` (the exploration
  // subsumption test; matches Dbm::is_subset_of against each member).
  [[nodiscard]] bool covers(const Dbm& zone, const ZonePool& pool) const;

  // Decodes member `i`.
  [[nodiscard]] Dbm zone(std::size_t i, const ZonePool& pool) const;

  // Decodes the whole federation into `out` (cleared first).  The
  // result is bit-identical — same zones, same order — to the Fed this
  // PooledFed mirrors.
  void materialize(Fed& out, const ZonePool& pool) const;

  [[nodiscard]] bool contains_point(std::span<const std::int64_t> point,
                                    const ZonePool& pool,
                                    std::int64_t scale = 1) const;

  // Bytes of the id vector (the pool slab is accounted separately).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return ids_.size() * sizeof(ZonePool::RowId);
  }

 private:
  // Pointwise relation of uncompressed `zone` vs member `m`.
  [[nodiscard]] Relation member_relation(const Dbm& zone, std::size_t m,
                                         const ZonePool& pool) const;
  void meter_resize(std::size_t new_ids);

  std::uint32_t dim_ = 0;
  std::vector<ZonePool::RowId> ids_;  // member z occupies [z*dim_, (z+1)*dim_)
};

}  // namespace tigat::dbm
