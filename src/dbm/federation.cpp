#include "dbm/federation.h"

#include <algorithm>

#include "util/text.h"

namespace tigat::dbm {

Fed::Fed(Dbm zone) : dim_(zone.dimension()) {
  if (!zone.is_empty()) zones_.push_back(std::move(zone));
}

void Fed::add(Dbm zone) {
  if (zone.is_empty()) return;
  TIGAT_ASSERT(zone.dimension() == dim_, "dimension mismatch");
  // One relation() per member decides both directions (the old
  // subset-then-erase needed two full scans); members that the new
  // zone covers are only dropped once it is certain the zone stays
  // (a later member may still cover the zone when the pairwise
  // non-inclusion invariant was weakened by in-place intersection).
  constexpr std::size_t kStackDrops = 16;
  std::size_t drop_stack[kStackDrops];
  std::size_t drops = 0;
  std::vector<std::size_t> drop_spill;  // allocates only past kStackDrops
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    switch (zones_[i].relation(zone)) {
      case Relation::kEqual:
      case Relation::kSuperset:
        return;  // already covered; nothing was mutated yet
      case Relation::kSubset:
        if (drops < kStackDrops) {
          drop_stack[drops] = i;
        } else {
          drop_spill.push_back(i);
        }
        ++drops;
        break;
      case Relation::kDifferent:
        break;
    }
  }
  if (drops != 0) {
    const auto dropped = [&](std::size_t pos, std::size_t i) {
      return pos < kStackDrops ? drop_stack[pos] == i
                               : drop_spill[pos - kStackDrops] == i;
    };
    std::size_t w = drop_stack[0];  // drop indices are increasing
    std::size_t next = 0;
    for (std::size_t i = w; i < zones_.size(); ++i) {
      if (next < drops && dropped(next, i)) {
        ++next;
        continue;
      }
      zones_[w++] = std::move(zones_[i]);
    }
    zones_.resize(w);
  }
  zones_.push_back(std::move(zone));
}

void Fed::append_raw(Dbm zone) {
  TIGAT_ASSERT(!zone.is_empty() && zone.dimension() == dim_,
               "append_raw of an empty or mismatched zone");
  zones_.push_back(std::move(zone));
}

Fed& Fed::operator|=(const Fed& other) {
  TIGAT_ASSERT(other.dim_ == dim_, "dimension mismatch");
  zones_.reserve(zones_.size() + other.zones_.size());
  for (const Dbm& z : other.zones_) add(z);
  return *this;
}

Fed& Fed::operator|=(const Dbm& zone) {
  add(zone);
  return *this;
}

Fed& Fed::operator&=(const Dbm& zone) {
  TIGAT_ASSERT(zone.dimension() == dim_, "dimension mismatch");
  std::vector<Dbm> out;
  out.reserve(zones_.size());
  for (Dbm& z : zones_) {
    if (z.intersect_with(zone)) out.push_back(std::move(z));
  }
  zones_ = std::move(out);
  return *this;
}

Fed& Fed::operator&=(const Fed& other) {
  *this = intersection(other);
  return *this;
}

Fed Fed::intersection(const Fed& other) const {
  TIGAT_ASSERT(other.dim_ == dim_, "dimension mismatch");
  Fed out(dim_);
  for (const Dbm& a : zones_) {
    for (const Dbm& b : other.zones_) {
      Dbm z(a);
      if (z.intersect_with(b)) out.add(std::move(z));
    }
  }
  return out;
}

Fed Fed::minus(const Dbm& zone) const {
  TIGAT_ASSERT(zone.dimension() == dim_, "dimension mismatch");
  Fed out(dim_);
  if (zone.is_empty()) {
    out.zones_ = zones_;
    return out;
  }
  for (const Dbm& z : zones_) {
    for (Dbm& piece : subtract(z, zone)) out.add(std::move(piece));
  }
  return out;
}

Fed Fed::minus(const Fed& other) const {
  TIGAT_ASSERT(other.dim_ == dim_, "dimension mismatch");
  // Same zone-by-zone carving as repeated minus(Dbm), but ping-ponging
  // between two vectors so each bad zone reuses the capacity the
  // previous iteration left behind instead of allocating a fresh Fed.
  Fed out = *this;
  std::vector<Dbm> scratch;
  for (const Dbm& g : other.zones_) {
    if (out.zones_.empty()) break;
    if (g.is_empty()) continue;
    scratch.clear();
    std::swap(out.zones_, scratch);
    for (const Dbm& z : scratch) {
      for (Dbm& piece : subtract(z, g)) out.add(std::move(piece));
    }
  }
  return out;
}

bool Fed::is_subset_of(const Fed& other) const {
  return minus(other).is_empty();
}

bool Fed::same_set_as(const Fed& other) const {
  return is_subset_of(other) && other.is_subset_of(*this);
}

Fed Fed::up() const {
  Fed out(dim_);
  for (const Dbm& z : zones_) {
    Dbm zz(z);
    zz.up();
    out.add(std::move(zz));
  }
  return out;
}

Fed Fed::down() const {
  Fed out(dim_);
  for (const Dbm& z : zones_) {
    Dbm zz(z);
    zz.down();
    out.add(std::move(zz));
  }
  return out;
}

Fed Fed::pred_t(const Fed& bad) const {
  Fed result(dim_);
  for (const Dbm& b : zones_) {
    Dbm b_down(b);
    b_down.down();
    // pred_t(b, ∅) = b↓; intersect with pred_t(b, g) per bad zone.
    Fed acc(b_down);
    for (const Dbm& g : bad.zones_) {
      if (acc.is_empty()) break;
      Dbm g_down(g);
      g_down.down();

      // Term 1: b↓ \ g↓.
      Fed term(dim_);
      for (Dbm& piece : subtract(b_down, g_down)) term.add(std::move(piece));

      // Term 2: ((b ∩ g↓) \ g)↓ \ g.
      Dbm reach_below(b);
      if (reach_below.intersect_with(g_down)) {
        for (const Dbm& piece : subtract(reach_below, g)) {
          Dbm piece_down(piece);
          piece_down.down();
          for (Dbm& frag : subtract(piece_down, g)) term.add(std::move(frag));
        }
      }
      acc &= term;
    }
    result |= acc;
  }
  result.reduce();
  return result;
}

bool Fed::contains_point(std::span<const std::int64_t> point,
                         std::int64_t scale) const {
  return std::any_of(zones_.begin(), zones_.end(), [&](const Dbm& z) {
    return z.contains_point(point, scale);
  });
}

bool Fed::intersects(const Dbm& zone) const {
  return std::any_of(zones_.begin(), zones_.end(),
                     [&](const Dbm& z) { return z.intersects(zone); });
}

std::optional<std::int64_t> Fed::earliest_entry_delay(
    std::span<const std::int64_t> point, std::int64_t scale) const {
  std::optional<std::int64_t> best;
  for (const Dbm& z : zones_) {
    if (const auto d = z.earliest_entry_delay(point, scale)) {
      if (!best || *d < *best) best = d;
    }
  }
  return best;
}

std::int64_t Fed::safe_delay_bound(std::span<const std::int64_t> point,
                                   std::int64_t scale) const {
  std::vector<DelayInterval> intervals;
  intervals.reserve(zones_.size());
  for (const Dbm& z : zones_) {
    if (const auto iv = z.delay_interval(point, scale)) {
      intervals.push_back(*iv);
    }
  }
  return merge_stay_bound(intervals);
}

void Fed::extrapolate_max_bounds(std::span<const bound_t> max_constants) {
  for (Dbm& z : zones_) z.extrapolate_max_bounds(max_constants);
  reduce();
}

void Fed::reduce() {
  // Two passes: decide first (comparisons need intact zones), move after.
  const std::size_t n = zones_.size();
  if (n <= 1) return;
  // Bound-signature pre-filter: zone_i ⊆ zone_j forces sig_i ≤ sig_j
  // (canonical DBMs compare pointwise), so most of the quadratic
  // relation() scans collapse to one integer comparison.
  std::vector<std::int64_t> sig(n);
  for (std::size_t i = 0; i < n; ++i) sig[i] = zones_[i].bound_signature();
  std::vector<bool> covered(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n && !covered[i]; ++j) {
      if (i == j) continue;
      // Drop strict subsets; for equal zones keep only the first copy.
      if (sig[i] > sig[j]) continue;  // cannot be ⊆
      if (sig[i] == sig[j]) {
        // Equal signatures + inclusion force equal matrices.
        covered[i] = j < i && zones_[i] == zones_[j];
      } else {
        covered[i] = zones_[i].relation(zones_[j]) == Relation::kSubset;
      }
    }
  }
  std::vector<Dbm> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!covered[i]) kept.push_back(std::move(zones_[i]));
  }
  zones_ = std::move(kept);
}

std::size_t Fed::memory_bytes() const noexcept {
  std::size_t total = sizeof(Fed);
  for (const Dbm& z : zones_) total += z.memory_bytes();
  return total;
}

std::string Fed::to_string(std::span<const std::string> names) const {
  if (zones_.empty()) return "false";
  std::vector<std::string> parts;
  parts.reserve(zones_.size());
  for (const Dbm& z : zones_) {
    parts.push_back(zones_.size() == 1 ? z.to_string(names)
                                       : "(" + z.to_string(names) + ")");
  }
  return util::join(parts, " || ");
}

std::string Fed::to_string() const {
  std::vector<std::string> names(dim_);
  for (std::uint32_t i = 0; i < dim_; ++i) names[i] = util::format("x%u", i);
  return to_string(names);
}

}  // namespace tigat::dbm
