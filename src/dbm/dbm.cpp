#include "dbm/dbm.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "util/memory_meter.h"
#include "util/text.h"

namespace tigat::dbm {

std::string bound_to_string(raw_t raw) {
  if (is_infinity(raw)) return "<inf";
  return util::format("%s%d", is_weak(raw) ? "<=" : "<", bound_value(raw));
}

Dbm::Dbm(std::uint32_t dim) : dim_(dim) {
  TIGAT_ASSERT(dim >= 1, "a DBM needs at least the reference clock");
  if (dim_ > kInlineDim) heap_ = new raw_t[cells()];
  meter_add();
}

Dbm::Dbm(const Dbm& other) : dim_(other.dim_), empty_(other.empty_) {
  if (dim_ > kInlineDim) heap_ = new raw_t[cells()];
  std::memcpy(data(), other.data(), cells() * sizeof(raw_t));
  meter_add();
}

Dbm::Dbm(Dbm&& other) noexcept : dim_(other.dim_), empty_(other.empty_) {
  if (dim_ > kInlineDim) {
    heap_ = other.heap_;
    other.heap_ = nullptr;
  } else {
    std::memcpy(inline_, other.inline_, cells() * sizeof(raw_t));
  }
  other.dim_ = 0;
}

Dbm& Dbm::operator=(const Dbm& other) {
  if (this == &other) return *this;
  meter_sub();
  if ((dim_ > kInlineDim) != (other.dim_ > kInlineDim) ||
      (dim_ > kInlineDim && cells() != other.cells())) {
    delete[] heap_;
    heap_ = other.dim_ > kInlineDim ? new raw_t[other.cells()] : nullptr;
  }
  dim_ = other.dim_;
  empty_ = other.empty_;
  std::memcpy(data(), other.data(), cells() * sizeof(raw_t));
  meter_add();
  return *this;
}

Dbm& Dbm::operator=(Dbm&& other) noexcept {
  if (this == &other) return *this;
  meter_sub();
  delete[] heap_;
  heap_ = nullptr;
  dim_ = other.dim_;
  empty_ = other.empty_;
  if (dim_ > kInlineDim) {
    heap_ = other.heap_;
    other.heap_ = nullptr;
  } else {
    std::memcpy(inline_, other.inline_, cells() * sizeof(raw_t));
  }
  other.dim_ = 0;
  return *this;
}

Dbm::~Dbm() {
  meter_sub();
  delete[] heap_;
}

void Dbm::meter_add() const noexcept {
  if (dim_ != 0) util::zone_memory().add(memory_bytes());
}

void Dbm::meter_sub() const noexcept {
  if (dim_ != 0) util::zone_memory().sub(memory_bytes());
}

Dbm Dbm::zero(std::uint32_t dim) {
  Dbm d(dim);
  std::fill(d.data(), d.data() + d.cells(), kLeZero);
  return d;
}

Dbm Dbm::from_raw(std::uint32_t dim, const raw_t* cells) {
  Dbm d(dim);
  std::memcpy(d.data(), cells, d.cells() * sizeof(raw_t));
  return d;
}

Dbm Dbm::universal(std::uint32_t dim) {
  Dbm d(dim);
  std::fill(d.data(), d.data() + d.cells(), kInfinity);
  for (std::uint32_t i = 0; i < dim; ++i) d.set_raw(i, i, kLeZero);
  for (std::uint32_t j = 0; j < dim; ++j) d.set_raw(0, j, kLeZero);
  return d;
}

bool Dbm::close() {
  TIGAT_ASSERT(dim_ != 0, "close() on a moved-from DBM");
  const std::uint32_t n = dim_;
  raw_t* m = data();
  for (std::uint32_t k = 0; k < n; ++k) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const raw_t mik = m[i * n + k];
      if (is_infinity(mik)) continue;
      for (std::uint32_t j = 0; j < n; ++j) {
        const raw_t via = add_bounds(mik, m[k * n + j]);
        if (via < m[i * n + j]) m[i * n + j] = via;
      }
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (m[i * n + i] < kLeZero) {
      empty_ = true;
      return false;
    }
    m[i * n + i] = kLeZero;
  }
  empty_ = false;
  return true;
}

bool Dbm::constrain(std::uint32_t i, std::uint32_t j, raw_t bound) {
  TIGAT_DEBUG_ASSERT(i < dim_ && j < dim_ && i != j, "bad constraint indices");
  TIGAT_ASSERT(!empty_, "constrain() on an empty DBM");
  const std::uint32_t n = dim_;
  raw_t* m = data();
  if (bound >= m[i * n + j]) return true;  // not tighter: no-op
  if (add_bounds(m[j * n + i], bound) < kLeZero) {
    empty_ = true;
    return false;
  }
  m[i * n + j] = bound;
  // Incremental closure through the tightened edge (i → j).
  for (std::uint32_t p = 0; p < n; ++p) {
    const raw_t pi = m[p * n + i];
    if (is_infinity(pi)) continue;
    const raw_t via_i = add_bounds(pi, bound);
    for (std::uint32_t q = 0; q < n; ++q) {
      const raw_t cand = add_bounds(via_i, m[j * n + q]);
      if (cand < m[p * n + q]) m[p * n + q] = cand;
    }
  }
  return true;
}

void Dbm::up() {
  TIGAT_ASSERT(!empty_, "up() on an empty DBM");
  raw_t* m = data();
  for (std::uint32_t i = 1; i < dim_; ++i) m[i * dim_] = kInfinity;
}

void Dbm::down() {
  TIGAT_ASSERT(!empty_, "down() on an empty DBM");
  // Row 0 entries become the loosest lower bounds compatible with the
  // difference constraints; the result is closed (Bengtsson & Yi,
  // algorithm `down`).
  raw_t* m = data();
  for (std::uint32_t j = 1; j < dim_; ++j) {
    raw_t best = kLeZero;
    for (std::uint32_t i = 1; i < dim_; ++i) {
      const raw_t mij = m[i * dim_ + j];
      if (mij < best) best = mij;
    }
    m[j] = best;
  }
}

void Dbm::reset(std::uint32_t k, bound_t value) {
  TIGAT_DEBUG_ASSERT(k >= 1 && k < dim_, "cannot reset the reference clock");
  TIGAT_ASSERT(!empty_, "reset() on an empty DBM");
  const raw_t le_v = make_weak(value);
  const raw_t le_neg_v = make_weak(-value);
  raw_t* m = data();
  for (std::uint32_t j = 0; j < dim_; ++j) {
    if (j == k) continue;
    m[k * dim_ + j] = add_bounds(le_v, m[j]);          // x_k − x_j ≤ v + D(0,j)
    m[j * dim_ + k] = add_bounds(m[j * dim_], le_neg_v);  // x_j − x_k ≤ D(j,0) − v
  }
}

void Dbm::free(std::uint32_t k) {
  TIGAT_DEBUG_ASSERT(k >= 1 && k < dim_, "cannot free the reference clock");
  TIGAT_ASSERT(!empty_, "free() on an empty DBM");
  raw_t* m = data();
  for (std::uint32_t j = 0; j < dim_; ++j) {
    if (j == k) continue;
    m[k * dim_ + j] = kInfinity;
    m[j * dim_ + k] = m[j * dim_];  // x_j − x_k ≤ x_j ≤ D(j,0)
  }
}

bool Dbm::intersect_with(const Dbm& other) {
  TIGAT_ASSERT(dim_ == other.dim_, "dimension mismatch");
  TIGAT_ASSERT(!empty_ && !other.empty_, "intersect on empty DBM");
  bool changed = false;
  raw_t* m = data();
  const raw_t* o = other.data();
  const std::size_t count = cells();
  for (std::size_t idx = 0; idx < count; ++idx) {
    if (o[idx] < m[idx]) {
      m[idx] = o[idx];
      changed = true;
    }
  }
  if (!changed) return true;
  return close();
}

bool Dbm::intersects(const Dbm& other) const {
  Dbm tmp(*this);
  return tmp.intersect_with(other);
}

Relation Dbm::relation(const Dbm& other) const {
  TIGAT_ASSERT(dim_ == other.dim_, "dimension mismatch");
  bool sub = true;
  bool sup = true;
  const raw_t* m = data();
  const raw_t* o = other.data();
  const std::size_t count = cells();
  for (std::size_t idx = 0; idx < count; ++idx) {
    if (m[idx] > o[idx]) sub = false;
    if (m[idx] < o[idx]) sup = false;
    if (!sub && !sup) return Relation::kDifferent;
  }
  if (sub && sup) return Relation::kEqual;
  return sub ? Relation::kSubset : Relation::kSuperset;
}

bool Dbm::is_subset_of(const Dbm& other) const {
  const Relation r = relation(other);
  return r == Relation::kEqual || r == Relation::kSubset;
}

bool Dbm::operator==(const Dbm& other) const {
  return dim_ == other.dim_ && empty_ == other.empty_ &&
         std::equal(data(), data() + cells(), other.data());
}

void Dbm::extrapolate_max_bounds(std::span<const bound_t> max_constants) {
  TIGAT_ASSERT(max_constants.size() == dim_, "one max constant per clock");
  TIGAT_ASSERT(!empty_, "extrapolate on empty DBM");
  // Classical Extra_M (Behrmann, Bouyer, Fleury, Larsen).  All rules
  // read the ORIGINAL matrix, so decisions are taken on `before`.
  raw_t before_inline[kInlineDim * kInlineDim];
  std::vector<raw_t> before_heap;
  const raw_t* before;
  if (dim_ <= kInlineDim) {
    std::memcpy(before_inline, data(), cells() * sizeof(raw_t));
    before = before_inline;
  } else {
    before_heap.assign(data(), data() + cells());
    before = before_heap.data();
  }
  const auto orig = [&](std::uint32_t i, std::uint32_t j) {
    return before[i * dim_ + j];
  };
  raw_t* m = data();
  bool changed = false;
  for (std::uint32_t i = 0; i < dim_; ++i) {
    for (std::uint32_t j = 0; j < dim_; ++j) {
      if (i == j) continue;
      raw_t& b = m[i * dim_ + j];
      const bool bound_above_mi =
          i != 0 && !is_infinity(b) && b > make_weak(max_constants[i]);
      // x_i is everywhere above M(x_i): its exact value is indistinguishable.
      const bool xi_above_mi = i != 0 && orig(0, i) < make_weak(-max_constants[i]);
      // x_j is everywhere above M(x_j).
      const bool xj_above_mj = orig(0, j) < make_weak(-max_constants[j]);
      if (bound_above_mi || xi_above_mi || (i != 0 && xj_above_mj)) {
        b = kInfinity;
        changed = true;
      } else if (i == 0 && xj_above_mj) {
        b = make_strict(-max_constants[j]);
        changed = true;
      }
    }
  }
  if (changed) {
    const bool ok = close();
    TIGAT_ASSERT(ok, "Extra_M can only loosen bounds; emptiness is a bug");
  }
}

bool raw_contains_point(std::uint32_t dim, const raw_t* cells,
                        std::span<const std::int64_t> point,
                        std::int64_t scale) {
  TIGAT_ASSERT(point.size() == dim, "valuation size mismatch");
  TIGAT_DEBUG_ASSERT(point[0] == 0, "reference clock must be 0");
  for (std::uint32_t i = 0; i < dim; ++i) {
    for (std::uint32_t j = 0; j < dim; ++j) {
      if (i == j) continue;
      if (!satisfies(point[i] - point[j], cells[i * dim + j], scale)) {
        return false;
      }
    }
  }
  return true;
}

std::optional<std::int64_t> raw_earliest_entry_delay(
    std::uint32_t dim, const raw_t* cells, std::span<const std::int64_t> point,
    std::int64_t scale) {
  TIGAT_ASSERT(point.size() == dim, "valuation size mismatch");
  // Difference constraints between real clocks are delay-invariant.
  for (std::uint32_t i = 1; i < dim; ++i) {
    for (std::uint32_t j = 1; j < dim; ++j) {
      if (i == j) continue;
      if (!satisfies(point[i] - point[j], cells[i * dim + j], scale)) {
        return std::nullopt;
      }
    }
  }
  std::int64_t lo = 0;
  std::int64_t hi = Dbm::kNoDeadline;
  for (std::uint32_t i = 1; i < dim; ++i) {
    // Upper bound: x_i + δ ≺ c·scale.
    const raw_t upper = cells[i * dim];
    if (!is_infinity(upper)) {
      std::int64_t limit =
          static_cast<std::int64_t>(bound_value(upper)) * scale - point[i];
      if (!is_weak(upper)) limit -= 1;  // strict: last integer tick inside
      hi = std::min(hi, limit);
    }
    // Lower bound: −(x_i + δ) ≺ c·scale  ⇔  δ ⪰ −c·scale − x_i.
    const raw_t lower = cells[i];
    if (!is_infinity(lower)) {
      std::int64_t limit =
          -static_cast<std::int64_t>(bound_value(lower)) * scale - point[i];
      if (!is_weak(lower)) limit += 1;
      lo = std::max(lo, limit);
    }
  }
  if (lo > hi) return std::nullopt;
  return lo;
}

bool Dbm::contains_point(std::span<const std::int64_t> point,
                         std::int64_t scale) const {
  if (empty_) return false;
  return raw_contains_point(dim_, data(), point, scale);
}

std::optional<std::int64_t> Dbm::earliest_entry_delay(
    std::span<const std::int64_t> point, std::int64_t scale) const {
  if (empty_) return std::nullopt;
  return raw_earliest_entry_delay(dim_, data(), point, scale);
}

std::int64_t Dbm::latest_stay_delay(std::span<const std::int64_t> point,
                                    std::int64_t scale) const {
  TIGAT_ASSERT(contains_point(point, scale), "point must be inside the zone");
  const raw_t* m = data();
  std::int64_t hi = kNoDeadline;
  for (std::uint32_t i = 1; i < dim_; ++i) {
    const raw_t upper = m[i * dim_];
    if (is_infinity(upper)) continue;
    std::int64_t limit =
        static_cast<std::int64_t>(bound_value(upper)) * scale - point[i];
    if (!is_weak(upper)) limit -= 1;
    hi = std::min(hi, limit);
  }
  return hi;
}

std::optional<DelayInterval> raw_delay_interval(
    std::uint32_t dim, const raw_t* cells, std::span<const std::int64_t> point,
    std::int64_t scale) {
  TIGAT_ASSERT(point.size() == dim, "valuation size mismatch");
  // Difference constraints between real clocks are delay-invariant: the
  // diagonal through `point` either satisfies them at every δ or never.
  for (std::uint32_t i = 1; i < dim; ++i) {
    for (std::uint32_t j = 1; j < dim; ++j) {
      if (i == j) continue;
      if (!satisfies(point[i] - point[j], cells[i * dim + j], scale)) {
        return std::nullopt;
      }
    }
  }
  DelayInterval iv{0, Dbm::kNoDeadline, false, false};
  for (std::uint32_t i = 1; i < dim; ++i) {
    // Upper bound: x_i + δ ≺ c·scale  ⇔  δ ≺ c·scale − x_i.
    const raw_t upper = cells[i * dim];
    if (!is_infinity(upper)) {
      const std::int64_t limit =
          static_cast<std::int64_t>(bound_value(upper)) * scale - point[i];
      const bool strict = !is_weak(upper);
      if (limit < iv.hi || (limit == iv.hi && strict)) {
        iv.hi = limit;
        iv.hi_strict = strict;
      }
    }
    // Lower bound: −(x_i + δ) ≺ c·scale  ⇔  δ ≻ −c·scale − x_i.
    const raw_t lower = cells[i];
    if (!is_infinity(lower)) {
      const std::int64_t limit =
          -static_cast<std::int64_t>(bound_value(lower)) * scale - point[i];
      const bool strict = !is_weak(lower);
      if (limit > iv.lo || (limit == iv.lo && strict)) {
        iv.lo = limit;
        iv.lo_strict = strict;
      }
    }
  }
  if (iv.lo < 0) {
    iv.lo = 0;
    iv.lo_strict = false;
  }
  if (iv.hi != Dbm::kNoDeadline &&
      (iv.lo > iv.hi || (iv.lo == iv.hi && (iv.lo_strict || iv.hi_strict)))) {
    return std::nullopt;
  }
  return iv;
}

std::optional<DelayInterval> Dbm::delay_interval(
    std::span<const std::int64_t> point, std::int64_t scale) const {
  if (empty_) return std::nullopt;
  return raw_delay_interval(dim_, data(), point, scale);
}

std::int64_t merge_stay_bound(std::vector<DelayInterval>& intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const DelayInterval& a, const DelayInterval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              if (a.lo_strict != b.lo_strict) return !a.lo_strict;
              if (a.hi != b.hi) return a.hi > b.hi;
              return !a.hi_strict && b.hi_strict;
            });
  TIGAT_ASSERT(!intervals.empty() && intervals[0].lo == 0 &&
                   !intervals[0].lo_strict,
               "merge_stay_bound: delay 0 must be covered");
  std::int64_t end = intervals[0].hi;
  bool end_strict = intervals[0].hi_strict;
  for (std::size_t k = 1; k < intervals.size() && end != Dbm::kNoDeadline;
       ++k) {
    const DelayInterval& iv = intervals[k];
    // The union stays gapless iff this interval starts inside (or flush
    // against) the coverage so far; both endpoints exclusive at the
    // same value leave that value densely uncovered.
    const bool connects =
        iv.lo < end || (iv.lo == end && !(iv.lo_strict && end_strict));
    // Sorted by (lo, lo_strict): once one interval fails to connect, no
    // later one can start earlier or looser.
    if (!connects) break;
    if (iv.hi > end || (iv.hi == end && end_strict && !iv.hi_strict)) {
      end = iv.hi;
      end_strict = iv.hi_strict;
    }
  }
  if (end == Dbm::kNoDeadline) return Dbm::kNoDeadline;
  return end_strict ? end - 1 : end;
}

std::size_t Dbm::hash() const noexcept {
  std::size_t h = 0x811c9dc5u ^ dim_;
  const raw_t* m = data();
  const std::size_t count = cells();
  for (std::size_t idx = 0; idx < count; ++idx) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(m[idx]));
    h *= 0x01000193u;
  }
  return h;
}

std::int64_t Dbm::bound_signature() const noexcept {
  // Entries are bounded by kInfinity (≈2³⁰) and there are dim² ≤ 2¹⁶ of
  // them in any sane model, so a plain int64 sum cannot overflow.
  const raw_t* m = data();
  const std::size_t count = cells();
  std::int64_t sum = 0;
  for (std::size_t idx = 0; idx < count; ++idx) sum += m[idx];
  return sum;
}

std::string Dbm::to_string(std::span<const std::string> names) const {
  TIGAT_ASSERT(names.size() >= dim_, "need a name per clock");
  if (empty_) return "false";
  const raw_t* m = data();
  std::vector<std::string> parts;
  for (std::uint32_t i = 0; i < dim_; ++i) {
    for (std::uint32_t j = 0; j < dim_; ++j) {
      if (i == j) continue;
      const raw_t b = m[i * dim_ + j];
      if (is_infinity(b)) continue;
      // Suppress the implicit x ≥ 0 facts to keep output readable.
      if (i == 0 && b == kLeZero) continue;
      const char* op = is_weak(b) ? "<=" : "<";
      if (i == 0) {
        // −x_j ≺ c  printed as  x_j ≥/−c.
        parts.push_back(util::format("%s%s%d", names[j].c_str(),
                                     is_weak(b) ? ">=" : ">", -bound_value(b)));
      } else if (j == 0) {
        parts.push_back(
            util::format("%s%s%d", names[i].c_str(), op, bound_value(b)));
      } else {
        parts.push_back(util::format("%s-%s%s%d", names[i].c_str(),
                                     names[j].c_str(), op, bound_value(b)));
      }
    }
  }
  if (parts.empty()) return "true";
  return util::join(parts, " && ");
}

std::string Dbm::to_string() const {
  std::vector<std::string> names(dim_);
  for (std::uint32_t i = 0; i < dim_; ++i) names[i] = util::format("x%u", i);
  return to_string(names);
}

std::vector<Dbm> subtract(const Dbm& z1, const Dbm& z2) {
  TIGAT_ASSERT(z1.dimension() == z2.dimension(), "dimension mismatch");
  std::vector<Dbm> pieces;
  if (z1.is_empty()) return pieces;
  if (z2.is_empty()) {
    pieces.push_back(z1);
    return pieces;
  }
  const std::uint32_t n = z1.dimension();
  Dbm rest(z1);
  for (std::uint32_t i = 0; i < n && !rest.is_empty(); ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const raw_t facet = z2.at(i, j);
      if (is_infinity(facet)) continue;
      if (rest.at(i, j) <= facet) continue;  // facet does not cut `rest`
      // Piece outside this facet of z2: rest ∧ ¬(x_i − x_j ≺ c).
      Dbm piece(rest);
      if (piece.constrain(j, i, negate_bound(facet))) {
        pieces.push_back(std::move(piece));
      }
      // Continue carving inside the facet; keeps pieces disjoint.
      if (!rest.constrain(i, j, facet)) break;
    }
    if (rest.is_empty()) break;
  }
  return pieces;
}

}  // namespace tigat::dbm
