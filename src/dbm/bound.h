// Encoded clock-difference bounds.
//
// A DBM entry constrains `x_i - x_j ≺ c` with `≺ ∈ {<, ≤}`.  Following
// the classical packed representation (Bengtsson & Yi; UPPAAL's UDBM),
// a bound is one int32:
//
//     raw = 2·c + (≺ is ≤ ? 1 : 0)
//
// so that the integer order on raw values coincides with the tightness
// order on bounds: raw1 < raw2  ⇔  bound1 is strictly stronger.
// `(c, <)` sorts just below `(c, ≤)`, exactly as required.
//
// Infinity (no constraint) is a reserved large value; arithmetic
// saturates on it.  Bound values must stay below kMaxBoundValue, which
// comfortably holds every model constant after scaling.
#pragma once

#include <cstdint>
#include <string>

#include "util/assert.h"

namespace tigat::dbm {

// Encoded bound; see file comment.
using raw_t = std::int32_t;
// Plain bound value (the `c` in `x - y ≺ c`).
using bound_t = std::int32_t;

// Strictness of a bound.
enum class Strict : std::uint8_t {
  kStrict = 0,  // <
  kWeak = 1,    // ≤
};

inline constexpr bound_t kMaxBoundValue = 1 << 28;

// `< ∞`: the absence of a constraint.  Encoded strict so that
// `raw_infinity + raw_infinity` cannot overflow int32 even before the
// saturation test kicks in.
inline constexpr raw_t kInfinity = 2 * kMaxBoundValue;

// `≤ 0`, the diagonal value of every consistent DBM.
inline constexpr raw_t kLeZero = 1;
// `< 0`, tighter than any satisfiable self-difference; marks emptiness.
inline constexpr raw_t kLtZero = 0;

[[nodiscard]] constexpr raw_t make_bound(bound_t value, Strict s) {
  return static_cast<raw_t>(2 * value) + static_cast<raw_t>(s);
}

[[nodiscard]] constexpr raw_t make_weak(bound_t value) {
  return make_bound(value, Strict::kWeak);
}

[[nodiscard]] constexpr raw_t make_strict(bound_t value) {
  return make_bound(value, Strict::kStrict);
}

[[nodiscard]] constexpr bool is_infinity(raw_t raw) { return raw >= kInfinity; }

[[nodiscard]] constexpr bound_t bound_value(raw_t raw) {
  // Arithmetic shift: rounds towards −∞, which is exactly what the
  // encoding needs for negative bounds (e.g. raw −3 = (−2, ≤)... no:
  // raw = 2c+w, so c = (raw - w) / 2 = raw >> 1 for both signs).
  return static_cast<bound_t>(raw >> 1);
}

[[nodiscard]] constexpr Strict strictness(raw_t raw) {
  return static_cast<Strict>(raw & 1);
}

[[nodiscard]] constexpr bool is_weak(raw_t raw) { return (raw & 1) != 0; }

// Bound addition: values add, the result is weak only if both inputs
// are.  Saturates at infinity.
[[nodiscard]] constexpr raw_t add_bounds(raw_t a, raw_t b) {
  if (is_infinity(a) || is_infinity(b)) return kInfinity;
  return a + b - ((a | b) & 1);
}

// Logical negation used by zone complementation / subtraction:
//   ¬(x − y ≤ c)  =  y − x < −c
//   ¬(x − y < c)  =  y − x ≤ −c
// In the encoding this is the involution  raw ↦ 1 − raw.
// Never call on infinity (an absent constraint has no complement).
[[nodiscard]] constexpr raw_t negate_bound(raw_t raw) {
  return 1 - raw;
}

// True when a concrete (scaled) difference satisfies the bound.
// `diff` is in execution ticks, the bound value in model units;
// `scale` converts between them (see semantics/concrete_state.h).
[[nodiscard]] constexpr bool satisfies(std::int64_t diff, raw_t raw,
                                       std::int64_t scale = 1) {
  if (is_infinity(raw)) return true;
  const std::int64_t limit = static_cast<std::int64_t>(bound_value(raw)) * scale;
  return is_weak(raw) ? diff <= limit : diff < limit;
}

// Renders e.g. "<=3", "<∞" as "inf".
[[nodiscard]] std::string bound_to_string(raw_t raw);

}  // namespace tigat::dbm
