#include "dbm/zone_pool.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/assert.h"
#include "util/memory_meter.h"

namespace tigat::dbm {

namespace {

std::size_t row_hash(const raw_t* row, std::uint32_t dim) noexcept {
  std::size_t h = 0xcbf29ce484222325ULL;
  for (std::uint32_t i = 0; i < dim; ++i) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(row[i]));
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Cached registry references — intern_row is hot enough that a name
// lookup per call would show up; resolved once, on the first metered
// call.
obs::Counter& row_lookups() {
  static obs::Counter& c = obs::metrics().counter("zone_pool.row_lookups");
  return c;
}
obs::Counter& row_inserts() {
  static obs::Counter& c = obs::metrics().counter("zone_pool.row_inserts");
  return c;
}

}  // namespace

ZonePool::ZonePool(std::uint32_t dim) : dim_(dim) {
  TIGAT_ASSERT(dim >= 1, "a zone pool needs at least the reference clock");
}

ZonePool::~ZonePool() { util::zone_memory().sub(metered_); }

ZonePool::RowId ZonePool::intern_row(const raw_t* row) {
  if (obs::metrics_enabled()) row_lookups().add(1);
  const std::size_t h = row_hash(row, dim_);
  std::vector<RowId>& chain = index_[h];
  for (const RowId id : chain) {
    if (std::memcmp(this->row(id), row, dim_ * sizeof(raw_t)) == 0) return id;
  }
  if (obs::metrics_enabled()) row_inserts().add(1);
  const std::size_t count = row_count();
  TIGAT_ASSERT(count < 0xffffffffu, "zone pool row ids exhausted");
  const auto id = static_cast<RowId>(count);
  slab_.insert(slab_.end(), row, row + dim_);
  chain.push_back(id);
  util::zone_memory().add(dim_ * sizeof(raw_t));
  metered_ += dim_ * sizeof(raw_t);
  return id;
}

std::size_t ZonePool::memory_bytes() const noexcept {
  std::size_t total = slab_.capacity() * sizeof(raw_t);
  // Index estimate: node + chain storage per distinct hash.
  total += index_.size() * (sizeof(std::size_t) + sizeof(void*) * 2);
  for (const auto& [h, chain] : index_) {
    (void)h;
    total += chain.capacity() * sizeof(RowId);
  }
  return total;
}

PooledFed::PooledFed(const PooledFed& other)
    : dim_(other.dim_), ids_(other.ids_) {
  util::zone_memory().add(memory_bytes());
}

PooledFed::PooledFed(PooledFed&& other) noexcept
    : dim_(other.dim_), ids_(std::move(other.ids_)) {
  other.ids_.clear();
}

PooledFed& PooledFed::operator=(const PooledFed& other) {
  if (this == &other) return *this;
  meter_resize(other.ids_.size());
  dim_ = other.dim_;
  ids_ = other.ids_;
  return *this;
}

PooledFed& PooledFed::operator=(PooledFed&& other) noexcept {
  if (this == &other) return *this;
  util::zone_memory().sub(memory_bytes());
  dim_ = other.dim_;
  ids_ = std::move(other.ids_);
  other.ids_.clear();
  return *this;
}

PooledFed::~PooledFed() { util::zone_memory().sub(memory_bytes()); }

void PooledFed::meter_resize(std::size_t new_ids) {
  const std::size_t old_ids = ids_.size();
  if (new_ids > old_ids) {
    util::zone_memory().add((new_ids - old_ids) * sizeof(ZonePool::RowId));
  } else {
    util::zone_memory().sub((old_ids - new_ids) * sizeof(ZonePool::RowId));
  }
}

Relation PooledFed::member_relation(const Dbm& zone, std::size_t m,
                                    const ZonePool& pool) const {
  // relation(member, zone) with the member decoded row-by-row — the
  // same pointwise comparison as Dbm::relation, minus the copy.
  bool sub = true;  // member ⊆ zone
  bool sup = true;  // member ⊇ zone
  for (std::uint32_t r = 0; r < dim_; ++r) {
    const raw_t* row = pool.row(ids_[m * dim_ + r]);
    for (std::uint32_t c = 0; c < dim_; ++c) {
      const raw_t zb = zone.at(r, c);
      if (row[c] > zb) sub = false;
      if (row[c] < zb) sup = false;
      if (!sub && !sup) return Relation::kDifferent;
    }
  }
  if (sub && sup) return Relation::kEqual;
  return sub ? Relation::kSubset : Relation::kSuperset;
}

bool PooledFed::add(const Dbm& zone, ZonePool& pool) {
  if (zone.is_empty()) return false;
  TIGAT_ASSERT(zone.dimension() == dim_, "dimension mismatch");
  // Mirror Fed::add exactly: one relation per member decides both
  // directions; members covered by the new zone are dropped only once
  // the zone is certain to stay.
  std::vector<std::size_t> drops;
  const std::size_t members = size();
  for (std::size_t m = 0; m < members; ++m) {
    switch (member_relation(zone, m, pool)) {
      case Relation::kEqual:
      case Relation::kSuperset:
        return false;  // an existing member covers the zone
      case Relation::kSubset:
        drops.push_back(m);
        break;
      case Relation::kDifferent:
        break;
    }
  }
  if (!drops.empty()) {
    std::size_t w = drops.front() * dim_;
    std::size_t next = 0;
    for (std::size_t m = drops.front(); m < members; ++m) {
      if (next < drops.size() && drops[next] == m) {
        ++next;
        continue;
      }
      for (std::uint32_t r = 0; r < dim_; ++r) {
        ids_[w++] = ids_[m * dim_ + r];
      }
    }
    meter_resize(w);
    ids_.resize(w);
  }
  append(zone, pool);
  return true;
}

void PooledFed::append(const Dbm& zone, ZonePool& pool) {
  TIGAT_ASSERT(!zone.is_empty() && zone.dimension() == dim_,
               "append of an empty or mismatched zone");
  meter_resize(ids_.size() + dim_);
  raw_t row[64];
  TIGAT_ASSERT(dim_ <= 64, "pooled storage caps the clock count at 64");
  for (std::uint32_t r = 0; r < dim_; ++r) {
    for (std::uint32_t c = 0; c < dim_; ++c) row[c] = zone.at(r, c);
    ids_.push_back(pool.intern_row(row));
  }
}

void PooledFed::assign(const Fed& fed, ZonePool& pool) {
  TIGAT_ASSERT(fed.dimension() == dim_ || fed.is_empty(),
               "dimension mismatch");
  meter_resize(0);
  ids_.clear();
  for (const Dbm& z : fed.zones()) append(z, pool);
}

void PooledFed::clear() {
  meter_resize(0);
  ids_.clear();
}

bool PooledFed::covers(const Dbm& zone, const ZonePool& pool) const {
  const std::size_t members = size();
  for (std::size_t m = 0; m < members; ++m) {
    const Relation rel = member_relation(zone, m, pool);
    if (rel == Relation::kEqual || rel == Relation::kSuperset) return true;
  }
  return false;
}

Dbm PooledFed::zone(std::size_t i, const ZonePool& pool) const {
  raw_t cells[64 * 64];
  TIGAT_ASSERT(dim_ <= 64, "pooled storage caps the clock count at 64");
  for (std::uint32_t r = 0; r < dim_; ++r) {
    std::memcpy(cells + std::size_t{r} * dim_, pool.row(ids_[i * dim_ + r]),
                dim_ * sizeof(raw_t));
  }
  return Dbm::from_raw(dim_, cells);
}

void PooledFed::materialize(Fed& out, const ZonePool& pool) const {
  out.clear();
  const std::size_t members = size();
  for (std::size_t m = 0; m < members; ++m) {
    out.append_raw(zone(m, pool));
  }
}

bool PooledFed::contains_point(std::span<const std::int64_t> point,
                               const ZonePool& pool,
                               std::int64_t scale) const {
  TIGAT_ASSERT(point.size() == dim_, "valuation size mismatch");
  const std::size_t members = size();
  for (std::size_t m = 0; m < members; ++m) {
    bool inside = true;
    for (std::uint32_t r = 0; r < dim_ && inside; ++r) {
      const raw_t* row = pool.row(ids_[m * dim_ + r]);
      for (std::uint32_t c = 0; c < dim_; ++c) {
        if (r == c) continue;
        if (!satisfies(point[r] - point[c], row[c], scale)) {
          inside = false;
          break;
        }
      }
    }
    if (inside) return true;
  }
  return false;
}

}  // namespace tigat::dbm
