// Federations: finite unions of zones over a common clock set.
//
// Zones are closed under intersection but not under union, complement
// or subtraction; the game solver's winning sets and the safe timed
// predecessor operator `pred_t` all live in the lattice of federations.
//
// Invariants: every member zone is closed and non-empty.  Member zones
// may overlap (subtraction produces disjoint pieces, unions generally
// do not); `reduce()` removes zones included in other members.
//
// ── pred_t: the core operator of the timed-game fixpoint ───────────────
//
// pred_t(B, G) = { s | ∃δ ≥ 0 :  s+δ ∈ B  ∧  ∀δ' ∈ [0, δ] : s+δ' ∉ G }
//
// i.e. the states that can delay into the "good" set B while never
// touching the "bad" set G on the way — including at the endpoints,
// which makes the operator conservative under any resolution of
// simultaneous moves (ties go to the opponent, exactly what black-box
// testing needs: the implementation under test controls its outputs).
//
// It is computed exactly by the decomposition proved below:
//
//  (1) union targets decompose:   pred_t(∪_j b_j, G) = ∪_j pred_t(b_j, G)
//      — a witness delay lands in some b_j.
//  (2) union avoidance intersects over convex targets:
//      pred_t(b, ∪_i g_i) = ∩_i pred_t(b, g_i)
//      — taking the minimum witness delay δ = min_i δ_i keeps the
//      endpoint in convex b and the shorter prefix avoids every g_i.
//  (3) convex/convex:
//      pred_t(b, g) = (b↓ \ g↓)  ∪  ( ((b ∩ g↓) \ g)↓ \ g )
//      — first term: reach b on a diagonal that never meets g's past
//        (so it cannot meet g);
//      — second term: endpoints below g (in g↓) but not in g; a
//        trajectory to such an endpoint cannot cross convex g, because
//        the diagonal line meets a convex set in a single interval and
//        the endpoint still has g ahead of it.
//
// Each identity is property-tested against a discretised oracle in
// tests/dbm/federation_predt_test.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dbm/dbm.h"

namespace tigat::dbm {

class Fed {
 public:
  explicit Fed(std::uint32_t dim) : dim_(dim) {}
  explicit Fed(Dbm zone);

  [[nodiscard]] static Fed empty(std::uint32_t dim) { return Fed(dim); }
  [[nodiscard]] static Fed universal(std::uint32_t dim) {
    return Fed(Dbm::universal(dim));
  }

  [[nodiscard]] std::uint32_t dimension() const noexcept { return dim_; }
  [[nodiscard]] bool is_empty() const noexcept { return zones_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return zones_.size(); }
  [[nodiscard]] const std::vector<Dbm>& zones() const noexcept { return zones_; }

  // Union; filters zones already included in a member (and members
  // included in the new zone).  Ignores empty zones.
  void add(Dbm zone);
  // Appends without the inclusion scan — for decoding pooled storage
  // (dbm/zone_pool.h) whose members are already pairwise-filtered.
  // Member order is preserved exactly.
  void append_raw(Dbm zone);
  void clear() noexcept { zones_.clear(); }
  Fed& operator|=(const Fed& other);
  Fed& operator|=(const Dbm& zone);

  Fed& operator&=(const Dbm& zone);
  Fed& operator&=(const Fed& other);
  [[nodiscard]] Fed intersection(const Fed& other) const;

  [[nodiscard]] Fed minus(const Dbm& zone) const;
  [[nodiscard]] Fed minus(const Fed& other) const;

  // Exact inclusion / equality of the denoted point sets (via
  // subtraction, not per-zone inclusion).
  [[nodiscard]] bool is_subset_of(const Fed& other) const;
  [[nodiscard]] bool same_set_as(const Fed& other) const;

  [[nodiscard]] Fed up() const;
  [[nodiscard]] Fed down() const;

  // Safe timed predecessors; see the file comment.
  [[nodiscard]] Fed pred_t(const Fed& bad) const;

  [[nodiscard]] bool contains_point(std::span<const std::int64_t> point,
                                    std::int64_t scale = 1) const;
  [[nodiscard]] bool contains_point(std::initializer_list<std::int64_t> point,
                                    std::int64_t scale = 1) const {
    return contains_point(std::span<const std::int64_t>(point.begin(), point.size()),
                          scale);
  }
  [[nodiscard]] bool intersects(const Dbm& zone) const;

  // Min over member zones of Dbm::earliest_entry_delay.
  [[nodiscard]] std::optional<std::int64_t> earliest_entry_delay(
      std::span<const std::int64_t> point, std::int64_t scale = 1) const;
  [[nodiscard]] std::optional<std::int64_t> earliest_entry_delay(
      std::initializer_list<std::int64_t> point, std::int64_t scale = 1) const {
    return earliest_entry_delay(
        std::span<const std::int64_t>(point.begin(), point.size()), scale);
  }

  // Largest integer D ≥ 0 (in ticks) such that every delay in the
  // dense interval [0, D] keeps `point` inside this federation —
  // Dbm::kNoDeadline when unbounded.  Merges the member zones' dense
  // delay intervals (dbm::merge_stay_bound), so coverage split across
  // members with matching strict/weak facets is honoured exactly;
  // requires the point to be inside.  This is the wait bound a safety
  // strategy hands the executor: delaying past it would let time carry
  // the state out of the winning (safe) region.
  [[nodiscard]] std::int64_t safe_delay_bound(
      std::span<const std::int64_t> point, std::int64_t scale = 1) const;
  [[nodiscard]] std::int64_t safe_delay_bound(
      std::initializer_list<std::int64_t> point, std::int64_t scale = 1) const {
    return safe_delay_bound(
        std::span<const std::int64_t>(point.begin(), point.size()), scale);
  }

  void extrapolate_max_bounds(std::span<const bound_t> max_constants);

  // Drops member zones included in other members (quadratic; cheap for
  // the zone counts game solving produces).
  void reduce();

  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  [[nodiscard]] std::string to_string(std::span<const std::string> names) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint32_t dim_;
  std::vector<Dbm> zones_;
};

}  // namespace tigat::dbm
