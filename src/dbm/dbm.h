// Difference Bound Matrices — the canonical representation of clock
// zones (convex sets of clock valuations definable by conjunctions of
// `x ≺ c`, `x − y ≺ c`).
//
// Conventions (classical; Bengtsson & Yi 2004):
//   * clock 0 is the constant-zero reference clock;
//   * entry (i, j) bounds `x_i − x_j`;
//   * a Dbm at rest is CLOSED (canonical: every entry is the tightest
//     bound implied by the others) and NON-EMPTY unless `is_empty()`;
//   * all mutators keep the closed form, either by construction
//     (`up`, `down`, `reset`, `free`) or by incremental closure
//     (`constrain`), so the O(n³) `close()` only runs after bulk edits
//     such as extrapolation.
//
// Zones carry no location/data information; that pairing happens in
// `semantics::SymbolicState`.
//
// Storage: matrices of dimension ≤ kInlineDim (8 clocks incl. the
// reference) live inline in the object — no heap allocation at all.
// Every case-study model of the paper fits (Smart Light: 4, LEP n=7:
// 8), which removes the malloc/free pair per temporary zone that would
// otherwise serialize the parallel solver on the allocator.  Larger
// dimensions fall back to a heap block.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dbm/bound.h"

namespace tigat::dbm {

// Result of comparing two zones over the same clocks.
enum class Relation : std::uint8_t {
  kEqual,
  kSubset,    // *this ⊂ other (strictly, as sets of valuations... see note)
  kSuperset,  // *this ⊃ other
  kDifferent,
};

// The dense interval of delays δ (in ticks) keeping `point + δ` inside
// one zone.  Unlike latest_stay_delay's integer answer, this preserves
// the strictness of both endpoints, which matters when intervals from
// several zones of a federation are merged: {δ < 3} ∪ {δ ≥ 3} is
// gapless while {δ ≤ 2} ∪ {δ ≥ 3} has a dense gap, yet both quantize
// to the same integer bounds.  `hi == Dbm::kNoDeadline` means upward
// unbounded (hi_strict is then meaningless).  lo is clipped at 0
// (inclusive), so lo_strict only ever records a strict zone bound.
struct DelayInterval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool lo_strict = false;
  bool hi_strict = false;
};

// Largest integer D ≥ 0 such that the dense union of `intervals` covers
// all of [0, D]; Dbm::kNoDeadline when the union is upward unbounded
// from 0.  Requires δ = 0 to be covered (the point is inside some
// zone).  Sorts `intervals` in place; the result depends only on the
// multiset, so callers feeding set-equal federations in any member
// order get bit-identical answers (the walking Strategy and the
// compiled DecisionTable share this helper for exactly that reason).
[[nodiscard]] std::int64_t merge_stay_bound(std::vector<DelayInterval>& intervals);

// ── raw-cell zone math ──────────────────────────────────────────────
//
// The point queries a decision backend runs per decide() call, as free
// functions over a bare dim×dim cell array.  `cells` must hold a
// CLOSED, NON-EMPTY matrix (row-major, entry (i,j) bounds x_i − x_j) —
// exactly what a canonical Dbm stores, what dbm::ZonePool interns, and
// what a mmapped `.tgs` v3 image exposes in place.  The Dbm methods of
// the same names forward here; decision::TgsView calls these directly
// so serving a zone costs zero construction and zero copies.
[[nodiscard]] bool raw_contains_point(std::uint32_t dim, const raw_t* cells,
                                      std::span<const std::int64_t> point,
                                      std::int64_t scale = 1);
[[nodiscard]] std::optional<std::int64_t> raw_earliest_entry_delay(
    std::uint32_t dim, const raw_t* cells, std::span<const std::int64_t> point,
    std::int64_t scale = 1);
[[nodiscard]] std::optional<DelayInterval> raw_delay_interval(
    std::uint32_t dim, const raw_t* cells, std::span<const std::int64_t> point,
    std::int64_t scale = 1);

class Dbm {
 public:
  // Largest dimension stored inline (no heap); see the file comment.
  static constexpr std::uint32_t kInlineDim = 8;

  // An empty-dimension Dbm is only useful as a moved-from shell.
  Dbm() = default;

  // The zone containing exactly the origin (all clocks = 0).
  static Dbm zero(std::uint32_t dim);
  // The zone of all valuations (clocks ≥ 0, otherwise unconstrained).
  static Dbm universal(std::uint32_t dim);
  // Rebuilds a zone from dim×dim raw cells that came out of a closed,
  // non-empty Dbm (e.g. dictionary-compressed storage, dbm/zone_pool.h).
  // No closure runs: the caller vouches the cells are canonical.
  static Dbm from_raw(std::uint32_t dim, const raw_t* cells);

  Dbm(const Dbm&);
  Dbm(Dbm&&) noexcept;
  Dbm& operator=(const Dbm&);
  Dbm& operator=(Dbm&&) noexcept;
  ~Dbm();

  [[nodiscard]] std::uint32_t dimension() const noexcept { return dim_; }
  [[nodiscard]] bool is_empty() const noexcept { return empty_; }

  [[nodiscard]] raw_t at(std::uint32_t i, std::uint32_t j) const {
    TIGAT_DEBUG_ASSERT(i < dim_ && j < dim_, "clock index out of range");
    return data()[i * dim_ + j];
  }

  // Raw write; leaves the matrix possibly non-canonical.  Callers must
  // run close() before using any other operation.  Exposed for the
  // construction of ad-hoc zones in tests and for extrapolation.
  void set_raw(std::uint32_t i, std::uint32_t j, raw_t b) {
    TIGAT_DEBUG_ASSERT(i < dim_ && j < dim_, "clock index out of range");
    data()[i * dim_ + j] = b;
  }

  // Full Floyd–Warshall canonicalisation.  Returns false (and marks the
  // zone empty) on inconsistency.
  bool close();

  // Adds `x_i − x_j ≺ c` and restores the closed form incrementally
  // (O(dim²)).  Returns false iff the zone became empty.
  bool constrain(std::uint32_t i, std::uint32_t j, raw_t bound);

  // Future: removes all upper bounds (`delay`, `Z↑`).
  void up();
  // Past: relaxes all lower bounds to 0 (`Z↓`).  Exact down-closure.
  void down();

  // x_k := value (model units).
  void reset(std::uint32_t k, bound_t value = 0);
  // Removes every constraint on x_k.
  void free(std::uint32_t k);

  // Pointwise-minimum + closure.  Returns false iff the result is empty
  // (in which case *this is marked empty).
  bool intersect_with(const Dbm& other);
  [[nodiscard]] bool intersects(const Dbm& other) const;

  [[nodiscard]] Relation relation(const Dbm& other) const;
  [[nodiscard]] bool is_subset_of(const Dbm& other) const;  // ⊆ (non-strict)
  [[nodiscard]] bool operator==(const Dbm& other) const;

  // Classical maximal-constant extrapolation Extra_M.  `max_constants`
  // holds M(x) per clock (index 0 unused, treated as 0).  Sound
  // abstraction for (game) reachability; see game/solver.h for the
  // discussion.  Re-closes the matrix.
  void extrapolate_max_bounds(std::span<const bound_t> max_constants);

  // Membership of a concrete valuation given in execution ticks, where
  // model-unit bounds are multiplied by `scale`.  `point[0]` must be 0.
  [[nodiscard]] bool contains_point(std::span<const std::int64_t> point,
                                    std::int64_t scale = 1) const;
  [[nodiscard]] bool contains_point(std::initializer_list<std::int64_t> point,
                                    std::int64_t scale = 1) const {
    return contains_point(std::span<const std::int64_t>(point.begin(), point.size()),
                          scale);
  }

  // Earliest δ ≥ 0 (in ticks) with `point + δ` inside this zone, if the
  // diagonal through `point` ever enters it at integer ticks.
  // Strict bounds are honoured: entering `x > 2` at scale 1 yields δ
  // such that x-value = 3.  Returns nullopt when unreachable by delay.
  [[nodiscard]] std::optional<std::int64_t> earliest_entry_delay(
      std::span<const std::int64_t> point, std::int64_t scale = 1) const;
  [[nodiscard]] std::optional<std::int64_t> earliest_entry_delay(
      std::initializer_list<std::int64_t> point, std::int64_t scale = 1) const {
    return earliest_entry_delay(
        std::span<const std::int64_t>(point.begin(), point.size()), scale);
  }

  // Latest δ ≥ 0 such that every δ' ∈ [0, δ] keeps `point + δ'` inside
  // the zone; requires the point to be inside.  kNoDeadline when the
  // zone is upward unbounded through the point.
  static constexpr std::int64_t kNoDeadline = std::int64_t{1} << 62;
  [[nodiscard]] std::int64_t latest_stay_delay(
      std::span<const std::int64_t> point, std::int64_t scale = 1) const;

  // The dense δ-interval through this zone from `point` (see
  // DelayInterval), or nullopt when no δ ≥ 0 enters it — either a
  // delay-invariant difference constraint fails or the diagonal passes
  // entirely below δ = 0.  Unlike earliest_entry_delay this does not
  // quantize to integer ticks; safety strategies merge these intervals
  // across a federation (Fed::safe_delay_bound) before quantizing.
  [[nodiscard]] std::optional<DelayInterval> delay_interval(
      std::span<const std::int64_t> point, std::int64_t scale = 1) const;

  [[nodiscard]] std::size_t hash() const noexcept;

  // Sum of all encoded bounds.  For canonical DBMs of equal dimension,
  // `a ⊆ b` implies pointwise `a ≤ b` and therefore
  // `a.bound_signature() <= b.bound_signature()`; equal signatures plus
  // inclusion force identical matrices.  Used as a cheap inclusion
  // pre-filter by Fed::reduce() (covered in bench_micro_dbm).
  [[nodiscard]] std::int64_t bound_signature() const noexcept;

  // Human-readable constraint list, e.g. "x<=2 && y-x<1".  `names[i]`
  // labels clock i; names[0] is ignored.
  [[nodiscard]] std::string to_string(std::span<const std::string> names) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells() * sizeof(raw_t);
  }

 private:
  explicit Dbm(std::uint32_t dim);

  [[nodiscard]] std::size_t cells() const noexcept {
    return std::size_t{dim_} * dim_;
  }
  [[nodiscard]] raw_t* data() noexcept {
    return dim_ <= kInlineDim ? inline_ : heap_;
  }
  [[nodiscard]] const raw_t* data() const noexcept {
    return dim_ <= kInlineDim ? inline_ : heap_;
  }

  void meter_add() const noexcept;
  void meter_sub() const noexcept;

  std::uint32_t dim_ = 0;
  bool empty_ = false;
  raw_t* heap_ = nullptr;  // owned iff dim_ > kInlineDim
  raw_t inline_[kInlineDim * kInlineDim];
};

// Z1 \ Z2 as a list of pairwise-disjoint, closed, non-empty zones.
// Splits only on the facets of `z2` that actually cut `z1`, which keeps
// the fragment count near the minimum for typical game workloads.
[[nodiscard]] std::vector<Dbm> subtract(const Dbm& z1, const Dbm& z2);

}  // namespace tigat::dbm
