// Transition instances of a network: the atomic discrete steps shared
// by the concrete interpreter (TIOTS semantics, Def. 4) and the
// symbolic zone-graph explorer.
//
// An instance is either an internal (τ) edge of one process or a
// binary synchronisation (sender `a!` + receiver `a?` in two distinct
// processes).  Controllability is resolved from the system's game
// partition: for synchronisations the channel decides; the sender and
// receiver sides always agree because the channel is shared.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tsystem/system.h"

namespace tigat::semantics {

struct EdgeRef {
  std::uint32_t process = 0;
  std::uint32_t edge = 0;

  [[nodiscard]] bool operator==(const EdgeRef&) const = default;
};

struct TransitionInstance {
  EdgeRef primary;                  // internal edge, or the sender
  std::optional<EdgeRef> receiver;  // set for synchronisations
  bool controllable = false;

  [[nodiscard]] bool is_sync() const { return receiver.has_value(); }
  [[nodiscard]] bool operator==(const TransitionInstance&) const = default;

  // "touch!" for syncs (channel view), "P.tau(A->B)" for internal.
  [[nodiscard]] std::string label(const tsystem::System& sys) const;
  // Observable action name for the tester/IMP boundary: the channel
  // name for syncs, nullopt for internal moves.
  [[nodiscard]] std::optional<std::string> channel_name(
      const tsystem::System& sys) const;
};

// Enumerates every transition instance of the network that is
// syntactically possible from the given location vector (guards are NOT
// evaluated here), honouring committed-location priority: if any
// process is in a committed location, only instances involving at least
// one committed process are returned.
[[nodiscard]] std::vector<TransitionInstance> instances_from(
    const tsystem::System& sys, std::span<const tsystem::LocId> locs);

// True when some process is in an urgent or committed location (time
// must not elapse).
[[nodiscard]] bool time_frozen(const tsystem::System& sys,
                               std::span<const tsystem::LocId> locs);

}  // namespace tigat::semantics
