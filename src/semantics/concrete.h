// Concrete TIOTS semantics (Definition 4 of the paper).
//
// States pair a location vector, a data valuation and exact clock
// values.  Time is integral: clock values are held in ticks, where
// `scale` ticks make one model time unit.  Model constants are integer,
// so with scale ≥ 2 every strict/weak guard distinction is observable
// at tick resolution; the default scale of 16 also leaves headroom for
// implementations that answer "somewhere inside the window" at
// sub-unit instants.  Zones remain dense and exact — only *execution*
// is sampled, which mirrors testing real systems with a digital clock.
//
// The interpreter enforces the sanity constraints of Def. 4 (time
// determinism and additivity hold by construction) plus invariants and
// urgent/committed-location urgency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "semantics/transition.h"
#include "tsystem/system.h"

namespace tigat::semantics {

struct ConcreteState {
  std::vector<tsystem::LocId> locs;
  tsystem::DataState data;
  std::vector<std::int64_t> clocks;  // clocks[0] == 0, ticks

  [[nodiscard]] bool operator==(const ConcreteState&) const = default;
};

class ConcreteSemantics {
 public:
  // No deadline / unbounded delay marker.
  static constexpr std::int64_t kNoDeadline = std::int64_t{1} << 62;

  ConcreteSemantics(const tsystem::System& system, std::int64_t scale = 16);

  [[nodiscard]] const tsystem::System& system() const { return *sys_; }
  [[nodiscard]] std::int64_t scale() const { return scale_; }

  [[nodiscard]] ConcreteState initial() const;

  // Invariant conjunction of all current locations.
  [[nodiscard]] bool invariant_holds(const ConcreteState& s) const;

  // Largest delay (ticks) permitted by invariants and urgency; 0 when
  // time is frozen, kNoDeadline when unbounded.
  [[nodiscard]] std::int64_t max_delay(const ConcreteState& s) const;

  [[nodiscard]] bool can_delay(const ConcreteState& s, std::int64_t ticks) const {
    return ticks <= max_delay(s);
  }
  // Requires can_delay.
  void delay(ConcreteState& s, std::int64_t ticks) const;

  // Guard check (clock + data) for an instance from s's locations.
  [[nodiscard]] bool enabled(const ConcreteState& s,
                             const TransitionInstance& t) const;

  // All guard-enabled instances (committed priority already applied).
  [[nodiscard]] std::vector<TransitionInstance> enabled_instances(
      const ConcreteState& s) const;

  // Fires a transition; requires enabled().
  void fire(ConcreteState& s, const TransitionInstance& t) const;

  [[nodiscard]] std::string to_string(const ConcreteState& s) const;

 private:
  [[nodiscard]] bool edge_guard_holds(const ConcreteState& s,
                                      const EdgeRef& ref) const;
  void apply_edge_effects(ConcreteState& s, const EdgeRef& ref) const;

  const tsystem::System* sys_;
  std::int64_t scale_;
};

}  // namespace tigat::semantics
