#include "semantics/symbolic.h"

#include <algorithm>
#include <cstring>

#include "obs/progress.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace tigat::semantics {

using dbm::Dbm;
using dbm::Fed;
using dbm::raw_t;
using tsystem::ClockConstraint;
using tsystem::Edge;

std::size_t DiscreteKey::hash() const noexcept {
  std::size_t h = data.hash();
  for (const tsystem::LocId l : locs) {
    h ^= l + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

SymbolicGraph::SymbolicGraph(const tsystem::System& system,
                             ExplorationOptions options)
    : sys_(&system), options_(std::move(options)) {
  TIGAT_ASSERT(system.finalized(), "system must be finalized");
  max_constants_ = system.max_constants();
  if (!options_.extra_max_constants.empty()) {
    TIGAT_ASSERT(options_.extra_max_constants.size() == max_constants_.size(),
                 "extra max constants must match clock count");
    for (std::size_t i = 0; i < max_constants_.size(); ++i) {
      max_constants_[i] =
          std::max(max_constants_[i], options_.extra_max_constants[i]);
    }
  }
  if (options_.compact_zones) {
    pool_ = std::make_unique<dbm::ZonePool>(sys_->clock_count());
  }
}

std::optional<std::uint32_t> SymbolicGraph::find_key(
    const DiscreteKey& key) const {
  const InternMap::Entry* e = intern_.find(key, key.hash());
  if (e == nullptr || e->id == InternMap::kUnassigned) return std::nullopt;
  return e->id;
}

void SymbolicGraph::fill_invariant(InternMap::Entry& e) const {
  // Invariants depend only on the location vector, so they are
  // hash-consed in a side map: at LEP n = 6 scale, ~11M keys share a
  // few dozen invariant zones instead of each carrying a Dbm.
  std::size_t h = 0x811c9dc5u;
  for (const tsystem::LocId l : e.key.locs) {
    h ^= l + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  std::vector<tsystem::LocId> locs = e.key.locs;
  auto [inv_entry, inserted] = invariants_.intern(std::move(locs), h, 0);
  if (inserted) {
    Dbm inv = Dbm::universal(sys_->clock_count());
    bool alive = true;
    const auto& procs = sys_->processes();
    for (std::uint32_t p = 0; p < procs.size() && alive; ++p) {
      for (const ClockConstraint& c :
           procs[p].locations()[inv_entry->key[p]].invariant) {
        if (!inv.constrain(c.i, c.j, c.bound)) {
          alive = false;
          break;
        }
      }
    }
    TIGAT_ASSERT(alive, "key with unsatisfiable invariant interned");
    inv_entry->aux = std::move(inv);
  }
  e.aux = &inv_entry->aux;
}

void SymbolicGraph::seal_wave() {
  const auto fresh = intern_.seal_wave();
  // Seal the invariant side map too: its ids go unused, but sealing
  // drains the pending lists and lets overloaded stripes rehash (a
  // model with many distinct location vectors would otherwise degrade
  // to linear chain scans).
  invariants_.seal_wave();
  if (intern_.size() > options_.max_keys) {
    throw ExplorationLimit("discrete state limit exceeded");
  }
  const std::uint32_t dim = sys_->clock_count();
  if (pool_ != nullptr) {
    reach_pooled_.resize(intern_.size(), dbm::PooledFed(dim));
  } else {
    reach_.resize(intern_.size(), Fed(dim));
  }
  (void)fresh;
}

const Fed& SymbolicGraph::reach(std::uint32_t k) const {
  TIGAT_ASSERT(pool_ == nullptr,
               "plain reach() access with compact_zones on; pass a scratch");
  return reach_[k];
}

const Fed& SymbolicGraph::reach(std::uint32_t k, Fed& scratch) const {
  if (pool_ == nullptr) return reach_[k];
  reach_pooled_[k].materialize(scratch, *pool_);
  return scratch;
}

const dbm::PooledFed& SymbolicGraph::reach_pooled(std::uint32_t k) const {
  TIGAT_ASSERT(pool_ != nullptr, "pooled reach access in plain mode");
  return reach_pooled_[k];
}

void SymbolicGraph::collect_guard(const EdgeRef& ref, Dbm& zone,
                                  bool& alive) const {
  if (!alive) return;
  const Edge& e = sys_->processes()[ref.process].edges()[ref.edge];
  for (const ClockConstraint& c : e.guard) {
    if (!zone.constrain(c.i, c.j, c.bound)) {
      alive = false;
      return;
    }
  }
}

namespace {

// Final value per reset clock; later writes win (sender before
// receiver, matching the concrete semantics).
std::vector<tsystem::ClockReset> merged_resets(const tsystem::System& sys,
                                               const TransitionInstance& t) {
  std::vector<tsystem::ClockReset> out;
  const auto apply = [&](const EdgeRef& ref) {
    const Edge& e = sys.processes()[ref.process].edges()[ref.edge];
    for (const auto& r : e.resets) {
      bool found = false;
      for (auto& existing : out) {
        if (existing.clock == r.clock) {
          existing.value = r.value;
          found = true;
          break;
        }
      }
      if (!found) out.push_back(r);
    }
  };
  apply(t.primary);
  if (t.receiver) apply(*t.receiver);
  return out;
}

void apply_discrete_effects(const tsystem::System& sys, DiscreteKey& key,
                            const EdgeRef& ref) {
  const Edge& e = sys.processes()[ref.process].edges()[ref.edge];
  key.locs[ref.process] = e.dst;
  for (const auto& a : e.assignments) {
    const std::int64_t index =
        a.index.is_null() ? 0 : a.index.eval(key.data, sys.data());
    const std::int64_t value = a.rhs.eval(key.data, sys.data());
    sys.data().checked_store(key.data, a.var, index, value);
  }
}

}  // namespace

std::optional<std::pair<DiscreteKey, Dbm>> SymbolicGraph::apply(
    std::uint32_t src_key, const Dbm& zone,
    const TransitionInstance& inst) const {
  // Data guards must already hold (instances are enumerated per key).
  Dbm z(zone);
  bool alive = true;
  collect_guard(inst.primary, z, alive);
  if (inst.receiver) collect_guard(*inst.receiver, z, alive);
  if (!alive) return std::nullopt;

  DiscreteKey key = this->key(src_key);
  apply_discrete_effects(*sys_, key, inst.primary);
  if (inst.receiver) apply_discrete_effects(*sys_, key, *inst.receiver);

  for (const auto& r : merged_resets(*sys_, inst)) z.reset(r.clock, r.value);

  // Target invariant, then delay closure (unless time is frozen there).
  const auto& procs = sys_->processes();
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    for (const ClockConstraint& c : procs[p].locations()[key.locs[p]].invariant) {
      if (!z.constrain(c.i, c.j, c.bound)) return std::nullopt;
    }
  }
  if (!time_frozen(*sys_, key.locs)) {
    z.up();
    for (std::uint32_t p = 0; p < procs.size(); ++p) {
      for (const ClockConstraint& c :
           procs[p].locations()[key.locs[p]].invariant) {
        const bool ok = z.constrain(c.i, c.j, c.bound);
        TIGAT_ASSERT(ok, "delay closure emptied a non-empty zone");
      }
    }
  }
  return std::make_pair(std::move(key), std::move(z));
}

void SymbolicGraph::explore(util::ThreadPool* pool) {
  if (explored_) return;
  TIGAT_SPAN("explore");
  const std::uint32_t dim = sys_->clock_count();

  // Initial symbolic state.
  DiscreteKey init;
  for (const auto& p : sys_->processes()) init.locs.push_back(p.initial());
  init.data = sys_->data().initial_state();

  {
    auto [entry, inserted] = intern_.intern(std::move(init), init.hash(), 0);
    TIGAT_ASSERT(inserted, "fresh interner already held the initial key");
    fill_invariant(*entry);
    seal_wave();  // initial key gets id 0
  }
  Dbm z0 = Dbm::zero(dim);
  {
    const std::uint32_t k0 = 0;
    bool alive = !invariant(k0).is_empty();
    Dbm z(z0);
    if (alive) alive = z.intersect_with(invariant(k0));
    TIGAT_ASSERT(alive, "initial state violates invariants");
    if (!time_frozen(*sys_, key(k0).locs)) {
      z.up();
      const bool ok = z.intersect_with(invariant(k0));
      TIGAT_ASSERT(ok, "initial delay closure empty");
    }
    if (options_.extrapolate) z.extrapolate_max_bounds(max_constants_);
    z0 = z;
    if (pool_ != nullptr) {
      reach_pooled_[k0].add(z0, *pool_);
    } else {
      reach_[k0].add(z0);
    }
  }

  // A FIFO queue drains in waves (everything currently queued is one
  // wave; its successors form the next).  Successor EXPANSION — the
  // expensive Dbm work — only reads state fixed before the wave (key
  // entries, invariants, the wave's own zones), so it fans out over
  // the pool into per-item slots.  Each successor's key is interned
  // into the striped map right in the worker, tagged with its rank
  // (wave item index, successor index) — the position the serial FIFO
  // would process it at.  seal_wave() then numbers the new keys in
  // rank order, and the serial merge records edges and applies
  // subsumption in item order: the numbering, edge list and reach sets
  // equal the serial algorithm's exactly, at any thread count.
  //
  // Waves are processed in BATCHES (expand a slice, seal, merge it,
  // next slice) so the uncompressed successor buffers stay bounded —
  // an n = 6 LEP frontier holds millions of zones.  Batching preserves
  // the numbering: slices cover the wave in index order, and a key's
  // first discovery lands in the earliest slice that mentions it, so
  // per-slice rank-sorted sealing equals whole-wave sealing.  In
  // compact mode the frontier itself is stored as row ids (the rows
  // were interned when the zone entered reach) and decoded per item.
  struct Successor {
    InternMap::Entry* entry;
    Dbm zone;
    TransitionInstance inst;
  };
  constexpr std::uint64_t kRankShift = 24;  // successors per wave item
  constexpr std::size_t kExpandBatch = 1u << 15;
  const bool compact = pool_ != nullptr;
  std::vector<std::pair<std::uint32_t, Dbm>> wave, next_wave;   // plain
  std::vector<std::uint32_t> wave_keys, next_wave_keys;         // compact
  std::vector<dbm::ZonePool::RowId> wave_rows, next_wave_rows;  // compact
  std::vector<std::vector<Successor>> expanded;
  if (compact) {
    wave_keys.push_back(0);
    raw_t row[64];
    TIGAT_ASSERT(dim <= 64, "pooled storage caps the clock count at 64");
    for (std::uint32_t r = 0; r < dim; ++r) {
      for (std::uint32_t c = 0; c < dim; ++c) row[c] = z0.at(r, c);
      wave_rows.push_back(pool_->intern_row(row));
    }
  } else {
    wave.emplace_back(0u, std::move(z0));
  }
  const auto wave_count = [&] {
    return compact ? wave_keys.size() : wave.size();
  };
  const auto wave_key_at = [&](std::size_t i) {
    return compact ? wave_keys[i] : wave[i].first;
  };
  // Compact mode decodes the frontier zone into `into` and returns it;
  // plain mode returns the stored zone by reference (no copy on the
  // default path).
  const auto wave_zone_at = [&](std::size_t i, Dbm& into) -> const Dbm& {
    if (!compact) return wave[i].second;
    raw_t cells[64 * 64];
    for (std::uint32_t r = 0; r < dim; ++r) {
      std::memcpy(cells + std::size_t{r} * dim,
                  pool_->row(wave_rows[i * dim + r]), dim * sizeof(raw_t));
    }
    into = Dbm::from_raw(dim, cells);
    return into;
  };

  const util::Stopwatch watch;
  std::size_t zone_count = 1;
  std::size_t merged = 0;
  std::uint64_t wave_index = 0;
  while (wave_count() != 0) {
    ++wave_index;
    const std::size_t wave_size = wave_count();
    for (std::size_t base = 0; base < wave_size; base += kExpandBatch) {
      const std::size_t count = std::min(kExpandBatch, wave_size - base);
      obs::progress().tick("explore", intern_.size(), zone_count, wave_index);
      const double batch_start = watch.seconds();
      expanded.assign(count, {});
      const auto expand = [&](std::size_t begin, std::size_t end) {
        for (std::size_t li = begin; li < end; ++li) {
          // Budget checks live here too, not only in the merge: a wide
          // batch must not overshoot the deadline or the zone-byte cap
          // by a whole batch's worth of expansion work.  (Throws
          // propagate through ThreadPool::parallel_for.)
          if (options_.deadline_seconds > 0.0 &&
              watch.seconds() > options_.deadline_seconds) {
            throw ExplorationLimit("exploration deadline exceeded");
          }
          if (util::zone_memory().current() > options_.max_zone_bytes) {
            throw ExplorationLimit("zone memory budget exceeded");
          }
          // Sealed-key count is frozen during a batch, so this check is
          // deterministic; it bounds the overshoot past max_keys to one
          // batch's fan-out (seal_wave re-checks exactly).
          if (intern_.size() > options_.max_keys) {
            throw ExplorationLimit("discrete state limit exceeded");
          }
          const std::size_t gi = base + li;
          const std::uint32_t k = wave_key_at(gi);
          Dbm decoded;
          const Dbm& z = wave_zone_at(gi, decoded);
          std::vector<Successor>& out = expanded[li];
          for (const TransitionInstance& inst :
               instances_from(*sys_, key(k).locs)) {
            // Data guards: evaluated once per (key, instance).
            const auto data_ok = [&](const EdgeRef& ref) {
              const Edge& e = sys_->processes()[ref.process].edges()[ref.edge];
              return e.data_guard.eval_bool(key(k).data, sys_->data());
            };
            if (!data_ok(inst.primary)) continue;
            if (inst.receiver && !data_ok(*inst.receiver)) continue;

            auto next = apply(k, z, inst);
            if (!next) continue;
            if (options_.extrapolate) {
              next->second.extrapolate_max_bounds(max_constants_);
            }
            TIGAT_ASSERT(out.size() < (1u << kRankShift),
                         "successor fan-out exceeds the rank encoding");
            const std::uint64_t rank =
                (static_cast<std::uint64_t>(gi) << kRankShift) | out.size();
            const std::size_t h = next->first.hash();
            auto [entry, inserted] =
                intern_.intern(std::move(next->first), h, rank);
            if (inserted) fill_invariant(*entry);
            out.push_back({entry, std::move(next->second), inst});
          }
        }
      };
      if (pool != nullptr) {
        pool->parallel_for(count, 1, expand, "explore.expand");
      } else {
        TIGAT_SPAN("explore.expand");
        expand(0, count);
      }
      const double expand_end = watch.seconds();
      expand_seconds_ += expand_end - batch_start;

      {
        TIGAT_SPAN("explore.seal");
        seal_wave();
      }
      TIGAT_SPAN("explore.merge");
      for (std::size_t li = 0; li < count; ++li) {
        const std::uint32_t k = wave_key_at(base + li);
        if (options_.deadline_seconds > 0.0 && (++merged & 1023u) == 0 &&
            watch.seconds() > options_.deadline_seconds) {
          throw ExplorationLimit("exploration deadline exceeded");
        }
        for (Successor& s : expanded[li]) {
          const std::uint32_t kd = s.entry->id;
          // Record the symbolic edge once per (src, instance, dst); the
          // out-index doubles as the exact dedup structure.
          if (out_building_.size() < intern_.size()) {
            out_building_.resize(intern_.size());
          }
          bool duplicate = false;
          for (const std::uint32_t ei : out_building_[k]) {
            if (edges_[ei].dst == kd && edges_[ei].inst == s.inst) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) {
            out_building_[k].push_back(
                static_cast<std::uint32_t>(edges_.size()));
            // Explicit +12.5% growth: at LEP n = 6 the edge list is
            // ~3 GB, so the default doubling would spike the peak by
            // that much on one realloc.
            if (edges_.size() == edges_.capacity() &&
                edges_.capacity() > (std::size_t{1} << 20)) {
              edges_.reserve(edges_.capacity() + edges_.capacity() / 8);
            }
            edges_.push_back({k, kd, s.inst});
          }

          // Subsumption: skip zones already covered by a single member.
          const bool covered =
              compact ? reach_pooled_[kd].covers(s.zone, *pool_)
                      : std::any_of(reach_[kd].zones().begin(),
                                    reach_[kd].zones().end(),
                                    [&](const Dbm& e) {
                                      return s.zone.is_subset_of(e);
                                    });
          if (covered) continue;
          if (compact) {
            const bool appended = reach_pooled_[kd].add(s.zone, *pool_);
            TIGAT_ASSERT(appended,
                         "zone passed the subsumption check but add() "
                         "dropped it");
            next_wave_keys.push_back(kd);
            // Reuse the row ids add() just interned for this zone.
            const auto ids = reach_pooled_[kd].last_zone_ids();
            next_wave_rows.insert(next_wave_rows.end(), ids.begin(),
                                  ids.end());
          } else {
            reach_[kd].add(s.zone);
            next_wave.emplace_back(kd, std::move(s.zone));
          }
          ++zone_count;
          if (zone_count > options_.max_zones) {
            throw ExplorationLimit("zone limit exceeded");
          }
          if (util::zone_memory().current() > options_.max_zone_bytes) {
            throw ExplorationLimit("zone memory budget exceeded");
          }
        }
      }
      merge_seconds_ += watch.seconds() - expand_end;
    }
    if (compact) {
      wave_keys.swap(next_wave_keys);
      wave_rows.swap(next_wave_rows);
      next_wave_keys.clear();
      next_wave_rows.clear();
    } else {
      wave.swap(next_wave);
      next_wave.clear();
    }
  }

  {
    TIGAT_SPAN("explore.index");
    const double t0 = watch.seconds();
    build_edge_index();
    merge_seconds_ += watch.seconds() - t0;
  }
  explored_ = true;
}

void SymbolicGraph::build_edge_index() {
  const std::size_t n = intern_.size();
  out_building_.resize(n);
  // Flatten the incrementally built out-index and count-prefix-fill the
  // in-index, both as CSR (offsets + one flat array): at large n the
  // per-key vector headers dominate the index payload.
  out_off_.assign(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k) {
    out_off_[k + 1] =
        out_off_[k] + static_cast<std::uint32_t>(out_building_[k].size());
  }
  out_flat_.resize(edges_.size());
  for (std::size_t k = 0; k < n; ++k) {
    std::copy(out_building_[k].begin(), out_building_[k].end(),
              out_flat_.begin() + out_off_[k]);
  }
  out_building_.clear();
  out_building_.shrink_to_fit();

  in_off_.assign(n + 1, 0);
  for (const SymbolicEdge& e : edges_) ++in_off_[e.dst + 1];
  for (std::size_t k = 0; k < n; ++k) in_off_[k + 1] += in_off_[k];
  in_flat_.resize(edges_.size());
  std::vector<std::uint32_t> cursor(in_off_.begin(), in_off_.end() - 1);
  for (std::uint32_t i = 0; i < edges_.size(); ++i) {
    in_flat_[cursor[edges_[i].dst]++] = i;
  }
}

std::span<const std::uint32_t> SymbolicGraph::edges_out(
    std::uint32_t k) const {
  return {out_flat_.data() + out_off_[k], out_off_[k + 1] - out_off_[k]};
}

std::span<const std::uint32_t> SymbolicGraph::edges_in(std::uint32_t k) const {
  return {in_flat_.data() + in_off_[k], in_off_[k + 1] - in_off_[k]};
}

Fed SymbolicGraph::pred_through(const SymbolicEdge& e,
                                const Fed& target) const {
  Fed result(sys_->clock_count());
  const auto resets = merged_resets(*sys_, e.inst);
  for (const Dbm& w : target.zones()) {
    Dbm z(w);
    bool alive = true;
    // Pin every reset clock to its written value, then free it.
    for (const auto& r : resets) {
      if (!z.constrain(r.clock, 0, dbm::make_weak(r.value)) ||
          !z.constrain(0, r.clock, dbm::make_weak(-r.value))) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    for (const auto& r : resets) z.free(r.clock);
    collect_guard(e.inst.primary, z, alive);
    if (e.inst.receiver) collect_guard(*e.inst.receiver, z, alive);
    if (alive) result.add(std::move(z));
  }
  return result;
}

SymbolicGraph::Stats SymbolicGraph::stats() const {
  Stats s;
  s.keys = intern_.size();
  s.edges = edges_.size();
  if (pool_ != nullptr) {
    for (const dbm::PooledFed& f : reach_pooled_) s.zones += f.size();
    s.pool_rows = pool_->row_count();
    s.pool_bytes = pool_->memory_bytes();
  } else {
    for (const Fed& f : reach_) s.zones += f.size();
  }
  s.peak_zone_bytes = util::zone_memory().peak();
  s.expand_seconds = expand_seconds_;
  s.merge_seconds = merge_seconds_;
  return s;
}

}  // namespace tigat::semantics
