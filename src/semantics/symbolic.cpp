#include "semantics/symbolic.h"

#include <algorithm>

#include "util/assert.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace tigat::semantics {

using dbm::Dbm;
using dbm::Fed;
using tsystem::ClockConstraint;
using tsystem::Edge;

std::size_t DiscreteKey::hash() const noexcept {
  std::size_t h = data.hash();
  for (const tsystem::LocId l : locs) {
    h ^= l + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

SymbolicGraph::SymbolicGraph(const tsystem::System& system,
                             ExplorationOptions options)
    : sys_(&system), options_(std::move(options)) {
  TIGAT_ASSERT(system.finalized(), "system must be finalized");
  max_constants_ = system.max_constants();
  if (!options_.extra_max_constants.empty()) {
    TIGAT_ASSERT(options_.extra_max_constants.size() == max_constants_.size(),
                 "extra max constants must match clock count");
    for (std::size_t i = 0; i < max_constants_.size(); ++i) {
      max_constants_[i] =
          std::max(max_constants_[i], options_.extra_max_constants[i]);
    }
  }
}

std::optional<std::uint32_t> SymbolicGraph::find_key(
    const DiscreteKey& key) const {
  const auto it = key_lookup_.find(key.hash());
  if (it == key_lookup_.end()) return std::nullopt;
  for (const std::uint32_t k : it->second) {
    if (keys_[k] == key) return k;
  }
  return std::nullopt;
}

std::uint32_t SymbolicGraph::intern_key(DiscreteKey key) {
  if (const auto existing = find_key(key)) return *existing;
  if (keys_.size() >= options_.max_keys) {
    throw ExplorationLimit("discrete state limit exceeded");
  }
  const auto index = static_cast<std::uint32_t>(keys_.size());
  key_lookup_[key.hash()].push_back(index);

  // Cache the invariant zone of the new key.
  Dbm inv = Dbm::universal(sys_->clock_count());
  bool alive = true;
  const auto& procs = sys_->processes();
  for (std::uint32_t p = 0; p < procs.size() && alive; ++p) {
    for (const ClockConstraint& c :
         procs[p].locations()[key.locs[p]].invariant) {
      if (!inv.constrain(c.i, c.j, c.bound)) {
        alive = false;
        break;
      }
    }
  }
  TIGAT_ASSERT(alive, "key with unsatisfiable invariant interned");
  keys_.push_back(std::move(key));
  reach_.emplace_back(sys_->clock_count());
  invariants_.push_back(std::move(inv));
  return index;
}

const Dbm& SymbolicGraph::invariant(std::uint32_t k) const {
  return invariants_[k];
}

void SymbolicGraph::collect_guard(const EdgeRef& ref, Dbm& zone,
                                  bool& alive) const {
  if (!alive) return;
  const Edge& e = sys_->processes()[ref.process].edges()[ref.edge];
  for (const ClockConstraint& c : e.guard) {
    if (!zone.constrain(c.i, c.j, c.bound)) {
      alive = false;
      return;
    }
  }
}

namespace {

// Final value per reset clock; later writes win (sender before
// receiver, matching the concrete semantics).
std::vector<tsystem::ClockReset> merged_resets(const tsystem::System& sys,
                                               const TransitionInstance& t) {
  std::vector<tsystem::ClockReset> out;
  const auto apply = [&](const EdgeRef& ref) {
    const Edge& e = sys.processes()[ref.process].edges()[ref.edge];
    for (const auto& r : e.resets) {
      bool found = false;
      for (auto& existing : out) {
        if (existing.clock == r.clock) {
          existing.value = r.value;
          found = true;
          break;
        }
      }
      if (!found) out.push_back(r);
    }
  };
  apply(t.primary);
  if (t.receiver) apply(*t.receiver);
  return out;
}

void apply_discrete_effects(const tsystem::System& sys, DiscreteKey& key,
                            const EdgeRef& ref) {
  const Edge& e = sys.processes()[ref.process].edges()[ref.edge];
  key.locs[ref.process] = e.dst;
  for (const auto& a : e.assignments) {
    const std::int64_t index =
        a.index.is_null() ? 0 : a.index.eval(key.data, sys.data());
    const std::int64_t value = a.rhs.eval(key.data, sys.data());
    sys.data().checked_store(key.data, a.var, index, value);
  }
}

}  // namespace

std::optional<std::pair<DiscreteKey, Dbm>> SymbolicGraph::apply(
    std::uint32_t src_key, const Dbm& zone,
    const TransitionInstance& inst) const {
  // Data guards must already hold (instances are enumerated per key).
  Dbm z(zone);
  bool alive = true;
  collect_guard(inst.primary, z, alive);
  if (inst.receiver) collect_guard(*inst.receiver, z, alive);
  if (!alive) return std::nullopt;

  DiscreteKey key = keys_[src_key];
  apply_discrete_effects(*sys_, key, inst.primary);
  if (inst.receiver) apply_discrete_effects(*sys_, key, *inst.receiver);

  for (const auto& r : merged_resets(*sys_, inst)) z.reset(r.clock, r.value);

  // Target invariant, then delay closure (unless time is frozen there).
  const auto& procs = sys_->processes();
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    for (const ClockConstraint& c : procs[p].locations()[key.locs[p]].invariant) {
      if (!z.constrain(c.i, c.j, c.bound)) return std::nullopt;
    }
  }
  if (!time_frozen(*sys_, key.locs)) {
    z.up();
    for (std::uint32_t p = 0; p < procs.size(); ++p) {
      for (const ClockConstraint& c :
           procs[p].locations()[key.locs[p]].invariant) {
        const bool ok = z.constrain(c.i, c.j, c.bound);
        TIGAT_ASSERT(ok, "delay closure emptied a non-empty zone");
      }
    }
  }
  return std::make_pair(std::move(key), std::move(z));
}

void SymbolicGraph::explore(util::ThreadPool* pool) {
  if (explored_) return;

  // Initial symbolic state.
  DiscreteKey init;
  for (const auto& p : sys_->processes()) init.locs.push_back(p.initial());
  init.data = sys_->data().initial_state();

  Dbm z0 = Dbm::zero(sys_->clock_count());
  const std::uint32_t k0 = intern_key(std::move(init));
  {
    bool alive = !invariants_[k0].is_empty();
    Dbm z(z0);
    if (alive) alive = z.intersect_with(invariants_[k0]);
    TIGAT_ASSERT(alive, "initial state violates invariants");
    if (!time_frozen(*sys_, keys_[k0].locs)) {
      z.up();
      const bool ok = z.intersect_with(invariants_[k0]);
      TIGAT_ASSERT(ok, "initial delay closure empty");
    }
    if (options_.extrapolate) z.extrapolate_max_bounds(max_constants_);
    reach_[k0].add(z);
  }

  // A FIFO queue drains in waves (everything currently queued is one
  // wave; its successors form the next).  Successor EXPANSION — the
  // expensive Dbm work — only reads state fixed before the wave
  // (keys_, invariants_, the wave's own zones), so it fans out over
  // the pool into per-item slots; interning, edge recording and
  // subsumption then run serially in item order, which is exactly the
  // order the serial FIFO would have produced.
  struct Successor {
    DiscreteKey key;
    Dbm zone;
    TransitionInstance inst;
  };
  std::vector<std::pair<std::uint32_t, Dbm>> wave;
  std::vector<std::pair<std::uint32_t, Dbm>> next_wave;
  std::vector<std::vector<Successor>> expanded;
  wave.emplace_back(k0, reach_[k0].zones().front());

  const util::Stopwatch watch;
  std::size_t zone_count = 1;
  std::size_t merged = 0;
  while (!wave.empty()) {
    expanded.assign(wave.size(), {});
    const auto expand = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        // Budget checks live here too, not only in the merge: a wide
        // wave must not overshoot the deadline or the zone-byte cap by
        // a whole wave's worth of expansion work.  (Throws propagate
        // through ThreadPool::parallel_for.)
        if (options_.deadline_seconds > 0.0 &&
            watch.seconds() > options_.deadline_seconds) {
          throw ExplorationLimit("exploration deadline exceeded");
        }
        if (util::zone_memory().current() > options_.max_zone_bytes) {
          throw ExplorationLimit("zone memory budget exceeded");
        }
        const std::uint32_t k = wave[i].first;
        const Dbm& z = wave[i].second;
        std::vector<Successor>& out = expanded[i];
        for (const TransitionInstance& inst :
             instances_from(*sys_, keys_[k].locs)) {
          // Data guards: evaluated once per (key, instance).
          const auto data_ok = [&](const EdgeRef& ref) {
            const Edge& e = sys_->processes()[ref.process].edges()[ref.edge];
            return e.data_guard.eval_bool(keys_[k].data, sys_->data());
          };
          if (!data_ok(inst.primary)) continue;
          if (inst.receiver && !data_ok(*inst.receiver)) continue;

          auto next = apply(k, z, inst);
          if (!next) continue;
          if (options_.extrapolate) {
            next->second.extrapolate_max_bounds(max_constants_);
          }
          out.push_back(
              {std::move(next->first), std::move(next->second), inst});
        }
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(wave.size(), 1, expand);
    } else {
      expand(0, wave.size());
    }

    next_wave.clear();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const std::uint32_t k = wave[i].first;
      if (options_.deadline_seconds > 0.0 && (++merged & 1023u) == 0 &&
          watch.seconds() > options_.deadline_seconds) {
        throw ExplorationLimit("exploration deadline exceeded");
      }
      for (Successor& s : expanded[i]) {
        const std::uint32_t kd = intern_key(std::move(s.key));
        // Record the symbolic edge once per (src, instance, dst); the
        // out-index doubles as the exact dedup structure.
        if (out_index_.size() < keys_.size()) out_index_.resize(keys_.size());
        bool duplicate = false;
        for (const std::uint32_t ei : out_index_[k]) {
          if (edges_[ei].dst == kd && edges_[ei].inst == s.inst) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          out_index_[k].push_back(static_cast<std::uint32_t>(edges_.size()));
          edges_.push_back({k, kd, s.inst});
        }

        // Subsumption: skip zones already covered by a single member.
        bool covered = false;
        for (const Dbm& existing : reach_[kd].zones()) {
          if (s.zone.is_subset_of(existing)) {
            covered = true;
            break;
          }
        }
        if (covered) continue;
        reach_[kd].add(s.zone);
        ++zone_count;
        if (zone_count > options_.max_zones) {
          throw ExplorationLimit("zone limit exceeded");
        }
        if (util::zone_memory().current() > options_.max_zone_bytes) {
          throw ExplorationLimit("zone memory budget exceeded");
        }
        next_wave.emplace_back(kd, std::move(s.zone));
      }
    }
    wave.swap(next_wave);
  }

  build_edge_index();
  explored_ = true;
}

void SymbolicGraph::build_edge_index() {
  out_index_.resize(keys_.size());
  in_index_.assign(keys_.size(), {});
  for (std::uint32_t i = 0; i < edges_.size(); ++i) {
    in_index_[edges_[i].dst].push_back(i);
  }
}

std::span<const std::uint32_t> SymbolicGraph::edges_out(
    std::uint32_t k) const {
  return out_index_[k];
}

std::span<const std::uint32_t> SymbolicGraph::edges_in(std::uint32_t k) const {
  return in_index_[k];
}

Fed SymbolicGraph::pred_through(const SymbolicEdge& e,
                                const Fed& target) const {
  Fed result(sys_->clock_count());
  const auto resets = merged_resets(*sys_, e.inst);
  for (const Dbm& w : target.zones()) {
    Dbm z(w);
    bool alive = true;
    // Pin every reset clock to its written value, then free it.
    for (const auto& r : resets) {
      if (!z.constrain(r.clock, 0, dbm::make_weak(r.value)) ||
          !z.constrain(0, r.clock, dbm::make_weak(-r.value))) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    for (const auto& r : resets) z.free(r.clock);
    collect_guard(e.inst.primary, z, alive);
    if (e.inst.receiver) collect_guard(*e.inst.receiver, z, alive);
    if (alive) result.add(std::move(z));
  }
  return result;
}

SymbolicGraph::Stats SymbolicGraph::stats() const {
  Stats s;
  s.keys = keys_.size();
  s.edges = edges_.size();
  for (const Fed& f : reach_) s.zones += f.size();
  s.peak_zone_bytes = util::zone_memory().peak();
  return s;
}

}  // namespace tigat::semantics
