// Symbolic (zone-graph) semantics: forward reachability over states
// (location vector, data valuation, zone federation).
//
// Symbolic states are grouped by their discrete part (the "key"); the
// reachable clock sets accumulate in one federation per key.  Every
// stored zone is delay-closed within the invariant — `up(Z) ∩ Inv` —
// except when an urgent/committed location freezes time.  The graph
// records the discrete transitions between keys; the game solver
// back-propagates winning federations along them.
//
// Extrapolation: classical Extra_M with the per-clock maximal constants
// of the system (optionally raised by the caller).  Extra_M preserves
// reachability exactly on the region-abstraction level and is the
// abstraction UPPAAL-TIGA applies during timed-game solving; the
// region-solver cross-check in tests/game_solver_test.cpp exercises
// this implementation against an extrapolation-free oracle.
//
// Scale features (see explore() for the wave protocol):
//   * keys live in a striped concurrent interner
//     (util/striped_intern.h): workers intern during wave expansion,
//     numbering is assigned between waves in deterministic
//     first-encounter order — bit-identical at any thread count;
//   * with ExplorationOptions::compact_zones the reach federations are
//     dictionary-compressed (dbm/zone_pool.h): each stored zone is dim
//     row ids into a shared hash-consed row dictionary, which is what
//     lets LEP n ≥ 6 tables fit in CI-class memory.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dbm/federation.h"
#include "dbm/zone_pool.h"
#include "semantics/transition.h"
#include "tsystem/system.h"
#include "util/striped_intern.h"

namespace tigat::util {
class ThreadPool;
}

namespace tigat::semantics {

struct DiscreteKey {
  std::vector<tsystem::LocId> locs;
  tsystem::DataState data;

  [[nodiscard]] bool operator==(const DiscreteKey&) const = default;
  [[nodiscard]] std::size_t hash() const noexcept;
};

struct SymbolicEdge {
  std::uint32_t src = 0;  // key index
  std::uint32_t dst = 0;
  TransitionInstance inst;
};

// Thrown when exploration exceeds the configured limits (the Table 1
// harness converts this into the paper's "/" out-of-budget marker).
class ExplorationLimit : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ExplorationOptions {
  bool extrapolate = true;
  // Extra max constants merged over the system's (e.g. from a goal).
  std::vector<dbm::bound_t> extra_max_constants;
  // Hard count caps (runaway guards; LEP n = 6 needs ~11M keys / ~28M
  // zones, so the caps sit above that).  max_zone_bytes is the
  // mechanism for bounding actual memory.
  std::size_t max_keys = std::size_t{1} << 25;
  std::size_t max_zones = std::size_t{1} << 27;
  // Abort when the zone-memory meter exceeds this many bytes.
  std::size_t max_zone_bytes = std::numeric_limits<std::size_t>::max();
  // Wall-clock budget for exploration (seconds); 0 = unlimited.  Used
  // by the Table 1 harness to reproduce the paper's "/" cells.
  double deadline_seconds = 0.0;
  // Store reach federations dictionary-compressed (dbm/zone_pool.h).
  // Opt-in: reach() then needs a scratch federation to materialize
  // into.  Solutions are bit-identical either way.
  bool compact_zones = false;
};

class SymbolicGraph {
 public:
  explicit SymbolicGraph(const tsystem::System& system,
                         ExplorationOptions options = {});

  // Runs forward exploration to the fixpoint (or throws
  // ExplorationLimit).  Idempotent.
  //
  // With a pool, the frontier is processed in WAVES: every state of
  // the current wave expands its successors on a worker (the expensive
  // part — guard collection, resets, closure, extrapolation) and
  // interns the successor key into the striped map right there,
  // tagging it with its deterministic serial-order rank.  Between
  // waves the new keys are numbered in rank order (= the order the
  // serial FIFO would have discovered them), then a serial merge
  // records edges and applies subsumption in wave order.  Key
  // numbering, edge order and reach federations are therefore
  // bit-identical at any thread count.
  void explore(util::ThreadPool* pool = nullptr);

  [[nodiscard]] const tsystem::System& system() const { return *sys_; }
  [[nodiscard]] std::uint32_t key_count() const {
    return static_cast<std::uint32_t>(intern_.size());
  }
  [[nodiscard]] const DiscreteKey& key(std::uint32_t k) const {
    return intern_.entry(k)->key;
  }
  [[nodiscard]] std::uint32_t initial_key() const { return 0; }
  [[nodiscard]] std::optional<std::uint32_t> find_key(
      const DiscreteKey& key) const;

  // ── reach federations ────────────────────────────────────────────────
  [[nodiscard]] bool zones_compacted() const { return pool_ != nullptr; }
  [[nodiscard]] const dbm::ZonePool* zone_pool() const { return pool_.get(); }
  [[nodiscard]] dbm::ZonePool* zone_pool() { return pool_.get(); }

  // Plain storage only; asserts when compact_zones is on.
  [[nodiscard]] const dbm::Fed& reach(std::uint32_t k) const;
  // Mode-independent: returns the stored federation (plain) or
  // materializes it into `scratch` and returns that (compact).  The
  // result is bit-identical across modes.
  [[nodiscard]] const dbm::Fed& reach(std::uint32_t k,
                                      dbm::Fed& scratch) const;
  // Compact storage only; asserts in plain mode.
  [[nodiscard]] const dbm::PooledFed& reach_pooled(std::uint32_t k) const;

  [[nodiscard]] const std::vector<SymbolicEdge>& edges() const {
    return edges_;
  }
  [[nodiscard]] std::span<const std::uint32_t> edges_out(std::uint32_t k) const;
  [[nodiscard]] std::span<const std::uint32_t> edges_in(std::uint32_t k) const;

  // Invariant zone of a key (hash-consed per location vector at intern
  // time — invariants ignore the data valuation, so millions of keys
  // share a handful of invariant zones).
  [[nodiscard]] const dbm::Dbm& invariant(std::uint32_t k) const {
    return *intern_.entry(k)->aux;
  }

  // Predecessor through an edge: states satisfying the edge's clock
  // guards whose reset image lies in `target`.  NOT intersected with
  // the source invariant or reach set; callers do that.
  [[nodiscard]] dbm::Fed pred_through(const SymbolicEdge& e,
                                      const dbm::Fed& target) const;

  // Forward image used by exploration; exposed for tests.  Applies
  // guards, resets, target invariant and (unless frozen) delay closure,
  // but no extrapolation.
  [[nodiscard]] std::optional<std::pair<DiscreteKey, dbm::Dbm>> apply(
      std::uint32_t src_key, const dbm::Dbm& zone,
      const TransitionInstance& inst) const;

  struct Stats {
    std::size_t keys = 0;
    std::size_t zones = 0;
    std::size_t edges = 0;
    std::size_t peak_zone_bytes = 0;
    // Wave-expansion (parallel) vs seal+merge (serial) wall time; the
    // merge share is the Amdahl cap the striped interner attacks.
    double expand_seconds = 0.0;
    double merge_seconds = 0.0;
    // Zone-pool dictionary stats (0 when compact_zones is off).
    std::size_t pool_rows = 0;
    std::size_t pool_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const std::vector<dbm::bound_t>& max_constants() const {
    return max_constants_;
  }

 private:
  // Key entries point at their hash-consed invariant zone; the
  // invariant map is keyed on the location vector alone.
  using InternMap = util::StripedInternMap<DiscreteKey, const dbm::Dbm*>;
  using InvariantMap =
      util::StripedInternMap<std::vector<tsystem::LocId>, dbm::Dbm>;

  // Resolves (interning if new) the invariant zone of a freshly
  // interned key — the inserting worker's one-time aux write.
  void fill_invariant(InternMap::Entry& e) const;
  // Numbers the keys interned during the last wave and grows the
  // per-key stores; throws on the key limit.
  void seal_wave();
  void collect_guard(const EdgeRef& ref, dbm::Dbm& zone, bool& alive) const;
  void build_edge_index();

  const tsystem::System* sys_;
  ExplorationOptions options_;
  std::vector<dbm::bound_t> max_constants_;

  InternMap intern_;
  mutable InvariantMap invariants_{/*stripes=*/8};
  std::vector<dbm::Fed> reach_;              // plain mode
  std::unique_ptr<dbm::ZonePool> pool_;      // compact mode
  std::vector<dbm::PooledFed> reach_pooled_;  // compact mode
  std::vector<SymbolicEdge> edges_;
  // During exploration the out-edges per key grow incrementally (the
  // dedup structure of the merge); build_edge_index() flattens both
  // directions into CSR arrays — at LEP n = 6 scale the per-key vector
  // headers alone are hundreds of MB.
  std::vector<std::vector<std::uint32_t>> out_building_;
  std::vector<std::uint32_t> out_flat_, out_off_;
  std::vector<std::uint32_t> in_flat_, in_off_;
  double expand_seconds_ = 0.0;
  double merge_seconds_ = 0.0;
  bool explored_ = false;
};

}  // namespace tigat::semantics
