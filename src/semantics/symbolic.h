// Symbolic (zone-graph) semantics: forward reachability over states
// (location vector, data valuation, zone federation).
//
// Symbolic states are grouped by their discrete part (the "key"); the
// reachable clock sets accumulate in one federation per key.  Every
// stored zone is delay-closed within the invariant — `up(Z) ∩ Inv` —
// except when an urgent/committed location freezes time.  The graph
// records the discrete transitions between keys; the game solver
// back-propagates winning federations along them.
//
// Extrapolation: classical Extra_M with the per-clock maximal constants
// of the system (optionally raised by the caller).  Extra_M preserves
// reachability exactly on the region-abstraction level and is the
// abstraction UPPAAL-TIGA applies during timed-game solving; the
// region-solver cross-check in tests/game_solver_test.cpp exercises
// this implementation against an extrapolation-free oracle.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dbm/federation.h"
#include "semantics/transition.h"
#include "tsystem/system.h"

namespace tigat::util {
class ThreadPool;
}

namespace tigat::semantics {

struct DiscreteKey {
  std::vector<tsystem::LocId> locs;
  tsystem::DataState data;

  [[nodiscard]] bool operator==(const DiscreteKey&) const = default;
  [[nodiscard]] std::size_t hash() const noexcept;
};

struct SymbolicEdge {
  std::uint32_t src = 0;  // key index
  std::uint32_t dst = 0;
  TransitionInstance inst;
};

// Thrown when exploration exceeds the configured limits (the Table 1
// harness converts this into the paper's "/" out-of-budget marker).
class ExplorationLimit : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ExplorationOptions {
  bool extrapolate = true;
  // Extra max constants merged over the system's (e.g. from a goal).
  std::vector<dbm::bound_t> extra_max_constants;
  std::size_t max_keys = 1u << 22;
  std::size_t max_zones = 1u << 24;
  // Abort when the zone-memory meter exceeds this many bytes.
  std::size_t max_zone_bytes = std::numeric_limits<std::size_t>::max();
  // Wall-clock budget for exploration (seconds); 0 = unlimited.  Used
  // by the Table 1 harness to reproduce the paper's "/" cells.
  double deadline_seconds = 0.0;
};

class SymbolicGraph {
 public:
  explicit SymbolicGraph(const tsystem::System& system,
                         ExplorationOptions options = {});

  // Runs forward exploration to the fixpoint (or throws
  // ExplorationLimit).  Idempotent.
  //
  // With a pool, the frontier is processed in WAVES: every state of the
  // current wave expands its successors on a worker (the expensive part
  // — guard collection, resets, closure, extrapolation), then a serial
  // merge interns keys, records edges and applies subsumption in wave
  // order.  Because the serial algorithm's FIFO also drains the queue
  // wave by wave, the merge visits successors in exactly the serial
  // order — key numbering, edge order and reach federations are
  // bit-identical at any thread count.
  void explore(util::ThreadPool* pool = nullptr);

  [[nodiscard]] const tsystem::System& system() const { return *sys_; }
  [[nodiscard]] std::uint32_t key_count() const {
    return static_cast<std::uint32_t>(keys_.size());
  }
  [[nodiscard]] const DiscreteKey& key(std::uint32_t k) const {
    return keys_[k];
  }
  [[nodiscard]] const dbm::Fed& reach(std::uint32_t k) const {
    return reach_[k];
  }
  [[nodiscard]] std::uint32_t initial_key() const { return 0; }
  [[nodiscard]] std::optional<std::uint32_t> find_key(
      const DiscreteKey& key) const;

  [[nodiscard]] const std::vector<SymbolicEdge>& edges() const {
    return edges_;
  }
  [[nodiscard]] std::span<const std::uint32_t> edges_out(std::uint32_t k) const;
  [[nodiscard]] std::span<const std::uint32_t> edges_in(std::uint32_t k) const;

  // Invariant zone of a key (cached).
  [[nodiscard]] const dbm::Dbm& invariant(std::uint32_t k) const;

  // Predecessor through an edge: states satisfying the edge's clock
  // guards whose reset image lies in `target`.  NOT intersected with
  // the source invariant or reach set; callers do that.
  [[nodiscard]] dbm::Fed pred_through(const SymbolicEdge& e,
                                      const dbm::Fed& target) const;

  // Forward image used by exploration; exposed for tests.  Applies
  // guards, resets, target invariant and (unless frozen) delay closure,
  // but no extrapolation.
  [[nodiscard]] std::optional<std::pair<DiscreteKey, dbm::Dbm>> apply(
      std::uint32_t src_key, const dbm::Dbm& zone,
      const TransitionInstance& inst) const;

  struct Stats {
    std::size_t keys = 0;
    std::size_t zones = 0;
    std::size_t edges = 0;
    std::size_t peak_zone_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const std::vector<dbm::bound_t>& max_constants() const {
    return max_constants_;
  }

 private:
  std::uint32_t intern_key(DiscreteKey key);
  void collect_guard(const EdgeRef& ref, dbm::Dbm& zone, bool& alive) const;
  void build_edge_index();

  const tsystem::System* sys_;
  ExplorationOptions options_;
  std::vector<dbm::bound_t> max_constants_;

  std::vector<DiscreteKey> keys_;
  std::unordered_map<std::size_t, std::vector<std::uint32_t>> key_lookup_;
  std::vector<dbm::Fed> reach_;
  std::vector<dbm::Dbm> invariants_;
  std::vector<SymbolicEdge> edges_;
  std::vector<std::vector<std::uint32_t>> out_index_;
  std::vector<std::vector<std::uint32_t>> in_index_;
  bool explored_ = false;
};

}  // namespace tigat::semantics
