#include "semantics/concrete.h"

#include <algorithm>

#include "dbm/bound.h"
#include "util/assert.h"
#include "util/text.h"

namespace tigat::semantics {

using dbm::satisfies;
using tsystem::ClockConstraint;
using tsystem::Edge;
using tsystem::LocId;

ConcreteSemantics::ConcreteSemantics(const tsystem::System& system,
                                     std::int64_t scale)
    : sys_(&system), scale_(scale) {
  TIGAT_ASSERT(system.finalized(), "system must be finalized");
  TIGAT_ASSERT(scale >= 1, "scale must be positive");
}

ConcreteState ConcreteSemantics::initial() const {
  ConcreteState s;
  s.locs.reserve(sys_->processes().size());
  for (const auto& p : sys_->processes()) s.locs.push_back(p.initial());
  s.data = sys_->data().initial_state();
  s.clocks.assign(sys_->clock_count(), 0);
  return s;
}

namespace {

bool constraint_holds(const ConcreteState& s, const ClockConstraint& c,
                      std::int64_t scale) {
  return satisfies(s.clocks[c.i] - s.clocks[c.j], c.bound, scale);
}

}  // namespace

bool ConcreteSemantics::invariant_holds(const ConcreteState& s) const {
  const auto& procs = sys_->processes();
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    for (const ClockConstraint& c : procs[p].locations()[s.locs[p]].invariant) {
      if (!constraint_holds(s, c, scale_)) return false;
    }
  }
  return true;
}

std::int64_t ConcreteSemantics::max_delay(const ConcreteState& s) const {
  if (time_frozen(*sys_, s.locs)) return 0;
  std::int64_t limit = kNoDeadline;
  const auto& procs = sys_->processes();
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    for (const ClockConstraint& c : procs[p].locations()[s.locs[p]].invariant) {
      if (dbm::is_infinity(c.bound)) continue;
      // Delay shifts x_i and x_j together unless one is the reference.
      if (c.i != 0 && c.j != 0) continue;
      if (c.i == 0) continue;  // lower bounds only get slacker with time
      std::int64_t d = static_cast<std::int64_t>(dbm::bound_value(c.bound)) *
                           scale_ -
                       s.clocks[c.i];
      if (!dbm::is_weak(c.bound)) d -= 1;
      limit = std::min(limit, d);
    }
  }
  return std::max<std::int64_t>(limit, 0);
}

void ConcreteSemantics::delay(ConcreteState& s, std::int64_t ticks) const {
  TIGAT_ASSERT(ticks >= 0, "negative delay");
  TIGAT_ASSERT(can_delay(s, ticks), "delay violates invariant/urgency");
  for (std::uint32_t i = 1; i < s.clocks.size(); ++i) s.clocks[i] += ticks;
}

bool ConcreteSemantics::edge_guard_holds(const ConcreteState& s,
                                         const EdgeRef& ref) const {
  const Edge& e = sys_->processes()[ref.process].edges()[ref.edge];
  for (const ClockConstraint& c : e.guard) {
    if (!constraint_holds(s, c, scale_)) return false;
  }
  return e.data_guard.eval_bool(s.data, sys_->data());
}

bool ConcreteSemantics::enabled(const ConcreteState& s,
                                const TransitionInstance& t) const {
  if (!edge_guard_holds(s, t.primary)) return false;
  if (t.receiver && !edge_guard_holds(s, *t.receiver)) return false;
  // The target state must satisfy its invariant; check by firing a copy.
  ConcreteState probe = s;
  apply_edge_effects(probe, t.primary);
  if (t.receiver) apply_edge_effects(probe, *t.receiver);
  return invariant_holds(probe);
}

std::vector<TransitionInstance> ConcreteSemantics::enabled_instances(
    const ConcreteState& s) const {
  std::vector<TransitionInstance> out;
  for (TransitionInstance& t : instances_from(*sys_, s.locs)) {
    if (enabled(s, t)) out.push_back(std::move(t));
  }
  return out;
}

void ConcreteSemantics::apply_edge_effects(ConcreteState& s,
                                           const EdgeRef& ref) const {
  const auto& proc = sys_->processes()[ref.process];
  const Edge& e = proc.edges()[ref.edge];
  s.locs[ref.process] = e.dst;
  for (const auto& r : e.resets) {
    s.clocks[r.clock] = static_cast<std::int64_t>(r.value) * scale_;
  }
  for (const auto& a : e.assignments) {
    const std::int64_t index =
        a.index.is_null() ? 0 : a.index.eval(s.data, sys_->data());
    const std::int64_t value = a.rhs.eval(s.data, sys_->data());
    sys_->data().checked_store(s.data, a.var, index, value);
  }
}

void ConcreteSemantics::fire(ConcreteState& s,
                             const TransitionInstance& t) const {
  TIGAT_DEBUG_ASSERT(enabled(s, t), "firing a disabled transition");
  apply_edge_effects(s, t.primary);
  if (t.receiver) apply_edge_effects(s, *t.receiver);
}

std::string ConcreteSemantics::to_string(const ConcreteState& s) const {
  std::string out = "(";
  const auto& procs = sys_->processes();
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    if (p != 0) out += ",";
    out += procs[p].name() + "." + procs[p].locations()[s.locs[p]].name;
  }
  out += ")";
  for (std::uint32_t i = 1; i < s.clocks.size(); ++i) {
    out += util::format(" %s=%.3f", sys_->clock_names()[i].c_str(),
                        static_cast<double>(s.clocks[i]) /
                            static_cast<double>(scale_));
  }
  for (std::uint32_t slot = 0; slot < s.data.slot_count(); ++slot) {
    out += util::format(" %s=%d", sys_->data().slot_name(slot).c_str(),
                        s.data.get(slot));
  }
  return out;
}

}  // namespace tigat::semantics
