#include "semantics/transition.h"

#include "util/assert.h"
#include "util/text.h"

namespace tigat::semantics {

using tsystem::LocationKind;
using tsystem::SyncKind;

std::string TransitionInstance::label(const tsystem::System& sys) const {
  const auto& p = sys.processes()[primary.process];
  const auto& e = p.edges()[primary.edge];
  if (is_sync()) {
    return sys.channels()[e.channel.id].name + "!";
  }
  return p.name() + ".tau(" + p.locations()[e.src].name + "->" +
         p.locations()[e.dst].name + ")";
}

std::optional<std::string> TransitionInstance::channel_name(
    const tsystem::System& sys) const {
  if (!is_sync()) return std::nullopt;
  const auto& e = sys.processes()[primary.process].edges()[primary.edge];
  return sys.channels()[e.channel.id].name;
}

std::vector<TransitionInstance> instances_from(
    const tsystem::System& sys, std::span<const tsystem::LocId> locs) {
  TIGAT_ASSERT(locs.size() == sys.processes().size(),
               "location vector size mismatch");
  const auto& procs = sys.processes();

  bool any_committed = false;
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    if (procs[p].locations()[locs[p]].kind == LocationKind::kCommitted) {
      any_committed = true;
      break;
    }
  }
  const auto committed = [&](std::uint32_t p) {
    return procs[p].locations()[locs[p]].kind == LocationKind::kCommitted;
  };

  std::vector<TransitionInstance> out;
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    for (std::uint32_t ei = 0; ei < procs[p].edges().size(); ++ei) {
      const tsystem::Edge& e = procs[p].edges()[ei];
      if (e.src != locs[p]) continue;
      if (e.sync == SyncKind::kNone) {
        if (any_committed && !committed(p)) continue;
        TransitionInstance t;
        t.primary = {p, ei};
        t.controllable = sys.edge_controllable(procs[p], e);
        out.push_back(std::move(t));
      } else if (e.sync == SyncKind::kSend) {
        // Pair with every matching receiver in another process.
        for (std::uint32_t q = 0; q < procs.size(); ++q) {
          if (q == p) continue;
          for (std::uint32_t ej = 0; ej < procs[q].edges().size(); ++ej) {
            const tsystem::Edge& r = procs[q].edges()[ej];
            if (r.src != locs[q] || r.sync != SyncKind::kReceive ||
                r.channel.id != e.channel.id) {
              continue;
            }
            if (any_committed && !committed(p) && !committed(q)) continue;
            TransitionInstance t;
            t.primary = {p, ei};
            t.receiver = EdgeRef{q, ej};
            t.controllable = sys.edge_controllable(procs[p], e);
            out.push_back(std::move(t));
          }
        }
      }
      // kReceive edges are enumerated from their senders.
    }
  }
  return out;
}

bool time_frozen(const tsystem::System& sys,
                 std::span<const tsystem::LocId> locs) {
  const auto& procs = sys.processes();
  for (std::uint32_t p = 0; p < procs.size(); ++p) {
    const LocationKind k = procs[p].locations()[locs[p]].kind;
    if (k == LocationKind::kUrgent || k == LocationKind::kCommitted) {
      return true;
    }
  }
  return false;
}

}  // namespace tigat::semantics
