#include "decision/compiler.h"

#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/assert.h"
#include "util/stopwatch.h"

namespace tigat::decision {

namespace {

using dbm::Dbm;
using dbm::Fed;
using game::GameSolution;
using game::MoveKind;
using semantics::SymbolicEdge;
using semantics::SymbolicGraph;

// One row of a key's decision cascade: "if the point is in `fed` (and
// in no earlier row), the prescription is `leaf`".
struct Entry {
  const Fed* fed = nullptr;
  target_t leaf = 0;
};

class Compiler {
 public:
  explicit Compiler(const GameSolution& solution)
      : sol_(solution),
        g_(solution.graph()),
        safety_(solution.purpose().kind == tsystem::PurposeKind::kSafety) {
    out_.fingerprint = model_fingerprint(g_.system(), solution.purpose());
    out_.clock_dim = g_.system().clock_count();
    out_.purpose_kind = safety_ ? 1 : 0;
    out_.system_name = g_.system().name();
    out_.purpose_source = solution.purpose().source;
  }

  TableData run(CompileStats* stats) {
    util::Stopwatch watch;
    for (std::uint32_t k = 0; k < g_.key_count(); ++k) compile_key(k);
    compact();
    if (stats != nullptr) {
      stats->cascade_entries = cascade_entries_;
      stats->nodes_built = nodes_built_;
      stats->compile_seconds = watch.seconds();
    }
    return std::move(out_);
  }

 private:
  // ── interning ───────────────────────────────────────────────────────
  std::uint32_t intern_zone(const Dbm& zone) {
    auto& ids = zone_index_[zone.hash()];
    for (const std::uint32_t id : ids) {
      if (out_.zones[id] == zone) return id;
    }
    const auto id = static_cast<std::uint32_t>(out_.zones.size());
    out_.zones.push_back(zone);
    ids.push_back(id);
    return id;
  }

  std::pair<std::uint32_t, std::uint32_t> intern_slice(
      const std::vector<std::uint32_t>& refs) {
    const auto it = slice_index_.find(refs);
    if (it != slice_index_.end()) return it->second;
    const auto first = static_cast<std::uint32_t>(out_.zone_refs.size());
    out_.zone_refs.insert(out_.zone_refs.end(), refs.begin(), refs.end());
    const auto slice =
        std::make_pair(first, static_cast<std::uint32_t>(refs.size()));
    slice_index_.emplace(refs, slice);
    return slice;
  }

  target_t intern_leaf(const TableData::Leaf& leaf) {
    const auto key = std::make_tuple(leaf.kind, leaf.rank, leaf.edge_slot,
                                     leaf.zones_first, leaf.zones_count,
                                     leaf.acts_first, leaf.acts_count,
                                     leaf.danger_first, leaf.danger_count);
    const auto it = leaf_index_.find(key);
    if (it != leaf_index_.end()) return leaf_target(it->second);
    const auto id = static_cast<std::uint32_t>(out_.leaves.size());
    out_.leaves.push_back(leaf);
    leaf_index_.emplace(key, id);
    return leaf_target(id);
  }

  std::pair<std::uint32_t, std::uint32_t> intern_acts(
      const std::vector<TableData::Act>& acts) {
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> key;
    key.reserve(acts.size());
    for (const TableData::Act& a : acts) {
      key.emplace_back(a.edge_slot, a.zones_first, a.zones_count);
    }
    const auto it = acts_index_.find(key);
    if (it != acts_index_.end()) return it->second;
    const auto first = static_cast<std::uint32_t>(out_.acts.size());
    out_.acts.insert(out_.acts.end(), acts.begin(), acts.end());
    const auto slice =
        std::make_pair(first, static_cast<std::uint32_t>(acts.size()));
    acts_index_.emplace(std::move(key), slice);
    return slice;
  }

  target_t intern_node(std::uint16_t i, std::uint16_t j,
                       std::vector<TableData::Arc> arcs) {
    ++nodes_built_;
    std::vector<std::pair<dbm::raw_t, target_t>> sig;
    sig.reserve(arcs.size());
    for (const TableData::Arc& a : arcs) sig.emplace_back(a.bound, a.target);
    const auto key = std::make_tuple(i, j, std::move(sig));
    const auto it = node_index_.find(key);
    if (it != node_index_.end()) return node_target(it->second);
    const auto id = static_cast<std::uint32_t>(out_.nodes.size());
    TableData::Node node;
    node.i = i;
    node.j = j;
    node.first_arc = static_cast<std::uint32_t>(out_.arcs.size());
    node.arc_count = static_cast<std::uint32_t>(arcs.size());
    out_.arcs.insert(out_.arcs.end(), arcs.begin(), arcs.end());
    out_.nodes.push_back(node);
    node_index_.emplace(key, id);
    return node_target(id);
  }

  std::uint32_t edge_slot(std::uint32_t ei) {
    const auto it = edge_slots_.find(ei);
    if (it != edge_slots_.end()) return it->second;
    const auto slot = static_cast<std::uint32_t>(out_.edges.size());
    out_.edges.push_back({ei, g_.edges()[ei].inst});
    edge_slots_.emplace(ei, slot);
    return slot;
  }

  // ── the per-key cascade ─────────────────────────────────────────────
  // Action regions come from GameSolution::action_region — the single
  // cached implementation Strategy::decide also walks, including the
  // member-zone layout (delay leaves take the earliest-entry minimum
  // over these zones, so the zone list itself must match, not just the
  // denoted set).
  target_t delay_leaf(std::uint32_t k, std::uint32_t round) {
    std::vector<std::uint32_t> refs;
    for (const std::uint32_t ei : g_.edges_out(k)) {
      if (!g_.edges()[ei].inst.controllable) continue;
      for (const Dbm& z : sol_.action_region(ei, round - 1).zones()) {
        refs.push_back(intern_zone(z));
      }
    }
    for (const Dbm& z : sol_.winning_up_to(k, round - 1).zones()) {
      refs.push_back(intern_zone(z));
    }
    TableData::Leaf leaf;
    leaf.kind = MoveKind::kDelay;
    leaf.rank = round;
    std::tie(leaf.zones_first, leaf.zones_count) = intern_slice(refs);
    return intern_leaf(leaf);
  }

  // Safety keys compile to a single fat delay leaf over Safe (see
  // table.h): the dense stay bound comes from the Safe zones, the
  // danger region forces the boundary action, and the acts are the
  // controllable edges in edges_out order — empty action regions are
  // skipped, which is decide-equivalent since an empty region never
  // contains the point.
  target_t safety_leaf(std::uint32_t k) {
    TableData::Leaf leaf;
    leaf.kind = MoveKind::kDelay;
    leaf.rank = 0;
    std::vector<std::uint32_t> refs;
    for (const Dbm& z : sol_.winning(k).zones()) {
      refs.push_back(intern_zone(z));
    }
    std::tie(leaf.zones_first, leaf.zones_count) = intern_slice(refs);
    refs.clear();
    for (const Dbm& z : sol_.danger_region(k).zones()) {
      refs.push_back(intern_zone(z));
    }
    std::tie(leaf.danger_first, leaf.danger_count) = intern_slice(refs);
    std::vector<TableData::Act> acts;
    for (const std::uint32_t ei : g_.edges_out(k)) {
      if (!g_.edges()[ei].inst.controllable) continue;
      const Fed& region = sol_.action_region(ei, 0);
      if (region.is_empty()) continue;
      TableData::Act act;
      act.edge_slot = edge_slot(ei);
      std::vector<std::uint32_t> arefs;
      for (const Dbm& z : region.zones()) arefs.push_back(intern_zone(z));
      std::tie(act.zones_first, act.zones_count) = intern_slice(arefs);
      acts.push_back(act);
    }
    std::tie(leaf.acts_first, leaf.acts_count) = intern_acts(acts);
    return intern_leaf(leaf);
  }

  void compile_key(std::uint32_t k) {
    if (safety_) {
      const Fed& safe = sol_.winning(k);
      TableData::Key key;
      key.locs = g_.key(k).locs;
      key.data = g_.key(k).data;
      if (safe.is_empty()) {
        key.root = unwinnable_leaf();
      } else {
        std::vector<Entry> entries{{&safe, safety_leaf(k)}};
        cascade_entries_ += entries.size();
        key.root = build(Dbm::universal(out_.clock_dim), entries);
      }
      out_.keys.push_back(std::move(key));
      return;
    }
    std::deque<Fed> owned;
    std::vector<Entry> entries;
    for (const GameSolution::Delta& d : sol_.deltas(k)) {
      if (d.round == 0) {
        TableData::Leaf goal;
        goal.kind = MoveKind::kGoalReached;
        goal.rank = 0;
        entries.push_back({&d.gained, intern_leaf(goal)});
        continue;
      }
      for (const std::uint32_t ei : g_.edges_out(k)) {
        if (!g_.edges()[ei].inst.controllable) continue;
        Fed region =
            sol_.action_region(ei, d.round - 1).intersection(d.gained);
        if (region.is_empty()) continue;
        TableData::Leaf act;
        act.kind = MoveKind::kAction;
        act.rank = d.round;
        act.edge_slot = edge_slot(ei);
        owned.push_back(std::move(region));
        entries.push_back({&owned.back(), intern_leaf(act)});
      }
      entries.push_back({&d.gained, delay_leaf(k, d.round)});
    }
    cascade_entries_ += entries.size();

    TableData::Key key;
    key.locs = g_.key(k).locs;
    key.data = g_.key(k).data;
    key.root = entries.empty() ? unwinnable_leaf()
                               : build(Dbm::universal(out_.clock_dim), entries);
    out_.keys.push_back(std::move(key));
  }

  target_t unwinnable_leaf() { return intern_leaf(TableData::Leaf{}); }

  // ── cascade → DAG lowering ──────────────────────────────────────────
  // `P` is the convex path zone implied by the tests taken so far (the
  // DAG's "cell"); entries whose federations miss P are dead here.
  target_t build(const Dbm& P, const std::vector<Entry>& entries) {
    for (const Entry& entry : entries) {
      const Dbm* live_zone = nullptr;
      for (const Dbm& z : entry.fed->zones()) {
        if (z.intersects(P)) {
          live_zone = &z;
          break;
        }
      }
      if (live_zone == nullptr) continue;  // dead row: cannot fire in P

      // First live row.  If it covers P the whole cell is decided (no
      // earlier row can fire anywhere in P).
      if (Fed(P).is_subset_of(*entry.fed)) return entry.leaf;

      // Otherwise split P on a bound of a live member zone.  Some zone
      // must have one: a live zone without a P-tightening bound would
      // contain P, contradicting the failed cover test.
      for (const Dbm& z : entry.fed->zones()) {
        if (!z.intersects(P)) continue;
        for (std::uint32_t i = 0; i < P.dimension(); ++i) {
          for (std::uint32_t j = 0; j < P.dimension(); ++j) {
            if (i == j || z.at(i, j) >= P.at(i, j)) continue;
            return split(P, entries, static_cast<std::uint16_t>(i),
                         static_cast<std::uint16_t>(j), z.at(i, j));
          }
        }
      }
      util::assert_fail(__FILE__, __LINE__,
                        "uncovered cell without a splitting bound");
    }
    return unwinnable_leaf();  // no row can fire anywhere in P
  }

  target_t split(const Dbm& P, const std::vector<Entry>& entries,
                 std::uint16_t i, std::uint16_t j, dbm::raw_t bound) {
    Dbm yes = P;
    bool ok = yes.constrain(i, j, bound);
    TIGAT_ASSERT(ok, "splitter produced an empty yes-side");
    Dbm no = P;
    ok = no.constrain(j, i, dbm::negate_bound(bound));
    TIGAT_ASSERT(ok, "splitter produced an empty no-side");

    const target_t on_yes = build(yes, entries);
    const target_t on_no = build(no, entries);
    if (on_yes == on_no) return on_yes;  // the test does not discriminate

    std::vector<TableData::Arc> arcs;
    arcs.push_back({bound, on_yes});
    // Fuse a same-difference chain into one multi-arc node.  On the
    // no-side every later cut on (i, j) is strictly looser (a tighter
    // one could not intersect the no-side cell), so sortedness holds;
    // the guard keeps it an invariant even for hash-consed reuse.
    if (!is_leaf(on_no)) {
      const TableData::Node& chain = out_.nodes[target_index(on_no)];
      if (chain.i == i && chain.j == j &&
          out_.arcs[chain.first_arc].bound > bound) {
        for (std::uint32_t a = 0; a < chain.arc_count; ++a) {
          arcs.push_back(out_.arcs[chain.first_arc + a]);
        }
        return intern_node(i, j, std::move(arcs));
      }
    }
    arcs.push_back({dbm::kInfinity, on_no});
    return intern_node(i, j, std::move(arcs));
  }

  // ── mark & compact ──────────────────────────────────────────────────
  // Chain fusion and leaf sharing strand intermediate nodes and (after
  // dedup) unreferenced pool entries; rebuild every array with only
  // what the key roots reach, renumbering in deterministic DFS order.
  void compact() {
    TableData packed;
    packed.fingerprint = out_.fingerprint;
    packed.clock_dim = out_.clock_dim;
    packed.purpose_kind = out_.purpose_kind;
    packed.system_name = std::move(out_.system_name);
    packed.purpose_source = std::move(out_.purpose_source);

    constexpr std::uint32_t kUnset = 0xffff'ffffu;
    std::vector<std::uint32_t> node_map(out_.nodes.size(), kUnset);
    std::vector<std::uint32_t> leaf_map(out_.leaves.size(), kUnset);
    std::vector<std::uint32_t> zone_map(out_.zones.size(), kUnset);
    std::vector<std::uint32_t> edge_map(out_.edges.size(), kUnset);
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::pair<std::uint32_t, std::uint32_t>>
        slice_map;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> acts_map;

    const auto map_zone = [&](std::uint32_t z) {
      if (zone_map[z] == kUnset) {
        zone_map[z] = static_cast<std::uint32_t>(packed.zones.size());
        packed.zones.push_back(out_.zones[z]);
      }
      return zone_map[z];
    };
    const auto map_edge = [&](std::uint32_t slot) {
      if (edge_map[slot] == kUnset) {
        edge_map[slot] = static_cast<std::uint32_t>(packed.edges.size());
        packed.edges.push_back(out_.edges[slot]);
      }
      return edge_map[slot];
    };
    const auto remap_slice = [&](std::uint32_t& first, std::uint32_t count) {
      const auto old = std::make_pair(first, count);
      const auto it = slice_map.find(old);
      if (it != slice_map.end()) {
        first = it->second.first;
        return;
      }
      const auto fresh = static_cast<std::uint32_t>(packed.zone_refs.size());
      for (std::uint32_t r = 0; r < count; ++r) {
        packed.zone_refs.push_back(map_zone(out_.zone_refs[old.first + r]));
      }
      slice_map.emplace(old, std::make_pair(fresh, count));
      first = fresh;
    };
    const auto map_leaf = [&](std::uint32_t l) {
      if (leaf_map[l] != kUnset) return leaf_map[l];
      TableData::Leaf leaf = out_.leaves[l];
      if (leaf.kind == MoveKind::kAction) {
        leaf.edge_slot = map_edge(leaf.edge_slot);
      }
      if (leaf.kind == MoveKind::kDelay) {
        remap_slice(leaf.zones_first, leaf.zones_count);
        remap_slice(leaf.danger_first, leaf.danger_count);
        if (leaf.acts_count != 0) {
          const auto old = std::make_pair(leaf.acts_first, leaf.acts_count);
          const auto it = acts_map.find(old);
          if (it != acts_map.end()) {
            leaf.acts_first = it->second;
          } else {
            const auto fresh = static_cast<std::uint32_t>(packed.acts.size());
            for (std::uint32_t a = 0; a < old.second; ++a) {
              TableData::Act act = out_.acts[old.first + a];
              act.edge_slot = map_edge(act.edge_slot);
              remap_slice(act.zones_first, act.zones_count);
              packed.acts.push_back(act);
            }
            acts_map.emplace(old, fresh);
            leaf.acts_first = fresh;
          }
        } else {
          leaf.acts_first = 0;
        }
      }
      leaf_map[l] = static_cast<std::uint32_t>(packed.leaves.size());
      packed.leaves.push_back(leaf);
      return leaf_map[l];
    };

    // Post-order DFS: a node's targets are numbered before the node
    // itself, and its rebuilt arcs land contiguously in `packed.arcs`.
    const std::function<target_t(target_t)> map_target =
        [&](target_t t) -> target_t {
      if (is_leaf(t)) return leaf_target(map_leaf(target_index(t)));
      const std::uint32_t n = target_index(t);
      if (node_map[n] != kUnset) return node_target(node_map[n]);
      const TableData::Node& node = out_.nodes[n];
      std::vector<TableData::Arc> arcs;
      arcs.reserve(node.arc_count);
      for (std::uint32_t a = 0; a < node.arc_count; ++a) {
        const TableData::Arc& arc = out_.arcs[node.first_arc + a];
        arcs.push_back({arc.bound, map_target(arc.target)});
      }
      TableData::Node fresh;
      fresh.i = node.i;
      fresh.j = node.j;
      fresh.first_arc = static_cast<std::uint32_t>(packed.arcs.size());
      fresh.arc_count = static_cast<std::uint32_t>(arcs.size());
      packed.arcs.insert(packed.arcs.end(), arcs.begin(), arcs.end());
      node_map[n] = static_cast<std::uint32_t>(packed.nodes.size());
      packed.nodes.push_back(fresh);
      return node_target(node_map[n]);
    };

    packed.keys.reserve(out_.keys.size());
    for (TableData::Key& key : out_.keys) {
      key.root = map_target(key.root);
      packed.keys.push_back(std::move(key));
    }
    out_ = std::move(packed);
  }

  const GameSolution& sol_;
  const SymbolicGraph& g_;
  const bool safety_;
  TableData out_;

  std::unordered_map<std::size_t, std::vector<std::uint32_t>> zone_index_;
  std::map<std::vector<std::uint32_t>, std::pair<std::uint32_t, std::uint32_t>>
      slice_index_;
  std::map<std::tuple<MoveKind, std::uint32_t, std::uint32_t, std::uint32_t,
                      std::uint32_t, std::uint32_t, std::uint32_t,
                      std::uint32_t, std::uint32_t>,
           std::uint32_t>
      leaf_index_;
  std::map<std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>,
           std::pair<std::uint32_t, std::uint32_t>>
      acts_index_;
  std::map<std::tuple<std::uint16_t, std::uint16_t,
                      std::vector<std::pair<dbm::raw_t, target_t>>>,
           std::uint32_t>
      node_index_;
  std::unordered_map<std::uint32_t, std::uint32_t> edge_slots_;

  std::size_t cascade_entries_ = 0;
  std::size_t nodes_built_ = 0;
};

}  // namespace

DecisionTable compile(const GameSolution& solution, CompileStats* stats) {
  return DecisionTable(Compiler(solution).run(stats));
}

}  // namespace tigat::decision
