#include "decision/serialize.h"

#include <cstdio>

#include "decision/legacy.h"
#include "obs/metrics.h"
#include "util/text.h"

namespace tigat::decision {

std::vector<std::uint8_t> to_bytes(const DecisionTable& table) {
  const std::span<const std::uint8_t> bytes = table.bytes();
  return {bytes.begin(), bytes.end()};
}

DecisionTable from_bytes(std::vector<std::uint8_t> bytes) {
  if (is_legacy_image(bytes)) {
    // v2 → TableData → v3 image; v1 raises VersionError inside.
    TableData data = from_bytes_v2(bytes);
    if (obs::metrics_enabled()) {
      obs::metrics().counter("tgs.migrations").add(1);
    }
    return DecisionTable(std::move(data));
  }
  return DecisionTable(std::move(bytes));
}

void save(const DecisionTable& table, const std::string& path) {
  const std::span<const std::uint8_t> bytes = table.bytes();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw SerializeError(util::format("cannot write '%s'", path.c_str()));
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    throw SerializeError(util::format("short write to '%s'", path.c_str()));
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SerializeError(util::format("cannot read '%s'", path.c_str()));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw SerializeError(util::format("read error on '%s'", path.c_str()));
  }
  return bytes;
}

DecisionTable load(const std::string& path) {
  return from_bytes(read_file(path));
}

}  // namespace tigat::decision
