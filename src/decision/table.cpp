#include "decision/table.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/assert.h"
#include "util/text.h"

namespace tigat::decision {

using game::Move;
using game::MoveKind;
using semantics::ConcreteState;
using tsystem::ModelError;

namespace {

// FNV-1a 64, fed field by field.
struct Fnv64 {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t k = 0; k < n; ++k) {
      h ^= b[k];
      h *= 0x100000001b3ull;
    }
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

// Same mixing as semantics::DiscreteKey::hash / DataState::hash, but
// over the raw vectors so decide() never materialises a DiscreteKey.
std::size_t hash_discrete(const std::vector<tsystem::LocId>& locs,
                          const tsystem::DataState& data) {
  std::size_t h = 0x9e3779b9u;
  for (const std::int32_t v : data.values()) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(v)) + 0x9e3779b9u +
         (h << 6) + (h >> 2);
  }
  for (const tsystem::LocId l : locs) {
    h ^= l + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

[[noreturn]] void invalid(const char* what) {
  throw ModelError(util::format("invalid decision table: %s", what));
}

}  // namespace

std::uint64_t model_fingerprint(const tsystem::System& system) {
  Fnv64 f;
  f.str(system.name());
  f.u32(system.clock_count());
  f.u64(system.data().decl_count());
  for (std::uint32_t v = 0; v < system.data().decl_count(); ++v) {
    const tsystem::VarDecl& decl = system.data().decl({v});
    f.str(decl.name);
    f.u32(static_cast<std::uint32_t>(decl.lo));
    f.u32(static_cast<std::uint32_t>(decl.hi));
    f.u32(static_cast<std::uint32_t>(decl.init));
    f.u32(decl.size);
  }
  f.u64(system.channels().size());
  for (const auto& chan : system.channels()) {
    f.str(chan.name);
    f.u32(static_cast<std::uint32_t>(chan.control));
  }
  const auto constraints = [&f](const std::vector<tsystem::ClockConstraint>& cs) {
    f.u64(cs.size());
    for (const tsystem::ClockConstraint& c : cs) {
      f.u32(c.i);
      f.u32(c.j);
      f.u32(static_cast<std::uint32_t>(c.bound));
    }
  };
  f.u64(system.processes().size());
  for (const auto& proc : system.processes()) {
    f.str(proc.name());
    f.u32(static_cast<std::uint32_t>(proc.default_control()));
    f.u32(proc.initial());
    f.u64(proc.locations().size());
    for (const tsystem::Location& loc : proc.locations()) {
      f.str(loc.name);
      f.u32(static_cast<std::uint32_t>(loc.kind));
      constraints(loc.invariant);
    }
    f.u64(proc.edges().size());
    for (const tsystem::Edge& edge : proc.edges()) {
      f.u32(edge.src);
      f.u32(edge.dst);
      f.u32(static_cast<std::uint32_t>(edge.sync));
      f.u32(edge.channel.id);
      constraints(edge.guard);
      f.str(edge.data_guard.is_null()
                ? std::string()
                : edge.data_guard.to_string(system.data()));
      f.u64(edge.resets.size());
      for (const tsystem::ClockReset& reset : edge.resets) {
        f.u32(reset.clock);
        f.u32(static_cast<std::uint32_t>(reset.value));
      }
      f.u64(edge.assignments.size());
      for (const tsystem::Assignment& assign : edge.assignments) {
        f.u32(assign.var.index);
        f.str(assign.index.is_null() ? std::string()
                                     : assign.index.to_string(system.data()));
        f.str(assign.rhs.to_string(system.data()));
      }
      f.u32(system.edge_controllable(proc, edge) ? 1u : 0u);
    }
  }
  return f.h;
}

std::uint64_t model_fingerprint(const tsystem::System& system,
                                const tsystem::TestPurpose& purpose) {
  Fnv64 f;
  f.h = model_fingerprint(system);
  f.u32(static_cast<std::uint32_t>(purpose.kind));
  f.str(purpose.formula.to_string(system));
  return f.h;
}

DecisionTable::DecisionTable(TableData data)
    : decide_latency_(&obs::metrics().histogram("decide.latency_ns",
                                                obs::latency_buckets_ns())),
      data_(std::move(data)) {
  validate();
  build_key_index();
  build_edge_index();
}

void DecisionTable::validate() const {
  if (data_.clock_dim == 0) invalid("clock dimension is zero");
  if (data_.purpose_kind > 1) invalid("unknown purpose kind");
  const auto check_target = [&](target_t t) {
    if (is_leaf(t)) {
      if (target_index(t) >= data_.leaves.size()) invalid("leaf out of range");
    } else if (target_index(t) >= data_.nodes.size()) {
      invalid("node out of range");
    }
  };
  for (const TableData::Key& key : data_.keys) {
    if (key.locs.empty() && key.data.slot_count() == 0) {
      invalid("key with no discrete part");
    }
    if (key.locs.size() != data_.keys.front().locs.size() ||
        key.data.slot_count() != data_.keys.front().data.slot_count()) {
      invalid("inconsistent key shapes");
    }
    check_target(key.root);
  }
  for (const TableData::Node& n : data_.nodes) {
    if (n.i >= data_.clock_dim || n.j >= data_.clock_dim || n.i == n.j) {
      invalid("node tests a bad clock pair");
    }
    if (n.arc_count < 2 ||
        std::size_t{n.first_arc} + n.arc_count > data_.arcs.size()) {
      invalid("node arc range out of bounds");
    }
    // Arcs must be strictly sorted by encoded bound and end in `< ∞`,
    // so the first-satisfied-arc scan below is total and deterministic.
    for (std::uint32_t a = 0; a < n.arc_count; ++a) {
      const TableData::Arc& arc = data_.arcs[n.first_arc + a];
      check_target(arc.target);
      if (a + 1 == n.arc_count) {
        if (!dbm::is_infinity(arc.bound)) invalid("node lacks an ∞ arc");
      } else if (arc.bound >= data_.arcs[n.first_arc + a + 1].bound) {
        invalid("node arcs are not sorted");
      }
    }
  }
  for (const TableData::Leaf& leaf : data_.leaves) {
    switch (leaf.kind) {
      case MoveKind::kGoalReached:
        // Safety plays are won by outlasting the budget (the
        // executor's call), never by a goal prescription.
        if (data_.purpose_kind == 1) invalid("goal leaf in a safety table");
        break;
      case MoveKind::kUnwinnable:
        break;
      case MoveKind::kAction:
        if (leaf.edge_slot >= data_.edges.size()) {
          invalid("action leaf edge slot out of range");
        }
        break;
      case MoveKind::kDelay:
        if (std::size_t{leaf.zones_first} + leaf.zones_count >
            data_.zone_refs.size()) {
          invalid("delay leaf zone slice out of bounds");
        }
        break;
      default:
        invalid("unknown leaf kind");
    }
    if (data_.purpose_kind == 0 &&
        (leaf.acts_count != 0 || leaf.danger_count != 0)) {
      invalid("safety slices in a reachability table");
    }
    if (std::size_t{leaf.acts_first} + leaf.acts_count > data_.acts.size()) {
      invalid("leaf act slice out of bounds");
    }
    if (std::size_t{leaf.danger_first} + leaf.danger_count >
        data_.zone_refs.size()) {
      invalid("leaf danger slice out of bounds");
    }
  }
  for (const TableData::Act& act : data_.acts) {
    if (act.edge_slot >= data_.edges.size()) {
      invalid("act edge slot out of range");
    }
    if (std::size_t{act.zones_first} + act.zones_count >
        data_.zone_refs.size()) {
      invalid("act zone slice out of bounds");
    }
  }
  for (const std::uint32_t ref : data_.zone_refs) {
    if (ref >= data_.zones.size()) invalid("zone reference out of range");
  }
  for (const dbm::Dbm& z : data_.zones) {
    if (z.dimension() != data_.clock_dim) invalid("zone dimension mismatch");
    if (z.is_empty()) invalid("empty zone in the pool");
  }
}

void DecisionTable::build_key_index() {
  std::size_t cap = 8;
  while (cap < data_.keys.size() * 2) cap *= 2;
  buckets_.assign(cap, 0);
  bucket_mask_ = cap - 1;
  for (std::uint32_t k = 0; k < data_.keys.size(); ++k) {
    std::size_t at =
        hash_discrete(data_.keys[k].locs, data_.keys[k].data) & bucket_mask_;
    while (buckets_[at] != 0) {
      const TableData::Key& other = data_.keys[buckets_[at] - 1];
      if (other.locs == data_.keys[k].locs &&
          other.data == data_.keys[k].data) {
        invalid("duplicate discrete key");
      }
      at = (at + 1) & bucket_mask_;
    }
    buckets_[at] = k + 1;
  }
}

void DecisionTable::build_edge_index() {
  edge_lookup_.reserve(data_.edges.size());
  for (std::uint32_t slot = 0; slot < data_.edges.size(); ++slot) {
    edge_lookup_.emplace_back(data_.edges[slot].original, slot);
  }
  std::sort(edge_lookup_.begin(), edge_lookup_.end());
  for (std::size_t k = 1; k < edge_lookup_.size(); ++k) {
    if (edge_lookup_[k].first == edge_lookup_[k - 1].first) {
      invalid("duplicate edge slot");
    }
  }
}

std::optional<std::uint32_t> DecisionTable::find_key(
    const ConcreteState& state) const {
  std::size_t at = hash_discrete(state.locs, state.data) & bucket_mask_;
  while (buckets_[at] != 0) {
    const TableData::Key& key = data_.keys[buckets_[at] - 1];
    if (key.locs == state.locs && key.data == state.data) {
      return buckets_[at] - 1;
    }
    at = (at + 1) & bucket_mask_;
  }
  return std::nullopt;
}

Move DecisionTable::decide(const ConcreteState& state,
                           std::int64_t scale) const {
  if (!obs::metrics_enabled()) return decide_impl(state, scale);
  const std::uint64_t t0 = obs::now_ns();
  Move move = decide_impl(state, scale);
  decide_latency_->record(obs::now_ns() - t0);
  return move;
}

Move DecisionTable::decide_impl(const ConcreteState& state,
                                std::int64_t scale) const {
  TIGAT_ASSERT(state.clocks.size() == data_.clock_dim,
               "state dimension mismatch");
  Move move;
  const auto k = find_key(state);
  if (!k) return move;  // not even discretely reachable

  target_t t = data_.keys[*k].root;
  while (!is_leaf(t)) {
    const TableData::Node& n = data_.nodes[target_index(t)];
    const std::int64_t diff = state.clocks[n.i] - state.clocks[n.j];
    const TableData::Arc* arc = &data_.arcs[n.first_arc];
    while (!dbm::satisfies(diff, arc->bound, scale)) ++arc;
    t = arc->target;
  }
  const TableData::Leaf& leaf = data_.leaves[target_index(t)];
  switch (leaf.kind) {
    case MoveKind::kUnwinnable:
      return move;
    case MoveKind::kGoalReached:
      move.kind = MoveKind::kGoalReached;
      move.rank = leaf.rank;
      return move;
    case MoveKind::kAction:
      move.kind = MoveKind::kAction;
      move.rank = leaf.rank;
      move.edge = data_.edges[leaf.edge_slot].original;
      return move;
    case MoveKind::kDelay: {
      move.kind = MoveKind::kDelay;
      move.rank = leaf.rank;
      if (data_.purpose_kind == 1) {
        // Safety fat leaf — mirrors Strategy::decide's safety branch
        // move for move.  Latest harmless wait: the dense stay bound
        // over the Safe zones (the leaf's zone slice), clipped one
        // tick short of the danger region.
        thread_local std::vector<dbm::DelayInterval> intervals;
        intervals.clear();
        const std::uint32_t* sref = data_.zone_refs.data() + leaf.zones_first;
        for (std::uint32_t z = 0; z < leaf.zones_count; ++z) {
          if (const auto iv =
                  data_.zones[sref[z]].delay_interval(state.clocks, scale)) {
            intervals.push_back(*iv);
          }
        }
        std::int64_t deadline = dbm::merge_stay_bound(intervals);
        std::optional<std::int64_t> danger_in;
        const std::uint32_t* dref = data_.zone_refs.data() + leaf.danger_first;
        for (std::uint32_t z = 0; z < leaf.danger_count; ++z) {
          if (const auto d = data_.zones[dref[z]].earliest_entry_delay(
                  state.clocks, scale)) {
            danger_in = danger_in ? std::min(*danger_in, *d) : *d;
          }
        }
        if (danger_in && *danger_in > 0) {
          deadline = std::min(deadline, *danger_in - 1);
        }
        const bool threat_now = danger_in && *danger_in == 0;
        if (deadline > 0 && !threat_now) {
          move.next_decision_ticks = std::min(deadline, Move::kNoDecision);
          return move;
        }
        // Boundary (or live threat): first action whose region holds,
        // in the same edge order Strategy::decide scans.
        for (std::uint32_t a = 0; a < leaf.acts_count; ++a) {
          const TableData::Act& act = data_.acts[leaf.acts_first + a];
          const std::uint32_t* aref = data_.zone_refs.data() + act.zones_first;
          for (std::uint32_t z = 0; z < act.zones_count; ++z) {
            if (data_.zones[aref[z]].contains_point(state.clocks, scale)) {
              move.kind = MoveKind::kAction;
              move.edge = data_.edges[act.edge_slot].original;
              return move;
            }
          }
        }
        // No safe action yet: wait for the threat instant (ties go to
        // the tester) or the SUT's forced move.
        move.next_decision_ticks =
            danger_in && *danger_in > 0 ? *danger_in : 0;
        return move;
      }
      // Min over the exact zones Strategy::decide consults (action
      // regions at rank−1, then the lower winning set of this key).
      std::int64_t next = Move::kNoDecision;
      const std::uint32_t* ref = data_.zone_refs.data() + leaf.zones_first;
      for (std::uint32_t z = 0; z < leaf.zones_count; ++z) {
        if (const auto d =
                data_.zones[ref[z]].earliest_entry_delay(state.clocks, scale)) {
          next = std::min(next, *d);
        }
      }
      move.next_decision_ticks = next;
      return move;
    }
  }
  return move;
}

const semantics::TransitionInstance& DecisionTable::edge_instance(
    std::uint32_t edge) const {
  const auto it = std::lower_bound(
      edge_lookup_.begin(), edge_lookup_.end(), edge,
      [](const auto& entry, std::uint32_t e) { return entry.first < e; });
  TIGAT_ASSERT(it != edge_lookup_.end() && it->first == edge,
               "edge not referenced by this table");
  return data_.edges[it->second].inst;
}

std::size_t DecisionTable::memory_bytes() const {
  const std::size_t zones = data_.zones.size() * sizeof(dbm::Dbm);
  return data_.keys.size() * sizeof(TableData::Key) +
         data_.nodes.size() * sizeof(TableData::Node) +
         data_.arcs.size() * sizeof(TableData::Arc) +
         data_.leaves.size() * sizeof(TableData::Leaf) +
         data_.acts.size() * sizeof(TableData::Act) +
         data_.zone_refs.size() * sizeof(std::uint32_t) + zones +
         data_.edges.size() * sizeof(TableData::EdgeSlot) +
         buckets_.size() * sizeof(std::uint32_t);
}

}  // namespace tigat::decision
