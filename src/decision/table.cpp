#include "decision/table.h"

#include <system_error>
#include <utility>

#include "decision/writer.h"
#include "obs/trace.h"
#include "util/text.h"

namespace tigat::decision {

using game::Move;
using semantics::ConcreteState;

namespace {

// FNV-1a 64, fed field by field.
struct Fnv64 {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t k = 0; k < n; ++k) {
      h ^= b[k];
      h *= 0x100000001b3ull;
    }
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace
std::uint64_t model_fingerprint(const tsystem::System& system) {
  Fnv64 f;
  f.str(system.name());
  f.u32(system.clock_count());
  f.u64(system.data().decl_count());
  for (std::uint32_t v = 0; v < system.data().decl_count(); ++v) {
    const tsystem::VarDecl& decl = system.data().decl({v});
    f.str(decl.name);
    f.u32(static_cast<std::uint32_t>(decl.lo));
    f.u32(static_cast<std::uint32_t>(decl.hi));
    f.u32(static_cast<std::uint32_t>(decl.init));
    f.u32(decl.size);
  }
  f.u64(system.channels().size());
  for (const auto& chan : system.channels()) {
    f.str(chan.name);
    f.u32(static_cast<std::uint32_t>(chan.control));
  }
  const auto constraints = [&f](const std::vector<tsystem::ClockConstraint>& cs) {
    f.u64(cs.size());
    for (const tsystem::ClockConstraint& c : cs) {
      f.u32(c.i);
      f.u32(c.j);
      f.u32(static_cast<std::uint32_t>(c.bound));
    }
  };
  f.u64(system.processes().size());
  for (const auto& proc : system.processes()) {
    f.str(proc.name());
    f.u32(static_cast<std::uint32_t>(proc.default_control()));
    f.u32(proc.initial());
    f.u64(proc.locations().size());
    for (const tsystem::Location& loc : proc.locations()) {
      f.str(loc.name);
      f.u32(static_cast<std::uint32_t>(loc.kind));
      constraints(loc.invariant);
    }
    f.u64(proc.edges().size());
    for (const tsystem::Edge& edge : proc.edges()) {
      f.u32(edge.src);
      f.u32(edge.dst);
      f.u32(static_cast<std::uint32_t>(edge.sync));
      f.u32(edge.channel.id);
      constraints(edge.guard);
      f.str(edge.data_guard.is_null()
                ? std::string()
                : edge.data_guard.to_string(system.data()));
      f.u64(edge.resets.size());
      for (const tsystem::ClockReset& reset : edge.resets) {
        f.u32(reset.clock);
        f.u32(static_cast<std::uint32_t>(reset.value));
      }
      f.u64(edge.assignments.size());
      for (const tsystem::Assignment& assign : edge.assignments) {
        f.u32(assign.var.index);
        f.str(assign.index.is_null() ? std::string()
                                     : assign.index.to_string(system.data()));
        f.str(assign.rhs.to_string(system.data()));
      }
      f.u32(system.edge_controllable(proc, edge) ? 1u : 0u);
    }
  }
  return f.h;
}

std::uint64_t model_fingerprint(const tsystem::System& system,
                                const tsystem::TestPurpose& purpose) {
  Fnv64 f;
  f.h = model_fingerprint(system);
  f.u32(static_cast<std::uint32_t>(purpose.kind));
  f.str(purpose.formula.to_string(system));
  return f.h;
}

// ── DecisionTable ───────────────────────────────────────────────────

DecisionTable::DecisionTable(TableData data)
    : DecisionTable(TgsWriter(data).build(), util::MappedFile(),
                    TgsView::Options{}) {}

DecisionTable::DecisionTable(std::vector<std::uint8_t> image,
                             const TgsView::Options& options)
    : DecisionTable(std::move(image), util::MappedFile(), options) {}

DecisionTable DecisionTable::map(const std::string& path,
                                 const TgsView::Options& options) {
  util::MappedFile mapped;
  try {
    mapped = util::MappedFile::open(path);
  } catch (const std::system_error& e) {
    throw SerializeError(
        util::format("cannot map '%s': %s", path.c_str(), e.what()));
  }
  return DecisionTable(std::vector<std::uint8_t>{}, std::move(mapped),
                       options);
}

DecisionTable::DecisionTable(std::vector<std::uint8_t> owned,
                             util::MappedFile mapped,
                             const TgsView::Options& options)
    : decide_latency_(&obs::metrics().histogram("decide.latency_ns",
                                                obs::latency_buckets_ns())),
      owned_(std::move(owned)),
      mapped_(std::move(mapped)) {
  view_ = TgsView::open(
      mapped_.is_open() ? mapped_.bytes()
                        : std::span<const std::uint8_t>(owned_),
      options);
  if (obs::metrics_enabled()) {
    obs::metrics().counter("tgs.view.opens").add(1);
  }
}

Move DecisionTable::decide(const ConcreteState& state,
                           std::int64_t scale) const {
  if (!obs::metrics_enabled()) return view_.decide(state, scale);
  const std::uint64_t t0 = obs::now_ns();
  Move move = view_.decide(state, scale);
  decide_latency_->record(obs::now_ns() - t0);
  return move;
}

semantics::TransitionInstance DecisionTable::edge_instance(
    std::uint32_t edge) const {
  return view_.edge_instance(edge);
}

TableData DecisionTable::export_data() const {
  TableData d;
  d.fingerprint = view_.fingerprint();
  d.clock_dim = view_.clock_dim();
  d.purpose_kind = static_cast<std::uint8_t>(view_.purpose_kind());
  d.system_name = std::string(view_.system_name());
  d.purpose_source = std::string(view_.purpose_source());
  const std::uint32_t keys = static_cast<std::uint32_t>(view_.key_count());
  d.keys.reserve(keys);
  for (std::uint32_t k = 0; k < keys; ++k) {
    TableData::Key key;
    const auto locs = view_.key_locs(k);
    key.locs.assign(locs.begin(), locs.end());
    const auto values = view_.key_data(k);
    key.data = tsystem::DataState(
        std::vector<std::int32_t>(values.begin(), values.end()));
    key.root = view_.key_root(k);
    d.keys.push_back(std::move(key));
  }
  d.nodes.reserve(view_.node_count());
  for (std::uint32_t n = 0; n < view_.node_count(); ++n) {
    const NodeRec& rec = view_.node(n);
    d.nodes.push_back({rec.i, rec.j, rec.first_arc, rec.arc_count});
  }
  d.arcs.reserve(view_.arc_count());
  for (std::uint32_t a = 0; a < view_.arc_count(); ++a) {
    const ArcRec& rec = view_.arc(a);
    d.arcs.push_back({rec.bound, rec.target});
  }
  d.leaves.reserve(view_.leaf_count());
  for (std::uint32_t l = 0; l < view_.leaf_count(); ++l) {
    const LeafRec& rec = view_.leaf(l);
    TableData::Leaf leaf;
    leaf.kind = static_cast<game::MoveKind>(rec.kind);
    leaf.rank = rec.rank;
    leaf.edge_slot = rec.edge_slot;
    leaf.zones_first = rec.zones_first;
    leaf.zones_count = rec.zones_count;
    leaf.acts_first = rec.acts_first;
    leaf.acts_count = rec.acts_count;
    leaf.danger_first = rec.danger_first;
    leaf.danger_count = rec.danger_count;
    d.leaves.push_back(leaf);
  }
  d.acts.reserve(view_.act_count());
  for (std::uint32_t a = 0; a < view_.act_count(); ++a) {
    const ActRec& rec = view_.act(a);
    d.acts.push_back({rec.edge_slot, rec.zones_first, rec.zones_count});
  }
  d.zone_refs.reserve(view_.zone_ref_count());
  for (std::uint32_t r = 0; r < view_.zone_ref_count(); ++r) {
    d.zone_refs.push_back(view_.zone_ref(r));
  }
  d.zones.reserve(view_.zone_count());
  for (std::uint32_t z = 0; z < view_.zone_count(); ++z) {
    d.zones.push_back(
        dbm::Dbm::from_raw(view_.clock_dim(), view_.zone_cells(z)));
  }
  d.edges.reserve(view_.edge_count());
  for (std::uint32_t slot = 0; slot < view_.edge_count(); ++slot) {
    const EdgeRec& rec = view_.edge(slot);
    TableData::EdgeSlot e;
    e.original = rec.original;
    e.inst.primary = {rec.primary_process, rec.primary_edge};
    if ((rec.flags & kEdgeHasReceiver) != 0) {
      e.inst.receiver =
          semantics::EdgeRef{rec.receiver_process, rec.receiver_edge};
    }
    e.inst.controllable = (rec.flags & kEdgeControllable) != 0;
    d.edges.push_back(std::move(e));
  }
  return d;
}

}  // namespace tigat::decision
