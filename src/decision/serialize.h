// File-level `.tgs` helpers and the legacy-compatible load path.
//
// Since format v3 a DecisionTable IS its `.tgs` image (decision/table.h
// + decision/view.h), so serialization is trivial: to_bytes copies the
// table's bytes, save writes them, and the preferred way to open a
// file is `DecisionTable::map(path)` — zero-copy, strict v3 only,
// VersionError ("re-solve to migrate") on v1/v2 files.
//
// The entry points here are the *compatibility* layer kept for callers
// of the old heap-loading API and for artifact migration:
//
//   * from_bytes / load accept v2 images too, parsing them through
//     decision/legacy.h and re-flattening to v3 in memory (counted in
//     the "tgs.migrations" metric).  `tigat-serve migrate` is this +
//     save.
//   * to_bytes / save emit v3 only; the bytes round-trip bit-for-bit
//     (save → map → to_bytes is the identity on the image).
//
// New code should prefer DecisionTable::map / TgsWriter directly;
// these wrappers trade the zero-copy property for auto-migration.
//
// SerializeError / VersionError and kFormatVersion moved to
// decision/format.h; this header re-exports them via its include.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decision/format.h"
#include "decision/table.h"

namespace tigat::decision {

// The table's v3 image, as a copy (the table keeps serving from its
// own bytes).
[[nodiscard]] std::vector<std::uint8_t> to_bytes(const DecisionTable& table);

// Opens an in-memory image: v3 bytes are adopted as-is; v2 bytes are
// migrated through the legacy parser.  Throws SerializeError on
// corruption, VersionError on v1.
[[nodiscard]] DecisionTable from_bytes(std::vector<std::uint8_t> bytes);

// Throws SerializeError on I/O failure, bad magic/version, checksum
// mismatch or structurally invalid content.
void save(const DecisionTable& table, const std::string& path);
[[nodiscard]] DecisionTable load(const std::string& path);

// The raw bytes of `path` (shared by load and the tgs-info dump).
// Throws SerializeError on I/O failure.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace tigat::decision
