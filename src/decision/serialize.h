// Binary serialization of compiled decision tables — the `.tgs` file
// format ("tigat strategy").
//
// A .tgs file makes the solved game a deployable artifact: solve and
// compile once (run_model --strategy-out), then any number of serving
// processes load the table (--strategy-in) and execute test campaigns
// without ever running the solver.
//
// Layout (all integers little-endian; see serialize.cpp for the field
// tables):
//
//   magic "TGSD" | u32 version | u64 payload FNV-1a | u64 payload size
//   payload: fingerprint, clock dim, purpose kind, keys
//   (locs/data/root), edges (original index + transition instance),
//   nodes, arcs, leaves (incl. the safety acts/danger slices), acts,
//   zone refs, zone pool (raw DBM matrices)
//
// Version history: v1 had no purpose kind, no acts section and
// 17-byte leaves; v2 (safety games) is not backward compatible, and
// v1 files are rejected with a clear message — re-solve to migrate.
//
// Integrity: the header checksum covers every payload byte and is
// verified before parsing; the parser bounds-checks every read and the
// DecisionTable constructor re-validates the structural invariants, so
// a truncated, corrupted or mismatched file raises SerializeError
// instead of producing a quietly wrong strategy.  Model identity is
// the fingerprint (DecisionTable::matches), checked by callers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decision/table.h"

namespace tigat::decision {

inline constexpr std::uint32_t kFormatVersion = 2;

class SerializeError : public tsystem::ModelError {
 public:
  using tsystem::ModelError::ModelError;
};

// In-memory encoding/decoding (the file functions are thin wrappers;
// tests and network services use these directly).
[[nodiscard]] std::vector<std::uint8_t> to_bytes(const DecisionTable& table);
[[nodiscard]] DecisionTable from_bytes(const std::vector<std::uint8_t>& bytes);

// Throws SerializeError on I/O failure, bad magic/version, checksum
// mismatch or structurally invalid content.
void save(const DecisionTable& table, const std::string& path);
[[nodiscard]] DecisionTable load(const std::string& path);

}  // namespace tigat::decision
