// Legacy `.tgs` support: the v2 streamed format (magic "TGSD").
//
// v2 streamed the table field by field; every reader re-parsed the
// stream into heap vectors.  Format v3 (decision/format.h) replaced it
// with a flat mmap-able image, and the v3 reader rejects "TGSD" files
// with a VersionError ("re-solve to migrate").  This header keeps the
// v2 codec alive for exactly two purposes:
//
//   * migration — `decision::load` / `tigat-serve migrate` parse a v2
//     file into TableData and re-emit it as v3, so old artifacts
//     upgrade in one pass without re-solving;
//   * tests — to_bytes_v2 fabricates v2 images so the migration round
//     trip (v2 → TableData → v3 → decide equivalence) stays covered
//     without checked-in binary fixtures.
//
// New code must not write v2: the writer exists only behind these two
// call sites.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "decision/table.h"

namespace tigat::decision {

// True when `bytes` starts with the v1/v2 magic "TGSD".
[[nodiscard]] bool is_legacy_image(std::span<const std::uint8_t> bytes);

// Parses a v2 stream into builder data (checksum verified, every read
// bounds-checked, zones re-closed).  Throws VersionError for v1 — its
// 17-byte leaves cannot be migrated; re-solve — and SerializeError for
// corruption.
[[nodiscard]] TableData from_bytes_v2(const std::vector<std::uint8_t>& bytes);

// Emits builder data as a v2 stream (tests only; see above).
[[nodiscard]] std::vector<std::uint8_t> to_bytes_v2(const TableData& data);

}  // namespace tigat::decision
