// Strategy → DecisionTable compilation.
//
// For every discrete key the compiler materialises the decision
// cascade Strategy::decide evaluates on the fly:
//
//   for each delta (round order):                 # rank = first hit
//     round 0                   → goal
//     per controllable out-edge → action  (region ∩ delta, edge order)
//     remainder of the delta    → delay   (candidate zones attached)
//   no delta                    → unwinnable
//
// and lowers the first-federation-wins cascade into an interval-test
// DAG: pick a difference constraint of the first still-live federation
// that properly splits the current path zone, recurse on both sides,
// and emit a leaf as soon as the first live federation covers the path
// zone.  Consecutive tests of the same clock difference fuse into one
// multi-arc node (bounds stay strictly sorted), and nodes, leaves,
// zones and delay slices are hash-consed into shared pools, so equal
// sub-decisions — frequent across ranks and keys — are stored once.
// A final mark-and-compact pass drops every node/leaf/zone the fusion
// left unreachable.
//
// The construction is exact (no sampling): on every concrete state
// with integral non-negative ticks, walking the DAG reproduces
// Strategy::decide bit for bit, because each path zone is partitioned
// by the very bounds the federations are made of and delay leaves
// carry the exact member zones whose earliest_entry_delay Strategy
// minimises.  Compilation is deterministic — same solution, same
// table, byte-stable .tgs files.
#pragma once

#include "decision/table.h"
#include "game/solver.h"
#include "game/strategy.h"

namespace tigat::decision {

struct CompileStats {
  std::size_t cascade_entries = 0;  // federation rows before lowering
  std::size_t nodes_built = 0;      // before hash-consing hits
  double compile_seconds = 0.0;
};

// Compiles the solved game into a self-contained decision table.
[[nodiscard]] DecisionTable compile(const game::GameSolution& solution,
                                    CompileStats* stats = nullptr);

[[nodiscard]] inline DecisionTable compile(const game::Strategy& strategy,
                                           CompileStats* stats = nullptr) {
  return compile(strategy.solution(), stats);
}

}  // namespace tigat::decision
