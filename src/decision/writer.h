// TgsWriter — lays a TableData out as a `.tgs` v3 image in one pass.
//
// The writer owns the whole at-rest layout: section sizing and 8-byte
// alignment, the precomputed open-addressed key bucket section (so
// readers never rebuild the index), the sorted edge-lookup section,
// the string pool, and the FNV-1a checksum in the header.  Output is
// deterministic: the same TableData produces byte-identical images,
// which keeps `.tgs` files diffable and lets the round-trip tests
// compare bytes.
//
// Writing is the only direction that materialises heap structures; the
// read direction is decision/view.h, which serves straight from these
// bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decision/format.h"
#include "decision/table.h"

namespace tigat::decision {

class TgsWriter {
 public:
  explicit TgsWriter(const TableData& data) : data_(&data) {}

  // Builds the complete v3 image.  Throws SerializeError when the data
  // cannot be represented (e.g. duplicate discrete keys, counts past
  // u32) — structural validity beyond that is the reader's check.
  [[nodiscard]] std::vector<std::uint8_t> build() const;

  // Convenience: build + write to `path`.  Throws SerializeError on
  // I/O failure.
  void save(const std::string& path) const;

 private:
  const TableData* data_;
};

}  // namespace tigat::decision
