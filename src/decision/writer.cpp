#include "decision/writer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/text.h"

namespace tigat::decision {

namespace {

[[noreturn]] void unwritable(const char* what) {
  throw SerializeError(util::format("cannot serialize table: %s", what));
}

// Sizes, offsets and a bump cursor for one section, laid out in id
// order with 8-byte alignment.
struct Layout {
  SectionRec recs[kSectionCount] = {};
  std::uint64_t end = kSectionTableEnd;

  void place(TgsSection id, std::uint32_t record_size, std::uint64_t count) {
    SectionRec& rec = recs[static_cast<std::uint32_t>(id) - 1];
    end = (end + 7) & ~std::uint64_t{7};
    rec.id = static_cast<std::uint32_t>(id);
    rec.record_size = record_size;
    rec.offset = end;
    rec.bytes = count * record_size;
    end += rec.bytes;
  }
};

}  // namespace

std::vector<std::uint8_t> TgsWriter::build() const {
  const TableData& d = *data_;
  const std::uint64_t keys = d.keys.size();
  const std::uint32_t procs =
      keys ? static_cast<std::uint32_t>(d.keys.front().locs.size()) : 0;
  const std::uint32_t slots =
      keys ? static_cast<std::uint32_t>(d.keys.front().data.slot_count()) : 0;
  if (keys > 0xffff'ffffull) unwritable("too many keys");
  for (const TableData::Key& key : d.keys) {
    if (key.locs.size() != procs || key.data.slot_count() != slots) {
      unwritable("inconsistent key shapes");
    }
  }
  if (d.clock_dim == 0) unwritable("clock dimension is zero");
  for (const dbm::Dbm& z : d.zones) {
    if (z.dimension() != d.clock_dim) unwritable("zone dimension mismatch");
  }

  // ── precompute the bucket index (the section v2 readers rebuilt on
  // every load) ──
  const std::size_t bucket_count = bucket_capacity(keys);
  std::vector<std::uint32_t> buckets(bucket_count, 0);
  const std::size_t mask = bucket_count - 1;
  for (std::uint32_t k = 0; k < keys; ++k) {
    const std::span<const std::uint32_t> locs(d.keys[k].locs);
    const std::span<const std::int32_t> values(d.keys[k].data.values());
    std::size_t at = hash_discrete(locs, values) & mask;
    while (buckets[at] != 0) {
      const TableData::Key& other = d.keys[buckets[at] - 1];
      if (other.locs == d.keys[k].locs && other.data == d.keys[k].data) {
        unwritable("duplicate discrete key");
      }
      at = (at + 1) & mask;
    }
    buckets[at] = k + 1;
  }

  // ── precompute the sorted edge lookup ──
  std::vector<LookupRec> lookup(d.edges.size());
  for (std::uint32_t slot = 0; slot < d.edges.size(); ++slot) {
    lookup[slot] = {d.edges[slot].original, slot};
  }
  std::sort(lookup.begin(), lookup.end(),
            [](const LookupRec& a, const LookupRec& b) {
              return a.original < b.original;
            });
  for (std::size_t k = 1; k < lookup.size(); ++k) {
    if (lookup[k].original == lookup[k - 1].original) {
      unwritable("duplicate edge slot");
    }
  }

  // ── string pool ──
  StrRec strings[kStringCount] = {};
  std::string blob;
  const auto intern = [&](TgsString id, const std::string& s) {
    if (s.size() > 0xffff'ffffull) unwritable("string too long");
    strings[id] = {static_cast<std::uint32_t>(blob.size()),
                   static_cast<std::uint32_t>(s.size())};
    blob += s;
  };
  intern(kStrSystemName, d.system_name);
  intern(kStrPurposeSource, d.purpose_source);

  // ── layout ──
  const std::size_t cells = std::size_t{d.clock_dim} * d.clock_dim;
  Layout lay;
  lay.place(kSecKeyLocs, 4, keys * procs);
  lay.place(kSecKeyData, 4, keys * slots);
  lay.place(kSecKeyRoots, 4, keys);
  lay.place(kSecKeyBuckets, 4, bucket_count);
  lay.place(kSecNodes, sizeof(NodeRec), d.nodes.size());
  lay.place(kSecArcs, sizeof(ArcRec), d.arcs.size());
  lay.place(kSecLeaves, sizeof(LeafRec), d.leaves.size());
  lay.place(kSecActs, sizeof(ActRec), d.acts.size());
  lay.place(kSecZoneRefs, 4, d.zone_refs.size());
  lay.place(kSecZones, 4, d.zones.size() * cells);
  lay.place(kSecEdges, sizeof(EdgeRec), d.edges.size());
  lay.place(kSecEdgeLookup, sizeof(LookupRec), lookup.size());
  lay.place(kSecStrings, sizeof(StrRec), kStringCount);
  lay.place(kSecStringBlob, 1, blob.size());

  // ── one buffer, zero-initialised (alignment padding stays zero so
  // output is deterministic), filled section by section ──
  std::vector<std::uint8_t> image(lay.end, 0);
  const auto at = [&](TgsSection id) {
    return image.data() + lay.recs[static_cast<std::uint32_t>(id) - 1].offset;
  };

  auto* key_locs = reinterpret_cast<std::uint32_t*>(at(kSecKeyLocs));
  auto* key_data = reinterpret_cast<std::int32_t*>(at(kSecKeyData));
  auto* key_roots = reinterpret_cast<std::uint32_t*>(at(kSecKeyRoots));
  for (std::uint32_t k = 0; k < keys; ++k) {
    const TableData::Key& key = d.keys[k];
    if (procs) {
      std::memcpy(key_locs + std::size_t{k} * procs, key.locs.data(),
                  std::size_t{procs} * 4);
    }
    if (slots) {
      std::memcpy(key_data + std::size_t{k} * slots, key.data.values().data(),
                  std::size_t{slots} * 4);
    }
    key_roots[k] = key.root;
  }
  std::memcpy(at(kSecKeyBuckets), buckets.data(), buckets.size() * 4);

  auto* nodes = reinterpret_cast<NodeRec*>(at(kSecNodes));
  for (std::size_t n = 0; n < d.nodes.size(); ++n) {
    nodes[n] = {d.nodes[n].i, d.nodes[n].j, d.nodes[n].first_arc,
                d.nodes[n].arc_count};
  }
  auto* arcs = reinterpret_cast<ArcRec*>(at(kSecArcs));
  for (std::size_t a = 0; a < d.arcs.size(); ++a) {
    arcs[a] = {d.arcs[a].bound, d.arcs[a].target};
  }
  auto* leaves = reinterpret_cast<LeafRec*>(at(kSecLeaves));
  for (std::size_t l = 0; l < d.leaves.size(); ++l) {
    const TableData::Leaf& leaf = d.leaves[l];
    leaves[l] = {static_cast<std::uint32_t>(leaf.kind), leaf.rank,
                 leaf.edge_slot, leaf.zones_first, leaf.zones_count,
                 leaf.acts_first, leaf.acts_count, leaf.danger_first,
                 leaf.danger_count};
  }
  auto* acts = reinterpret_cast<ActRec*>(at(kSecActs));
  for (std::size_t a = 0; a < d.acts.size(); ++a) {
    acts[a] = {d.acts[a].edge_slot, d.acts[a].zones_first,
               d.acts[a].zones_count};
  }
  if (!d.zone_refs.empty()) {
    std::memcpy(at(kSecZoneRefs), d.zone_refs.data(), d.zone_refs.size() * 4);
  }
  auto* zones = reinterpret_cast<dbm::raw_t*>(at(kSecZones));
  for (std::size_t z = 0; z < d.zones.size(); ++z) {
    dbm::raw_t* cell = zones + z * cells;
    for (std::uint32_t i = 0; i < d.clock_dim; ++i) {
      for (std::uint32_t j = 0; j < d.clock_dim; ++j) {
        *cell++ = d.zones[z].at(i, j);
      }
    }
  }
  auto* edges = reinterpret_cast<EdgeRec*>(at(kSecEdges));
  for (std::size_t e = 0; e < d.edges.size(); ++e) {
    const TableData::EdgeSlot& slot = d.edges[e];
    EdgeRec rec;
    rec.original = slot.original;
    rec.primary_process = slot.inst.primary.process;
    rec.primary_edge = slot.inst.primary.edge;
    if (slot.inst.receiver) {
      rec.receiver_process = slot.inst.receiver->process;
      rec.receiver_edge = slot.inst.receiver->edge;
      rec.flags |= kEdgeHasReceiver;
    }
    if (slot.inst.controllable) rec.flags |= kEdgeControllable;
    edges[e] = rec;
  }
  if (!lookup.empty()) {
    std::memcpy(at(kSecEdgeLookup), lookup.data(),
                lookup.size() * sizeof(LookupRec));
  }
  std::memcpy(at(kSecStrings), strings, sizeof(strings));
  if (!blob.empty()) {
    std::memcpy(at(kSecStringBlob), blob.data(), blob.size());
  }

  // ── section table + header (checksum last) ──
  std::memcpy(image.data() + sizeof(TgsHeader), lay.recs, sizeof(lay.recs));
  TgsHeader h = {};
  std::memcpy(h.magic, kMagicV3, 4);
  h.version = kFormatVersion;
  h.file_bytes = image.size();
  h.fingerprint = d.fingerprint;
  h.clock_dim = d.clock_dim;
  h.proc_count = procs;
  h.slot_count = slots;
  h.purpose_kind = d.purpose_kind;
  h.key_count = static_cast<std::uint32_t>(keys);
  h.section_count = kSectionCount;
  h.checksum = fnv1a(image.data() + sizeof(TgsHeader),
                     image.size() - sizeof(TgsHeader));
  std::memcpy(image.data(), &h, sizeof(h));
  return image;
}

void TgsWriter::save(const std::string& path) const {
  const std::vector<std::uint8_t> image = build();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    throw SerializeError(
        util::format("cannot open '%s' for writing", path.c_str()));
  }
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != image.size() || !flushed) {
    throw SerializeError(util::format("short write to '%s'", path.c_str()));
  }
}

}  // namespace tigat::decision
