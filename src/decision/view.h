// TgsView — a non-owning, bounds-validated, zero-copy view over a
// `.tgs` v3 image (decision/format.h), and the decide() engine that
// runs on it.
//
// open() validates once — magic/version (old formats raise
// VersionError with the re-solve-to-migrate hint *before* any checksum
// or bounds check can misfire), checksum, section table geometry,
// every index/slice/target range, bucket-index correctness, arc
// sorting, zone canonicality — then caches one typed pointer per
// section.  After that every query, decide() included, reads the
// mapped records in place: no deserialization, no allocation, no locks
// (the view is const-thread-safe; a daemon shares one across all its
// worker threads).
//
// The view does not own the bytes.  DecisionTable (decision/table.h)
// pairs it with an owned buffer or a util::MappedFile; tests may open
// views over stack/vector images directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "dbm/bound.h"
#include "decision/format.h"
#include "game/strategy.h"
#include "semantics/concrete.h"
#include "semantics/transition.h"

namespace tigat::decision {

// A DAG target: either an inner node or a leaf, tagged in the top bit.
using target_t = std::uint32_t;
inline constexpr target_t kLeafBit = 0x8000'0000u;
[[nodiscard]] constexpr bool is_leaf(target_t t) { return (t & kLeafBit) != 0; }
[[nodiscard]] constexpr std::uint32_t target_index(target_t t) {
  return t & ~kLeafBit;
}
[[nodiscard]] constexpr target_t leaf_target(std::uint32_t index) {
  return index | kLeafBit;
}
[[nodiscard]] constexpr target_t node_target(std::uint32_t index) {
  return index;
}

struct TgsOptions {
  // FNV-1a over the payload; rejects bit rot.  One sequential pass
  // over the image (which doubles as page prefault on the mmap
  // path); skippable for huge tables behind trusted storage.
  bool verify_checksum = true;
  // Re-closes every zone and requires canonical, non-empty matrices,
  // so decide() may trust the raw cells unconditionally.  Catches
  // hand-edited files whose checksum was recomputed.
  bool verify_zones = true;
};

class TgsView {
 public:
  using Options = TgsOptions;

  TgsView() = default;

  // Validates `bytes` as a v3 image and opens a view.  Throws
  // VersionError for v1/v2 images, SerializeError for anything
  // corrupt, truncated or structurally invalid.  The bytes must stay
  // alive and unchanged for the lifetime of the view.
  [[nodiscard]] static TgsView open(std::span<const std::uint8_t> bytes,
                                    const Options& options = {});

  [[nodiscard]] bool is_open() const { return base_ != nullptr; }

  // The compiled decide; semantics identical to the v2 heap table
  // (which itself is bit-identical to game::Strategy::decide).
  [[nodiscard]] game::Move decide(const semantics::ConcreteState& state,
                                  std::int64_t scale) const;

  // The transition behind a Move::edge value, decoded from the mapped
  // EdgeRec (by value: the view has no materialised instances).
  [[nodiscard]] semantics::TransitionInstance edge_instance(
      std::uint32_t original) const;

  // ── header / shape ──
  [[nodiscard]] const TgsHeader& header() const { return *header_; }
  [[nodiscard]] std::span<const SectionRec> sections() const {
    return {section_table_, kSectionCount};
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {base_, size_};
  }
  [[nodiscard]] std::uint64_t fingerprint() const {
    return header_->fingerprint;
  }
  [[nodiscard]] std::uint32_t clock_dim() const { return header_->clock_dim; }
  [[nodiscard]] std::uint32_t proc_count() const {
    return header_->proc_count;
  }
  [[nodiscard]] std::uint32_t slot_count() const {
    return header_->slot_count;
  }
  [[nodiscard]] std::uint32_t purpose_kind() const {
    return header_->purpose_kind;
  }
  [[nodiscard]] std::size_t key_count() const { return header_->key_count; }
  [[nodiscard]] std::size_t bucket_count() const { return bucket_mask_ + 1; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t arc_count() const { return arc_count_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }
  [[nodiscard]] std::size_t act_count() const { return act_count_; }
  [[nodiscard]] std::size_t zone_ref_count() const { return zone_ref_count_; }
  [[nodiscard]] std::size_t zone_count() const { return zone_count_; }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  [[nodiscard]] std::string_view string(std::uint32_t index) const;
  [[nodiscard]] std::string_view system_name() const {
    return string(kStrSystemName);
  }
  [[nodiscard]] std::string_view purpose_source() const {
    return string(kStrPurposeSource);
  }

  // ── typed record access (validated ranges; used by export/tests) ──
  [[nodiscard]] std::span<const std::uint32_t> key_locs(std::uint32_t k) const {
    return {key_locs_ + std::size_t{k} * header_->proc_count,
            header_->proc_count};
  }
  [[nodiscard]] std::span<const std::int32_t> key_data(std::uint32_t k) const {
    return {key_data_ + std::size_t{k} * header_->slot_count,
            header_->slot_count};
  }
  [[nodiscard]] target_t key_root(std::uint32_t k) const {
    return key_roots_[k];
  }
  [[nodiscard]] const NodeRec& node(std::uint32_t n) const { return nodes_[n]; }
  [[nodiscard]] const ArcRec& arc(std::uint32_t a) const { return arcs_[a]; }
  [[nodiscard]] const LeafRec& leaf(std::uint32_t l) const {
    return leaves_[l];
  }
  [[nodiscard]] const ActRec& act(std::uint32_t a) const { return acts_[a]; }
  [[nodiscard]] std::uint32_t zone_ref(std::uint32_t r) const {
    return zone_refs_[r];
  }
  // dim×dim canonical raw cells of zone `z`, served in place.
  [[nodiscard]] const dbm::raw_t* zone_cells(std::uint32_t z) const {
    return zones_ + std::size_t{z} * header_->clock_dim * header_->clock_dim;
  }
  [[nodiscard]] const EdgeRec& edge(std::uint32_t slot) const {
    return edges_[slot];
  }

 private:
  [[nodiscard]] std::optional<std::uint32_t> find_key(
      const semantics::ConcreteState& state) const;

  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
  const TgsHeader* header_ = nullptr;
  const SectionRec* section_table_ = nullptr;

  const std::uint32_t* key_locs_ = nullptr;
  const std::int32_t* key_data_ = nullptr;
  const std::uint32_t* key_roots_ = nullptr;
  const std::uint32_t* buckets_ = nullptr;
  std::size_t bucket_mask_ = 0;
  const NodeRec* nodes_ = nullptr;
  const ArcRec* arcs_ = nullptr;
  const LeafRec* leaves_ = nullptr;
  const ActRec* acts_ = nullptr;
  const std::uint32_t* zone_refs_ = nullptr;
  const dbm::raw_t* zones_ = nullptr;
  const EdgeRec* edges_ = nullptr;
  const LookupRec* edge_lookup_ = nullptr;
  const StrRec* strings_ = nullptr;
  const char* string_blob_ = nullptr;
  std::size_t node_count_ = 0;
  std::size_t arc_count_ = 0;
  std::size_t leaf_count_ = 0;
  std::size_t act_count_ = 0;
  std::size_t zone_ref_count_ = 0;
  std::size_t zone_count_ = 0;
  std::size_t edge_count_ = 0;
};

}  // namespace tigat::decision
