// The `.tgs` v3 on-disk format — a flat, little-endian, offset-based
// image a decision table serves from without deserialization.
//
// v1/v2 streamed the table field by field and every serving process
// re-parsed it into heap vectors before the first decide().  v3 lays
// the same data out as the *runtime* representation: a fixed header, a
// section table, and per section one contiguous array of fixed-size
// little-endian records addressed by u32 indices instead of pointers.
// Opening a table is `mmap` + bounds validation (decision/view.h);
// decide() walks the mapped records in place.  Even the open-addressed
// key→root bucket index — which v2 readers rebuilt on every load — is
// a section, so cold start builds nothing.
//
//   offset 0   Header (64 bytes, see below)
//   offset 64  section table: kSectionCount × SectionRec
//   then       sections, each 8-byte aligned, zero-padded between,
//              in section-id order
//
// All integers are little-endian; the reader requires a little-endian
// host (static_assert below) so records are read by pointer cast, not
// byte shuffling.  The checksum is FNV-1a over every byte after the
// header and is verified before any record is trusted.
//
// Version history: v1 (reachability only) and v2 (safety fat leaves)
// were streamed heap formats; both magics are recognised and rejected
// with a "re-solve to migrate" VersionError — decision/legacy.h still
// parses v2 so `decision::load` / `tigat-serve migrate` can upgrade
// old artifacts in one pass.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

#include "tsystem/data.h"

namespace tigat::decision {

inline constexpr std::uint32_t kFormatVersion = 3;

// A corrupted, truncated or structurally invalid .tgs (or an I/O
// failure reading one).  Derives from ModelError so pipeline-level
// catch sites keep working.
class SerializeError : public tsystem::ModelError {
 public:
  using tsystem::ModelError::ModelError;
};

// A well-formed .tgs of an *older format version* (v1/v2).  Distinct
// from SerializeError so callers can give the "re-solve to migrate"
// diagnostic (exit 1) instead of misreporting the file as corrupt
// (exit 2).  The version check runs before the checksum, so an old
// file always lands here, never in a checksum/bounds error.
class VersionError : public SerializeError {
 public:
  using SerializeError::SerializeError;
};

// Zero-copy record access requires the on-disk byte order to be the
// in-memory one.  Every supported target is little-endian; a
// big-endian port would add byte-swapping readers behind this line.
static_assert(std::endian::native == std::endian::little,
              ".tgs v3 zero-copy views require a little-endian host");

inline constexpr char kMagicV3[4] = {'T', 'G', 'S', '3'};
inline constexpr char kMagicLegacy[4] = {'T', 'G', 'S', 'D'};  // v1/v2

struct TgsHeader {
  char magic[4];              // "TGS3"
  std::uint32_t version;      // 3
  std::uint64_t file_bytes;   // total image size, header included
  std::uint64_t checksum;     // FNV-1a over bytes [sizeof(TgsHeader), file_bytes)
  std::uint64_t fingerprint;  // model_fingerprint(system, purpose)
  std::uint32_t clock_dim;    // clocks incl. the reference clock
  std::uint32_t proc_count;   // locs per discrete key
  std::uint32_t slot_count;   // data slots per discrete key
  std::uint32_t purpose_kind; // 0 = reachability, 1 = safety
  std::uint32_t key_count;
  std::uint32_t section_count;  // kSectionCount
  std::uint64_t reserved;
};
static_assert(sizeof(TgsHeader) == 64, ".tgs v3 header is 64 bytes");

// Section ids; the section table lists them in this order.
enum TgsSection : std::uint32_t {
  kSecKeyLocs = 1,     // u32[key_count × proc_count]
  kSecKeyData = 2,     // i32[key_count × slot_count]
  kSecKeyRoots = 3,    // target_t[key_count]
  kSecKeyBuckets = 4,  // u32[pow2 ≥ max(8, 2·keys)], entry = key+1, 0 empty
  kSecNodes = 5,       // NodeRec[]
  kSecArcs = 6,        // ArcRec[]
  kSecLeaves = 7,      // LeafRec[]
  kSecActs = 8,        // ActRec[]
  kSecZoneRefs = 9,    // u32[]
  kSecZones = 10,      // raw_t[zone_count × dim × dim], canonical DBMs
  kSecEdges = 11,      // EdgeRec[]
  kSecEdgeLookup = 12, // LookupRec[], sorted by original edge index
  kSecStrings = 13,    // StrRec[kStringCount]
  kSecStringBlob = 14, // UTF-8 bytes the StrRecs slice
};
inline constexpr std::uint32_t kSectionCount = 14;

struct SectionRec {
  std::uint32_t id = 0;
  std::uint32_t record_size = 0;  // bytes per record (1 for the blob)
  std::uint64_t offset = 0;       // from the start of the image; 8-aligned
  std::uint64_t bytes = 0;        // multiple of record_size
};
static_assert(sizeof(SectionRec) == 24);

inline constexpr std::size_t kSectionTableEnd =
    sizeof(TgsHeader) + kSectionCount * sizeof(SectionRec);

// ── section records ─────────────────────────────────────────────────
// Mirrors of decision/table.h's TableData records with fixed width and
// no pointers; decision/view.h reads them in place.

struct NodeRec {
  std::uint16_t i = 0, j = 0;  // tests x_i − x_j
  std::uint32_t first_arc = 0;
  std::uint32_t arc_count = 0;
};
static_assert(sizeof(NodeRec) == 12);

struct ArcRec {
  std::int32_t bound = 0;     // encoded dbm::raw_t; kInfinity on the last arc
  std::uint32_t target = 0;   // target_t (top bit = leaf)
};
static_assert(sizeof(ArcRec) == 8);

struct LeafRec {
  std::uint32_t kind = 0;  // game::MoveKind, widened for alignment
  std::uint32_t rank = 0;
  std::uint32_t edge_slot = 0;
  std::uint32_t zones_first = 0;
  std::uint32_t zones_count = 0;
  std::uint32_t acts_first = 0;
  std::uint32_t acts_count = 0;
  std::uint32_t danger_first = 0;
  std::uint32_t danger_count = 0;
};
static_assert(sizeof(LeafRec) == 36);

struct ActRec {
  std::uint32_t edge_slot = 0;
  std::uint32_t zones_first = 0;
  std::uint32_t zones_count = 0;
};
static_assert(sizeof(ActRec) == 12);

inline constexpr std::uint32_t kEdgeControllable = 1u << 0;
inline constexpr std::uint32_t kEdgeHasReceiver = 1u << 1;

struct EdgeRec {
  std::uint32_t original = 0;  // index into SymbolicGraph::edges()
  std::uint32_t primary_process = 0;
  std::uint32_t primary_edge = 0;
  std::uint32_t receiver_process = 0;  // valid iff kEdgeHasReceiver
  std::uint32_t receiver_edge = 0;
  std::uint32_t flags = 0;
};
static_assert(sizeof(EdgeRec) == 24);

struct LookupRec {
  std::uint32_t original = 0;
  std::uint32_t slot = 0;  // into the edges section
};
static_assert(sizeof(LookupRec) == 8);

struct StrRec {
  std::uint32_t offset = 0;  // into the string blob
  std::uint32_t length = 0;
};
static_assert(sizeof(StrRec) == 8);

// Fixed string-pool layout (indices into kSecStrings).
enum TgsString : std::uint32_t {
  kStrSystemName = 0,
  kStrPurposeSource = 1,
};
inline constexpr std::uint32_t kStringCount = 2;

// ── shared helpers ──────────────────────────────────────────────────

[[nodiscard]] inline std::uint64_t fnv1a(const std::uint8_t* data,
                                         std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t k = 0; k < size; ++k) {
    h ^= data[k];
    h *= 0x100000001b3ull;
  }
  return h;
}

// Same mixing as semantics::DiscreteKey::hash / DataState::hash, over
// raw spans: the writer uses it to precompute the bucket section, the
// view and the heap table use it to probe, so all three agree on the
// slot of every key.
[[nodiscard]] inline std::size_t hash_discrete(
    std::span<const std::uint32_t> locs, std::span<const std::int32_t> values) {
  std::size_t h = 0x9e3779b9u;
  for (const std::int32_t v : values) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(v)) + 0x9e3779b9u +
         (h << 6) + (h >> 2);
  }
  for (const std::uint32_t l : locs) {
    h ^= l + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

// Smallest valid bucket-table size for `keys` entries: the load factor
// stays ≤ ½ so linear probing terminates fast.
[[nodiscard]] inline std::size_t bucket_capacity(std::size_t keys) {
  std::size_t cap = 8;
  while (cap < keys * 2) cap *= 2;
  return cap;
}

}  // namespace tigat::decision
