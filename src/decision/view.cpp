#include "decision/view.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "dbm/dbm.h"
#include "util/assert.h"
#include "util/text.h"

namespace tigat::decision {

using game::Move;
using game::MoveKind;
using semantics::ConcreteState;

namespace {

[[noreturn]] void invalid(const char* what) {
  throw SerializeError(util::format("invalid .tgs image: %s", what));
}

[[nodiscard]] const SectionRec& section(const SectionRec* table,
                                        TgsSection id) {
  // Validated to be in id order with ids 1..kSectionCount.
  return table[static_cast<std::uint32_t>(id) - 1];
}

[[nodiscard]] std::size_t record_count(const SectionRec& s) {
  return s.bytes / s.record_size;
}

}  // namespace

TgsView TgsView::open(std::span<const std::uint8_t> bytes,
                      const Options& options) {
  // ── magic / version: decided before anything else, so a v1/v2 file
  // gets the migration diagnostic, never a checksum or bounds error ──
  if (bytes.size() >= 8 &&
      std::memcmp(bytes.data(), kMagicLegacy, 4) == 0) {
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 4, 4);
    throw VersionError(util::format(
        ".tgs format v%u is a pre-v3 streamed format — re-solve with "
        "--strategy-out or run `tigat-serve migrate` to upgrade it",
        version));
  }
  if (bytes.size() < sizeof(TgsHeader) ||
      std::memcmp(bytes.data(), kMagicV3, 4) != 0) {
    throw SerializeError("not a .tgs decision file (bad magic)");
  }
  TgsView v;
  v.base_ = bytes.data();
  v.size_ = bytes.size();
  v.header_ = reinterpret_cast<const TgsHeader*>(bytes.data());
  const TgsHeader& h = *v.header_;
  if (h.version != kFormatVersion) {
    if (h.version < kFormatVersion) {
      throw VersionError(util::format(
          ".tgs format v%u is a pre-v3 format — re-solve to migrate",
          h.version));
    }
    throw SerializeError(util::format(
        ".tgs version %u is not supported (expected %u)", h.version,
        kFormatVersion));
  }
  if (h.file_bytes != bytes.size()) {
    throw SerializeError("decision file truncated: size mismatch");
  }
  if (options.verify_checksum &&
      fnv1a(bytes.data() + sizeof(TgsHeader),
            bytes.size() - sizeof(TgsHeader)) != h.checksum) {
    throw SerializeError("decision file corrupted: checksum mismatch");
  }
  if (h.clock_dim == 0 || h.clock_dim > 0xffff) {
    invalid("bad clock dimension");
  }
  if (h.purpose_kind > 1) invalid("unknown purpose kind");
  if (h.section_count != kSectionCount) invalid("bad section count");
  if (bytes.size() < kSectionTableEnd) {
    throw SerializeError("decision file truncated: no section table");
  }
  v.section_table_ =
      reinterpret_cast<const SectionRec*>(bytes.data() + sizeof(TgsHeader));

  // ── section table geometry: known ids in order, 8-aligned,
  // ascending, non-overlapping, inside the file ──
  static constexpr std::uint32_t kRecordSizes[kSectionCount] = {
      4, 4, 4, 4, sizeof(NodeRec), sizeof(ArcRec), sizeof(LeafRec),
      sizeof(ActRec), 4, 4, sizeof(EdgeRec), sizeof(LookupRec),
      sizeof(StrRec), 1};
  std::uint64_t cursor = kSectionTableEnd;
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    const SectionRec& rec = v.section_table_[s];
    if (rec.id != s + 1) invalid("section table out of order");
    if (rec.record_size != kRecordSizes[s]) invalid("bad section record size");
    if (rec.offset % 8 != 0) invalid("misaligned section");
    if (rec.offset < cursor) invalid("overlapping sections");
    if (rec.offset > bytes.size() || rec.bytes > bytes.size() - rec.offset) {
      throw SerializeError(
          "decision file truncated: section past end of file");
    }
    if (rec.bytes % rec.record_size != 0) invalid("ragged section");
    cursor = rec.offset + rec.bytes;
  }

  // ── typed pointers + counts ──
  const auto ptr = [&](TgsSection id) {
    return v.base_ + section(v.section_table_, id).offset;
  };
  const auto count = [&](TgsSection id) {
    return record_count(section(v.section_table_, id));
  };
  v.key_locs_ = reinterpret_cast<const std::uint32_t*>(ptr(kSecKeyLocs));
  v.key_data_ = reinterpret_cast<const std::int32_t*>(ptr(kSecKeyData));
  v.key_roots_ = reinterpret_cast<const std::uint32_t*>(ptr(kSecKeyRoots));
  v.buckets_ = reinterpret_cast<const std::uint32_t*>(ptr(kSecKeyBuckets));
  v.nodes_ = reinterpret_cast<const NodeRec*>(ptr(kSecNodes));
  v.arcs_ = reinterpret_cast<const ArcRec*>(ptr(kSecArcs));
  v.leaves_ = reinterpret_cast<const LeafRec*>(ptr(kSecLeaves));
  v.acts_ = reinterpret_cast<const ActRec*>(ptr(kSecActs));
  v.zone_refs_ = reinterpret_cast<const std::uint32_t*>(ptr(kSecZoneRefs));
  v.zones_ = reinterpret_cast<const dbm::raw_t*>(ptr(kSecZones));
  v.edges_ = reinterpret_cast<const EdgeRec*>(ptr(kSecEdges));
  v.edge_lookup_ = reinterpret_cast<const LookupRec*>(ptr(kSecEdgeLookup));
  v.strings_ = reinterpret_cast<const StrRec*>(ptr(kSecStrings));
  v.string_blob_ = reinterpret_cast<const char*>(ptr(kSecStringBlob));
  v.node_count_ = count(kSecNodes);
  v.arc_count_ = count(kSecArcs);
  v.leaf_count_ = count(kSecLeaves);
  v.act_count_ = count(kSecActs);
  v.zone_ref_count_ = count(kSecZoneRefs);
  v.edge_count_ = count(kSecEdges);

  // ── per-section shape against the header ──
  const std::uint64_t keys = h.key_count;
  if (count(kSecKeyLocs) != keys * h.proc_count) invalid("key locs shape");
  if (count(kSecKeyData) != keys * h.slot_count) invalid("key data shape");
  if (count(kSecKeyRoots) != keys) invalid("key roots shape");
  if (keys != 0 && h.proc_count == 0 && h.slot_count == 0) {
    invalid("key with no discrete part");
  }
  const std::size_t cells = std::size_t{h.clock_dim} * h.clock_dim;
  if (count(kSecZones) % cells != 0) invalid("zone section shape");
  v.zone_count_ = count(kSecZones) / cells;
  if (count(kSecStrings) != kStringCount) invalid("string table shape");
  const std::size_t blob = count(kSecStringBlob);
  for (std::uint32_t s = 0; s < kStringCount; ++s) {
    const StrRec& str = v.strings_[s];
    if (str.offset > blob || str.length > blob - str.offset) {
      invalid("string slice out of bounds");
    }
  }

  // ── bucket index: a correct open-addressed table for these keys ──
  const std::size_t bucket_count = count(kSecKeyBuckets);
  if (bucket_count < 8 || (bucket_count & (bucket_count - 1)) != 0) {
    invalid("bucket table size is not a power of two");
  }
  if (bucket_count < keys * 2) invalid("bucket table too small");
  v.bucket_mask_ = bucket_count - 1;
  std::size_t occupied = 0;
  for (std::size_t b = 0; b < bucket_count; ++b) {
    if (v.buckets_[b] == 0) continue;
    if (v.buckets_[b] > keys) invalid("bucket entry out of range");
    ++occupied;
  }
  if (occupied != keys) invalid("bucket table does not cover the keys");
  for (std::uint32_t k = 0; k < keys; ++k) {
    std::size_t at = hash_discrete(v.key_locs(k), v.key_data(k)) &
                     v.bucket_mask_;
    bool found = false;
    for (std::size_t probe = 0; probe < bucket_count; ++probe) {
      const std::uint32_t entry = v.buckets_[at];
      if (entry == 0) break;
      if (entry == k + 1) {
        found = true;
        break;
      }
      at = (at + 1) & v.bucket_mask_;
    }
    if (!found) invalid("bucket table misses a key");
  }

  // ── DAG structure: the checks the v2 heap loader ran, against the
  // mapped records ──
  const auto check_target = [&](target_t t) {
    if (is_leaf(t)) {
      if (target_index(t) >= v.leaf_count_) invalid("leaf out of range");
    } else if (target_index(t) >= v.node_count_) {
      invalid("node out of range");
    }
  };
  for (std::uint32_t k = 0; k < keys; ++k) check_target(v.key_roots_[k]);
  for (std::size_t n = 0; n < v.node_count_; ++n) {
    const NodeRec& node = v.nodes_[n];
    if (node.i >= h.clock_dim || node.j >= h.clock_dim || node.i == node.j) {
      invalid("node tests a bad clock pair");
    }
    if (node.arc_count < 2 ||
        std::size_t{node.first_arc} + node.arc_count > v.arc_count_) {
      invalid("node arc range out of bounds");
    }
    // Arcs must be strictly sorted by encoded bound and end in `< ∞`,
    // so the first-satisfied-arc scan in decide() is total.
    for (std::uint32_t a = 0; a < node.arc_count; ++a) {
      const ArcRec& arc = v.arcs_[node.first_arc + a];
      check_target(arc.target);
      if (a + 1 == node.arc_count) {
        if (!dbm::is_infinity(arc.bound)) invalid("node lacks an ∞ arc");
      } else if (arc.bound >= v.arcs_[node.first_arc + a + 1].bound) {
        invalid("node arcs are not sorted");
      }
    }
  }
  for (std::size_t l = 0; l < v.leaf_count_; ++l) {
    const LeafRec& leaf = v.leaves_[l];
    if (leaf.kind > static_cast<std::uint32_t>(MoveKind::kUnwinnable)) {
      invalid("unknown leaf kind");
    }
    switch (static_cast<MoveKind>(leaf.kind)) {
      case MoveKind::kGoalReached:
        // Safety plays are won by outlasting the budget (the
        // executor's call), never by a goal prescription.
        if (h.purpose_kind == 1) invalid("goal leaf in a safety table");
        break;
      case MoveKind::kUnwinnable:
        break;
      case MoveKind::kAction:
        if (leaf.edge_slot >= v.edge_count_) {
          invalid("action leaf edge slot out of range");
        }
        break;
      case MoveKind::kDelay:
        if (std::size_t{leaf.zones_first} + leaf.zones_count >
            v.zone_ref_count_) {
          invalid("delay leaf zone slice out of bounds");
        }
        break;
      default:
        invalid("unknown leaf kind");
    }
    if (h.purpose_kind == 0 &&
        (leaf.acts_count != 0 || leaf.danger_count != 0)) {
      invalid("safety slices in a reachability table");
    }
    if (std::size_t{leaf.acts_first} + leaf.acts_count > v.act_count_) {
      invalid("leaf act slice out of bounds");
    }
    if (std::size_t{leaf.danger_first} + leaf.danger_count >
        v.zone_ref_count_) {
      invalid("leaf danger slice out of bounds");
    }
  }
  for (std::size_t a = 0; a < v.act_count_; ++a) {
    const ActRec& act = v.acts_[a];
    if (act.edge_slot >= v.edge_count_) invalid("act edge slot out of range");
    if (std::size_t{act.zones_first} + act.zones_count > v.zone_ref_count_) {
      invalid("act zone slice out of bounds");
    }
  }
  for (std::size_t r = 0; r < v.zone_ref_count_; ++r) {
    if (v.zone_refs_[r] >= v.zone_count_) invalid("zone reference out of range");
  }
  for (std::size_t e = 0; e < v.edge_count_; ++e) {
    if ((v.edges_[e].flags & ~(kEdgeControllable | kEdgeHasReceiver)) != 0) {
      invalid("unknown edge flags");
    }
  }

  // ── edge lookup: a sorted bijection onto the edge slots ──
  if (count(kSecEdgeLookup) != v.edge_count_) invalid("edge lookup shape");
  std::vector<bool> slot_seen(v.edge_count_, false);
  for (std::size_t e = 0; e < v.edge_count_; ++e) {
    const LookupRec& rec = v.edge_lookup_[e];
    if (rec.slot >= v.edge_count_ || slot_seen[rec.slot]) {
      invalid("edge lookup is not a permutation");
    }
    slot_seen[rec.slot] = true;
    if (rec.original != v.edges_[rec.slot].original) {
      invalid("edge lookup disagrees with the edge section");
    }
    if (e != 0 && v.edge_lookup_[e - 1].original >= rec.original) {
      invalid("duplicate edge slot");
    }
  }

  // ── zone canonicality: rebuild + close must be a no-op ──
  if (options.verify_zones) {
    for (std::size_t z = 0; z < v.zone_count_; ++z) {
      dbm::Dbm zone = dbm::Dbm::from_raw(h.clock_dim, v.zone_cells(z));
      if (!zone.close()) {
        throw SerializeError("decision file corrupted: inconsistent zone");
      }
      for (std::uint32_t i = 0; i < h.clock_dim && !zone.is_empty(); ++i) {
        for (std::uint32_t j = 0; j < h.clock_dim; ++j) {
          if (zone.at(i, j) != v.zone_cells(z)[i * h.clock_dim + j]) {
            throw SerializeError(
                "decision file corrupted: non-canonical zone");
          }
        }
      }
      if (zone.is_empty()) {
        throw SerializeError("decision file corrupted: empty zone in pool");
      }
    }
  }

  return v;
}

std::string_view TgsView::string(std::uint32_t index) const {
  const StrRec& rec = strings_[index];
  return {string_blob_ + rec.offset, rec.length};
}

std::optional<std::uint32_t> TgsView::find_key(
    const ConcreteState& state) const {
  const std::uint32_t procs = header_->proc_count;
  const std::uint32_t slots = header_->slot_count;
  if (state.locs.size() != procs || state.data.slot_count() != slots) {
    return std::nullopt;
  }
  const std::span<const std::uint32_t> locs(state.locs);
  const std::span<const std::int32_t> values(state.data.values());
  std::size_t at = hash_discrete(locs, values) & bucket_mask_;
  while (buckets_[at] != 0) {
    const std::uint32_t k = buckets_[at] - 1;
    const bool locs_match =
        procs == 0 || std::memcmp(key_locs_ + std::size_t{k} * procs,
                                  locs.data(), std::size_t{procs} * 4) == 0;
    const bool data_match =
        slots == 0 || std::memcmp(key_data_ + std::size_t{k} * slots,
                                  values.data(), std::size_t{slots} * 4) == 0;
    if (locs_match && data_match) return k;
    at = (at + 1) & bucket_mask_;
  }
  return std::nullopt;
}

Move TgsView::decide(const ConcreteState& state, std::int64_t scale) const {
  TIGAT_ASSERT(state.clocks.size() == header_->clock_dim,
               "state dimension mismatch");
  const std::uint32_t dim = header_->clock_dim;
  Move move;
  const auto k = find_key(state);
  if (!k) return move;  // not even discretely reachable

  target_t t = key_roots_[*k];
  while (!is_leaf(t)) {
    const NodeRec& n = nodes_[target_index(t)];
    const std::int64_t diff = state.clocks[n.i] - state.clocks[n.j];
    const ArcRec* arc = &arcs_[n.first_arc];
    while (!dbm::satisfies(diff, arc->bound, scale)) ++arc;
    t = arc->target;
  }
  const LeafRec& leaf = leaves_[target_index(t)];
  switch (static_cast<MoveKind>(leaf.kind)) {
    case MoveKind::kUnwinnable:
      return move;
    case MoveKind::kGoalReached:
      move.kind = MoveKind::kGoalReached;
      move.rank = leaf.rank;
      return move;
    case MoveKind::kAction:
      move.kind = MoveKind::kAction;
      move.rank = leaf.rank;
      move.edge = edges_[leaf.edge_slot].original;
      return move;
    case MoveKind::kDelay: {
      move.kind = MoveKind::kDelay;
      move.rank = leaf.rank;
      if (header_->purpose_kind == 1) {
        // Safety fat leaf — mirrors Strategy::decide's safety branch
        // move for move.  Latest harmless wait: the dense stay bound
        // over the Safe zones (the leaf's zone slice), clipped one
        // tick short of the danger region.
        thread_local std::vector<dbm::DelayInterval> intervals;
        intervals.clear();
        const std::uint32_t* sref = zone_refs_ + leaf.zones_first;
        for (std::uint32_t z = 0; z < leaf.zones_count; ++z) {
          if (const auto iv = dbm::raw_delay_interval(
                  dim, zone_cells(sref[z]), state.clocks, scale)) {
            intervals.push_back(*iv);
          }
        }
        // A well-formed table only routes points inside the Safe
        // region here, so some interval covers delay 0.  Checked (not
        // asserted) because a bit-rotted image can pass structural
        // validation yet route a foreign point to this leaf; such a
        // point is simply not winnable-from.
        bool covers_now = false;
        for (const dbm::DelayInterval& iv : intervals) {
          covers_now |= iv.lo == 0 && !iv.lo_strict;
        }
        if (!covers_now) return Move{};
        std::int64_t deadline = dbm::merge_stay_bound(intervals);
        std::optional<std::int64_t> danger_in;
        const std::uint32_t* dref = zone_refs_ + leaf.danger_first;
        for (std::uint32_t z = 0; z < leaf.danger_count; ++z) {
          if (const auto d = dbm::raw_earliest_entry_delay(
                  dim, zone_cells(dref[z]), state.clocks, scale)) {
            danger_in = danger_in ? std::min(*danger_in, *d) : *d;
          }
        }
        if (danger_in && *danger_in > 0) {
          deadline = std::min(deadline, *danger_in - 1);
        }
        const bool threat_now = danger_in && *danger_in == 0;
        if (deadline > 0 && !threat_now) {
          move.next_decision_ticks = std::min(deadline, Move::kNoDecision);
          return move;
        }
        // Boundary (or live threat): first action whose region holds,
        // in the same edge order Strategy::decide scans.
        for (std::uint32_t a = 0; a < leaf.acts_count; ++a) {
          const ActRec& act = acts_[leaf.acts_first + a];
          const std::uint32_t* aref = zone_refs_ + act.zones_first;
          for (std::uint32_t z = 0; z < act.zones_count; ++z) {
            if (dbm::raw_contains_point(dim, zone_cells(aref[z]),
                                        state.clocks, scale)) {
              move.kind = MoveKind::kAction;
              move.edge = edges_[act.edge_slot].original;
              return move;
            }
          }
        }
        // No safe action yet: wait for the threat instant (ties go to
        // the tester) or the SUT's forced move.
        move.next_decision_ticks =
            danger_in && *danger_in > 0 ? *danger_in : 0;
        return move;
      }
      // Min over the exact zones Strategy::decide consults (action
      // regions at rank−1, then the lower winning set of this key).
      std::int64_t next = Move::kNoDecision;
      const std::uint32_t* ref = zone_refs_ + leaf.zones_first;
      for (std::uint32_t z = 0; z < leaf.zones_count; ++z) {
        if (const auto d = dbm::raw_earliest_entry_delay(
                dim, zone_cells(ref[z]), state.clocks, scale)) {
          next = std::min(next, *d);
        }
      }
      move.next_decision_ticks = next;
      return move;
    }
  }
  return move;
}

semantics::TransitionInstance TgsView::edge_instance(
    std::uint32_t original) const {
  const LookupRec* begin = edge_lookup_;
  const LookupRec* end = edge_lookup_ + edge_count_;
  const LookupRec* it = std::lower_bound(
      begin, end, original,
      [](const LookupRec& rec, std::uint32_t e) { return rec.original < e; });
  TIGAT_ASSERT(it != end && it->original == original,
               "edge not referenced by this table");
  const EdgeRec& rec = edges_[it->slot];
  semantics::TransitionInstance inst;
  inst.primary = {rec.primary_process, rec.primary_edge};
  if ((rec.flags & kEdgeHasReceiver) != 0) {
    inst.receiver =
        semantics::EdgeRef{rec.receiver_process, rec.receiver_edge};
  }
  inst.controllable = (rec.flags & kEdgeControllable) != 0;
  return inst;
}

}  // namespace tigat::decision
