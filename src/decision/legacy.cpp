#include "decision/legacy.h"

#include <cstring>

#include "util/text.h"

namespace tigat::decision {

namespace {

constexpr std::uint32_t kLegacyVersion = 2;
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

// ── little-endian writer ────────────────────────────────────────────

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int k = 0; k < 2; ++k) out_.push_back((v >> (8 * k)) & 0xff);
  }
  void u32(std::uint32_t v) {
    for (int k = 0; k < 4; ++k) out_.push_back((v >> (8 * k)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int k = 0; k < 8; ++k) out_.push_back((v >> (8 * k)) & 0xff);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

 private:
  std::vector<std::uint8_t>& out_;
};

// ── bounds-checked little-endian reader ─────────────────────────────

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[at_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int k = 0; k < 2; ++k) v |= std::uint16_t{data_[at_++]} << (8 * k);
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) v |= std::uint32_t{data_[at_++]} << (8 * k);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= std::uint64_t{data_[at_++]} << (8 * k);
    return v;
  }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(u32());
  }
  // Guards count fields before a vector reserve/loop: a corrupted count
  // must fail cleanly, not allocate gigabytes.
  [[nodiscard]] std::uint32_t count(std::size_t element_size) {
    const std::uint32_t n = u32();
    if (element_size != 0 && std::size_t{n} > (size_ - at_) / element_size) {
      throw SerializeError("decision file truncated: count exceeds payload");
    }
    return n;
  }
  [[nodiscard]] bool exhausted() const { return at_ == size_; }

 private:
  void need(std::size_t n) {
    if (size_ - at_ < n) {
      throw SerializeError("decision file truncated");
    }
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

void write_instance(Writer& w, const semantics::TransitionInstance& inst) {
  w.u32(inst.primary.process);
  w.u32(inst.primary.edge);
  w.u8(inst.receiver.has_value() ? 1 : 0);
  w.u32(inst.receiver ? inst.receiver->process : 0);
  w.u32(inst.receiver ? inst.receiver->edge : 0);
  w.u8(inst.controllable ? 1 : 0);
}

semantics::TransitionInstance read_instance(Reader& r) {
  semantics::TransitionInstance inst;
  inst.primary.process = r.u32();
  inst.primary.edge = r.u32();
  const bool has_receiver = r.u8() != 0;
  const std::uint32_t rp = r.u32();
  const std::uint32_t re = r.u32();
  if (has_receiver) inst.receiver = semantics::EdgeRef{rp, re};
  inst.controllable = r.u8() != 0;
  return inst;
}

}  // namespace

bool is_legacy_image(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kMagicLegacy, 4) == 0;
}

std::vector<std::uint8_t> to_bytes_v2(const TableData& d) {
  std::vector<std::uint8_t> payload;
  Writer w(payload);

  w.u64(d.fingerprint);
  w.u32(d.clock_dim);
  const std::uint32_t proc_count =
      d.keys.empty() ? 0 : static_cast<std::uint32_t>(d.keys[0].locs.size());
  const std::uint32_t slot_count =
      d.keys.empty() ? 0
                     : static_cast<std::uint32_t>(d.keys[0].data.slot_count());
  w.u32(proc_count);
  w.u32(slot_count);
  w.u8(d.purpose_kind);

  w.u32(static_cast<std::uint32_t>(d.keys.size()));
  for (const TableData::Key& key : d.keys) {
    for (const tsystem::LocId l : key.locs) w.u32(l);
    for (const std::int32_t v : key.data.values()) w.i32(v);
    w.u32(key.root);
  }

  w.u32(static_cast<std::uint32_t>(d.edges.size()));
  for (const TableData::EdgeSlot& edge : d.edges) {
    w.u32(edge.original);
    write_instance(w, edge.inst);
  }

  w.u32(static_cast<std::uint32_t>(d.nodes.size()));
  for (const TableData::Node& n : d.nodes) {
    w.u16(n.i);
    w.u16(n.j);
    w.u32(n.first_arc);
    w.u32(n.arc_count);
  }

  w.u32(static_cast<std::uint32_t>(d.arcs.size()));
  for (const TableData::Arc& a : d.arcs) {
    w.i32(a.bound);
    w.u32(a.target);
  }

  w.u32(static_cast<std::uint32_t>(d.leaves.size()));
  for (const TableData::Leaf& leaf : d.leaves) {
    w.u8(static_cast<std::uint8_t>(leaf.kind));
    w.u32(leaf.rank);
    w.u32(leaf.edge_slot);
    w.u32(leaf.zones_first);
    w.u32(leaf.zones_count);
    w.u32(leaf.acts_first);
    w.u32(leaf.acts_count);
    w.u32(leaf.danger_first);
    w.u32(leaf.danger_count);
  }

  w.u32(static_cast<std::uint32_t>(d.acts.size()));
  for (const TableData::Act& act : d.acts) {
    w.u32(act.edge_slot);
    w.u32(act.zones_first);
    w.u32(act.zones_count);
  }

  w.u32(static_cast<std::uint32_t>(d.zone_refs.size()));
  for (const std::uint32_t ref : d.zone_refs) w.u32(ref);

  w.u32(static_cast<std::uint32_t>(d.zones.size()));
  for (const dbm::Dbm& z : d.zones) {
    for (std::uint32_t i = 0; i < d.clock_dim; ++i) {
      for (std::uint32_t j = 0; j < d.clock_dim; ++j) {
        w.i32(z.at(i, j));
      }
    }
  }

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  Writer h(out);
  for (const char c : kMagicLegacy) h.u8(static_cast<std::uint8_t>(c));
  h.u32(kLegacyVersion);
  h.u64(fnv1a(payload.data(), payload.size()));
  h.u64(payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

TableData from_bytes_v2(const std::vector<std::uint8_t>& bytes) {
  if (!is_legacy_image(bytes) || bytes.size() < kHeaderSize) {
    throw SerializeError("not a legacy .tgs decision file (bad magic)");
  }
  Reader header(bytes.data() + 4, kHeaderSize - 4);
  const std::uint32_t version = header.u32();
  if (version != kLegacyVersion) {
    // v1's 17-byte leaves carry no safety slices; there is nothing to
    // migrate them from.
    throw VersionError(util::format(
        ".tgs format v%u cannot be migrated — re-solve the model", version));
  }
  const std::uint64_t checksum = header.u64();
  const std::uint64_t payload_size = header.u64();
  if (payload_size != bytes.size() - kHeaderSize) {
    throw SerializeError("decision file truncated: payload size mismatch");
  }
  const std::uint8_t* payload = bytes.data() + kHeaderSize;
  if (fnv1a(payload, payload_size) != checksum) {
    throw SerializeError("decision file corrupted: checksum mismatch");
  }

  Reader r(payload, payload_size);
  TableData d;
  d.fingerprint = r.u64();
  d.clock_dim = r.u32();
  if (d.clock_dim == 0 || d.clock_dim > 0xffff) {
    throw SerializeError("decision file corrupted: bad clock dimension");
  }
  const std::uint32_t proc_count = r.u32();
  const std::uint32_t slot_count = r.u32();
  d.purpose_kind = r.u8();
  // v2 carried no provenance strings; migrated tables serve empty ones.

  const std::uint32_t key_count =
      r.count((std::size_t{proc_count} + slot_count + 1) * 4);
  d.keys.reserve(key_count);
  for (std::uint32_t k = 0; k < key_count; ++k) {
    TableData::Key key;
    key.locs.reserve(proc_count);
    for (std::uint32_t p = 0; p < proc_count; ++p) key.locs.push_back(r.u32());
    std::vector<std::int32_t> values(slot_count);
    for (std::uint32_t s = 0; s < slot_count; ++s) values[s] = r.i32();
    key.data = tsystem::DataState(std::move(values));
    key.root = r.u32();
    d.keys.push_back(std::move(key));
  }

  const std::uint32_t edge_count = r.count(4 + 18);
  d.edges.reserve(edge_count);
  for (std::uint32_t e = 0; e < edge_count; ++e) {
    TableData::EdgeSlot slot;
    slot.original = r.u32();
    slot.inst = read_instance(r);
    d.edges.push_back(std::move(slot));
  }

  const std::uint32_t node_count = r.count(2 + 2 + 4 + 4);
  d.nodes.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    TableData::Node node;
    node.i = r.u16();
    node.j = r.u16();
    node.first_arc = r.u32();
    node.arc_count = r.u32();
    d.nodes.push_back(node);
  }

  const std::uint32_t arc_count = r.count(4 + 4);
  d.arcs.reserve(arc_count);
  for (std::uint32_t a = 0; a < arc_count; ++a) {
    TableData::Arc arc;
    arc.bound = r.i32();
    arc.target = r.u32();
    d.arcs.push_back(arc);
  }

  const std::uint32_t leaf_count = r.count(1 + 8 * 4);
  d.leaves.reserve(leaf_count);
  for (std::uint32_t l = 0; l < leaf_count; ++l) {
    TableData::Leaf leaf;
    leaf.kind = static_cast<game::MoveKind>(r.u8());
    leaf.rank = r.u32();
    leaf.edge_slot = r.u32();
    leaf.zones_first = r.u32();
    leaf.zones_count = r.u32();
    leaf.acts_first = r.u32();
    leaf.acts_count = r.u32();
    leaf.danger_first = r.u32();
    leaf.danger_count = r.u32();
    d.leaves.push_back(leaf);
  }

  const std::uint32_t act_count = r.count(3 * 4);
  d.acts.reserve(act_count);
  for (std::uint32_t a = 0; a < act_count; ++a) {
    TableData::Act act;
    act.edge_slot = r.u32();
    act.zones_first = r.u32();
    act.zones_count = r.u32();
    d.acts.push_back(act);
  }

  const std::uint32_t ref_count = r.count(4);
  d.zone_refs.reserve(ref_count);
  for (std::uint32_t z = 0; z < ref_count; ++z) d.zone_refs.push_back(r.u32());

  const std::size_t cells = std::size_t{d.clock_dim} * d.clock_dim;
  const std::uint32_t zone_count = r.count(cells * 4);
  d.zones.reserve(zone_count);
  for (std::uint32_t z = 0; z < zone_count; ++z) {
    dbm::Dbm zone = dbm::Dbm::universal(d.clock_dim);
    for (std::uint32_t i = 0; i < d.clock_dim; ++i) {
      for (std::uint32_t j = 0; j < d.clock_dim; ++j) {
        zone.set_raw(i, j, r.i32());
      }
    }
    // Canonical matrices pass close() unchanged; anything inconsistent
    // (possible only through hand-edited files — the checksum already
    // rejects bit rot) fails here instead of corrupting decide().
    if (!zone.close()) {
      throw SerializeError("decision file corrupted: inconsistent zone");
    }
    d.zones.push_back(std::move(zone));
  }
  if (!r.exhausted()) {
    throw SerializeError("decision file corrupted: trailing bytes");
  }
  return d;
}

}  // namespace tigat::decision
