// DecisionSource — the executor-facing seam between "who answers
// decide()" and Algorithm 3.1.
//
// Test execution needs exactly two things from a strategy backend: a
// Move for the current concrete state, and the TransitionInstance
// behind a prescribed edge index.  Both the federation-walking
// game::Strategy (via StrategySource) and the compiled decision::
// DecisionTable satisfy this, so executors can serve a freshly solved
// game and a strategy loaded from a .tgs file through the same code
// path.  Implementations must be const-thread-safe: one source is
// shared by every parallel test run of a campaign.
#pragma once

#include <cstdint>

#include "game/strategy.h"
#include "semantics/transition.h"

namespace tigat::decision {

class DecisionSource {
 public:
  virtual ~DecisionSource() = default;

  // Decides at a concrete state (clock values in ticks at `scale`).
  [[nodiscard]] virtual game::Move decide(const semantics::ConcreteState& state,
                                          std::int64_t scale) const = 0;

  // The transition behind a Move::edge value returned by decide().
  // By value: zero-copy backends (the mmap-backed DecisionTable since
  // .tgs v3) decode the instance from flat records on the fly and have
  // no materialised object to reference.
  [[nodiscard]] virtual semantics::TransitionInstance edge_instance(
      std::uint32_t edge) const = 0;

  // Decision provenance: a short stable identifier of who answered
  // decide(), recorded in run ledgers (obs/recorder.h) so a post-
  // mortem names the backend that prescribed each step.  Custom test
  // sources keep the default.
  [[nodiscard]] virtual const char* backend_name() const { return "custom"; }
};

// The federation-walking backend: forwards to game::Strategy.
class StrategySource final : public DecisionSource {
 public:
  explicit StrategySource(const game::Strategy& strategy)
      : strategy_(&strategy) {}

  [[nodiscard]] game::Move decide(const semantics::ConcreteState& state,
                                  std::int64_t scale) const override {
    return strategy_->decide(state, scale);
  }

  [[nodiscard]] semantics::TransitionInstance edge_instance(
      std::uint32_t edge) const override {
    return strategy_->solution().graph().edges()[edge].inst;
  }

  [[nodiscard]] const char* backend_name() const override {
    return "strategy-walk";
  }

  [[nodiscard]] const game::Strategy& strategy() const { return *strategy_; }

 private:
  const game::Strategy* strategy_;
};

}  // namespace tigat::decision
