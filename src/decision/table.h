// DecisionTable — a compiled strategy as a flat, immutable decision
// structure (the ROADMAP "compiled decision structure (BDD/CDD)" item).
//
// A Strategy::decide walks ranked zone federations: find the key, find
// the rank (first delta containing the point), test each controllable
// edge's action region, and — for waits — scan federations again for
// the earliest entry delay.  Fine for one run; too much pointer
// chasing for a service executing millions of runs against one solved
// game.  The compiler (decision/compiler.h) lowers that cascade, per
// discrete key, into a CDD-style DAG of interval tests over clock
// differences:
//
//   * an inner NODE tests one difference x_i − x_j against a sorted
//     run of encoded bounds (its arcs); the first satisfied arc is
//     taken, the last arc is always `< ∞` so evaluation cannot fall
//     off the node;
//   * a LEAF is a Move prescription: goal / action(edge) / delay /
//     unwinnable, plus the rank.  Delay leaves reference a slice of
//     the shared zone pool — the exact member zones Strategy consults
//     for its next-decision point — because the wait duration depends
//     on the concrete clock values, not just on the region the point
//     is in (clock differences are delay-invariant, absolute values
//     are not).
//
// Safety tables (purpose_kind = 1) have exactly one winning row per
// key — Safe has no rank structure — and its leaf is a FAT delay
// leaf: the Safe zones (dense stay bound via dbm::merge_stay_bound),
// the danger zones (entry forces an action) and an `acts` slice of
// (edge, region) pairs evaluated in edge order at the boundary.  The
// whole time-driven safety prescription evaluates inside the leaf,
// mirroring game::Strategy's safety branch move for move.
//
// Identical subgraphs are hash-consed at compile time and shared
// across keys, so the table is a DAG, not a forest of trees.
//
// decide() is allocation-free, lock-free and const-thread-safe: a key
// lookup in an open-addressed index, a root-to-leaf walk (one integer
// subtraction + a short sorted-arc scan per node), and for delay
// leaves a scan over inline-stored DBMs.  It returns Moves
// bit-identical to game::Strategy::decide on every state with
// non-negative integer clock ticks (tests/decision_equivalence_test).
//
// The table is self-contained — discrete keys, edge transitions and
// zones are stored by value — so a table loaded from a .tgs file
// (decision/serialize.h) serves decisions without any GameSolution in
// memory, i.e. without ever running the solver on the serving path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metrics.h"

#include "dbm/dbm.h"
#include "decision/source.h"
#include "semantics/concrete.h"
#include "semantics/transition.h"
#include "tsystem/property.h"
#include "tsystem/system.h"

namespace tigat::decision {

// A DAG target: either an inner node or a leaf, tagged in the top bit.
using target_t = std::uint32_t;
inline constexpr target_t kLeafBit = 0x8000'0000u;
[[nodiscard]] constexpr bool is_leaf(target_t t) { return (t & kLeafBit) != 0; }
[[nodiscard]] constexpr std::uint32_t target_index(target_t t) {
  return t & ~kLeafBit;
}
[[nodiscard]] constexpr target_t leaf_target(std::uint32_t index) {
  return index | kLeafBit;
}
[[nodiscard]] constexpr target_t node_target(std::uint32_t index) {
  return index;
}

inline constexpr std::uint32_t kNoEdgeSlot = 0xffff'ffffu;

// The flat representation; filled by the compiler or the deserializer
// and validated/indexed by the DecisionTable constructor.
struct TableData {
  struct Arc {
    dbm::raw_t bound = 0;  // encoded `≺ c`; kInfinity on the last arc
    target_t target = 0;
  };
  struct Node {
    std::uint16_t i = 0, j = 0;  // tests x_i − x_j
    std::uint32_t first_arc = 0;
    std::uint32_t arc_count = 0;
  };
  struct Leaf {
    game::MoveKind kind = game::MoveKind::kUnwinnable;
    std::uint32_t rank = 0;                 // valid unless kUnwinnable
    std::uint32_t edge_slot = kNoEdgeSlot;  // kAction: into `edges`
    std::uint32_t zones_first = 0;          // kDelay: into `zone_refs`
    std::uint32_t zones_count = 0;
    // Safety delay leaves only (zero elsewhere): boundary actions and
    // the danger region, as slices into `acts` / `zone_refs`.
    std::uint32_t acts_first = 0;
    std::uint32_t acts_count = 0;
    std::uint32_t danger_first = 0;
    std::uint32_t danger_count = 0;
  };
  // A safety boundary action: take `edge_slot` while the point is in
  // the referenced action-region zones (a `zone_refs` slice).
  struct Act {
    std::uint32_t edge_slot = 0;
    std::uint32_t zones_first = 0;
    std::uint32_t zones_count = 0;
  };
  struct Key {
    std::vector<tsystem::LocId> locs;
    tsystem::DataState data;
    target_t root = 0;
  };
  struct EdgeSlot {
    std::uint32_t original = 0;  // index into SymbolicGraph::edges()
    semantics::TransitionInstance inst;
  };

  std::uint64_t fingerprint = 0;  // model_fingerprint(system, purpose)
  std::uint32_t clock_dim = 0;    // clocks incl. the reference clock
  std::uint8_t purpose_kind = 0;  // 0 = reachability, 1 = safety
  std::vector<Key> keys;
  std::vector<Node> nodes;
  std::vector<Arc> arcs;
  std::vector<Leaf> leaves;
  std::vector<Act> acts;                 // safety boundary actions
  std::vector<std::uint32_t> zone_refs;  // delay-leaf slices → zone pool
  std::vector<dbm::Dbm> zones;           // shared zone pool
  std::vector<EdgeSlot> edges;
};

// Semantic fingerprint of a system: names, clocks, variable ranges,
// channels with their game partition, and per edge the full guard /
// sync / reset / assignment / controllability content (data
// expressions via their rendered form).  Stored in every table and
// .tgs file so a strategy cannot silently be served against a model it
// was not solved for — editing even one timing constant changes the
// fingerprint.  Note a cooperative table fingerprints the
// all-controllable relaxation it was solved on, not the original SPEC.
[[nodiscard]] std::uint64_t model_fingerprint(const tsystem::System& system);

// Fingerprint of (system, purpose): continues the structural hash with
// the purpose kind and the rendered formula, so a reachability table
// and a safety table — or tables for two different φ — over the same
// model never pass as each other.  This is what compiled tables store.
[[nodiscard]] std::uint64_t model_fingerprint(
    const tsystem::System& system, const tsystem::TestPurpose& purpose);

class DecisionTable final : public DecisionSource {
 public:
  // Validates the data (target/arc/zone/edge ranges, sorted arcs with
  // an infinity terminator, per-key shapes) and builds the key index.
  // Throws tsystem::ModelError on structurally invalid data.
  explicit DecisionTable(TableData data);

  // Allocation-free compiled decide; bit-identical to
  // game::Strategy::decide for clocks[0] == 0 and clocks[i] >= 0.
  // When metrics are enabled each call lands in the "decide.latency_ns"
  // histogram — the serving-path visibility ROADMAP's daemon item
  // needs; off, the timing costs one relaxed load + branch.
  [[nodiscard]] game::Move decide(const semantics::ConcreteState& state,
                                  std::int64_t scale) const override;

  [[nodiscard]] const semantics::TransitionInstance& edge_instance(
      std::uint32_t edge) const override;

  [[nodiscard]] const char* backend_name() const override {
    return "compiled-table";
  }

  // True when the table was compiled against (a system structurally
  // identical to) `system` for this exact purpose; callers should
  // check before serving.
  [[nodiscard]] bool matches(const tsystem::System& system,
                             const tsystem::TestPurpose& purpose) const {
    return data_.fingerprint == model_fingerprint(system, purpose);
  }

  [[nodiscard]] const TableData& data() const { return data_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return data_.fingerprint; }
  [[nodiscard]] std::uint32_t clock_dim() const { return data_.clock_dim; }
  [[nodiscard]] std::size_t key_count() const { return data_.keys.size(); }
  [[nodiscard]] std::size_t node_count() const { return data_.nodes.size(); }
  [[nodiscard]] std::size_t arc_count() const { return data_.arcs.size(); }
  [[nodiscard]] std::size_t leaf_count() const { return data_.leaves.size(); }
  [[nodiscard]] std::size_t zone_count() const { return data_.zones.size(); }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  [[nodiscard]] game::Move decide_impl(const semantics::ConcreteState& state,
                                       std::int64_t scale) const;
  [[nodiscard]] std::optional<std::uint32_t> find_key(
      const semantics::ConcreteState& state) const;
  void validate() const;
  void build_key_index();
  void build_edge_index();

  obs::Histogram* decide_latency_ = nullptr;  // registered in the ctor
  TableData data_;
  // Open-addressed key index: key_index + 1, 0 = empty slot.
  std::vector<std::uint32_t> buckets_;
  std::size_t bucket_mask_ = 0;
  // original edge index → slot in data_.edges (sorted for lookup).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_lookup_;
};

}  // namespace tigat::decision
