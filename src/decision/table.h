// DecisionTable — a compiled strategy as a flat, immutable decision
// structure (the ROADMAP "compiled decision structure (BDD/CDD)" item).
//
// A Strategy::decide walks ranked zone federations: find the key, find
// the rank (first delta containing the point), test each controllable
// edge's action region, and — for waits — scan federations again for
// the earliest entry delay.  Fine for one run; too much pointer
// chasing for a service executing millions of runs against one solved
// game.  The compiler (decision/compiler.h) lowers that cascade, per
// discrete key, into a CDD-style DAG of interval tests over clock
// differences:
//
//   * an inner NODE tests one difference x_i − x_j against a sorted
//     run of encoded bounds (its arcs); the first satisfied arc is
//     taken, the last arc is always `< ∞` so evaluation cannot fall
//     off the node;
//   * a LEAF is a Move prescription: goal / action(edge) / delay /
//     unwinnable, plus the rank.  Delay leaves reference a slice of
//     the shared zone pool — the exact member zones Strategy consults
//     for its next-decision point — because the wait duration depends
//     on the concrete clock values, not just on the region the point
//     is in (clock differences are delay-invariant, absolute values
//     are not).
//
// Safety tables (purpose_kind = 1) have exactly one winning row per
// key — Safe has no rank structure — and its leaf is a FAT delay
// leaf: the Safe zones (dense stay bound via dbm::merge_stay_bound),
// the danger zones (entry forces an action) and an `acts` slice of
// (edge, region) pairs evaluated in edge order at the boundary.  The
// whole time-driven safety prescription evaluates inside the leaf,
// mirroring game::Strategy's safety branch move for move.
//
// Identical subgraphs are hash-consed at compile time and shared
// across keys, so the table is a DAG, not a forest of trees.
//
// Representation: since format v3 the table IS its `.tgs` image.  The
// compiler fills a TableData (the mutable builder form below), the
// constructor flattens it through TgsWriter once, and every query —
// including decide() — runs against a bounds-validated TgsView
// (decision/view.h) over those flat bytes.  The bytes can equally be
// an owned buffer (compile / from_bytes) or a read-only file mapping
// (DecisionTable::map), which is the zero-copy serving path: cold
// start is one mmap + validation, no per-record parsing, no heap
// reconstruction, and N processes mapping one file share the pages.
//
// decide() is allocation-free, lock-free and const-thread-safe: a key
// lookup in the precomputed open-addressed index section, a
// root-to-leaf walk (one integer subtraction + a short sorted-arc scan
// per node), and for delay leaves a scan over raw DBM cells in place.
// It returns Moves bit-identical to game::Strategy::decide on every
// state with non-negative integer clock ticks
// (tests/decision_equivalence_test), across all three backings.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

#include "dbm/dbm.h"
#include "decision/source.h"
#include "decision/view.h"
#include "semantics/concrete.h"
#include "semantics/transition.h"
#include "tsystem/property.h"
#include "tsystem/system.h"
#include "util/mmap.h"

namespace tigat::decision {

inline constexpr std::uint32_t kNoEdgeSlot = 0xffff'ffffu;

// The mutable builder form of a table: what the compiler produces and
// what the legacy (v2) reader migrates into.  TgsWriter flattens it to
// the v3 image; DecisionTable::export_data() materialises it back from
// an image (tests, migration round trips).
struct TableData {
  struct Arc {
    dbm::raw_t bound = 0;  // encoded `≺ c`; kInfinity on the last arc
    target_t target = 0;
  };
  struct Node {
    std::uint16_t i = 0, j = 0;  // tests x_i − x_j
    std::uint32_t first_arc = 0;
    std::uint32_t arc_count = 0;
  };
  struct Leaf {
    game::MoveKind kind = game::MoveKind::kUnwinnable;
    std::uint32_t rank = 0;                 // valid unless kUnwinnable
    std::uint32_t edge_slot = kNoEdgeSlot;  // kAction: into `edges`
    std::uint32_t zones_first = 0;          // kDelay: into `zone_refs`
    std::uint32_t zones_count = 0;
    // Safety delay leaves only (zero elsewhere): boundary actions and
    // the danger region, as slices into `acts` / `zone_refs`.
    std::uint32_t acts_first = 0;
    std::uint32_t acts_count = 0;
    std::uint32_t danger_first = 0;
    std::uint32_t danger_count = 0;
  };
  // A safety boundary action: take `edge_slot` while the point is in
  // the referenced action-region zones (a `zone_refs` slice).
  struct Act {
    std::uint32_t edge_slot = 0;
    std::uint32_t zones_first = 0;
    std::uint32_t zones_count = 0;
  };
  struct Key {
    std::vector<tsystem::LocId> locs;
    tsystem::DataState data;
    target_t root = 0;
  };
  struct EdgeSlot {
    std::uint32_t original = 0;  // index into SymbolicGraph::edges()
    semantics::TransitionInstance inst;
  };

  std::uint64_t fingerprint = 0;  // model_fingerprint(system, purpose)
  std::uint32_t clock_dim = 0;    // clocks incl. the reference clock
  std::uint8_t purpose_kind = 0;  // 0 = reachability, 1 = safety
  // The v3 string pool: provenance carried for tgs-info and serve
  // logs; empty strings on tables migrated from v1/v2 files.
  std::string system_name;
  std::string purpose_source;
  std::vector<Key> keys;
  std::vector<Node> nodes;
  std::vector<Arc> arcs;
  std::vector<Leaf> leaves;
  std::vector<Act> acts;                 // safety boundary actions
  std::vector<std::uint32_t> zone_refs;  // delay-leaf slices → zone pool
  std::vector<dbm::Dbm> zones;           // shared zone pool
  std::vector<EdgeSlot> edges;
};

// Semantic fingerprint of a system: names, clocks, variable ranges,
// channels with their game partition, and per edge the full guard /
// sync / reset / assignment / controllability content (data
// expressions via their rendered form).  Stored in every table and
// .tgs file so a strategy cannot silently be served against a model it
// was not solved for — editing even one timing constant changes the
// fingerprint.  Note a cooperative table fingerprints the
// all-controllable relaxation it was solved on, not the original SPEC.
[[nodiscard]] std::uint64_t model_fingerprint(const tsystem::System& system);

// Fingerprint of (system, purpose): continues the structural hash with
// the purpose kind and the rendered formula, so a reachability table
// and a safety table — or tables for two different φ — over the same
// model never pass as each other.  This is what compiled tables store.
[[nodiscard]] std::uint64_t model_fingerprint(
    const tsystem::System& system, const tsystem::TestPurpose& purpose);

class DecisionTable final : public DecisionSource {
 public:
  // Flattens builder data into an owned v3 image and validates it.
  // Throws tsystem::ModelError on structurally invalid data.
  explicit DecisionTable(TableData data);

  // Adopts a complete v3 image (e.g. the bytes of a .tgs file).
  // Throws SerializeError (VersionError for v1/v2 bytes).
  explicit DecisionTable(std::vector<std::uint8_t> image,
                         const TgsView::Options& options = {});

  // The zero-copy serving path: maps `path` read-only and serves
  // decide() straight from the page cache — no per-record parsing, no
  // heap table, cold start O(validation).  Throws SerializeError on
  // I/O or corruption, VersionError for v1/v2 files ("re-solve to
  // migrate"; `decision::load` or `tigat-serve migrate` upgrade them).
  [[nodiscard]] static DecisionTable map(const std::string& path,
                                         const TgsView::Options& options = {});

  DecisionTable(DecisionTable&&) noexcept = default;
  DecisionTable& operator=(DecisionTable&&) noexcept = default;

  // Allocation-free compiled decide; bit-identical to
  // game::Strategy::decide for clocks[0] == 0 and clocks[i] >= 0.
  // When metrics are enabled each call lands in the "decide.latency_ns"
  // histogram — the serving-path visibility ROADMAP's daemon item
  // needs; off, the timing costs one relaxed load + branch.
  [[nodiscard]] game::Move decide(const semantics::ConcreteState& state,
                                  std::int64_t scale) const override;

  [[nodiscard]] semantics::TransitionInstance edge_instance(
      std::uint32_t edge) const override;

  [[nodiscard]] const char* backend_name() const override {
    return "compiled-table";
  }

  // True when the table was compiled against (a system structurally
  // identical to) `system` for this exact purpose; callers should
  // check before serving.
  [[nodiscard]] bool matches(const tsystem::System& system,
                             const tsystem::TestPurpose& purpose) const {
    return view_.fingerprint() == model_fingerprint(system, purpose);
  }

  // The validated zero-copy view over the image (and the image bytes
  // themselves, e.g. for serialization — to_bytes is a copy of these).
  [[nodiscard]] const TgsView& view() const { return view_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return view_.bytes();
  }
  [[nodiscard]] bool is_mapped() const { return mapped_.is_open(); }

  [[nodiscard]] std::uint64_t fingerprint() const {
    return view_.fingerprint();
  }
  [[nodiscard]] std::uint32_t clock_dim() const { return view_.clock_dim(); }
  [[nodiscard]] std::uint8_t purpose_kind() const {
    return static_cast<std::uint8_t>(view_.purpose_kind());
  }
  [[nodiscard]] std::string_view system_name() const {
    return view_.system_name();
  }
  [[nodiscard]] std::string_view purpose_source() const {
    return view_.purpose_source();
  }
  [[nodiscard]] std::size_t key_count() const { return view_.key_count(); }
  [[nodiscard]] std::size_t node_count() const { return view_.node_count(); }
  [[nodiscard]] std::size_t arc_count() const { return view_.arc_count(); }
  [[nodiscard]] std::size_t leaf_count() const { return view_.leaf_count(); }
  [[nodiscard]] std::size_t zone_count() const { return view_.zone_count(); }
  [[nodiscard]] std::size_t memory_bytes() const {
    return view_.bytes().size();
  }

  // Materialises the builder form back from the image — the inverse of
  // the constructor.  Used by tests and the legacy writer; the serving
  // path never calls it.
  [[nodiscard]] TableData export_data() const;

 private:
  DecisionTable(std::vector<std::uint8_t> owned, util::MappedFile mapped,
                const TgsView::Options& options);

  obs::Histogram* decide_latency_ = nullptr;  // registered in the ctor
  std::vector<std::uint8_t> owned_;  // empty on the mmap path
  util::MappedFile mapped_;          // open only on the mmap path
  TgsView view_;                     // into owned_ or mapped_
};

}  // namespace tigat::decision
