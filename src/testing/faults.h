// Deterministic fault injection at the IUT boundary.
//
// The paper's soundness theorem assumes the tester observes exactly
// what the IUT does.  A real harness does not get that luxury: the
// observation channel drops, delays and duplicates outputs, adapters
// emit garbage or swallow inputs, the IUT process wedges or dies.
// FaultInjector is a decorator over any Implementation that simulates
// precisely those failures — *deterministically*, from a seeded
// util::Rng, so every chaotic run is replayable bit for bit from
// (spec string, seed).
//
// Fault-spec grammar (compact, comma-separated, order-free):
//
//   drop=P        P ∈ [0,1]  each real output is swallowed w.p. P
//   dup=P                    each delivered output is re-delivered
//                            immediately after w.p. P
//   spurious=P               each advance() window starts with a fake
//                            output w.p. P (channel drawn from the
//                            uncontrollable alphabet)
//   reject=P                 each offer_input is discarded w.p. P
//   delay=LO..HI             each output's latency is padded by a draw
//                            from [LO,HI] ticks (0 pad = no fault)
//   hang@step=N              the N-th boundary call blocks until the
//                            shared util::Deadline expires, then
//                            raises HarnessHangError
//   crash@step=N             the N-th boundary call raises an
//                            InjectedCrash (a plain runtime_error —
//                            executors classify it kImpCrash)
//
//   e.g. "drop=0.05,delay=0..8,dup=0.01,hang@step=40,crash@step=120"
//
// Every injected corruption increments harness_faults(); executors use
// that count to refuse FAIL verdicts over a dirty channel (see
// executor.h), which is what makes the chaos suite's "no false FAIL"
// guarantee provable.  A schedule that never fires leaves the injector
// an exact pass-through: same inner calls, same observations.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "testing/implementation.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace tigat::testing {

class FaultSpecError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

// The injected mid-run death of the IUT process.  Deliberately NOT a
// HarnessFaultError: executors must contain *any* exception escaping
// the boundary, so the crash travels as the generic kind.
class InjectedCrash : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct FaultSpec {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  double drop = 0.0;
  double dup = 0.0;
  double spurious = 0.0;
  double reject = 0.0;
  std::int64_t delay_lo = 0, delay_hi = 0;  // extra output latency, ticks
  std::uint64_t hang_at_step = kNever;      // boundary-call ordinal, from 1
  std::uint64_t crash_at_step = kNever;

  // Parses the grammar above; throws FaultSpecError with the offending
  // clause on malformed input.  The empty string is the empty spec.
  [[nodiscard]] static FaultSpec parse(const std::string& text);

  // Canonical spec string: parse(to_string()) round-trips, and equal
  // specs stringify identically (campaign reports embed it).
  [[nodiscard]] std::string to_string() const;

  // True iff some clause can ever fire.
  [[nodiscard]] bool any() const;
};

class FaultInjector final : public Implementation {
 public:
  // Wraps `inner` (kept by reference; must outlive the injector).
  // `spurious_channels` is the alphabet for spurious=: typically the
  // SPEC's uncontrollable channel names; with an empty list the
  // spurious clause never fires.  `deadline` bounds injected hangs —
  // without an armed deadline a hang raises HarnessHangError
  // immediately instead of blocking forever.
  FaultInjector(Implementation& inner, FaultSpec spec, std::uint64_t seed,
                std::vector<std::string> spurious_channels = {},
                const util::Deadline* deadline = nullptr);

  void reset() override;
  std::optional<ObservedOutput> advance(std::int64_t ticks) override;
  bool offer_input(const std::string& channel) override;

  [[nodiscard]] std::uint64_t harness_faults() const override;
  [[nodiscard]] std::string harness_fault_summary() const override;

  // The schedule the NEXT reset() starts (campaigns derive one seed
  // per attempt, so retried runs see fresh fault timing).
  void reseed(std::uint64_t seed) { seed_ = seed; }
  void set_deadline(const util::Deadline* deadline) { deadline_ = deadline; }

  // Observer for every injected fault, called as sink(kind, call) with
  // the fault label ("drop", "dup", ...) and the 1-based boundary-call
  // ordinal it fired inside.  The campaign layer points this at the
  // run ledger (obs/recorder.h) so chaos post-mortems show the exact
  // fault interleaving.  Persists across reset(); pass {} to detach.
  // The sink must not call back into the injector.
  using FaultSink = std::function<void(const char* kind, std::uint64_t call)>;
  void set_fault_sink(FaultSink sink) { sink_ = std::move(sink); }

  // Injection counters since reset(), by fault kind (metrics mirror
  // these under "faults.*" when the obs layer is enabled).
  struct Counters {
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t dups = 0;
    std::uint64_t spurious = 0;
    std::uint64_t rejects = 0;
    std::uint64_t hangs = 0;
    std::uint64_t crashes = 0;

    [[nodiscard]] std::uint64_t total() const {
      return drops + delays + dups + spurious + rejects + hangs + crashes;
    }
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::uint64_t boundary_calls() const { return calls_; }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

 private:
  // An output already emitted by the inner IUT (or synthesised) but
  // still "in the wire": delivered when its residual latency elapses.
  struct InFlight {
    std::string channel;
    std::int64_t due = 0;  // ticks from the current instant
  };

  void age_in_flight(std::int64_t ticks);
  void enqueue_in_flight(std::string channel, std::int64_t due);
  // crash/hang bookkeeping shared by both boundary calls.
  void on_boundary_call();
  void count(std::uint64_t Counters::* field, const char* label);

  Implementation* inner_;
  FaultSpec spec_;
  std::uint64_t seed_;
  std::vector<std::string> spurious_channels_;
  const util::Deadline* deadline_;

  util::Rng rng_{0};
  std::uint64_t calls_ = 0;  // boundary calls since reset, 1-based
  Counters counters_;
  std::string last_fault_;
  FaultSink sink_;
  // Sorted by due (stable for ties: earlier enqueue delivers first).
  std::deque<InFlight> in_flight_;
};

}  // namespace tigat::testing
