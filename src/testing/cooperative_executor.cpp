#include "testing/cooperative_executor.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/assert.h"
#include "util/text.h"

namespace tigat::testing {

CooperativeExecutor::CooperativeExecutor(const tsystem::System& original,
                                         const game::Strategy& strategy,
                                         Implementation& imp,
                                         std::int64_t scale,
                                         ExecutorOptions options)
    : original_(&original),
      owned_source_(strategy),
      source_(&*owned_source_),
      imp_(&imp),
      monitor_(original, scale),
      scale_(scale),
      options_(options) {
  if (!options_.purpose) options_.purpose = strategy.solution().purpose();
}

CooperativeExecutor::CooperativeExecutor(const tsystem::System& original,
                                         const decision::DecisionSource& source,
                                         Implementation& imp,
                                         std::int64_t scale,
                                         ExecutorOptions options)
    : original_(&original),
      source_(&source),
      imp_(&imp),
      monitor_(original, scale),
      scale_(scale),
      options_(options) {}

TestReport CooperativeExecutor::run() {
  TIGAT_SPAN("executor.run");
  TestReport report = run_impl();
  report.harness_faults = imp_->harness_faults();
  record_run_metrics(report);
  return report;
}

TestReport CooperativeExecutor::run_impl() {
  TestReport report;
  monitor_.reset();
  imp_->reset();
  obs::RunRecorder* const rec = options_.recorder;
  obs::Histogram* const step_hist = step_latency_histogram();

  const auto record_verdict = [&](const std::string& observed = {}) {
    if (rec != nullptr) {
      rec->verdict(report.steps, report.total_ticks,
                   to_string(report.verdict), to_string(report.code),
                   report.detail, monitor_.expected_outputs(), observed);
    }
  };
  const auto inconclusive = [&](ReasonCode code, std::string detail) {
    report.verdict = Verdict::kInconclusive;
    report.code = code;
    report.detail = std::move(detail);
    record_verdict();
    return report;
  };
  // Same soundness-under-faults rule as TestExecutor::run_impl: a FAIL
  // survives only if the observation channel was clean all run.
  const auto fail = [&](ReasonCode code, std::string detail,
                        const std::string& observed = {}) {
    if (imp_->harness_faults() > 0) {
      return inconclusive(
          ReasonCode::kHarnessFault,
          "would-be FAIL (" + std::string(to_string(code)) +
              ") suppressed: " + imp_->harness_fault_summary());
    }
    report.verdict = Verdict::kFail;
    report.code = code;
    report.detail = std::move(detail);
    record_verdict(observed);
    return report;
  };

  // Boundary calls may hang (cancelled by the deadline), crash or
  // report harness faults; classify instead of propagating.
  struct BoundaryError {
    ReasonCode code;
    std::string detail;
  };
  std::optional<BoundaryError> boundary_error;
  const auto guarded_advance =
      [&](std::int64_t wait) -> std::optional<ObservedOutput> {
    try {
      return imp_->advance(wait);
    } catch (const HarnessHangError& e) {
      boundary_error = {ReasonCode::kHarnessHang, e.what()};
    } catch (const HarnessFaultError& e) {
      boundary_error = {ReasonCode::kHarnessFault, e.what()};
    } catch (const std::exception& e) {
      boundary_error = {ReasonCode::kImpCrash,
                        std::string("IMP crashed in advance: ") + e.what()};
    }
    return std::nullopt;
  };

  // Safety mode, mirroring TestExecutor::run_impl: φ re-checked after
  // every discrete move, a budget outlasted with φ intact is PASS, and
  // legal SUT drift that still breaks φ is the sound safety FAIL.
  const bool safety =
      options_.purpose &&
      options_.purpose->kind == tsystem::PurposeKind::kSafety;
  const auto phi_holds = [&] {
    return options_.purpose->formula.eval(
        monitor_.state().locs, monitor_.state().data,
        monitor_.semantics().system().data());
  };
  const auto safety_pass = [&](std::string detail) {
    report.verdict = Verdict::kPass;
    report.code = ReasonCode::kSafetyMaintained;
    report.detail = std::move(detail);
    record_verdict();
    return report;
  };

  // Handles an observed output: FAIL on tioco violation, otherwise the
  // monitor advances and the plan re-decides from wherever we landed.
  const auto absorb_output = [&](const ObservedOutput& obs) -> bool {
    if (obs.after_ticks > 0) {
      if (!monitor_.apply_delay(obs.after_ticks)) return false;
      report.total_ticks += obs.after_ticks;
      report.trace.push_back({TraceEvent::Kind::kDelay, "", obs.after_ticks});
      if (rec != nullptr) {
        rec->delay(report.steps, report.total_ticks, obs.after_ticks);
      }
    }
    if (!monitor_.apply_output(obs.channel)) return false;
    report.trace.push_back({TraceEvent::Kind::kOutput, obs.channel, 0});
    if (rec != nullptr) {
      rec->output(report.steps, report.total_ticks, obs.channel);
    }
    return true;
  };

  for (report.steps = 0; report.steps < options_.max_steps; ++report.steps) {
    const StepTimer step_timer(step_hist);
    if (options_.deadline && options_.deadline->expired()) {
      return inconclusive(ReasonCode::kRunDeadlineExceeded,
                          "run wall-clock budget expired");
    }
    if (safety && options_.pass_ticks > 0 &&
        report.total_ticks >= options_.pass_ticks) {
      return safety_pass(util::format(
          "safety invariant maintained for %lld ticks",
          static_cast<long long>(report.total_ticks)));
    }
    const game::Move move = source_->decide(monitor_.state(), scale_);
    if (rec != nullptr) {
      record_decision(*rec, report.steps, report.total_ticks, monitor_, move,
                      *source_);
    }
    switch (move.kind) {
      case game::MoveKind::kGoalReached:
        report.verdict = Verdict::kPass;
        report.code = ReasonCode::kPurposeReached;
        report.detail = "test purpose reached (cooperatively)";
        record_verdict();
        return report;

      case game::MoveKind::kUnwinnable:
        return inconclusive(ReasonCode::kSutDeclined,
                            "the SUT drifted off the cooperative plan");

      case game::MoveKind::kAction: {
        const auto& inst = source_->edge_instance(*move.edge);
        // The relaxation marked everything controllable; recover the
        // edge's true owner from the original partition.
        const auto& proc = original_->processes()[inst.primary.process];
        const auto& orig_edge = proc.edges()[inst.primary.edge];
        const bool truly_controllable =
            original_->edge_controllable(proc, orig_edge);
        const auto chan = inst.channel_name(*original_);

        if (truly_controllable) {
          if (!chan) {  // tester-internal bookkeeping
            const bool ok = monitor_.apply_instance(inst);
            TIGAT_ASSERT(ok, "SPEC rejected a planned tau move");
            if (safety && !phi_holds()) {
              return fail(ReasonCode::kSafetyViolation,
                          "safety violation: phi broken by an internal move");
            }
            break;
          }
          try {
            imp_->offer_input(*chan);
          } catch (const HarnessHangError& e) {
            return inconclusive(ReasonCode::kHarnessHang, e.what());
          } catch (const HarnessFaultError& e) {
            return inconclusive(ReasonCode::kHarnessFault, e.what());
          } catch (const std::exception& e) {
            return inconclusive(ReasonCode::kImpCrash,
                                std::string("IMP crashed in offer_input: ") +
                                    e.what());
          }
          const bool ok = monitor_.apply_input(*chan);
          TIGAT_ASSERT(ok, "SPEC rejected a planned input");
          report.trace.push_back({TraceEvent::Kind::kInput, *chan, 0});
          if (rec != nullptr) {
            rec->input(report.steps, report.total_ticks, *chan);
          }
          if (safety && !phi_holds()) {
            return fail(ReasonCode::kSafetyViolation,
                        "safety violation: phi broken after input '" + *chan +
                            "'",
                        *chan);
          }
          break;
        }

        // Hoped-for SUT move: wait for it (up to the SPEC deadline).
        TIGAT_ASSERT(chan.has_value(), "hoped-for silent SUT move");
        const std::int64_t deadline = monitor_.allowed_delay();
        const std::int64_t wait =
            std::min<std::int64_t>(deadline, options_.idle_wait_cap);
        const auto obs = guarded_advance(wait);
        if (boundary_error) {
          return inconclusive(boundary_error->code, boundary_error->detail);
        }
        if (!obs) {
          if (wait == deadline && deadline < options_.idle_wait_cap) {
            return fail(ReasonCode::kQuiescenceViolation,
                        "quiescence violation while hoping for '" + *chan +
                            "'");
          }
          return inconclusive(ReasonCode::kSutDeclined,
                              "the SUT declined to produce '" + *chan +
                                  "' (within its rights)");
        }
        if (!absorb_output(*obs)) {
          return fail(ReasonCode::kUnexpectedOutput,
                      "unexpected output '" + obs->channel +
                          "': not in Out(s After sigma)",
                      obs->channel);
        }
        if (safety && !phi_holds()) {
          // The drift was SPEC-legal, but it broke φ — the sound
          // safety FAIL a cooperative run can still earn.
          return fail(ReasonCode::kSafetyViolation,
                      "safety violation: phi broken by output '" +
                          obs->channel + "'",
                      obs->channel);
        }
        break;
      }

      case game::MoveKind::kDelay: {
        std::int64_t wait = options_.idle_wait_cap;
        bool wait_bounded = false;
        if (move.next_decision_ticks < game::Move::kNoDecision) {
          wait = move.next_decision_ticks;
          wait_bounded = true;
        }
        const std::int64_t deadline = monitor_.allowed_delay();
        if (deadline < semantics::ConcreteSemantics::kNoDeadline) {
          wait = std::min(wait, deadline);
          wait_bounded = true;
        }
        const auto obs = guarded_advance(wait);
        if (boundary_error) {
          return inconclusive(boundary_error->code, boundary_error->detail);
        }
        if (!obs) {
          if (wait == 0) {
            if (safety) {  // same soundness order as TestExecutor
              if (monitor_.allowed_delay() > 0) {
                return inconclusive(
                    ReasonCode::kOutsideWinningRegion,
                    "no safe prescription at the decision instant");
              }
              if (monitor_.expected_outputs().empty()) {
                return safety_pass(
                    "safety invariant maintained (safe deadlock)");
              }
            }
            return fail(ReasonCode::kQuiescenceViolation,
                        "quiescence violation: output deadline expired");
          }
          if (!wait_bounded && !safety) {
            return inconclusive(
                ReasonCode::kUnboundedWait,
                util::format("no deadline from plan or SPEC; quiescent for "
                             "the whole %lld-tick cap",
                             static_cast<long long>(wait)));
          }
          const bool ok = monitor_.apply_delay(wait);
          TIGAT_ASSERT(ok, "delay within the deadline rejected");
          report.total_ticks += wait;
          report.trace.push_back({TraceEvent::Kind::kDelay, "", wait});
          if (rec != nullptr) {
            rec->delay(report.steps, report.total_ticks, wait);
          }
          break;
        }
        if (!absorb_output(*obs)) {
          return fail(ReasonCode::kUnexpectedOutput,
                      "unexpected output '" + obs->channel +
                          "': not in Out(s After sigma)",
                      obs->channel);
        }
        if (safety && !phi_holds()) {
          // The drift was SPEC-legal, but it broke φ — the sound
          // safety FAIL a cooperative run can still earn.
          return fail(ReasonCode::kSafetyViolation,
                      "safety violation: phi broken by output '" +
                          obs->channel + "'",
                      obs->channel);
        }
        break;
      }
    }
  }
  if (safety) {
    return safety_pass("safety invariant maintained through the step budget");
  }
  return inconclusive(ReasonCode::kStepBudgetExhausted,
                      "step budget exhausted");
}

}  // namespace tigat::testing
