#include "testing/cooperative_executor.h"

#include <algorithm>

#include "util/assert.h"
#include "util/text.h"

namespace tigat::testing {

CooperativeExecutor::CooperativeExecutor(const tsystem::System& original,
                                         const game::Strategy& strategy,
                                         Implementation& imp,
                                         std::int64_t scale,
                                         ExecutorOptions options)
    : original_(&original),
      owned_source_(strategy),
      source_(&*owned_source_),
      imp_(&imp),
      monitor_(original, scale),
      scale_(scale),
      options_(options) {}

CooperativeExecutor::CooperativeExecutor(const tsystem::System& original,
                                         const decision::DecisionSource& source,
                                         Implementation& imp,
                                         std::int64_t scale,
                                         ExecutorOptions options)
    : original_(&original),
      source_(&source),
      imp_(&imp),
      monitor_(original, scale),
      scale_(scale),
      options_(options) {}

TestReport CooperativeExecutor::run() {
  TestReport report;
  monitor_.reset();
  imp_->reset();

  const auto finish = [&](Verdict v, std::string reason) {
    report.verdict = v;
    report.reason = std::move(reason);
    return report;
  };

  // Handles an observed output: FAIL on tioco violation, otherwise the
  // monitor advances and the plan re-decides from wherever we landed.
  const auto absorb_output = [&](const ObservedOutput& obs) -> bool {
    if (obs.after_ticks > 0) {
      if (!monitor_.apply_delay(obs.after_ticks)) return false;
      report.total_ticks += obs.after_ticks;
      report.trace.push_back({TraceEvent::Kind::kDelay, "", obs.after_ticks});
    }
    if (!monitor_.apply_output(obs.channel)) return false;
    report.trace.push_back({TraceEvent::Kind::kOutput, obs.channel, 0});
    return true;
  };

  for (report.steps = 0; report.steps < options_.max_steps; ++report.steps) {
    const game::Move move = source_->decide(monitor_.state(), scale_);
    switch (move.kind) {
      case game::MoveKind::kGoalReached:
        return finish(Verdict::kPass, "test purpose reached (cooperatively)");

      case game::MoveKind::kUnwinnable:
        return finish(Verdict::kInconclusive,
                      "the SUT drifted off the cooperative plan");

      case game::MoveKind::kAction: {
        const auto& inst = source_->edge_instance(*move.edge);
        // The relaxation marked everything controllable; recover the
        // edge's true owner from the original partition.
        const auto& proc = original_->processes()[inst.primary.process];
        const auto& orig_edge = proc.edges()[inst.primary.edge];
        const bool truly_controllable =
            original_->edge_controllable(proc, orig_edge);
        const auto chan = inst.channel_name(*original_);

        if (truly_controllable) {
          if (!chan) {  // tester-internal bookkeeping
            const bool ok = monitor_.apply_instance(inst);
            TIGAT_ASSERT(ok, "SPEC rejected a planned tau move");
            break;
          }
          imp_->offer_input(*chan);
          const bool ok = monitor_.apply_input(*chan);
          TIGAT_ASSERT(ok, "SPEC rejected a planned input");
          report.trace.push_back({TraceEvent::Kind::kInput, *chan, 0});
          break;
        }

        // Hoped-for SUT move: wait for it (up to the SPEC deadline).
        TIGAT_ASSERT(chan.has_value(), "hoped-for silent SUT move");
        const std::int64_t deadline = monitor_.allowed_delay();
        const std::int64_t wait =
            std::min<std::int64_t>(deadline, options_.idle_wait_cap);
        const auto obs = imp_->advance(wait);
        if (!obs) {
          if (wait == deadline && deadline < options_.idle_wait_cap) {
            return finish(Verdict::kFail,
                          "quiescence violation while hoping for '" + *chan +
                              "'");
          }
          return finish(Verdict::kInconclusive,
                        "the SUT declined to produce '" + *chan +
                            "' (within its rights)");
        }
        if (!absorb_output(*obs)) {
          return finish(Verdict::kFail,
                        "unexpected output '" + obs->channel +
                            "': not in Out(s After sigma)");
        }
        break;
      }

      case game::MoveKind::kDelay: {
        std::int64_t wait = options_.idle_wait_cap;
        if (move.next_decision_ticks < game::Move::kNoDecision) {
          wait = move.next_decision_ticks;
        }
        const std::int64_t deadline = monitor_.allowed_delay();
        if (deadline < semantics::ConcreteSemantics::kNoDeadline) {
          wait = std::min(wait, deadline);
        }
        const auto obs = imp_->advance(wait);
        if (!obs) {
          if (wait == 0) {
            return finish(Verdict::kFail,
                          "quiescence violation: output deadline expired");
          }
          const bool ok = monitor_.apply_delay(wait);
          TIGAT_ASSERT(ok, "delay within the deadline rejected");
          report.total_ticks += wait;
          report.trace.push_back({TraceEvent::Kind::kDelay, "", wait});
          break;
        }
        if (!absorb_output(*obs)) {
          return finish(Verdict::kFail,
                        "unexpected output '" + obs->channel +
                            "': not in Out(s After sigma)");
        }
        break;
      }
    }
  }
  return finish(Verdict::kInconclusive, "step budget exhausted");
}

}  // namespace tigat::testing
