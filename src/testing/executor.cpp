#include "testing/executor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/text.h"

namespace tigat::testing {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kFail: return "fail";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

const char* to_string(ReasonCode c) {
  switch (c) {
    case ReasonCode::kNone: return "none";
    case ReasonCode::kPurposeReached: return "purpose-reached";
    case ReasonCode::kSafetyMaintained: return "safety-maintained";
    case ReasonCode::kQuiescenceViolation: return "quiescence-violation";
    case ReasonCode::kUnexpectedOutput: return "unexpected-output";
    case ReasonCode::kSafetyViolation: return "safety-violation";
    case ReasonCode::kOutsideWinningRegion: return "outside-winning-region";
    case ReasonCode::kStepBudgetExhausted: return "step-budget-exhausted";
    case ReasonCode::kUnboundedWait: return "unbounded-wait";
    case ReasonCode::kSutDeclined: return "sut-declined";
    case ReasonCode::kHarnessFault: return "harness-fault";
    case ReasonCode::kImpCrash: return "imp-crash";
    case ReasonCode::kHarnessHang: return "harness-hang";
    case ReasonCode::kRunDeadlineExceeded: return "run-deadline-exceeded";
  }
  return "?";
}

bool is_harness_level(ReasonCode c) {
  switch (c) {
    case ReasonCode::kHarnessFault:
    case ReasonCode::kImpCrash:
    case ReasonCode::kHarnessHang:
    case ReasonCode::kRunDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

std::string TestReport::trace_string() const {
  std::string out;
  for (const TraceEvent& e : trace) {
    if (!out.empty()) out += " . ";
    switch (e.kind) {
      case TraceEvent::Kind::kInput: out += e.channel + "!"; break;
      case TraceEvent::Kind::kOutput: out += e.channel + "?"; break;
      case TraceEvent::Kind::kDelay:
        out += util::format("%lld", static_cast<long long>(e.ticks));
        break;
    }
  }
  return out;
}

void record_run_metrics(const TestReport& report) {
  if (!obs::metrics_enabled()) return;
  auto& m = obs::metrics();
  m.counter("executor.runs").add(1);
  m.counter("executor.steps").add(report.steps);
  std::uint64_t inputs = 0, outputs = 0, delays = 0;
  for (const TraceEvent& e : report.trace) {
    switch (e.kind) {
      case TraceEvent::Kind::kInput: ++inputs; break;
      case TraceEvent::Kind::kOutput: ++outputs; break;
      case TraceEvent::Kind::kDelay: ++delays; break;
    }
  }
  m.counter("executor.inputs").add(inputs);
  m.counter("executor.outputs").add(outputs);
  m.counter("executor.delays").add(delays);
  const char* verdict = report.verdict == Verdict::kPass
                            ? "executor.verdict.pass"
                            : report.verdict == Verdict::kFail
                                  ? "executor.verdict.fail"
                                  : "executor.verdict.inconclusive";
  m.counter(verdict).add(1);
  if (is_harness_level(report.code)) {
    m.counter("executor.harness_level_outcomes").add(1);
  }
}

obs::Histogram* step_latency_histogram() {
  if (!obs::metrics_enabled()) return nullptr;
  return &obs::metrics().histogram("executor.step_ns",
                                   obs::latency_buckets_ns());
}

StepTimer::StepTimer(obs::Histogram* hist)
    : hist_(hist), t0_(hist != nullptr ? obs::now_ns() : 0) {}

StepTimer::~StepTimer() {
  if (hist_ != nullptr) hist_->record(obs::now_ns() - t0_);
}

void record_decision(obs::RunRecorder& rec, std::uint64_t step,
                     std::int64_t t, const SpecMonitor& monitor,
                     const game::Move& move,
                     const decision::DecisionSource& source) {
  const char* kind = "unwinnable";
  std::string channel;
  std::int64_t bound = -1;
  switch (move.kind) {
    case game::MoveKind::kGoalReached:
      kind = "goal";
      break;
    case game::MoveKind::kAction: {
      kind = "action";
      if (move.edge) {
        const auto chan = source.edge_instance(*move.edge)
                              .channel_name(monitor.semantics().system());
        if (chan) channel = *chan;
      }
      break;
    }
    case game::MoveKind::kDelay:
      kind = "delay";
      if (move.next_decision_ticks < game::Move::kNoDecision) {
        bound = move.next_decision_ticks;
      }
      break;
    case game::MoveKind::kUnwinnable:
      break;
  }
  rec.decision(step, t, kind,
               move.rank ? static_cast<std::int64_t>(*move.rank) : -1,
               monitor.semantics().to_string(monitor.state()),
               std::move(channel), bound);
}

TestExecutor::TestExecutor(const game::Strategy& strategy, Implementation& imp,
                           std::int64_t scale, ExecutorOptions options)
    : owned_source_(strategy),
      source_(&*owned_source_),
      imp_(&imp),
      monitor_(strategy.solution().graph().system(), scale),
      scale_(scale),
      options_(options) {
  if (!options_.purpose) options_.purpose = strategy.solution().purpose();
}

TestExecutor::TestExecutor(const decision::DecisionSource& source,
                           const tsystem::System& spec, Implementation& imp,
                           std::int64_t scale, ExecutorOptions options)
    : source_(&source),
      imp_(&imp),
      monitor_(spec, scale),
      scale_(scale),
      options_(options) {}

TestReport TestExecutor::run() {
  TIGAT_SPAN("executor.run");
  TestReport report = run_impl();
  report.harness_faults = imp_->harness_faults();
  record_run_metrics(report);
  return report;
}

TestReport TestExecutor::run_impl() {
  TestReport report;
  monitor_.reset();
  imp_->reset();
  obs::RunRecorder* const rec = options_.recorder;
  obs::Histogram* const step_hist = step_latency_histogram();

  // Journals the final report into the ledger with the monitor still
  // live — the expected-output set is Out(s After σ) at the instant
  // the verdict was earned.  `observed` is the offending channel on an
  // unexpected-output FAIL, empty for silence-class verdicts.
  const auto record_verdict = [&](const std::string& observed = {}) {
    if (rec != nullptr) {
      rec->verdict(report.steps, report.total_ticks,
                   to_string(report.verdict), to_string(report.code),
                   report.detail, monitor_.expected_outputs(), observed);
    }
  };
  const auto inconclusive = [&](ReasonCode code, std::string detail) {
    report.verdict = Verdict::kInconclusive;
    report.code = code;
    report.detail = std::move(detail);
    record_verdict();
    return report;
  };
  // FAIL is only sound over a clean observation channel: if the
  // boundary reported corruption at any point of this run, what we
  // observed may not be what the IUT did, and the verdict degrades to
  // INCONCLUSIVE / kHarnessFault (soundness over completeness — a
  // retry with a fresh fault schedule can still earn the real FAIL).
  const auto fail = [&](ReasonCode code, std::string detail,
                        const std::string& observed = {}) {
    if (imp_->harness_faults() > 0) {
      return inconclusive(
          ReasonCode::kHarnessFault,
          "would-be FAIL (" + std::string(to_string(code)) +
              ") suppressed: " + imp_->harness_fault_summary());
    }
    report.verdict = Verdict::kFail;
    report.code = code;
    report.detail = std::move(detail);
    record_verdict(observed);
    return report;
  };

  // Safety mode (see the file comment).  φ is over locations and data
  // only, so it is re-checked after every discrete move and never after
  // a pure delay.  An initial ¬φ state needs no check of its own: it
  // seeds the environment's attractor, so it is never winning and the
  // first decide() already answers kUnwinnable.
  const bool safety =
      options_.purpose &&
      options_.purpose->kind == tsystem::PurposeKind::kSafety;
  const auto phi_holds = [&] {
    return options_.purpose->formula.eval(
        monitor_.state().locs, monitor_.state().data,
        monitor_.semantics().system().data());
  };
  const auto safety_pass = [&](std::string detail) {
    report.verdict = Verdict::kPass;
    report.code = ReasonCode::kSafetyMaintained;
    report.detail = std::move(detail);
    record_verdict();
    return report;
  };

  for (report.steps = 0; report.steps < options_.max_steps; ++report.steps) {
    TIGAT_SPAN("executor.step");
    const StepTimer step_timer(step_hist);
    if (options_.deadline && options_.deadline->expired()) {
      return inconclusive(ReasonCode::kRunDeadlineExceeded,
                          "run wall-clock budget expired");
    }
    if (safety && options_.pass_ticks > 0 &&
        report.total_ticks >= options_.pass_ticks) {
      return safety_pass(util::format(
          "safety invariant maintained for %lld ticks",
          static_cast<long long>(report.total_ticks)));
    }
    const game::Move move = source_->decide(monitor_.state(), scale_);
    if (rec != nullptr) {
      record_decision(*rec, report.steps, report.total_ticks, monitor_, move,
                      *source_);
    }
    switch (move.kind) {
      case game::MoveKind::kGoalReached:
        report.verdict = Verdict::kPass;
        report.code = ReasonCode::kPurposeReached;
        report.detail = "test purpose reached";
        record_verdict();
        return report;

      case game::MoveKind::kUnwinnable:
        // A winning strategy never leaves its winning region on
        // conforming behaviour; landing here means the purpose was not
        // controllable from the start (caller error).
        return inconclusive(ReasonCode::kOutsideWinningRegion,
                            "state outside the winning region");

      case game::MoveKind::kAction: {
        const auto& inst = source_->edge_instance(*move.edge);
        const auto chan = inst.channel_name(monitor_.semantics().system());
        if (!chan) {
          // Environment-internal controllable move (tester bookkeeping,
          // e.g. the LEP environment creating a buffered message):
          // nothing crosses the tester/IMP boundary.
          const bool ok = monitor_.apply_instance(inst);
          TIGAT_ASSERT(ok, "SPEC rejected a strategy-prescribed tau move");
          if (safety && !phi_holds()) {
            return fail(ReasonCode::kSafetyViolation,
                        "safety violation: phi broken by an internal move");
          }
          break;
        }
        try {
          imp_->offer_input(*chan);  // mutants may ignore it; that alone
                                     // is not observable — the missing
                                     // consequences will be.
        } catch (const HarnessHangError& e) {
          return inconclusive(ReasonCode::kHarnessHang, e.what());
        } catch (const HarnessFaultError& e) {
          return inconclusive(ReasonCode::kHarnessFault, e.what());
        } catch (const std::exception& e) {
          return inconclusive(ReasonCode::kImpCrash,
                              std::string("IMP crashed in offer_input: ") +
                                  e.what());
        }
        const bool ok = monitor_.apply_input(*chan);
        TIGAT_ASSERT(ok, "SPEC rejected a strategy-prescribed input");
        report.trace.push_back({TraceEvent::Kind::kInput, *chan, 0});
        if (rec != nullptr) rec->input(report.steps, report.total_ticks, *chan);
        if (safety && !phi_holds()) {
          return fail(ReasonCode::kSafetyViolation,
                      "safety violation: phi broken after input '" + *chan +
                          "'",
                      *chan);
        }
        break;
      }

      case game::MoveKind::kDelay: {
        // How long may we sleep?  Until the strategy's next decision
        // point, or the SPEC's invariant deadline (by which the SUT
        // must have produced something), whichever is earlier.  A wait
        // of 0 means the SUT must act at this very instant.
        std::int64_t wait = options_.idle_wait_cap;
        bool wait_bounded = false;  // by the strategy or the SPEC
        if (move.next_decision_ticks < game::Move::kNoDecision) {
          wait = move.next_decision_ticks;
          wait_bounded = true;
        }
        const std::int64_t deadline = monitor_.allowed_delay();
        if (deadline < semantics::ConcreteSemantics::kNoDeadline) {
          wait = std::min(wait, deadline);
          wait_bounded = true;
        }
        TIGAT_ASSERT(wait >= 0, "negative waiting time");

        std::optional<ObservedOutput> obs;
        try {
          obs = imp_->advance(wait);
        } catch (const HarnessHangError& e) {
          return inconclusive(ReasonCode::kHarnessHang, e.what());
        } catch (const HarnessFaultError& e) {
          return inconclusive(ReasonCode::kHarnessFault, e.what());
        } catch (const std::exception& e) {
          return inconclusive(ReasonCode::kImpCrash,
                              std::string("IMP crashed in advance: ") +
                                  e.what());
        }
        if (!obs) {
          if (wait == 0) {
            if (safety) {
              // The strategy pinned its next decision to this very
              // instant.  Three cases, in soundness order: the SPEC may
              // still let time pass (no safe prescription exists — a
              // winning strategy never lands here on conforming
              // behaviour, so no verdict); time is frozen with nothing
              // promised (a maximal run that kept φ — the tester wins);
              // or a promised output never came (the one silence that
              // is still sound FAIL evidence).
              if (monitor_.allowed_delay() > 0) {
                return inconclusive(
                    ReasonCode::kOutsideWinningRegion,
                    "no safe prescription at the decision instant");
              }
              if (monitor_.expected_outputs().empty()) {
                return safety_pass(
                    "safety invariant maintained (safe deadlock)");
              }
            }
            return fail(ReasonCode::kQuiescenceViolation,
                        "quiescence violation: output deadline expired with "
                        "no output");
          }
          if (!wait_bounded && !safety) {
            // Defensive path: the strategy offered no decision point and
            // the SPEC no invariant deadline, so nothing bounds this
            // wait.  Silently sleeping idle_wait_cap and looping would
            // just burn the step budget — surface the cause instead.
            // (In safety mode an unbounded quiet wait is winning play:
            // absorb the cap and keep counting toward the pass budget.)
            return inconclusive(
                ReasonCode::kUnboundedWait,
                util::format("no deadline from strategy or SPEC; quiescent "
                             "for the whole %lld-tick cap",
                             static_cast<long long>(wait)));
          }
          // Quiescent for the whole window (allowed: wait ≤ deadline).
          const bool ok = monitor_.apply_delay(wait);
          TIGAT_ASSERT(ok, "delay within the deadline rejected");
          report.total_ticks += wait;
          report.trace.push_back({TraceEvent::Kind::kDelay, "", wait});
          if (rec != nullptr) {
            rec->delay(report.steps, report.total_ticks, wait);
          }
          break;
        }

        // Output observed inside the window.
        if (obs->after_ticks > 0) {
          const bool ok = monitor_.apply_delay(obs->after_ticks);
          TIGAT_ASSERT(ok, "delay within the window exceeded a deadline");
          report.total_ticks += obs->after_ticks;
          report.trace.push_back(
              {TraceEvent::Kind::kDelay, "", obs->after_ticks});
          if (rec != nullptr) {
            rec->delay(report.steps, report.total_ticks, obs->after_ticks);
          }
        }
        if (!monitor_.apply_output(obs->channel)) {
          return fail(ReasonCode::kUnexpectedOutput,
                      util::format(
                          "unexpected output '%s' after %lld ticks: not in "
                          "Out(s After sigma)",
                          obs->channel.c_str(),
                          static_cast<long long>(obs->after_ticks)),
                      obs->channel);
        }
        report.trace.push_back({TraceEvent::Kind::kOutput, obs->channel, 0});
        if (rec != nullptr) {
          rec->output(report.steps, report.total_ticks, obs->channel);
        }
        if (safety && !phi_holds()) {
          return fail(ReasonCode::kSafetyViolation,
                      util::format("safety violation: phi broken by output "
                                   "'%s' after %lld ticks",
                                   obs->channel.c_str(),
                                   static_cast<long long>(obs->after_ticks)),
                      obs->channel);
        }
        break;
      }
    }
  }
  if (safety) {
    // Outlasting the step budget with φ intact is the tester's win
    // condition when no pass_ticks budget was given.
    return safety_pass("safety invariant maintained through the step budget");
  }
  return inconclusive(ReasonCode::kStepBudgetExhausted,
                      "step budget exhausted");
}

}  // namespace tigat::testing
