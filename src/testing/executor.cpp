#include "testing/executor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/text.h"

namespace tigat::testing {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kFail: return "fail";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

std::string TestReport::trace_string() const {
  std::string out;
  for (const TraceEvent& e : trace) {
    if (!out.empty()) out += " . ";
    switch (e.kind) {
      case TraceEvent::Kind::kInput: out += e.channel + "!"; break;
      case TraceEvent::Kind::kOutput: out += e.channel + "?"; break;
      case TraceEvent::Kind::kDelay:
        out += util::format("%lld", static_cast<long long>(e.ticks));
        break;
    }
  }
  return out;
}

TestExecutor::TestExecutor(const game::Strategy& strategy, Implementation& imp,
                           std::int64_t scale, ExecutorOptions options)
    : owned_source_(strategy),
      source_(&*owned_source_),
      imp_(&imp),
      monitor_(strategy.solution().graph().system(), scale),
      scale_(scale),
      options_(options) {}

TestExecutor::TestExecutor(const decision::DecisionSource& source,
                           const tsystem::System& spec, Implementation& imp,
                           std::int64_t scale, ExecutorOptions options)
    : source_(&source),
      imp_(&imp),
      monitor_(spec, scale),
      scale_(scale),
      options_(options) {}

TestReport TestExecutor::run() {
  TIGAT_SPAN("executor.run");
  TestReport report = run_impl();
  if (obs::metrics_enabled()) {
    auto& m = obs::metrics();
    m.counter("executor.runs").add(1);
    m.counter("executor.steps").add(report.steps);
    std::uint64_t inputs = 0, outputs = 0, delays = 0;
    for (const TraceEvent& e : report.trace) {
      switch (e.kind) {
        case TraceEvent::Kind::kInput: ++inputs; break;
        case TraceEvent::Kind::kOutput: ++outputs; break;
        case TraceEvent::Kind::kDelay: ++delays; break;
      }
    }
    m.counter("executor.inputs").add(inputs);
    m.counter("executor.outputs").add(outputs);
    m.counter("executor.delays").add(delays);
    const char* verdict = report.verdict == Verdict::kPass
                              ? "executor.verdict.pass"
                              : report.verdict == Verdict::kFail
                                    ? "executor.verdict.fail"
                                    : "executor.verdict.inconclusive";
    m.counter(verdict).add(1);
  }
  return report;
}

TestReport TestExecutor::run_impl() {
  TestReport report;
  monitor_.reset();
  imp_->reset();

  const auto fail = [&](std::string reason) {
    report.verdict = Verdict::kFail;
    report.reason = std::move(reason);
    return report;
  };
  const auto inconclusive = [&](std::string reason) {
    report.verdict = Verdict::kInconclusive;
    report.reason = std::move(reason);
    return report;
  };

  for (report.steps = 0; report.steps < options_.max_steps; ++report.steps) {
    TIGAT_SPAN("executor.step");
    const game::Move move = source_->decide(monitor_.state(), scale_);
    switch (move.kind) {
      case game::MoveKind::kGoalReached:
        report.verdict = Verdict::kPass;
        report.reason = "test purpose reached";
        return report;

      case game::MoveKind::kUnwinnable:
        // A winning strategy never leaves its winning region on
        // conforming behaviour; landing here means the purpose was not
        // controllable from the start (caller error).
        return inconclusive("state outside the winning region");

      case game::MoveKind::kAction: {
        const auto& inst = source_->edge_instance(*move.edge);
        const auto chan = inst.channel_name(monitor_.semantics().system());
        if (!chan) {
          // Environment-internal controllable move (tester bookkeeping,
          // e.g. the LEP environment creating a buffered message):
          // nothing crosses the tester/IMP boundary.
          const bool ok = monitor_.apply_instance(inst);
          TIGAT_ASSERT(ok, "SPEC rejected a strategy-prescribed tau move");
          break;
        }
        imp_->offer_input(*chan);  // mutants may ignore it; that alone
                                   // is not observable — the missing
                                   // consequences will be.
        const bool ok = monitor_.apply_input(*chan);
        TIGAT_ASSERT(ok, "SPEC rejected a strategy-prescribed input");
        report.trace.push_back({TraceEvent::Kind::kInput, *chan, 0});
        break;
      }

      case game::MoveKind::kDelay: {
        // How long may we sleep?  Until the strategy's next decision
        // point, or the SPEC's invariant deadline (by which the SUT
        // must have produced something), whichever is earlier.  A wait
        // of 0 means the SUT must act at this very instant.
        std::int64_t wait = options_.idle_wait_cap;
        if (move.next_decision_ticks < game::Move::kNoDecision) {
          wait = move.next_decision_ticks;
        }
        const std::int64_t deadline = monitor_.allowed_delay();
        if (deadline < semantics::ConcreteSemantics::kNoDeadline) {
          wait = std::min(wait, deadline);
        }
        TIGAT_ASSERT(wait >= 0, "negative waiting time");

        const auto obs = imp_->advance(wait);
        if (!obs) {
          if (wait == 0) {
            return fail(
                "quiescence violation: output deadline expired with no "
                "output");
          }
          // Quiescent for the whole window (allowed: wait ≤ deadline).
          const bool ok = monitor_.apply_delay(wait);
          TIGAT_ASSERT(ok, "delay within the deadline rejected");
          report.total_ticks += wait;
          report.trace.push_back({TraceEvent::Kind::kDelay, "", wait});
          break;
        }

        // Output observed inside the window.
        if (obs->after_ticks > 0) {
          const bool ok = monitor_.apply_delay(obs->after_ticks);
          TIGAT_ASSERT(ok, "delay within the window exceeded a deadline");
          report.total_ticks += obs->after_ticks;
          report.trace.push_back(
              {TraceEvent::Kind::kDelay, "", obs->after_ticks});
        }
        if (!monitor_.apply_output(obs->channel)) {
          return fail(util::format(
              "unexpected output '%s' after %lld ticks: not in "
              "Out(s After sigma)",
              obs->channel.c_str(),
              static_cast<long long>(obs->after_ticks)));
        }
        report.trace.push_back({TraceEvent::Kind::kOutput, obs->channel, 0});
        break;
      }
    }
  }
  return inconclusive("step budget exhausted");
}

}  // namespace tigat::testing
