#include "testing/simulated_imp.h"

#include <algorithm>

#include "util/assert.h"

namespace tigat::testing {

using semantics::ConcreteState;
using tsystem::ClockConstraint;
using tsystem::Edge;
using tsystem::SyncKind;

SimulatedImplementation::SimulatedImplementation(const tsystem::System& plant,
                                                 std::int64_t scale,
                                                 ImpPolicy policy)
    : sys_(&plant), sem_(plant, scale), policy_(std::move(policy)) {
  TIGAT_ASSERT(plant.processes().size() == 1,
               "the IMP simulator interprets a single plant process");
  // Diagonal-free check: the firing-window arithmetic below shifts all
  // clocks uniformly, which only bounds constraints against clock 0.
  for (const Edge& e : plant.processes()[0].edges()) {
    for (const ClockConstraint& c : e.guard) {
      if (c.i != 0 && c.j != 0) {
        throw tsystem::ModelError("IMP simulator requires diagonal-free guards");
      }
    }
  }
  reset();
}

void SimulatedImplementation::reset() {
  state_ = sem_.initial();
  plan_.reset();
  plan_valid_ = false;
}

int SimulatedImplementation::preference_rank(const std::string& channel) const {
  for (std::size_t i = 0; i < policy_.channel_preference.size(); ++i) {
    if (policy_.channel_preference[i] == channel) return static_cast<int>(i);
  }
  return static_cast<int>(policy_.channel_preference.size());
}

bool SimulatedImplementation::edge_enabled(const Edge& e) const {
  const std::int64_t scale = sem_.scale();
  for (const ClockConstraint& c : e.guard) {
    if (!dbm::satisfies(state_.clocks[c.i] - state_.clocks[c.j], c.bound,
                        scale)) {
      return false;
    }
  }
  if (!e.data_guard.eval_bool(state_.data, sys_->data())) return false;
  // Target invariant must hold after the jump.
  ConcreteState probe = state_;
  probe.locs[0] = e.dst;
  for (const auto& r : e.resets) {
    probe.clocks[r.clock] = static_cast<std::int64_t>(r.value) * scale;
  }
  return sem_.invariant_holds(probe);
}

void SimulatedImplementation::fire_edge(const Edge& e) {
  state_.locs[0] = e.dst;
  for (const auto& r : e.resets) {
    state_.clocks[r.clock] = static_cast<std::int64_t>(r.value) * sem_.scale();
  }
  for (const auto& a : e.assignments) {
    const std::int64_t index =
        a.index.is_null() ? 0 : a.index.eval(state_.data, sys_->data());
    sys_->data().checked_store(state_.data, a.var, index,
                               a.rhs.eval(state_.data, sys_->data()));
  }
}

std::optional<SimulatedImplementation::PlannedOutput>
SimulatedImplementation::plan_output(std::int64_t horizon) const {
  const std::int64_t scale = sem_.scale();
  const auto& proc = sys_->processes()[0];
  std::optional<PlannedOutput> best;
  int best_rank = 1 << 30;
  std::string best_chan;

  for (std::uint32_t ei = 0; ei < proc.edges().size(); ++ei) {
    const Edge& e = proc.edges()[ei];
    if (e.src != state_.locs[0]) continue;
    // Outputs and silent internal moves are the IMP's own.
    if (e.sync == SyncKind::kReceive) continue;
    if (!e.data_guard.eval_bool(state_.data, sys_->data())) continue;

    // Firing window [lo, hi] in ticks from now.
    std::int64_t lo = 0;
    std::int64_t hi = horizon;
    for (const ClockConstraint& c : e.guard) {
      if (dbm::is_infinity(c.bound)) continue;
      const std::int64_t limit =
          static_cast<std::int64_t>(dbm::bound_value(c.bound)) * scale;
      if (c.j == 0) {  // x + d ≺ limit
        std::int64_t h = limit - state_.clocks[c.i];
        if (!dbm::is_weak(c.bound)) h -= 1;
        hi = std::min(hi, h);
      } else {  // −(x + d) ≺ limit  ⇔  d ⪰ −limit − x
        std::int64_t l = -limit - state_.clocks[c.j];
        if (!dbm::is_weak(c.bound)) l += 1;
        lo = std::max(lo, l);
      }
    }
    // Target invariant on clocks that are NOT reset also bounds d.
    for (const ClockConstraint& c :
         proc.locations()[e.dst].invariant) {
      if (c.j != 0 || dbm::is_infinity(c.bound)) continue;
      const bool is_reset =
          std::any_of(e.resets.begin(), e.resets.end(),
                      [&](const auto& r) { return r.clock == c.i; });
      if (is_reset) continue;
      std::int64_t h = static_cast<std::int64_t>(dbm::bound_value(c.bound)) *
                           scale -
                       state_.clocks[c.i];
      if (!dbm::is_weak(c.bound)) h -= 1;
      hi = std::min(hi, h);
    }
    // The source invariant must allow delaying into the window at all.
    const std::int64_t max_d = sem_.max_delay(state_);
    if (lo > hi || lo > max_d) continue;

    const std::int64_t fire_in =
        std::min({lo + policy_.latency, hi, max_d});  // ≥ lo by the guards
    const std::string chan =
        e.sync == SyncKind::kSend ? sys_->channels()[e.channel.id].name : "";
    const int rank = e.sync == SyncKind::kSend ? preference_rank(chan)
                                               : -1;  // τ before outputs
    // Isolation: earliest fire time wins; preference breaks ties.
    if (!best || fire_in < best->fire_in ||
        (fire_in == best->fire_in && rank < best_rank)) {
      best = PlannedOutput{ei, fire_in};
      best_rank = rank;
      best_chan = chan;
    }
  }
  return best;
}

std::optional<ObservedOutput> SimulatedImplementation::advance(
    std::int64_t ticks) {
  std::int64_t elapsed = 0;
  // The silent-move bound guards against zeno τ-loops in broken models.
  for (int silent_moves = 0; silent_moves < 10000; ++silent_moves) {
    if (!plan_valid_) {
      plan_ = plan_output(kPlanHorizon);
      plan_valid_ = true;
    }
    const std::int64_t remaining = ticks - elapsed;
    if (!plan_ || plan_->fire_in > remaining) {
      // Quiescent for the rest of the period.  Internal time follows,
      // clamped to the invariant: a wedged mutant (invariant expired,
      // nothing fireable) simply freezes — nothing observable happens
      // either way, which is exactly how a black box looks.
      const std::int64_t step = std::min(remaining, sem_.max_delay(state_));
      if (step > 0) sem_.delay(state_, step);
      if (plan_) plan_->fire_in -= remaining;
      return std::nullopt;
    }
    if (plan_->fire_in > 0) {
      const std::int64_t step = std::min(plan_->fire_in, sem_.max_delay(state_));
      sem_.delay(state_, step);
    }
    elapsed += plan_->fire_in;
    const Edge& e = sys_->processes()[0].edges()[plan_->edge];
    const bool observable = e.sync == SyncKind::kSend;
    const std::string chan =
        observable ? sys_->channels()[e.channel.id].name : "";
    fire_edge(e);
    plan_valid_ = false;
    if (observable) return ObservedOutput{chan, elapsed};
    // Silent internal move: keep going.
  }
  return std::nullopt;
}

bool SimulatedImplementation::offer_input(const std::string& channel) {
  const auto chan = sys_->find_channel(channel);
  if (!chan) return false;
  const auto& proc = sys_->processes()[0];
  for (const Edge& e : proc.edges()) {
    if (e.src != state_.locs[0] || e.sync != SyncKind::kReceive ||
        e.channel.id != chan->id) {
      continue;
    }
    if (!edge_enabled(e)) continue;
    fire_edge(e);
    plan_valid_ = false;
    return true;
  }
  return false;  // ignored input
}

}  // namespace tigat::testing
