// The SPEC monitor: tracks `s0 After σ` for the observed timed trace σ
// and answers the tioco question "is this output (or this much silence)
// allowed here?" (Definition 5).
//
// The paper restricts SPECs to deterministic, strongly input-enabled
// TIOGA (Sec. 2.2), so After σ is a single concrete state once the
// trace fixes every delay — timing uncertainty in the model collapses
// against the observed timestamps.  The monitor enforces determinism
// at runtime: two simultaneously enabled instances on one observable
// channel raise ModelError.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "semantics/concrete.h"

namespace tigat::testing {

class SpecMonitor {
 public:
  SpecMonitor(const tsystem::System& spec, std::int64_t scale);

  void reset();

  [[nodiscard]] const semantics::ConcreteState& state() const { return state_; }
  [[nodiscard]] const semantics::ConcreteSemantics& semantics() const {
    return sem_;
  }

  // Largest delay the SPEC allows from here (invariants); observing
  // quiescence beyond it is a tioco violation (a promised output never
  // came).
  [[nodiscard]] std::int64_t allowed_delay() const {
    return sem_.max_delay(state_);
  }

  // Advances the monitor; false iff the SPEC forbids this much delay.
  [[nodiscard]] bool apply_delay(std::int64_t ticks);

  // Observed SUT output on `channel` at the current instant.  Returns
  // false iff no uncontrollable instance with that channel is enabled —
  // i.e. o ∉ Out(s After σ), the Algorithm 3.1 fail condition.
  [[nodiscard]] bool apply_output(const std::string& channel);

  // Tester input on `channel`; the SPEC must accept (input-enabled);
  // false when it cannot (indicates a bad strategy/model, not an IMP
  // fault).
  [[nodiscard]] bool apply_input(const std::string& channel);

  // Fires a specific controllable instance (used for environment-
  // internal moves the strategy prescribes, which have no channel and
  // never touch the IMP).  Returns false when it is not enabled.
  [[nodiscard]] bool apply_instance(const semantics::TransitionInstance& t);

  // Out(s After σ) at the current instant: the sorted, deduplicated
  // channel names of every enabled uncontrollable instance.  This is
  // the "expected" half of an expected-vs-observed post-mortem — an
  // output outside this set is exactly the Algorithm 3.1 fail
  // condition apply_output rejects.
  [[nodiscard]] std::vector<std::string> expected_outputs() const;

 private:
  // Unique enabled instance on `channel` with the given direction.
  [[nodiscard]] std::optional<semantics::TransitionInstance> unique_enabled(
      const std::string& channel, bool controllable);

  semantics::ConcreteSemantics sem_;
  semantics::ConcreteState state_;
};

}  // namespace tigat::testing
