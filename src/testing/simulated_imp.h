// Simulated implementations honouring the paper's test hypotheses
// (Sec. 2.5): the IMP is a deterministic TIOTS with the same action
// alphabet as the SPEC, strongly input-enabled, OUTPUT-URGENT and with
// ISOLATED OUTPUTS.
//
// The simulator interprets a single-process plant model (e.g. the
// Smart Light of Fig. 2 without the user, or a mutated copy).  The
// SPEC's timing uncertainty is resolved by a deterministic policy:
//
//   * when one or more output edges become enabled, the IMP commits to
//     the one ranked first by `channel_preference` (isolation);
//   * it fires that output `latency` ticks after enabling — clipped to
//     whatever the guard/invariant still allows (urgency-after-latency;
//     latency 0 is classical output urgency).
//
// Any latency inside the SPEC's window yields a tioco-conforming
// implementation; the test suite uses several latencies to exercise
// the paper's "timing uncertainty of outputs".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "semantics/concrete.h"
#include "testing/implementation.h"
#include "tsystem/system.h"

namespace tigat::testing {

struct ImpPolicy {
  // Ticks between an output edge becoming enabled and it firing.
  std::int64_t latency = 0;
  // Channel ranking for isolated-output choice; unlisted channels rank
  // after listed ones, alphabetically.
  std::vector<std::string> channel_preference;
};

class SimulatedImplementation final : public Implementation {
 public:
  // `plant` must be a finalized single-process system.  The instance
  // keeps a reference; the system must outlive it.
  SimulatedImplementation(const tsystem::System& plant, std::int64_t scale,
                          ImpPolicy policy = {});

  void reset() override;
  std::optional<ObservedOutput> advance(std::int64_t ticks) override;
  bool offer_input(const std::string& channel) override;

  // Introspection for tests.
  [[nodiscard]] const semantics::ConcreteState& state() const { return state_; }
  [[nodiscard]] const tsystem::System& plant() const { return *sys_; }

 private:
  struct PlannedOutput {
    std::uint32_t edge = 0;
    std::int64_t fire_in = 0;  // ticks from now
  };

  [[nodiscard]] bool edge_enabled(const tsystem::Edge& e) const;
  void fire_edge(const tsystem::Edge& e);
  // Deterministic choice of the next output: which edge, in how many
  // ticks.  nullopt if no output can fire within `horizon`.
  [[nodiscard]] std::optional<PlannedOutput> plan_output(
      std::int64_t horizon) const;
  [[nodiscard]] int preference_rank(const std::string& channel) const;

  // Far beyond any model constant; plans are compared against the
  // caller's window, not truncated by it (keeps slicing-invariance).
  static constexpr std::int64_t kPlanHorizon = std::int64_t{1} << 40;

  const tsystem::System* sys_;
  semantics::ConcreteSemantics sem_;
  ImpPolicy policy_;
  semantics::ConcreteState state_;
  // Committed next move (deterministic policy), invalidated by any
  // discrete transition.
  std::optional<PlannedOutput> plan_;
  bool plan_valid_ = false;
};

}  // namespace tigat::testing
