// Resilient test campaigns: many executions of one strategy against
// one IUT, surviving and classifying harness-level faults instead of
// converting them into spurious verdicts.
//
// A single TestExecutor::run answers for one run over a (possibly
// unreliable) boundary.  Real testing — the ROADMAP's campaign engine,
// a tigat-serve daemon scheduling thousands of sessions against flaky
// hardware — needs the layer above: per-run wall-clock deadlines
// (cooperative, checked at step granularity by the executor AND by the
// FaultInjector's simulated hangs), bounded retries with exponential
// backoff on INCONCLUSIVE outcomes (fresh fault schedule per attempt),
// and run-set aggregation into one machine-readable classification:
//
//   PASS          every run's final attempt passed
//   FAIL          some run produced a sound FAIL (Theorem 10 evidence;
//                 never caused by injected faults — executors downgrade
//                 those, see executor.h)
//   UNRESPONSIVE  no run ever passed or failed, and every final
//                 outcome was harness-silence (crash / hang / deadline)
//   FLAKY         anything in between
//
// Determinism: with a fault spec and seed, every attempt's schedule is
// derived as seed_for(fault_seed, run, attempt), so identical
// (seed, spec) inputs produce byte-identical campaign reports — the
// JSON deliberately contains no wall-clock figures (those go to the
// obs::metrics registry: campaign.* counters, campaign.run_ms
// histogram).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decision/source.h"
#include "obs/recorder.h"
#include "testing/executor.h"
#include "tsystem/system.h"

namespace tigat::testing {

enum class CampaignVerdict : std::uint8_t {
  kPass,
  kFail,
  kFlaky,
  kUnresponsive,
};

[[nodiscard]] const char* to_string(CampaignVerdict v);

struct CampaignOptions {
  std::size_t runs = 1;
  // Extra attempts per run when the final answer is INCONCLUSIVE
  // (harness faults, deadline, declined cooperation, ...).  PASS and
  // FAIL never retry.
  std::size_t retries = 0;
  // Wall-clock budget per attempt; 0 = unbounded.  Shared with the
  // fault injector so injected hangs end with the budget.
  std::int64_t run_deadline_ms = 0;
  // Backoff before retry k (1-based) is backoff_base_ms << (k-1),
  // capped at 1 s; 0 disables sleeping (tests).
  std::int64_t backoff_base_ms = 0;
  // Fault injection: compact spec string (see testing/faults.h) and
  // base seed.  Empty spec = clean boundary, no decorator.
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  // Flight recorder: when true every attempt runs with an attached
  // obs::RunRecorder, and the ledgers of non-PASS attempts are kept in
  // RunOutcome::ledgers (PASS ledgers are discarded — the interesting
  // runs explain themselves, the boring ones stay free).  Recording
  // never changes verdicts, reports or solver counters.
  bool record_ledgers = false;
  ExecutorOptions executor;
};

// One run's final outcome plus its retry history.
struct RunOutcome {
  std::size_t run = 0;
  std::size_t attempts = 1;       // 1 + retries actually used
  std::uint64_t seed = 0;         // fault schedule of the final attempt
  TestReport report;              // final attempt
  std::vector<ReasonCode> attempt_codes;  // every attempt, in order
  // With CampaignOptions::record_ledgers: one flight-recorder ledger
  // per non-PASS attempt of this run, in attempt order (each carries
  // its own run/attempt/seed header).  Feed to obs::explain.
  std::vector<obs::RunLedger> ledgers;
};

struct CampaignReport {
  CampaignVerdict verdict = CampaignVerdict::kPass;
  std::size_t runs = 0;
  std::size_t passes = 0;
  std::size_t fails = 0;
  std::size_t inconclusive = 0;
  std::size_t attempts = 0;       // across all runs
  std::size_t retries_used = 0;
  std::size_t deadline_hits = 0;  // attempts ending in hang/deadline
  std::string fault_spec;         // canonical form
  std::uint64_t fault_seed = 0;
  std::int64_t run_deadline_ms = 0;
  std::size_t retries = 0;        // configured bound
  std::vector<RunOutcome> outcomes;

  // Percentile summary of one metrics histogram (upper-bucket-bound
  // approximation; see obs::Histogram::percentile).
  struct TimingSummary {
    std::uint64_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };
  // Wall-clock aggregates, filled ONLY when the obs metrics registry
  // is enabled (they summarise the process-wide "campaign.run_ms" and
  // "decide.latency_ns" histograms).  Deliberately opt-in: the default
  // campaign JSON stays free of wall-clock values, preserving the
  // byte-identical-report determinism contract that CI asserts.
  bool has_timing = false;
  TimingSummary run_ms;     // campaign.run_ms, milliseconds
  TimingSummary decide_ns;  // decide.latency_ns, nanoseconds

  // Versioned, deterministic JSON ({"schema":"tigat.campaign", ...}):
  // fixed field order, sorted-by-run outcomes, no wall-clock values
  // unless metrics were enabled (then a trailing "timing" object
  // carries the percentile aggregates above) — identical (seed, spec,
  // model) inputs serialise byte-identically with metrics off.
  [[nodiscard]] std::string to_json() const;
};

// The per-attempt fault schedule: splitmix-derived from the base seed
// so neighbouring runs/attempts decorrelate.  Exposed for tests that
// replay a single recorded attempt.
[[nodiscard]] std::uint64_t campaign_attempt_seed(std::uint64_t fault_seed,
                                                  std::size_t run,
                                                  std::size_t attempt);

// Runs a campaign of Algorithm 3.1 executions (TestExecutor) of
// `source` against `imp`.  When opts.fault_spec is non-empty, `imp` is
// wrapped in a FaultInjector whose spurious-output alphabet is the
// SPEC's uncontrollable channels.  Throws FaultSpecError on a
// malformed spec; never lets an IMP exception escape.
[[nodiscard]] CampaignReport campaign_run(const decision::DecisionSource& source,
                                          const tsystem::System& spec,
                                          Implementation& imp,
                                          std::int64_t scale,
                                          const CampaignOptions& opts);

// Same, with the cooperative executor (the strategy/backend must come
// from the all-controllable relaxation of `original`).
[[nodiscard]] CampaignReport campaign_run_cooperative(
    const tsystem::System& original, const decision::DecisionSource& source,
    Implementation& imp, std::int64_t scale, const CampaignOptions& opts);

}  // namespace tigat::testing
