#include "testing/monitor.h"

#include <algorithm>

#include "util/assert.h"

namespace tigat::testing {

SpecMonitor::SpecMonitor(const tsystem::System& spec, std::int64_t scale)
    : sem_(spec, scale), state_(sem_.initial()) {}

void SpecMonitor::reset() { state_ = sem_.initial(); }

bool SpecMonitor::apply_delay(std::int64_t ticks) {
  if (!sem_.can_delay(state_, ticks)) return false;
  sem_.delay(state_, ticks);
  return true;
}

std::optional<semantics::TransitionInstance> SpecMonitor::unique_enabled(
    const std::string& channel, bool controllable) {
  std::optional<semantics::TransitionInstance> found;
  for (const auto& t : sem_.enabled_instances(state_)) {
    if (t.controllable != controllable) continue;
    const auto chan = t.channel_name(sem_.system());
    if (!chan || *chan != channel) continue;
    if (found) {
      throw tsystem::ModelError(
          "SPEC is nondeterministic on channel '" + channel +
          "' — the monitor requires a deterministic specification");
    }
    found = t;
  }
  return found;
}

bool SpecMonitor::apply_output(const std::string& channel) {
  const auto t = unique_enabled(channel, /*controllable=*/false);
  if (!t) return false;
  sem_.fire(state_, *t);
  return true;
}

bool SpecMonitor::apply_input(const std::string& channel) {
  const auto t = unique_enabled(channel, /*controllable=*/true);
  if (!t) return false;
  sem_.fire(state_, *t);
  return true;
}

bool SpecMonitor::apply_instance(const semantics::TransitionInstance& t) {
  if (!sem_.enabled(state_, t)) return false;
  sem_.fire(state_, t);
  return true;
}

std::vector<std::string> SpecMonitor::expected_outputs() const {
  std::vector<std::string> out;
  for (const auto& t : sem_.enabled_instances(state_)) {
    if (t.controllable) continue;
    const auto chan = t.channel_name(sem_.system());
    if (chan) out.push_back(*chan);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace tigat::testing
