#include "testing/faults.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "util/assert.h"
#include "util/text.h"

namespace tigat::testing {

namespace {

// One clause of the spec string, already split on ','.
struct Clause {
  std::string key;    // "drop", "delay", "hang@step", ...
  std::string value;  // text right of '='
};

Clause split_clause(const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == text.size()) {
    throw FaultSpecError("fault spec clause '" + text +
                         "' is not KEY=VALUE");
  }
  return {text.substr(0, eq), text.substr(eq + 1)};
}

double parse_prob(const Clause& c) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(c.value.c_str(), &end);
  if (end == c.value.c_str() || *end != '\0' || errno == ERANGE || v < 0.0 ||
      v > 1.0) {
    throw FaultSpecError("fault spec '" + c.key + "=" + c.value +
                         "': expected a probability in [0,1]");
  }
  return v;
}

std::int64_t parse_int(const Clause& c, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE || v < 0) {
    throw FaultSpecError("fault spec '" + c.key + "=" + c.value +
                         "': expected a non-negative integer, got '" + text +
                         "'");
  }
  return static_cast<std::int64_t>(v);
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string raw = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? text.size() : comma + 1;
    if (raw.empty()) continue;

    const Clause c = split_clause(raw);
    if (c.key == "drop") {
      spec.drop = parse_prob(c);
    } else if (c.key == "dup") {
      spec.dup = parse_prob(c);
    } else if (c.key == "spurious") {
      spec.spurious = parse_prob(c);
    } else if (c.key == "reject") {
      spec.reject = parse_prob(c);
    } else if (c.key == "delay") {
      const auto dots = c.value.find("..");
      if (dots == std::string::npos) {
        throw FaultSpecError("fault spec 'delay=" + c.value +
                             "': expected LO..HI ticks");
      }
      spec.delay_lo = parse_int(c, c.value.substr(0, dots));
      spec.delay_hi = parse_int(c, c.value.substr(dots + 2));
      if (spec.delay_lo > spec.delay_hi) {
        throw FaultSpecError("fault spec 'delay=" + c.value +
                             "': LO exceeds HI");
      }
    } else if (c.key == "hang@step") {
      const std::int64_t n = parse_int(c, c.value);
      if (n < 1) throw FaultSpecError("hang@step counts from 1");
      spec.hang_at_step = static_cast<std::uint64_t>(n);
    } else if (c.key == "crash@step") {
      const std::int64_t n = parse_int(c, c.value);
      if (n < 1) throw FaultSpecError("crash@step counts from 1");
      spec.crash_at_step = static_cast<std::uint64_t>(n);
    } else {
      throw FaultSpecError(
          "unknown fault spec clause '" + c.key +
          "' (known: drop dup spurious reject delay hang@step crash@step)");
    }
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::string out;
  const auto clause = [&](const std::string& text) {
    if (!out.empty()) out += ',';
    out += text;
  };
  if (drop > 0) clause(util::format("drop=%g", drop));
  if (dup > 0) clause(util::format("dup=%g", dup));
  if (spurious > 0) clause(util::format("spurious=%g", spurious));
  if (reject > 0) clause(util::format("reject=%g", reject));
  if (delay_hi > 0) {
    clause(util::format("delay=%lld..%lld", static_cast<long long>(delay_lo),
                        static_cast<long long>(delay_hi)));
  }
  if (hang_at_step != kNever) {
    clause(util::format("hang@step=%llu",
                        static_cast<unsigned long long>(hang_at_step)));
  }
  if (crash_at_step != kNever) {
    clause(util::format("crash@step=%llu",
                        static_cast<unsigned long long>(crash_at_step)));
  }
  return out;
}

bool FaultSpec::any() const {
  return drop > 0 || dup > 0 || spurious > 0 || reject > 0 || delay_hi > 0 ||
         hang_at_step != kNever || crash_at_step != kNever;
}

FaultInjector::FaultInjector(Implementation& inner, FaultSpec spec,
                             std::uint64_t seed,
                             std::vector<std::string> spurious_channels,
                             const util::Deadline* deadline)
    : inner_(&inner),
      spec_(spec),
      seed_(seed),
      spurious_channels_(std::move(spurious_channels)),
      deadline_(deadline) {
  reset();
}

void FaultInjector::reset() {
  inner_->reset();
  rng_ = util::Rng(seed_);
  calls_ = 0;
  counters_ = {};
  last_fault_.clear();
  in_flight_.clear();
}

std::uint64_t FaultInjector::harness_faults() const {
  return counters_.total();
}

std::string FaultInjector::harness_fault_summary() const {
  if (counters_.total() == 0) return {};
  std::string out = util::format(
      "%llu injected fault(s):",
      static_cast<unsigned long long>(counters_.total()));
  const auto item = [&](std::uint64_t n, const char* label) {
    if (n > 0) {
      out += util::format(" %s x%llu", label,
                          static_cast<unsigned long long>(n));
    }
  };
  item(counters_.drops, "drop");
  item(counters_.delays, "delay");
  item(counters_.dups, "dup");
  item(counters_.spurious, "spurious");
  item(counters_.rejects, "reject");
  item(counters_.hangs, "hang");
  item(counters_.crashes, "crash");
  out += " (last: " + last_fault_ + ")";
  return out;
}

void FaultInjector::count(std::uint64_t Counters::* field, const char* label) {
  ++(counters_.*field);
  last_fault_ = label;
  if (sink_) sink_(label, calls_);
  if (obs::metrics_enabled()) {
    obs::metrics().counter(std::string("faults.") + label).add(1);
  }
}

void FaultInjector::on_boundary_call() {
  ++calls_;
  if (calls_ == spec_.crash_at_step) {
    count(&Counters::crashes, "crash");
    throw InjectedCrash(util::format(
        "injected crash at boundary call %llu",
        static_cast<unsigned long long>(calls_)));
  }
  if (calls_ == spec_.hang_at_step) {
    count(&Counters::hangs, "hang");
    if (!deadline_ || !deadline_->armed()) {
      // Blocking forever with nothing to cancel us would wedge the
      // harness we exist to test — surface the hang immediately.
      throw HarnessHangError(
          "injected hang with no armed deadline (refusing to block)");
    }
    while (!deadline_->expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw HarnessHangError(util::format(
        "injected hang at boundary call %llu cancelled by the run deadline",
        static_cast<unsigned long long>(calls_)));
  }
}

void FaultInjector::age_in_flight(std::int64_t ticks) {
  for (InFlight& f : in_flight_) {
    f.due = f.due > ticks ? f.due - ticks : 0;
  }
}

void FaultInjector::enqueue_in_flight(std::string channel, std::int64_t due) {
  // Keep sorted by due; ties deliver in enqueue order.
  auto it = in_flight_.begin();
  while (it != in_flight_.end() && it->due <= due) ++it;
  in_flight_.insert(it, InFlight{std::move(channel), due});
}

std::optional<ObservedOutput> FaultInjector::advance(std::int64_t ticks) {
  on_boundary_call();

  // A spurious output materialises at the very start of the window —
  // the simplest deterministic placement, and the nastiest for the
  // executor (zero warning).
  if (spec_.spurious > 0 && !spurious_channels_.empty() &&
      rng_.uniform01() < spec_.spurious) {
    count(&Counters::spurious, "spurious");
    const auto& chan =
        spurious_channels_[rng_.next() % spurious_channels_.size()];
    return ObservedOutput{chan, 0};
  }

  std::int64_t remaining = ticks;
  std::int64_t offset = 0;  // virtual time consumed inside this call

  // Each hop advances the inner IUT to the next event: a fresh output,
  // an in-flight (delayed/duplicated) delivery, or the window end.
  // Bounded defensively: a mutant stuck in an instantaneous output
  // loop whose outputs keep being dropped would otherwise spin here.
  constexpr int kMaxHops = 4096;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    const bool have_wire = !in_flight_.empty();
    const std::int64_t horizon =
        have_wire ? std::min(in_flight_.front().due, remaining) : remaining;

    const auto obs = inner_->advance(horizon);
    if (!obs) {
      // Quiescent up to the horizon.
      offset += horizon;
      remaining -= horizon;
      age_in_flight(horizon);
      if (have_wire && in_flight_.front().due == 0) {
        InFlight f = std::move(in_flight_.front());
        in_flight_.pop_front();
        return ObservedOutput{std::move(f.channel), offset};
      }
      return std::nullopt;  // whole window passed (remaining == 0)
    }

    // Fresh output after obs->after_ticks ≤ horizon.
    offset += obs->after_ticks;
    remaining -= obs->after_ticks;
    age_in_flight(obs->after_ticks);

    if (spec_.drop > 0 && rng_.uniform01() < spec_.drop) {
      count(&Counters::drops, "drop");
      continue;  // swallowed by the channel
    }
    std::int64_t pad = 0;
    if (spec_.delay_hi > 0) pad = rng_.range(spec_.delay_lo, spec_.delay_hi);
    if (pad > 0) {
      count(&Counters::delays, "delay");
      enqueue_in_flight(obs->channel, pad);
      continue;  // still in the wire; maybe due within this window
    }
    if (spec_.dup > 0 && rng_.uniform01() < spec_.dup) {
      count(&Counters::dups, "dup");
      enqueue_in_flight(obs->channel, 0);  // echoes right behind
    }
    return ObservedOutput{obs->channel, offset};
  }
  throw HarnessFaultError(
      "fault channel livelock: >4096 instantaneous events in one window");
}

bool FaultInjector::offer_input(const std::string& channel) {
  on_boundary_call();
  if (spec_.reject > 0 && rng_.uniform01() < spec_.reject) {
    count(&Counters::rejects, "reject");
    return false;  // the adapter ate it; the IUT never saw the input
  }
  return inner_->offer_input(channel);
}

}  // namespace tigat::testing
