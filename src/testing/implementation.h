// The black-box interface between the tester and the implementation
// under test (IMP in the paper's terminology).
//
// The tester can do exactly two things, matching Fig. 1 / Fig. 4:
// offer an input now, and let (virtual) time pass while watching for
// outputs.  Nothing about the IMP's internals is visible.
//
// The boundary is also where a real test harness fails: outputs get
// dropped, delayed or duplicated by the observation channel, inputs
// get rejected by a wedged adapter, the IUT process hangs or dies.
// This header therefore defines the *failure vocabulary* of the
// boundary too, so executors can keep Theorem 10 honest:
//
//   * harness_faults() lets a decorator that KNOWS it corrupted the
//     channel (testing/faults.h injects such corruption
//     deterministically) say so — executors refuse to turn a corrupted
//     observation into a FAIL verdict and return INCONCLUSIVE instead;
//   * HarnessFaultError / HarnessHangError mark mid-call harness
//     failures; executors catch them (and any other exception escaping
//     the IMP) and convert them into machine-readable INCONCLUSIVE
//     reason codes rather than letting a run die.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace tigat::testing {

struct ObservedOutput {
  std::string channel;
  std::int64_t after_ticks = 0;  // offset from when advance() started
};

// The harness (not the IUT) failed in the middle of a boundary call:
// observation channel wedged, adapter lost the session, ...  Executors
// map this to Verdict::kInconclusive / ReasonCode::kHarnessFault.
class HarnessFaultError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

// A hang at the boundary that a cooperative util::Deadline cancelled.
// Mapped to ReasonCode::kHarnessHang — the "unresponsive IUT" class.
class HarnessHangError : public HarnessFaultError {
  using HarnessFaultError::HarnessFaultError;
};

class Implementation {
 public:
  virtual ~Implementation() = default;

  // Back to the initial state (a new test run).
  virtual void reset() = 0;

  // Lets up to `ticks` of virtual time pass.  If the implementation
  // emits an output after d' ≤ ticks, internal time advances by d' and
  // the output is returned; otherwise time advances by the full amount
  // and nullopt is returned (quiescence for the whole period).
  virtual std::optional<ObservedOutput> advance(std::int64_t ticks) = 0;

  // Offers an input at the current instant.  Returns false when the
  // implementation ignores it (a correct strongly input-enabled IMP
  // always accepts; mutants may not).
  virtual bool offer_input(const std::string& channel) = 0;

  // How many times the observation channel has been corrupted since
  // reset() — dropped/delayed/duplicated/spurious outputs, rejected
  // inputs.  Only a harness-side decorator can know this; a real IUT
  // (and the honest simulators) report 0.  A FAIL is only sound when
  // the count never moved during the run.
  [[nodiscard]] virtual std::uint64_t harness_faults() const { return 0; }

  // Human-readable amplification of harness_faults() for reports
  // ("3 faults: drop x2, dup x1").  Empty when the channel is clean.
  [[nodiscard]] virtual std::string harness_fault_summary() const {
    return {};
  }
};

}  // namespace tigat::testing
