// The black-box interface between the tester and the implementation
// under test (IMP in the paper's terminology).
//
// The tester can do exactly two things, matching Fig. 1 / Fig. 4:
// offer an input now, and let (virtual) time pass while watching for
// outputs.  Nothing about the IMP's internals is visible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace tigat::testing {

struct ObservedOutput {
  std::string channel;
  std::int64_t after_ticks = 0;  // offset from when advance() started
};

class Implementation {
 public:
  virtual ~Implementation() = default;

  // Back to the initial state (a new test run).
  virtual void reset() = 0;

  // Lets up to `ticks` of virtual time pass.  If the implementation
  // emits an output after d' ≤ ticks, internal time advances by d' and
  // the output is returned; otherwise time advances by the full amount
  // and nullopt is returned (quiescence for the whole period).
  virtual std::optional<ObservedOutput> advance(std::int64_t ticks) = 0;

  // Offers an input at the current instant.  Returns false when the
  // implementation ignores it (a correct strongly input-enabled IMP
  // always accepts; mutants may not).
  virtual bool offer_input(const std::string& channel) = 0;
};

}  // namespace tigat::testing
