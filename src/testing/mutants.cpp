#include "testing/mutants.h"

#include <algorithm>
#include <functional>

#include "tsystem/rebuild.h"

#include "util/assert.h"
#include "util/text.h"

namespace tigat::testing {

using tsystem::ClockConstraint;
using tsystem::Controllability;
using tsystem::Edge;
using tsystem::LocId;
using tsystem::Process;
using tsystem::SyncKind;
using tsystem::System;

const char* to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kGuardShift: return "guard-shift";
    case MutationKind::kGuardFlip: return "guard-flip";
    case MutationKind::kTargetSwap: return "target-swap";
    case MutationKind::kOutputSwap: return "output-swap";
    case MutationKind::kEdgeDrop: return "edge-drop";
    case MutationKind::kResetDrop: return "reset-drop";
    case MutationKind::kInvariantWiden: return "invariant-widen";
  }
  return "?";
}

System clone_system(const System& source) {
  return tsystem::clone_system(source);
}

std::vector<MutantDescriptor> enumerate_mutants(const System& plant) {
  TIGAT_ASSERT(plant.finalized(), "mutants require a finalized system");
  std::vector<MutantDescriptor> out;
  for (std::uint32_t p = 0; p < plant.processes().size(); ++p) {
    const Process& proc = plant.processes()[p];
    const auto loc_name = [&](LocId l) { return proc.locations()[l].name; };
    for (std::uint32_t ei = 0; ei < proc.edges().size(); ++ei) {
      const Edge& e = proc.edges()[ei];
      const std::string where =
          proc.name() + ":" + loc_name(e.src) + "->" + loc_name(e.dst);

      for (std::uint32_t gi = 0; gi < e.guard.size(); ++gi) {
        for (const std::int32_t amount : {-1, +1}) {
          out.push_back({MutationKind::kGuardShift, p, ei, 0, gi, amount,
                         util::format("%s guard#%u by %+d", where.c_str(), gi,
                                      amount)});
        }
        out.push_back({MutationKind::kGuardFlip, p, ei, 0, gi, 0,
                       util::format("%s guard#%u strictness", where.c_str(),
                                    gi)});
      }

      // Transfer fault: retarget to every other location.
      for (LocId alt = 0; alt < proc.locations().size(); ++alt) {
        if (alt == e.dst) continue;
        out.push_back({MutationKind::kTargetSwap, p, ei, 0, 0,
                       static_cast<std::int32_t>(alt),
                       util::format("%s retarget to %s", where.c_str(),
                                    loc_name(alt).c_str())});
      }

      // Output fault: another uncontrollable channel.
      if (e.sync == SyncKind::kSend) {
        for (std::uint32_t ch = 0; ch < plant.channels().size(); ++ch) {
          if (ch == e.channel.id) continue;
          if (plant.channels()[ch].control != Controllability::kUncontrollable) {
            continue;
          }
          out.push_back({MutationKind::kOutputSwap, p, ei, 0, 0,
                         static_cast<std::int32_t>(ch),
                         util::format("%s emits %s instead", where.c_str(),
                                      plant.channels()[ch].name.c_str())});
        }
      }

      out.push_back({MutationKind::kEdgeDrop, p, ei, 0, 0, 0,
                     util::format("drop %s", where.c_str())});

      for (std::uint32_t ri = 0; ri < e.resets.size(); ++ri) {
        out.push_back({MutationKind::kResetDrop, p, ei, 0, ri, 0,
                       util::format("%s forget reset of %s", where.c_str(),
                                    plant.clock_names()[e.resets[ri].clock]
                                        .c_str())});
      }
    }

    for (LocId l = 0; l < proc.locations().size(); ++l) {
      const auto& inv = proc.locations()[l].invariant;
      for (std::uint32_t ci = 0; ci < inv.size(); ++ci) {
        out.push_back({MutationKind::kInvariantWiden, p, 0, l, ci, +1,
                       util::format("%s.%s invariant#%u widened by 1",
                                    proc.name().c_str(),
                                    loc_name(l).c_str(), ci)});
      }
    }
  }
  return out;
}

System apply_mutant(const System& plant, const MutantDescriptor& m) {
  const tsystem::EdgeRebuildHook edge_hook = [&](std::uint32_t p, std::uint32_t ei,
                                 Edge& copy) {
    if (p != m.process || ei != m.edge) return true;
    switch (m.kind) {
      case MutationKind::kGuardShift: {
        ClockConstraint& c = copy.guard.at(m.index);
        c.bound = dbm::make_bound(dbm::bound_value(c.bound) + m.amount,
                                  dbm::strictness(c.bound));
        return true;
      }
      case MutationKind::kGuardFlip: {
        ClockConstraint& c = copy.guard.at(m.index);
        c.bound = dbm::make_bound(dbm::bound_value(c.bound),
                                  dbm::is_weak(c.bound)
                                      ? dbm::Strict::kStrict
                                      : dbm::Strict::kWeak);
        return true;
      }
      case MutationKind::kTargetSwap:
        copy.dst = static_cast<LocId>(m.amount);
        return true;
      case MutationKind::kOutputSwap:
        copy.channel = tsystem::ChannelId{static_cast<std::uint32_t>(m.amount)};
        return true;
      case MutationKind::kEdgeDrop:
        return false;
      case MutationKind::kResetDrop:
        copy.resets.erase(copy.resets.begin() + m.index);
        return true;
      case MutationKind::kInvariantWiden:
        return true;  // handled by the invariant hook
    }
    return true;
  };
  const tsystem::InvariantRebuildHook inv_hook = [&](std::uint32_t p, LocId l,
                                     std::vector<ClockConstraint>& inv) {
    if (m.kind != MutationKind::kInvariantWiden || p != m.process ||
        l != m.location) {
      return;
    }
    ClockConstraint& c = inv.at(m.index);
    c.bound = dbm::make_bound(dbm::bound_value(c.bound) + m.amount,
                              dbm::strictness(c.bound));
  };
  return tsystem::rebuild_system(plant, edge_hook, inv_hook,
                                 "__mut_" + std::string(to_string(m.kind)));
}

}  // namespace tigat::testing
