// Test execution with a winning strategy — Algorithm 3.1 of the paper.
//
// The executor incrementally builds a test run by consulting the
// strategy at the monitored SPEC state:
//
//   * "input i"  → send i to the IMP, advance the monitor;
//   * "delay d"  → let (virtual) time pass; if the IMP emits o after
//     d' ≤ d, check o ∈ Out(s0 After σ·d') — fail on violation —
//     otherwise record the full delay;
//   * a goal state (rank 0) yields PASS.
//
// Additional fail condition implicit in tioco: observing quiescence
// past the SPEC's invariant deadline (the promised output never came).
//
// Soundness (Theorem 10): FAIL is only emitted on an output or a
// silence that the SPEC forbids after the observed trace — evidence of
// non-conformance.  Partial completeness (Theorem 11) appears as the
// mutation experiments: IMPs that break conformance along the strategy
// are driven into a failing run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "decision/source.h"
#include "game/strategy.h"
#include "testing/implementation.h"
#include "testing/monitor.h"

namespace tigat::testing {

enum class Verdict : std::uint8_t {
  kPass,
  kFail,
  kInconclusive,  // budget exhausted or internal limitation — no verdict
};

[[nodiscard]] const char* to_string(Verdict v);

struct TraceEvent {
  enum class Kind : std::uint8_t { kInput, kOutput, kDelay };
  Kind kind;
  std::string channel;     // input/output
  std::int64_t ticks = 0;  // delay duration, or the instant's offset 0
};

struct TestReport {
  Verdict verdict = Verdict::kInconclusive;
  std::string reason;
  std::vector<TraceEvent> trace;
  std::int64_t total_ticks = 0;
  std::size_t steps = 0;

  [[nodiscard]] std::string trace_string() const;
};

struct ExecutorOptions {
  std::size_t max_steps = 10000;
  // Cap for a single wait when neither the strategy nor the invariants
  // provide a deadline (defensive; a winning strategy always does).
  std::int64_t idle_wait_cap = 1 << 20;
};

class TestExecutor {
 public:
  // All three parties must use the same tick scale.
  TestExecutor(const game::Strategy& strategy, Implementation& imp,
               std::int64_t scale, ExecutorOptions options = {});

  // Any decision backend — e.g. a compiled decision::DecisionTable
  // loaded from a .tgs file.  `spec` is the SPEC the monitor tracks;
  // it must be the system the backend was built for (for tables, check
  // DecisionTable::matches first).
  TestExecutor(const decision::DecisionSource& source,
               const tsystem::System& spec, Implementation& imp,
               std::int64_t scale, ExecutorOptions options = {});

  // Not copyable/movable: source_ may point into owned_source_.
  TestExecutor(const TestExecutor&) = delete;
  TestExecutor& operator=(const TestExecutor&) = delete;

  // One full test run (resets the IMP first).  Traced as an
  // "executor.run" span with per-decision "executor.step" child spans,
  // and counted under "executor.*" metrics (runs, steps, trace events,
  // verdicts) when the obs layer is enabled.
  [[nodiscard]] TestReport run();

 private:
  [[nodiscard]] TestReport run_impl();

  // Set by the Strategy convenience constructor; source_ points at it.
  std::optional<decision::StrategySource> owned_source_;
  const decision::DecisionSource* source_;
  Implementation* imp_;
  SpecMonitor monitor_;
  std::int64_t scale_;
  ExecutorOptions options_;
};

}  // namespace tigat::testing
