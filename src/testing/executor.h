// Test execution with a winning strategy — Algorithm 3.1 of the paper.
//
// The executor incrementally builds a test run by consulting the
// strategy at the monitored SPEC state:
//
//   * "input i"  → send i to the IMP, advance the monitor;
//   * "delay d"  → let (virtual) time pass; if the IMP emits o after
//     d' ≤ d, check o ∈ Out(s0 After σ·d') — fail on violation —
//     otherwise record the full delay;
//   * a goal state (rank 0) yields PASS.
//
// Additional fail condition implicit in tioco: observing quiescence
// past the SPEC's invariant deadline (the promised output never came).
//
// Soundness (Theorem 10): FAIL is only emitted on an output or a
// silence that the SPEC forbids after the observed trace — evidence of
// non-conformance.  Partial completeness (Theorem 11) appears as the
// mutation experiments: IMPs that break conformance along the strategy
// are driven into a failing run.
//
// Soundness under harness faults: Theorem 10 assumes a perfect
// observation channel.  When the channel itself drops/garbles events
// (see testing/faults.h and Implementation::harness_faults), a
// "forbidden" observation may be the harness's fault, not the IUT's —
// so the executor downgrades any would-be FAIL to INCONCLUSIVE /
// kHarnessFault whenever the boundary reported corruption during the
// run, catches exceptions escaping the IMP (kImpCrash / kHarnessHang),
// and honours a cooperative wall-clock deadline checked once per step
// (kRunDeadlineExceeded).  FAIL therefore still implies evidence of
// non-conformance observed over a clean channel.
//
// Safety purposes (`control: A[] φ`, ExecutorOptions::purpose) flip
// the win condition: a safety play has no goal state, so the run PASSes
// by OUTLASTING a budget with φ intact — pass_ticks of model time, or
// the step budget as the fallback — and FAILs the moment a discrete
// move lands the SPEC in ¬φ (kSafetyViolation; φ is a predicate over
// locations and data, so delays cannot change it).  The quiescence
// rules soften where safety play is legitimately passive: an unbounded
// quiet wait absorbs the idle cap and keeps counting (waiting forever
// IS winning), and a deadlock that maintains φ — time frozen, nothing
// promised — is a PASS, not a violation.  Silence that swallows a
// promised output is still FAIL kQuiescenceViolation, and the
// harness-fault downgrade applies to safety FAILs unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "decision/source.h"
#include "game/strategy.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "testing/implementation.h"
#include "testing/monitor.h"
#include "tsystem/property.h"
#include "util/cancel.h"

namespace tigat::testing {

enum class Verdict : std::uint8_t {
  kPass,
  kFail,
  kInconclusive,  // budget exhausted or internal limitation — no verdict
};

[[nodiscard]] const char* to_string(Verdict v);

// Machine-readable cause behind a verdict.  The campaign layer and CI
// branch on these; the free-text TestReport::detail only amplifies.
enum class ReasonCode : std::uint8_t {
  kNone = 0,
  // PASS
  kPurposeReached,
  kSafetyMaintained,     // safety: φ held through the whole budget
  // FAIL — evidence of non-conformance (sound, Theorem 10)
  kQuiescenceViolation,  // promised output never came
  kUnexpectedOutput,     // o ∉ Out(s After σ)
  kSafetyViolation,      // safety: a SPEC-legal move still broke φ
  // INCONCLUSIVE — no verdict either way
  kOutsideWinningRegion,  // purpose uncontrollable from the start
  kStepBudgetExhausted,   // ExecutorOptions::max_steps hit
  kUnboundedWait,         // neither strategy nor SPEC bounded the wait
                          // (idle_wait_cap defensive path)
  kSutDeclined,           // cooperative: IUT legally left the plan
  // INCONCLUSIVE — the harness, not the IUT (unresponsive class except
  // kHarnessFault, which is corruption rather than silence)
  kHarnessFault,         // observation channel corrupted mid-run
  kImpCrash,             // an exception escaped the IMP boundary
  kHarnessHang,          // boundary hang cancelled by the deadline
  kRunDeadlineExceeded,  // per-run wall-clock budget expired
};

[[nodiscard]] const char* to_string(ReasonCode c);

// True for causes that mean "the run infrastructure failed", i.e. a
// retry with a fresh schedule could succeed: the harness class above
// plus nothing else.  Campaigns retry these and classify run sets that
// only ever produce them as UNRESPONSIVE.
[[nodiscard]] bool is_harness_level(ReasonCode c);

struct TraceEvent {
  enum class Kind : std::uint8_t { kInput, kOutput, kDelay };
  Kind kind;
  std::string channel;     // input/output
  std::int64_t ticks = 0;  // delay duration, or the instant's offset 0
};

struct TestReport {
  Verdict verdict = Verdict::kInconclusive;
  ReasonCode code = ReasonCode::kNone;
  std::string detail;  // human amplification of `code`; never branch on it
  std::vector<TraceEvent> trace;
  std::int64_t total_ticks = 0;
  std::size_t steps = 0;
  // Boundary corruption count at the end of the run (see
  // Implementation::harness_faults).  Always 0 on a FAIL verdict —
  // that is the soundness-under-faults invariant.
  std::uint64_t harness_faults = 0;

  [[nodiscard]] std::string trace_string() const;
};

struct ExecutorOptions {
  std::size_t max_steps = 10000;
  // Cap for a single wait when neither the strategy nor the invariants
  // provide a deadline (defensive; a winning strategy always does).
  // Quiescence across a whole uncapped window yields INCONCLUSIVE /
  // kUnboundedWait — never a silent max-length wait.
  std::int64_t idle_wait_cap = 1 << 20;
  // Cooperative wall-clock budget, polled once per step; nullptr or an
  // unarmed Deadline means no budget.  The campaign layer arms one per
  // run and shares it with the FaultInjector so simulated hangs end.
  const util::Deadline* deadline = nullptr;
  // Run flight recorder (obs/recorder.h): when set, every decision,
  // boundary event and the final verdict of the run are journaled into
  // its RunLedger.  nullptr (the default) costs one pointer null-check
  // branch per recording site — the recorder analogue of the
  // trace/metrics cost contract.  Recording never changes behaviour:
  // recorded runs are bit-identical to unrecorded ones.
  obs::RunRecorder* recorder = nullptr;
  // The purpose the strategy was solved for.  Safety purposes switch
  // the executor into safety mode (see the file comment); unset means
  // reachability.  The Strategy-based constructors fill it in from
  // GameSolution::purpose automatically — table-based callers serving
  // a safety .tgs must set it themselves (the table knows its kind but
  // not the formula the monitor must check).
  std::optional<tsystem::TestPurpose> purpose;
  // Safety mode: PASS with kSafetyMaintained once this much model time
  // has elapsed with φ intact.  0 falls back to the step budget as the
  // run length.  Ignored for reachability purposes.
  std::int64_t pass_ticks = 0;
};

class TestExecutor {
 public:
  // All three parties must use the same tick scale.
  TestExecutor(const game::Strategy& strategy, Implementation& imp,
               std::int64_t scale, ExecutorOptions options = {});

  // Any decision backend — e.g. a compiled decision::DecisionTable
  // loaded from a .tgs file.  `spec` is the SPEC the monitor tracks;
  // it must be the system the backend was built for (for tables, check
  // DecisionTable::matches first).
  TestExecutor(const decision::DecisionSource& source,
               const tsystem::System& spec, Implementation& imp,
               std::int64_t scale, ExecutorOptions options = {});

  // Not copyable/movable: source_ may point into owned_source_.
  TestExecutor(const TestExecutor&) = delete;
  TestExecutor& operator=(const TestExecutor&) = delete;

  // One full test run (resets the IMP first).  Traced as an
  // "executor.run" span with per-decision "executor.step" child spans,
  // and counted under "executor.*" metrics (runs, steps, trace events,
  // verdicts) when the obs layer is enabled.
  [[nodiscard]] TestReport run();

 private:
  [[nodiscard]] TestReport run_impl();

  // Set by the Strategy convenience constructor; source_ points at it.
  std::optional<decision::StrategySource> owned_source_;
  const decision::DecisionSource* source_;
  Implementation* imp_;
  SpecMonitor monitor_;
  std::int64_t scale_;
  ExecutorOptions options_;
};

// Shared by both executors: per-run verdict/trace metrics (obs layer).
void record_run_metrics(const TestReport& report);

// The "executor.step_ns" histogram, or nullptr when metrics are off —
// fetched once per run so the per-step cost is a null check, not a
// registry lookup.  Splits serving-path time between decide() (the
// existing "decide.latency_ns") and everything around it.
[[nodiscard]] obs::Histogram* step_latency_histogram();

// RAII step timer for the executor loops: records into `hist` on scope
// exit (covering early returns), measures nothing when hist == nullptr.
class StepTimer {
 public:
  explicit StepTimer(obs::Histogram* hist);
  ~StepTimer();
  StepTimer(const StepTimer&) = delete;
  StepTimer& operator=(const StepTimer&) = delete;

 private:
  obs::Histogram* hist_;
  std::uint64_t t0_ = 0;
};

// Journals one decide() answer into the run ledger: the move kind and
// rank, the rendered SPEC state (the decision key), the prescribed
// channel for actions and the strategy's wait bound for delays.
// Shared by both executors so their ledgers render identically.
void record_decision(obs::RunRecorder& rec, std::uint64_t step,
                     std::int64_t t, const SpecMonitor& monitor,
                     const game::Move& move,
                     const decision::DecisionSource& source);

}  // namespace tigat::testing
