// Mutation operators for fault-detection experiments (the paper's
// future-work item 3: "evaluating strategy-based test effectiveness in
// terms of fault detecting capability").
//
// A mutant is a systematically faulted copy of the plant model,
// simulating classical implementation errors of real-time systems:
//
//   kGuardShift       — an off-by-k timing constant in a guard
//   kGuardFlip        — strict/weak boundary confusion (x<c vs x≤c)
//   kTargetSwap       — a transfer fault (edge goes to a wrong state)
//   kOutputSwap       — a wrong output action on an edge
//   kEdgeDrop         — a missing transition (output fault / ignored
//                       input)
//   kResetDrop        — a forgotten timer reset
//   kInvariantWiden   — a lazy output window (deadline missed by k)
//
// Not every mutant is observably faulty (some are tioco-equivalent to
// the SPEC along every trace, e.g. widening an already-slack bound);
// the kill-rate experiments report detected / total.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tsystem/system.h"

namespace tigat::testing {

enum class MutationKind : std::uint8_t {
  kGuardShift,
  kGuardFlip,
  kTargetSwap,
  kOutputSwap,
  kEdgeDrop,
  kResetDrop,
  kInvariantWiden,
};

[[nodiscard]] const char* to_string(MutationKind kind);

struct MutantDescriptor {
  MutationKind kind;
  std::uint32_t process = 0;
  std::uint32_t edge = 0;      // edge-based mutations
  std::uint32_t location = 0;  // invariant mutations
  std::uint32_t index = 0;     // which guard / reset / constraint
  std::int32_t amount = 0;     // shift distance, swap target, ...
  std::string description;
};

// Structural copy of a finalized system (same clocks, channels, data,
// processes, edges); the copy is finalized too.
[[nodiscard]] tsystem::System clone_system(const tsystem::System& source);

// All applicable mutants of the given (plant) system.
[[nodiscard]] std::vector<MutantDescriptor> enumerate_mutants(
    const tsystem::System& plant);

// A copy of `plant` with one mutation applied.
[[nodiscard]] tsystem::System apply_mutant(const tsystem::System& plant,
                                           const MutantDescriptor& m);

}  // namespace tigat::testing
