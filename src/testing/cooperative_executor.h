// Cooperative test execution (paper future-work item 4).
//
// Runs a cooperative strategy — computed on the all-controllable
// relaxation by game::solve_cooperative — against a black box.  The
// strategy's moves split by their controllability in the ORIGINAL
// game partition:
//
//   * genuinely controllable moves are executed like Algorithm 3.1;
//   * moves that are really the SUT's (hoped-for outputs) make the
//     executor wait; if the SUT cooperates, the plan continues, if it
//     legally does something else, the run ends INCONCLUSIVE.
//
// FAIL is still sound: it is only emitted on tioco violations, exactly
// as in the winning-strategy executor.
#pragma once

#include <optional>

#include "decision/source.h"
#include "game/cooperative.h"
#include "game/strategy.h"
#include "testing/executor.h"

namespace tigat::testing {

class CooperativeExecutor {
 public:
  // `original` is the un-relaxed SPEC (true game partition); the
  // strategy must come from game::solve_cooperative on it.
  CooperativeExecutor(const tsystem::System& original,
                      const game::Strategy& strategy, Implementation& imp,
                      std::int64_t scale, ExecutorOptions options = {});

  // Compiled (or any) backend built from the cooperative solution —
  // i.e. on the all-controllable relaxation of `original`.
  CooperativeExecutor(const tsystem::System& original,
                      const decision::DecisionSource& source,
                      Implementation& imp, std::int64_t scale,
                      ExecutorOptions options = {});

  // Not copyable/movable: source_ may point into owned_source_.
  CooperativeExecutor(const CooperativeExecutor&) = delete;
  CooperativeExecutor& operator=(const CooperativeExecutor&) = delete;

  // Same wrapper contract as TestExecutor::run — "executor.run" span,
  // "executor.*" metrics, harness-fault count in the report.
  [[nodiscard]] TestReport run();

 private:
  [[nodiscard]] TestReport run_impl();

  const tsystem::System* original_;
  std::optional<decision::StrategySource> owned_source_;
  const decision::DecisionSource* source_;
  Implementation* imp_;
  SpecMonitor monitor_;
  std::int64_t scale_;
  ExecutorOptions options_;
};

}  // namespace tigat::testing
