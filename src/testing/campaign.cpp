#include "testing/campaign.h"

#include <chrono>
#include <functional>
#include <thread>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "testing/cooperative_executor.h"
#include "testing/faults.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/text.h"

namespace tigat::testing {

const char* to_string(CampaignVerdict v) {
  switch (v) {
    case CampaignVerdict::kPass: return "pass";
    case CampaignVerdict::kFail: return "fail";
    case CampaignVerdict::kFlaky: return "flaky";
    case CampaignVerdict::kUnresponsive: return "unresponsive";
  }
  return "?";
}

std::uint64_t campaign_attempt_seed(std::uint64_t fault_seed, std::size_t run,
                                    std::size_t attempt) {
  // One splitmix step over a mix keyed by (run, attempt): adjacent
  // attempts get uncorrelated schedules, and the map is stable across
  // platforms (part of the byte-identical-report contract).
  util::Rng rng(fault_seed ^
                (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(run + 1)) ^
                (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(attempt)));
  return rng.next();
}

namespace {

// True for final outcomes that mean "the IUT/harness never answered":
// the silence class behind the UNRESPONSIVE campaign verdict.  A
// kHarnessFault outcome is corruption, not silence — a set of those
// classifies FLAKY.
bool is_unresponsive(ReasonCode c) {
  return c == ReasonCode::kImpCrash || c == ReasonCode::kHarnessHang ||
         c == ReasonCode::kRunDeadlineExceeded;
}

std::vector<std::string> uncontrollable_channels(const tsystem::System& spec) {
  std::vector<std::string> out;
  for (const auto& chan : spec.channels()) {
    if (chan.control == tsystem::Controllability::kUncontrollable) {
      out.push_back(chan.name);
    }
  }
  return out;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += util::format("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

// Header facts every attempt's ledger starts from; the per-attempt
// run/attempt/seed fields are filled in by the engine loop.
struct LedgerContext {
  obs::RunRecorder* recorder = nullptr;  // nullptr = not recording
  std::string model;
  const char* backend = "";
  std::int64_t scale = 0;
};

// The engine shared by the plain and cooperative entry points:
// `attempt` runs one executor attempt and returns its report.
CampaignReport run_campaign(const std::function<TestReport()>& attempt,
                            FaultInjector* injector, util::Deadline& deadline,
                            const CampaignOptions& opts,
                            const FaultSpec& spec,
                            const LedgerContext& ledgers) {
  TIGAT_SPAN("campaign.run");
  CampaignReport out;
  out.runs = opts.runs;
  out.fault_spec = spec.to_string();
  out.fault_seed = opts.fault_seed;
  out.run_deadline_ms = opts.run_deadline_ms;
  out.retries = opts.retries;

  for (std::size_t run = 0; run < opts.runs; ++run) {
    RunOutcome outcome;
    outcome.run = run;
    for (std::size_t att = 0;; ++att) {
      if (att > 0 && opts.backoff_base_ms > 0) {
        const std::int64_t sleep_ms =
            std::min<std::int64_t>(opts.backoff_base_ms << (att - 1), 1000);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      const std::uint64_t seed =
          campaign_attempt_seed(opts.fault_seed, run, att);
      if (injector) injector->reseed(seed);
      if (opts.run_deadline_ms > 0) {
        deadline.arm_ms(opts.run_deadline_ms);
      } else {
        deadline.disarm();
      }
      if (ledgers.recorder != nullptr) {
        obs::RunLedger header;
        header.model = ledgers.model;
        header.backend = ledgers.backend;
        header.scale = ledgers.scale;
        header.run = run;
        header.attempt = att;
        header.seed = seed;
        header.fault_spec = out.fault_spec;
        ledgers.recorder->begin(std::move(header));
      }

      util::Stopwatch watch;
      outcome.report = attempt();
      outcome.seed = seed;
      outcome.attempts = att + 1;
      outcome.attempt_codes.push_back(outcome.report.code);
      ++out.attempts;
      if (att > 0) ++out.retries_used;
      if (outcome.report.code == ReasonCode::kHarnessHang ||
          outcome.report.code == ReasonCode::kRunDeadlineExceeded) {
        ++out.deadline_hits;
      }
      if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        m.counter("campaign.attempts").add(1);
        if (att > 0) m.counter("campaign.retries").add(1);
        if (injector) {
          m.counter("campaign.faults_injected")
              .add(injector->harness_faults());
        }
        if (outcome.report.code == ReasonCode::kHarnessHang ||
            outcome.report.code == ReasonCode::kRunDeadlineExceeded) {
          m.counter("campaign.deadline_hits").add(1);
        }
        m.histogram("campaign.run_ms", obs::duration_buckets_ms())
            .record(static_cast<std::uint64_t>(watch.milliseconds()));
      }
      if (ledgers.recorder != nullptr) {
        // Every non-PASS attempt keeps its ledger (the whole point of
        // the flight recorder); PASS ledgers are dropped on the floor.
        obs::RunLedger led = ledgers.recorder->take();
        if (outcome.report.verdict != Verdict::kPass) {
          outcome.ledgers.push_back(std::move(led));
        }
      }
      if (outcome.report.verdict != Verdict::kInconclusive ||
          att >= opts.retries) {
        break;
      }
    }
    switch (outcome.report.verdict) {
      case Verdict::kPass: ++out.passes; break;
      case Verdict::kFail: ++out.fails; break;
      case Verdict::kInconclusive: ++out.inconclusive; break;
    }
    out.outcomes.push_back(std::move(outcome));
    obs::progress().tick_campaign(run + 1, opts.runs, out.retries_used,
                                  out.fails, out.inconclusive);
  }
  deadline.disarm();
  obs::progress().emit_campaign("campaign-done", opts.runs, opts.runs,
                                out.retries_used, out.fails, out.inconclusive);

  if (out.fails > 0) {
    out.verdict = CampaignVerdict::kFail;
  } else if (out.inconclusive == 0) {
    out.verdict = CampaignVerdict::kPass;
  } else {
    bool all_silent = out.passes == 0;
    for (const RunOutcome& o : out.outcomes) {
      if (o.report.verdict == Verdict::kInconclusive &&
          !is_unresponsive(o.report.code)) {
        all_silent = false;
      }
    }
    out.verdict = all_silent ? CampaignVerdict::kUnresponsive
                             : CampaignVerdict::kFlaky;
  }
  if (obs::metrics_enabled()) {
    auto& m = obs::metrics();
    m.counter("campaign.runs").add(out.runs);
    m.counter(std::string("campaign.verdict.") + to_string(out.verdict))
        .add(1);
    // Percentile aggregates for the campaign JSON.  These summarise
    // the process-wide histograms (cumulative across campaigns in one
    // process) and carry wall-clock content, so they are attached only
    // under metrics — the metrics-off JSON stays byte-deterministic.
    const auto summarise = [](const obs::Histogram& h) {
      CampaignReport::TimingSummary s;
      s.count = h.count();
      s.p50 = h.percentile(0.50);
      s.p90 = h.percentile(0.90);
      s.p99 = h.percentile(0.99);
      return s;
    };
    out.run_ms =
        summarise(m.histogram("campaign.run_ms", obs::duration_buckets_ms()));
    out.decide_ns =
        summarise(m.histogram("decide.latency_ns", obs::latency_buckets_ns()));
    out.has_timing = true;
  }
  return out;
}

}  // namespace

std::string CampaignReport::to_json() const {
  std::string out = "{\"schema\": \"tigat.campaign\", \"version\": 1";
  out += util::format(", \"verdict\": \"%s\"", to_string(verdict));
  out += util::format(", \"runs\": %zu", runs);
  out += util::format(", \"passes\": %zu", passes);
  out += util::format(", \"fails\": %zu", fails);
  out += util::format(", \"inconclusive\": %zu", inconclusive);
  out += util::format(", \"attempts\": %zu", attempts);
  out += util::format(", \"retries_used\": %zu", retries_used);
  out += util::format(", \"deadline_hits\": %zu", deadline_hits);
  out += ", \"fault_spec\": ";
  append_escaped(out, fault_spec);
  out += util::format(", \"fault_seed\": %llu",
                      static_cast<unsigned long long>(fault_seed));
  out += util::format(", \"run_deadline_ms\": %lld",
                      static_cast<long long>(run_deadline_ms));
  out += util::format(", \"retries\": %zu", retries);
  out += ", \"outcomes\": [";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& o = outcomes[i];
    if (i > 0) out += ", ";
    out += util::format("{\"run\": %zu, \"attempts\": %zu", o.run,
                        o.attempts);
    out += util::format(", \"seed\": %llu",
                        static_cast<unsigned long long>(o.seed));
    out += util::format(", \"verdict\": \"%s\"", to_string(o.report.verdict));
    out += util::format(", \"code\": \"%s\"", to_string(o.report.code));
    out += ", \"detail\": ";
    append_escaped(out, o.report.detail);
    out += util::format(", \"steps\": %zu", o.report.steps);
    out += util::format(", \"total_ticks\": %lld",
                        static_cast<long long>(o.report.total_ticks));
    out += util::format(
        ", \"harness_faults\": %llu",
        static_cast<unsigned long long>(o.report.harness_faults));
    out += ", \"trace\": ";
    append_escaped(out, o.report.trace_string());
    out += ", \"attempt_codes\": [";
    for (std::size_t a = 0; a < o.attempt_codes.size(); ++a) {
      if (a > 0) out += ", ";
      out += util::format("\"%s\"", to_string(o.attempt_codes[a]));
    }
    out += "]}";
  }
  out += "]";
  if (has_timing) {
    const auto block = [&](const char* name,
                           const TimingSummary& s) {
      out += util::format(
          "\"%s\": {\"count\": %llu, \"p50\": %llu, \"p90\": %llu, "
          "\"p99\": %llu}",
          name, static_cast<unsigned long long>(s.count),
          static_cast<unsigned long long>(s.p50),
          static_cast<unsigned long long>(s.p90),
          static_cast<unsigned long long>(s.p99));
    };
    out += ", \"timing\": {";
    block("run_ms", run_ms);
    out += ", ";
    block("decide_latency_ns", decide_ns);
    out += "}";
  }
  out += "}\n";
  return out;
}

CampaignReport campaign_run(const decision::DecisionSource& source,
                            const tsystem::System& spec, Implementation& imp,
                            std::int64_t scale, const CampaignOptions& opts) {
  const FaultSpec fault_spec = FaultSpec::parse(opts.fault_spec);
  util::Deadline deadline;
  ExecutorOptions exec_opts = opts.executor;
  exec_opts.deadline = &deadline;

  obs::RunRecorder recorder;
  LedgerContext ledgers;
  if (opts.record_ledgers) {
    ledgers.recorder = &recorder;
    ledgers.model = spec.name();
    ledgers.backend = source.backend_name();
    ledgers.scale = scale;
    exec_opts.recorder = &recorder;
  }

  if (fault_spec.any()) {
    FaultInjector injector(imp, fault_spec, opts.fault_seed,
                           uncontrollable_channels(spec), &deadline);
    if (opts.record_ledgers) {
      injector.set_fault_sink([&recorder](const char* kind,
                                          std::uint64_t call) {
        recorder.fault(kind, call);
      });
    }
    TestExecutor exec(source, spec, injector, scale, exec_opts);
    return run_campaign([&] { return exec.run(); }, &injector, deadline, opts,
                        fault_spec, ledgers);
  }
  TestExecutor exec(source, spec, imp, scale, exec_opts);
  return run_campaign([&] { return exec.run(); }, nullptr, deadline, opts,
                      fault_spec, ledgers);
}

CampaignReport campaign_run_cooperative(const tsystem::System& original,
                                        const decision::DecisionSource& source,
                                        Implementation& imp,
                                        std::int64_t scale,
                                        const CampaignOptions& opts) {
  const FaultSpec fault_spec = FaultSpec::parse(opts.fault_spec);
  util::Deadline deadline;
  ExecutorOptions exec_opts = opts.executor;
  exec_opts.deadline = &deadline;

  obs::RunRecorder recorder;
  LedgerContext ledgers;
  if (opts.record_ledgers) {
    ledgers.recorder = &recorder;
    ledgers.model = original.name();
    ledgers.backend = source.backend_name();
    ledgers.scale = scale;
    exec_opts.recorder = &recorder;
  }

  if (fault_spec.any()) {
    FaultInjector injector(imp, fault_spec, opts.fault_seed,
                           uncontrollable_channels(original), &deadline);
    if (opts.record_ledgers) {
      injector.set_fault_sink([&recorder](const char* kind,
                                          std::uint64_t call) {
        recorder.fault(kind, call);
      });
    }
    CooperativeExecutor exec(original, source, injector, scale, exec_opts);
    return run_campaign([&] { return exec.run(); }, &injector, deadline, opts,
                        fault_spec, ledgers);
  }
  CooperativeExecutor exec(original, source, imp, scale, exec_opts);
  return run_campaign([&] { return exec.run(); }, nullptr, deadline, opts,
                      fault_spec, ledgers);
}

}  // namespace tigat::testing
