#include "models/lep.h"

#include "util/assert.h"

namespace tigat::models {

using tsystem::Controllability;
using tsystem::Expr;
using tsystem::LocationKind;
using tsystem::Process;
using tsystem::lit;

Lep make_lep(LepParams params) {
  TIGAT_ASSERT(params.nodes >= 2, "LEP needs at least two nodes");
  const auto n = static_cast<std::int32_t>(params.nodes);
  const std::int32_t own_addr = n - 1;

  Lep m(tsystem::System("lep"), params);
  m.w = m.system.add_clock("w");
  m.e = m.system.add_clock("e");
  m.msg = m.system.add_channel("msg", Controllability::kControllable);
  m.fwd = m.system.add_channel("fwd", Controllability::kUncontrollable);
  m.timeout = m.system.add_channel("timeout", Controllability::kUncontrollable);
  m.elect = m.system.add_channel("elect", Controllability::kUncontrollable);

  auto& data = m.system.data();
  m.in_use = data.add_array("inUse", params.nodes, 0, 1, 0);
  m.msg_addr = data.add_array("msgAddr", params.nodes, 0, n - 1, 0);
  m.best = data.add_scalar("best", 0, n - 1, own_addr);
  m.better_info = data.add_scalar("betterInfo", 0, 1, 0);
  m.sel = data.add_scalar("sel", 0, n - 1, 0);

  const Expr sel = Expr::var(m.sel);
  const Expr best = Expr::var(m.best);
  const Expr picked = Expr::var(m.msg_addr, sel);

  // ── the IUT node ─────────────────────────────────────────────────────
  Process& iut = m.system.add_process("IUT", Controllability::kUncontrollable);
  m.iut = *m.system.find_process("IUT");
  m.idle = iut.add_location("idle");
  m.pending = iut.add_location("pending");
  m.forward = iut.add_location("forward");
  m.claim = iut.add_location("claim");
  m.leader = iut.add_location("leader");
  iut.set_initial(m.idle);

  // Timeout windows: waiting states must react by timeout_hi; the
  // forward window bounds pending and claim.
  iut.set_invariant(m.idle, m.w <= params.timeout_hi);
  iut.set_invariant(m.forward, m.w <= params.timeout_hi);
  iut.set_invariant(m.pending, m.w <= params.forward_window);
  iut.set_invariant(m.claim, m.w <= params.forward_window);

  // Message consumption, identical from every waiting state; a better
  // address means "record it and forward" (pending), otherwise drop.
  const auto add_msg_edges = [&](tsystem::LocId from) {
    iut.add_edge(from, m.pending)
        .receive(m.msg)
        .provided(picked < best)
        .assign(m.best, picked)
        .assign(m.better_info, lit(1))
        .assign_elem(m.in_use, sel, lit(0))
        .assign_elem(m.msg_addr, sel, lit(0))
        .reset(m.w)
        .comment("better address learned");
    iut.add_edge(from, from)
        .receive(m.msg)
        .provided(picked >= best)
        .assign(m.better_info, lit(0))
        .assign_elem(m.in_use, sel, lit(0))
        .assign_elem(m.msg_addr, sel, lit(0))
        .comment("stale message consumed");
  };
  add_msg_edges(m.idle);
  add_msg_edges(m.forward);
  add_msg_edges(m.claim);
  // pending/leader keep input-enabledness without changing course.
  iut.add_edge(m.pending, m.pending)
      .receive(m.msg)
      .provided(picked < best)
      .assign(m.best, picked)
      .assign_elem(m.in_use, sel, lit(0))
      .assign_elem(m.msg_addr, sel, lit(0))
      .comment("even better address while forwarding");
  iut.add_edge(m.pending, m.pending)
      .receive(m.msg)
      .provided(picked >= best)
      .assign_elem(m.in_use, sel, lit(0))
      .assign_elem(m.msg_addr, sel, lit(0));
  iut.add_edge(m.leader, m.leader)
      .receive(m.msg)
      .assign_elem(m.in_use, sel, lit(0))
      .assign_elem(m.msg_addr, sel, lit(0));

  // Timeouts: anywhere in [timeout_lo, timeout_hi] — the paper's
  // uncontrollable timing.  Best == own address → claim leadership,
  // otherwise re-announce the best known address.
  for (const tsystem::LocId from : {m.idle, m.forward}) {
    iut.add_edge(from, m.claim)
        .send(m.timeout)
        .guard(m.w >= params.timeout_lo)
        .provided(best == lit(own_addr))
        .reset(m.w);
    iut.add_edge(from, m.pending)
        .send(m.timeout)
        .guard(m.w >= params.timeout_lo)
        .provided(best < lit(own_addr))
        .reset(m.w);
  }

  // Forwarding into the lowest free buffer slot.  (Deterministic slot
  // choice keeps the SPEC monitorable — Def. 5 needs a deterministic
  // SPEC; the *timing* of fwd! inside the window stays uncontrollable.)
  for (std::uint32_t i = 0; i < params.nodes; ++i) {
    Expr lowest_free = Expr::var(m.in_use, lit(i)) == lit(0);
    if (i > 0) {
      lowest_free =
          lowest_free &&
          Expr::forall(0, static_cast<std::int64_t>(i) - 1,
                       Expr::var(m.in_use, Expr::bound_var(0)) == lit(1));
    }
    iut.add_edge(m.pending, m.forward)
        .send(m.fwd)
        .provided(lowest_free)
        .assign_elem(m.in_use, lit(i), lit(1))
        .assign_elem(m.msg_addr, lit(i), best)
        .reset(m.w)
        .comment("forward into slot " + std::to_string(i));
  }
  iut.add_edge(m.pending, m.forward)
      .send(m.fwd)
      .provided(Expr::forall(0, n - 1,
                             Expr::var(m.in_use, Expr::bound_var(0)) == lit(1)))
      .reset(m.w)
      .comment("buffer full: drop");

  // Leadership claim.
  iut.add_edge(m.claim, m.leader).send(m.elect).reset(m.w);

  // ── the chaotic environment ──────────────────────────────────────────
  Process& env = m.system.add_process("Env", Controllability::kControllable);
  m.env = *m.system.find_process("Env");
  m.env_idle = env.add_location("envIdle");
  m.env_sel = env.add_location("envSel", LocationKind::kCommitted);
  env.set_initial(m.env_idle);

  // Other nodes put a message with their address into a free slot.
  for (std::uint32_t i = 0; i < params.nodes; ++i) {
    for (std::int32_t a = 0; a < n - 1; ++a) {
      env.add_edge(m.env_idle, m.env_idle)
          .provided(Expr::var(m.in_use, lit(i)) == lit(0))
          .assign_elem(m.in_use, lit(i), lit(1))
          .assign_elem(m.msg_addr, lit(i), lit(a))
          .comment("node " + std::to_string(a) + " sends via slot " +
                   std::to_string(i));
    }
  }
  // Deliver a buffered message to the IUT (select slot, then the
  // committed handshake fixes `sel` before the synchronisation).
  for (std::uint32_t i = 0; i < params.nodes; ++i) {
    env.add_edge(m.env_idle, m.env_sel)
        .guard(m.e >= params.deliver_pace)
        .provided(Expr::var(m.in_use, lit(i)) == lit(1))
        .assign(m.sel, lit(i))
        .comment("select slot " + std::to_string(i));
  }
  env.add_edge(m.env_sel, m.env_idle).send(m.msg).reset(m.e);
  // Other nodes may also consume buffered messages.
  for (std::uint32_t i = 0; i < params.nodes; ++i) {
    env.add_edge(m.env_idle, m.env_idle)
        .provided(Expr::var(m.in_use, lit(i)) == lit(1))
        .assign_elem(m.in_use, lit(i), lit(0))
        .assign_elem(m.msg_addr, lit(i), lit(0))
        .comment("network consumes slot " + std::to_string(i));
  }
  // The environment always observes the IUT's outputs.
  for (const auto chan : {m.fwd, m.timeout, m.elect}) {
    env.add_edge(m.env_idle, m.env_idle).receive(chan);
  }

  m.system.finalize();
  return m;
}

std::string lep_tp1() {
  return "control: A<> (IUT.betterInfo == 1) and IUT.forward";
}

std::string lep_tp2() {
  return "control: A<> forall (i : inUse) inUse[i] == 1";
}

std::string lep_tp3() {
  return "control: A<> (forall (i : inUse) inUse[i] == 1) and IUT.idle";
}

}  // namespace tigat::models
