#include "models/smart_light.h"

namespace tigat::models {

using tsystem::Controllability;
using tsystem::LocId;
using tsystem::Process;

namespace {

// Adds the plant process to `m.system`; fills the IUT handles.
void build_plant(SmartLight& m) {
  const auto& prm = m.params;
  Process& iut = m.system.add_process("IUT", Controllability::kUncontrollable);
  m.iut = *m.system.find_process("IUT");

  m.loc_off = iut.add_location("Off");
  m.loc_dim = iut.add_location("Dim");
  m.loc_bright = iut.add_location("Bright");
  m.l1 = iut.add_location("L1");
  m.l2 = iut.add_location("L2");
  m.l3 = iut.add_location("L3");
  m.l4 = iut.add_location("L4");
  m.l5 = iut.add_location("L5");
  m.l6 = iut.add_location("L6");
  iut.set_initial(m.loc_off);

  for (const LocId l : {m.l1, m.l2, m.l3, m.l4, m.l5, m.l6}) {
    iut.set_invariant(l, m.tp <= prm.output_window);
  }

  // Off: quick touch goes towards Dim, idle touch reactivates via L5.
  iut.add_edge(m.loc_off, m.l1)
      .receive(m.touch)
      .guard(m.x < prm.t_idle)
      .reset(m.x)
      .reset(m.tp)
      .comment("activate");
  iut.add_edge(m.loc_off, m.l5)
      .receive(m.touch)
      .guard(m.x >= prm.t_idle)
      .reset(m.x)
      .reset(m.tp)
      .comment("reactivate after idle");

  // L1: light answers dim!, or a second touch escalates.
  iut.add_edge(m.l1, m.loc_dim).send(m.dim).reset(m.x);
  iut.add_edge(m.l1, m.l2).receive(m.touch).reset(m.x).reset(m.tp);

  // L5: the light's free choice (dim/bright), or a second touch
  // insists on bright via L6.
  iut.add_edge(m.l5, m.loc_dim).send(m.dim).reset(m.x);
  iut.add_edge(m.l5, m.loc_bright).send(m.bright).reset(m.x);
  iut.add_edge(m.l5, m.l6).receive(m.touch).reset(m.x).reset(m.tp);

  // L2/L6: bright! guaranteed (within the output window).
  iut.add_edge(m.l2, m.loc_bright).send(m.bright).reset(m.x);
  iut.add_edge(m.l6, m.loc_bright).send(m.bright).reset(m.x);

  // Dim: quick touch brightens, slow touch moves towards Off.
  iut.add_edge(m.loc_dim, m.l2)
      .receive(m.touch)
      .guard(m.x < prm.t_sw)
      .reset(m.x)
      .reset(m.tp)
      .comment("quick touch: brighten");
  iut.add_edge(m.loc_dim, m.l3)
      .receive(m.touch)
      .guard(m.x >= prm.t_sw)
      .reset(m.x)
      .reset(m.tp)
      .comment("slow touch: switch off");

  // L3: off as requested... or the light refuses and stays Dim.
  iut.add_edge(m.l3, m.loc_off).send(m.off).reset(m.x);
  iut.add_edge(m.l3, m.loc_dim).send(m.dim).reset(m.x);

  // Bright: any touch enters L4 (light picks dim or off).
  iut.add_edge(m.loc_bright, m.l4)
      .receive(m.touch)
      .reset(m.x)
      .reset(m.tp);
  iut.add_edge(m.l4, m.loc_dim).send(m.dim).reset(m.x);
  iut.add_edge(m.l4, m.loc_off).send(m.off).reset(m.x);

  // Strong input-enabledness: remaining locations ignore extra touches
  // (without resetting the output window).
  for (const LocId l : {m.l2, m.l3, m.l4}) {
    iut.add_edge(l, l).receive(m.touch).comment("ignored touch");
  }
}

void build_user(SmartLight& m) {
  const auto& prm = m.params;
  Process& user = m.system.add_process("User", Controllability::kControllable);
  m.user = *m.system.find_process("User");
  m.user_init = user.add_location("Init");
  m.user_work = user.add_location("Work");
  user.set_initial(m.user_init);

  // Touches are rate-limited by the user's reaction time.
  user.add_edge(m.user_init, m.user_work)
      .send(m.touch)
      .guard(m.z >= prm.t_react)
      .reset(m.z);
  user.add_edge(m.user_work, m.user_work)
      .send(m.touch)
      .guard(m.z >= prm.t_react)
      .reset(m.z);

  // The user always observes the light's outputs (never blocks them).
  for (const LocId l : {m.user_init, m.user_work}) {
    for (const tsystem::ChannelId chan : {m.dim, m.bright, m.off}) {
      user.add_edge(l, l).receive(chan).reset(m.z).comment("observe");
    }
  }
}

SmartLight make_base(SmartLightParams params, bool with_user) {
  SmartLight m(
      tsystem::System(with_user ? "smart_light" : "smart_light_plant"),
      params);
  m.x = m.system.add_clock("x");
  m.tp = m.system.add_clock("Tp");
  if (with_user) m.z = m.system.add_clock("z");
  m.touch = m.system.add_channel("touch", Controllability::kControllable);
  m.dim = m.system.add_channel("dim", Controllability::kUncontrollable);
  m.bright = m.system.add_channel("bright", Controllability::kUncontrollable);
  m.off = m.system.add_channel("off", Controllability::kUncontrollable);
  build_plant(m);
  if (with_user) build_user(m);
  m.system.finalize();
  return m;
}

}  // namespace

SmartLight make_smart_light(SmartLightParams params) {
  return make_base(params, /*with_user=*/true);
}

SmartLight make_smart_light_plant_only(SmartLightParams params) {
  return make_base(params, /*with_user=*/false);
}

}  // namespace tigat::models
