// The Smart Light running example (Fig. 2 + Fig. 3 of the paper).
//
// Plant (process "IUT"): a touch-controlled light with brightness
// levels Off, Dim, Bright and transient decision locations L1..L6 in
// which the light owns an output window of up to 2 time units
// (invariant Tp ≤ 2).  The model is deliberately *uncontrollable*:
//
//   * timing uncertainty — in every L-location the output may occur
//     anywhere in [0, 2];
//   * output uncontrollability — L3, L4 and L5 offer several outputs
//     (e.g. L5 may answer a reactivating touch with dim! or bright!);
//     the light, not the tester, picks.
//
// Behaviour: a touch on an Off light activates it (to Dim via L1, or —
// after an idle period of Tidle — through L5 where the light may choose
// Dim or Bright).  A quick second touch (within Tsw) escalates to
// Bright (L2/L6 guarantee bright!); a slow touch on Dim goes towards
// Off via L3 (where the light may refuse and stay Dim).  Touching a
// Bright light enters L4 (dim or off, light's choice).  The plant is
// strongly input-enabled: every location accepts touch?.
//
// Environment (process "User", Fig. 3): touches at most once per
// Treact time unit and observes the light's outputs (so plant outputs
// are never blocked by the composition).
//
// Defaults: Tidle = 20, Tsw = 4, Treact = 1 (paper values).
#pragma once

#include "tsystem/system.h"

namespace tigat::models {

struct SmartLightParams {
  dbm::bound_t t_idle = 20;
  dbm::bound_t t_sw = 4;
  dbm::bound_t t_react = 1;
  dbm::bound_t output_window = 2;  // the Tp ≤ 2 invariants
};

struct SmartLight {
  SmartLight(tsystem::System sys, SmartLightParams prm)
      : system(std::move(sys)), params(prm) {}

  tsystem::System system;
  SmartLightParams params;

  tsystem::Clock x, tp, z;
  tsystem::ChannelId touch, dim, bright, off;
  std::uint32_t iut = 0, user = 0;  // process indices
  tsystem::LocId loc_off = 0, loc_dim = 0, loc_bright = 0;
  tsystem::LocId l1 = 0, l2 = 0, l3 = 0, l4 = 0, l5 = 0, l6 = 0;
  tsystem::LocId user_init = 0, user_work = 0;
};

// Builds and finalizes the composed model.
[[nodiscard]] SmartLight make_smart_light(SmartLightParams params = {});

// The plant alone (for IMP simulation): same structure, no User
// process.  Location ids match the composed model's IUT process.
[[nodiscard]] SmartLight make_smart_light_plant_only(
    SmartLightParams params = {});

}  // namespace tigat::models
