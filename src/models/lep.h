// The Leader Election Protocol (LEP) case study of Sec. 4.
//
// The paper models one protocol node (the IUT) as a TIOGA playing
// against a "simulated chaotic environment including all the other
// nodes and a buffer with certain capacity".  The original model lives
// in an unavailable technical report; this reconstruction follows the
// paper's description and Lamport's protocol (elect the node with the
// lowest address by message passing):
//
//   * the IUT owns the highest address (n−1) and keeps `best`, the
//     lowest address heard so far; a message with a smaller address
//     sets `betterInfo` and must be forwarded (locations idle →
//     pending → forward);
//   * `timeout!` is produced anywhere in the window [T_lo, T_hi] after
//     the last event — the paper's "timeout! event can be produced at
//     any point of a time frame" (timing uncertainty);  a node whose
//     best address is its own then claims leadership (`elect!`);
//   * the buffer has n slots (`inUse[i]`, `msgAddr[i]`); the IUT's
//     forward picks any free slot (uncontrollable choice) or drops the
//     message when the buffer is full;
//   * the chaotic environment (controllable: the tester's game moves)
//     can create messages with any other node's address in any free
//     slot, deliver any pending message to the IUT (rate-limited by
//     its clock), and consume buffered messages.
//
// Test purposes TP1–TP3 of the paper are provided verbatim.
#pragma once

#include <string>

#include "tsystem/system.h"

namespace tigat::models {

struct LepParams {
  // Number of protocol nodes; buffer capacity equals `nodes` and
  // other-node addresses range over 0..nodes-2 (paper: distance between
  // nodes bounded by n−1).
  std::uint32_t nodes = 3;
  dbm::bound_t timeout_lo = 4;
  dbm::bound_t timeout_hi = 6;
  dbm::bound_t forward_window = 2;
  dbm::bound_t deliver_pace = 1;
};

struct Lep {
  Lep(tsystem::System sys, LepParams prm)
      : system(std::move(sys)), params(prm) {}

  tsystem::System system;
  LepParams params;

  tsystem::Clock w, e;
  tsystem::ChannelId msg, fwd, timeout, elect;
  std::uint32_t iut = 0, env = 0;
  tsystem::LocId idle = 0, pending = 0, forward = 0, claim = 0, leader = 0;
  tsystem::LocId env_idle = 0, env_sel = 0;
  tsystem::VarId in_use, msg_addr, best, better_info, sel;
};

[[nodiscard]] Lep make_lep(LepParams params = {});

// The n-node instance with the paper's default timing parameters —
// the C++ twin of `examples/models/lep.tg --param N=n`.
[[nodiscard]] inline Lep build_lep(std::uint32_t nodes) {
  return make_lep({.nodes = nodes});
}

// The paper's three test purposes for the given instance.
[[nodiscard]] std::string lep_tp1();
[[nodiscard]] std::string lep_tp2();
[[nodiscard]] std::string lep_tp3();

}  // namespace tigat::models
