#include "lang/lang.h"

#include <fstream>
#include <sstream>

#include "lang/parser.h"
#include "util/text.h"

namespace tigat::lang {

namespace {

// "models/smart_light.tg" → "smart_light": the fallback system name.
std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return stem.empty() ? "model" : stem;
}

// The one compile pipeline; both public entry points wrap it.
std::optional<LoadedModel> compile_with_sink(DiagnosticSink& sink,
                                             const CompileOptions& options) {
  const ModelAst ast = parse(sink.source(), sink);
  if (sink.has_errors()) return std::nullopt;
  return elaborate(ast, stem_of(sink.source().name()), sink, options);
}

LoadedModel compile_or_throw(std::string_view text, const std::string& name,
                             const CompileOptions& options) {
  const Source source(name, std::string(text));
  DiagnosticSink sink(source);
  std::optional<LoadedModel> model = compile_with_sink(sink, options);
  if (!model) throw LangError(sink.render_all());
  return std::move(*model);
}

}  // namespace

std::optional<LoadedModel> compile_model(std::string_view source_text,
                                         const std::string& name,
                                         std::vector<Diagnostic>& diagnostics,
                                         const CompileOptions& options) {
  const Source source(name, std::string(source_text));
  DiagnosticSink sink(source);
  std::optional<LoadedModel> model = compile_with_sink(sink, options);
  diagnostics = sink.diagnostics();
  return model;
}

LoadedModel load_model(const std::string& path,
                       const CompileOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw LangError(util::format("%s: cannot open model file", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return compile_or_throw(buffer.str(), path, options);
}

LoadedModel load_model_from_string(std::string_view source,
                                   const std::string& name,
                                   const CompileOptions& options) {
  return compile_or_throw(source, name, options);
}

}  // namespace tigat::lang
