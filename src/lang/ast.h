// Abstract syntax of the .tg model language.
//
// The AST is a faithful, name-based picture of the source — nothing is
// resolved yet.  Identifiers stay strings, integer expressions stay
// trees, and every node keeps the Pos of its defining token so the
// elaborator can report resolution errors (unknown clock, duplicate
// location, ...) at the exact source position.  Grammar reference:
// README.md, "The .tg model language".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/diag.h"
#include "tsystem/system.h"

namespace tigat::lang {

// ── expressions ───────────────────────────────────────────────────────

// Expression nodes are immutable once parsed and may be shared — a
// multi-name declaration like `int [0, 5] a, b;` reuses the bound
// expressions for every name (which is also why there is no hand-rolled
// deep clone to keep in sync with the field list).
struct ExprAst;
using ExprPtr = std::shared_ptr<const ExprAst>;

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot };

struct ExprAst {
  enum class Kind : std::uint8_t {
    kNumber,      // `number`
    kName,        // `name` — clock, variable or bound variable
    kIndex,       // `name [ index ]`
    kUnary,       // `op lhs`
    kBinary,      // `lhs op rhs`
    kQuantifier,  // forall/exists `( name : range ) body` (body = lhs)
  };

  Kind kind = Kind::kNumber;
  Pos pos;

  std::int64_t number = 0;            // kNumber
  std::string name;                   // kName, kIndex base, binder name
  BinOp bin_op = BinOp::kAdd;         // kBinary
  UnOp un_op = UnOp::kNeg;            // kUnary
  ExprPtr lhs;                        // kUnary operand, kBinary lhs,
                                      // kIndex index, kQuantifier body
  ExprPtr rhs;                        // kBinary rhs

  // kQuantifier: either an explicit `lo..hi` range or the name of a
  // declared array (meaning 0 .. size-1).
  bool is_forall = true;
  ExprPtr range_lo, range_hi;
  std::string range_array;
};

// ── declarations ──────────────────────────────────────────────────────

struct ClockDeclAst {
  std::string name;
  Pos pos;
};

struct ChanDeclAst {
  std::string name;
  bool controllable = true;
  Pos pos;
};

// `const name = expr ;` — a named compile-time integer.  The value
// expression may reference previously declared constants; the
// elaborator folds the whole chain, so constants parameterise range
// bounds, array sizes, guards, invariants and resets without ever
// existing at run time.
struct ConstDeclAst {
  std::string name;
  ExprPtr value;
  Pos pos;
};

// `int [lo , hi] name ( [size] )? ( = init )? ;` — scalar when `size`
// is null.  Omitted init defaults to 0 when the range allows it, else
// to `lo`.
struct VarDeclAst {
  std::string name;
  ExprPtr lo, hi;
  ExprPtr size;  // null for scalars
  ExprPtr init;  // null when omitted
  Pos pos;
};

struct LocDeclAst {
  std::string name;
  tsystem::LocationKind kind = tsystem::LocationKind::kNormal;
  std::vector<ExprPtr> invariants;  // conjuncts, clock constraints only
  Pos pos;
};

struct SyncAst {
  std::string channel;
  bool send = false;  // `chan!` vs `chan?`
  Pos pos;
};

struct UpdateAst {
  std::string target;  // clock (reset) or variable (assignment)
  ExprPtr index;       // null for scalars/clocks
  ExprPtr rhs;
  Pos pos;
};

struct EdgeDeclAst {
  std::string src, dst;
  Pos src_pos, dst_pos;
  std::optional<SyncAst> sync;          // absent = τ edge
  std::vector<ExprPtr> guards;          // `when` conjuncts
  std::vector<UpdateAst> updates;       // `do` items
  std::optional<bool> ctrl_override;    // trailing `ctrl` / `unctrl`
  std::string label;                    // `label "..."` → Edge::comment
  Pos pos;
};

struct ProcessDeclAst {
  std::string name;
  bool controllable_default = false;
  std::vector<LocDeclAst> locations;
  std::vector<EdgeDeclAst> edges;
  std::string init_loc;
  Pos init_pos;
  Pos pos;
};

// `control: <raw text to ';'>` — the predicate is kept as raw source
// and handed to tsystem::TestPurpose::parse against the elaborated
// system, so the property sub-language has one implementation.
struct ControlDeclAst {
  std::string text;  // e.g. "A<> IUT.Bright"
  Pos pos;           // position of the first predicate character
};

struct ModelAst {
  std::string system_name;  // empty: derive from the file name
  Pos system_pos;
  std::vector<ClockDeclAst> clocks;
  std::vector<ChanDeclAst> channels;
  std::vector<ConstDeclAst> constants;
  std::vector<VarDeclAst> variables;
  std::vector<ProcessDeclAst> processes;
  std::vector<ControlDeclAst> controls;
};

}  // namespace tigat::lang
