// Abstract syntax of the .tg model language.
//
// The AST is a faithful, name-based picture of the source — nothing is
// resolved yet.  Identifiers stay strings, integer expressions stay
// trees, and every node keeps the Pos of its defining token so the
// elaborator can report resolution errors (unknown clock, duplicate
// location, ...) at the exact source position.  Grammar reference:
// README.md, "The .tg model language".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/diag.h"
#include "tsystem/system.h"

namespace tigat::lang {

// ── expressions ───────────────────────────────────────────────────────

// Expression nodes are immutable once parsed and may be shared — a
// multi-name declaration like `int [0, 5] a, b;` reuses the bound
// expressions for every name (which is also why there is no hand-rolled
// deep clone to keep in sync with the field list).
struct ExprAst;
using ExprPtr = std::shared_ptr<const ExprAst>;

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot };

struct ExprAst {
  enum class Kind : std::uint8_t {
    kNumber,      // `number`
    kName,        // `name` — clock, variable or bound variable
    kIndex,       // `name [ index ]`
    kUnary,       // `op lhs`
    kBinary,      // `lhs op rhs`
    kQuantifier,  // forall/exists `( name : range ) body` (body = lhs)
  };

  Kind kind = Kind::kNumber;
  Pos pos;

  std::int64_t number = 0;            // kNumber
  std::string name;                   // kName, kIndex base, binder name
  BinOp bin_op = BinOp::kAdd;         // kBinary
  UnOp un_op = UnOp::kNeg;            // kUnary
  ExprPtr lhs;                        // kUnary operand, kBinary lhs,
                                      // kIndex index, kQuantifier body
  ExprPtr rhs;                        // kBinary rhs

  // kQuantifier: either an explicit `lo..hi` range or the name of a
  // declared array (meaning 0 .. size-1).
  bool is_forall = true;
  ExprPtr range_lo, range_hi;
  std::string range_array;
};

// ── declarations ──────────────────────────────────────────────────────

struct ClockDeclAst {
  std::string name;
  Pos pos;
};

// `chan ctrl name ;` — or `chan ctrl name [size] ;`, a channel array:
// the elaborator stamps out channels `name[0] .. name[size-1]`, which
// edges address as `name[i]!` / `name[i]?` with a constant index.
struct ChanDeclAst {
  std::string name;
  bool controllable = true;
  ExprPtr size;  // null for a plain channel
  Pos pos;
};

// `const name = expr ;` — a named compile-time integer.  The value
// expression may reference previously declared constants; the
// elaborator folds the whole chain, so constants parameterise range
// bounds, array sizes, guards, invariants and resets without ever
// existing at run time.
struct ConstDeclAst {
  std::string name;
  ExprPtr value;
  Pos pos;
};

// `int [lo , hi] name ( [size] )? ( = init )? ;` — scalar when `size`
// is null.  Omitted init defaults to 0 when the range allows it, else
// to `lo`.
struct VarDeclAst {
  std::string name;
  ExprPtr lo, hi;
  ExprPtr size;  // null for scalars
  ExprPtr init;  // null when omitted
  Pos pos;
};

struct LocDeclAst {
  std::string name;
  tsystem::LocationKind kind = tsystem::LocationKind::kNormal;
  std::vector<ExprPtr> invariants;  // conjuncts, clock constraints only
  Pos pos;
};

struct SyncAst {
  std::string channel;
  ExprPtr index;      // `chan[i]!` — addresses one member of a channel array
  bool send = false;  // `chan!` vs `chan?`
  Pos pos;
};

struct UpdateAst {
  std::string target;  // clock (reset) or variable (assignment)
  ExprPtr index;       // null for scalars/clocks
  bool whole_array = false;  // `A[] := e` — every cell, in index order
  ExprPtr rhs;
  Pos pos;
};

struct EdgeDeclAst {
  std::string src, dst;
  Pos src_pos, dst_pos;
  std::optional<SyncAst> sync;          // absent = τ edge
  std::vector<ExprPtr> guards;          // `when` conjuncts
  std::vector<UpdateAst> updates;       // `do` items
  std::optional<bool> ctrl_override;    // trailing `ctrl` / `unctrl`
  std::string label;                    // `label "..."` → Edge::comment
  Pos pos;
};

// `for (i : lo..hi) { <edges / nested for blocks> }` inside a process
// or template body — the elaborator stamps the items once per value of
// `i`, which acts as a constant inside them.  An empty range (lo > hi)
// stamps nothing.
struct ProcessItemAst;

struct ForBlockAst {
  std::string var;
  Pos var_pos;
  ExprPtr lo, hi;
  std::vector<ProcessItemAst> items;
  Pos pos;
};

// Exactly one member is engaged; declaration order is preserved so
// stamped edges land in the same order the source states them.
struct ProcessItemAst {
  std::optional<EdgeDeclAst> edge;
  std::optional<ForBlockAst> loop;
};

struct ProcessDeclAst {
  std::string name;
  bool controllable_default = false;
  std::vector<LocDeclAst> locations;
  std::vector<ProcessItemAst> items;  // edges and for-blocks, in order
  std::string init_loc;
  Pos init_pos;
  Pos pos;
};

// `template P(i : lo..hi) controlled { ... }` — a process family over
// one integer parameter.  The body reuses ProcessDeclAst (body.name is
// the template name); nothing is resolved until an instantiation
// stamps it out with a concrete parameter value.
struct TemplateDeclAst {
  std::string param;
  Pos param_pos;
  ExprPtr range_lo, range_hi;  // the legal parameter range
  ProcessDeclAst body;
  Pos pos;
};

// One item of a `system` instantiation list:
//   system P(0), P(2) as Two;          — explicit arguments
//   system P(i) for i in 0..N-1;       — comprehension over a range
// Stamped instances are named `<template><value>` (`P0`, `P1`, ...)
// unless `as` names them explicitly.
struct InstItemAst {
  std::string template_name;
  Pos pos;  // the template-name token
  ExprPtr arg;
  std::string as_name;  // optional `as` instance name (explicit form)
  Pos as_pos;
  std::string loop_var;  // non-empty: the comprehension form
  Pos loop_var_pos;
  ExprPtr loop_lo, loop_hi;
};

struct InstantiationAst {
  std::vector<InstItemAst> items;
  Pos pos;  // the `system` keyword
};

// `control: <raw text to ';'>` — the predicate is kept as raw source
// and handed to tsystem::TestPurpose::parse against the elaborated
// system, so the property sub-language has one implementation.
struct ControlDeclAst {
  std::string text;  // e.g. "A<> IUT.Bright"
  Pos pos;           // position of the first predicate character
};

struct ModelAst {
  std::string system_name;  // empty: derive from the file name
  Pos system_pos;
  std::vector<ClockDeclAst> clocks;
  std::vector<ChanDeclAst> channels;
  std::vector<ConstDeclAst> constants;
  std::vector<VarDeclAst> variables;
  std::vector<TemplateDeclAst> templates;
  std::vector<ProcessDeclAst> processes;
  std::vector<InstantiationAst> instantiations;
  std::vector<ControlDeclAst> controls;

  // File order over `process` declarations and `system P(...)`
  // instantiation statements, so stamped and plain processes land in
  // the elaborated system exactly in declaration order.
  enum class UnitKind : std::uint8_t { kProcess, kInstantiation };
  struct UnitRef {
    UnitKind kind = UnitKind::kProcess;
    std::size_t index = 0;  // into `processes` or `instantiations`
  };
  std::vector<UnitRef> unit_order;
};

}  // namespace tigat::lang
