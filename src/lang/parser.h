// Recursive-descent parser for the .tg model language.
//
// The parser is resilient: a syntax error is reported to the sink and
// parsing resynchronises at the next declaration boundary (`;`, `}` or
// a declaration keyword), so a single pass surfaces every independent
// error in the file.  The returned AST covers whatever parsed cleanly;
// callers must check `sink.has_errors()` before elaborating.
#pragma once

#include "lang/ast.h"
#include "lang/diag.h"
#include "lang/lexer.h"

namespace tigat::lang {

[[nodiscard]] ModelAst parse(const Source& source, DiagnosticSink& sink);

}  // namespace tigat::lang
