#include "lang/diag.h"

#include <algorithm>

#include "util/text.h"

namespace tigat::lang {

Source::Source(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  line_starts_.push_back(0);
  for (std::uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') line_starts_.push_back(i + 1);
  }
}

Source::LineCol Source::line_col(Pos pos) const {
  const std::uint32_t offset =
      pos.offset <= text_.size() ? pos.offset
                                 : static_cast<std::uint32_t>(text_.size());
  // Last line start ≤ offset.
  std::uint32_t lo = 0, hi = static_cast<std::uint32_t>(line_starts_.size());
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    (line_starts_[mid] <= offset ? lo : hi) = mid;
  }
  return {lo + 1, offset - line_starts_[lo] + 1};
}

std::string_view Source::line_text(std::uint32_t line) const {
  if (line == 0 || line > line_starts_.size()) return {};
  const std::uint32_t begin = line_starts_[line - 1];
  std::uint32_t end = line < line_starts_.size()
                          ? line_starts_[line] - 1
                          : static_cast<std::uint32_t>(text_.size());
  if (end > begin && text_[end - 1] == '\r') --end;
  return std::string_view(text_).substr(begin, end - begin);
}

std::string Diagnostic::render(std::string_view file) const {
  std::string out;
  if (line == 0) {
    out = util::format("%.*s: error: %s", static_cast<int>(file.size()),
                       file.data(), message.c_str());
    return out;
  }
  out = util::format("%.*s:%u:%u: error: %s", static_cast<int>(file.size()),
                     file.data(), line, column, message.c_str());
  const std::string gutter = util::format("%5u | ", line);
  out += "\n" + gutter + line_text;
  out += "\n" + std::string(gutter.size() - 2, ' ') + "| ";
  // Tabs keep their width so the caret stays under the right glyph.
  const std::uint32_t caret =
      column > snippet_offset ? column - snippet_offset : 1;
  for (std::uint32_t i = 0; i + 1 < caret && i < line_text.size(); ++i) {
    out += line_text[i] == '\t' ? '\t' : ' ';
  }
  out += "^";
  for (const RenderedNote& note : notes) {
    out += util::format("\n  note: %s at %.*s:%u:%u", note.message.c_str(),
                        static_cast<int>(file.size()), file.data(), note.line,
                        note.column);
  }
  return out;
}

void DiagnosticSink::error(Pos pos, std::string message) {
  error(pos, std::move(message), {});
}

void DiagnosticSink::error(std::string message) {
  if (error_count_ >= kMaxStoredErrors) {
    error({0}, std::move(message));  // reuse the suppression path
    return;
  }
  ++error_count_;
  Diagnostic d;
  d.message = std::move(message);  // line 0: renders without a position
  diagnostics_.push_back(std::move(d));
}

void DiagnosticSink::error(Pos pos, std::string message,
                           const std::vector<Note>& notes) {
  if (error_count_ >= kMaxStoredErrors) {
    if (++error_count_ == kMaxStoredErrors + 1) {
      Diagnostic d;
      d.message = "too many errors; further diagnostics suppressed";
      diagnostics_.push_back(std::move(d));
    }
    return;
  }
  ++error_count_;
  Diagnostic d;
  d.message = std::move(message);
  const Source::LineCol lc = source_->line_col(pos);
  d.line = lc.line;
  d.column = lc.column;
  std::string_view snippet = source_->line_text(lc.line);
  // Window huge lines around the column so reports stay readable (and
  // small) even when the "line" is a megabyte of minified garbage.
  constexpr std::size_t kMaxSnippet = 160;
  if (snippet.size() > kMaxSnippet) {
    const std::size_t col = lc.column > 0 ? lc.column - 1 : 0;
    std::size_t begin = col > 40 ? col - 40 : 0;
    begin = std::min(begin, snippet.size() - kMaxSnippet);
    d.snippet_offset = static_cast<std::uint32_t>(begin);
    snippet = snippet.substr(begin, kMaxSnippet);
  }
  d.line_text = std::string(snippet);
  // Innermost context first, backtrace style.
  for (auto it = notes.rbegin(); it != notes.rend(); ++it) {
    const Source::LineCol nc = source_->line_col(it->pos);
    d.notes.push_back({it->message, nc.line, nc.column});
  }
  diagnostics_.push_back(std::move(d));
}

std::string DiagnosticSink::render_all() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    if (!out.empty()) out += "\n";
    out += d.render(source_->name());
  }
  return out;
}

}  // namespace tigat::lang
