#include "lang/lexer.h"

#include <cctype>

#include "util/text.h"

namespace tigat::lang {

const char* to_string(TokKind kind) {
  switch (kind) {
    case TokKind::kEof: return "end of file";
    case TokKind::kIdent: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kString: return "string";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kComma: return "','";
    case TokKind::kSemi: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kArrow: return "'->'";
    case TokKind::kAssignOp: return "':='";
    case TokKind::kEquals: return "'='";
    case TokKind::kBang: return "'!'";
    case TokKind::kQuestion: return "'?'";
    case TokKind::kDot: return "'.'";
    case TokKind::kDotDot: return "'..'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kEqEq: return "'=='";
    case TokKind::kNotEq: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
  }
  return "token";
}

namespace {

class Lexer {
 public:
  Lexer(const Source& source, DiagnosticSink& sink)
      : text_(source.text()), sink_(sink) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_trivia();
      Token tok = next();
      const bool done = tok.kind == TokKind::kEof;
      out.push_back(tok);
      if (done) break;
    }
    return out;
  }

 private:
  [[nodiscard]] bool eof() const { return at_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return at_ + ahead < text_.size() ? text_[at_ + ahead] : '\0';
  }
  [[nodiscard]] Pos here() const { return {static_cast<std::uint32_t>(at_)}; }

  void skip_trivia() {
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++at_;
      } else if (c == '/' && peek(1) == '/') {
        while (!eof() && peek() != '\n') ++at_;
      } else if (c == '/' && peek(1) == '*') {
        const Pos open = here();
        at_ += 2;
        while (!eof() && !(peek() == '*' && peek(1) == '/')) ++at_;
        if (eof()) {
          sink_.error(open, "unterminated block comment");
        } else {
          at_ += 2;
        }
      } else {
        break;
      }
    }
  }

  Token make(TokKind kind, std::size_t begin) {
    Token t;
    t.kind = kind;
    t.pos = {static_cast<std::uint32_t>(begin)};
    t.text = text_.substr(begin, at_ - begin);
    return t;
  }

  Token next() {
    while (true) {
      if (eof()) return make(TokKind::kEof, at_);
      const std::size_t begin = at_;
      const char c = peek();

      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::int64_t value = 0;
        bool overflow = false;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          if (!overflow) {
            value = value * 10 + (peek() - '0');
            // Stop accumulating once out of range (keeps consuming the
            // digits, but never overflows the int64).
            if (value > (std::int64_t{1} << 40)) overflow = true;
          }
          ++at_;
        }
        Token t = make(TokKind::kNumber, begin);
        if (overflow) {
          sink_.error(t.pos, "integer literal is out of range");
          value = 0;
        }
        t.number = value;
        return t;
      }

      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_') {
          ++at_;
        }
        return make(TokKind::kIdent, begin);
      }

      if (c == '"') {
        ++at_;
        std::size_t content = at_;
        while (!eof() && peek() != '"' && peek() != '\n') ++at_;
        if (peek() != '"') {
          Token t = make(TokKind::kString, begin);
          sink_.error(t.pos, "unterminated string literal");
          t.text = text_.substr(content, at_ - content);
          return t;
        }
        Token t = make(TokKind::kString, begin);
        t.text = text_.substr(content, at_ - content);
        ++at_;  // closing quote
        return t;
      }

      const auto two = [&](char second) { return peek(1) == second; };
      switch (c) {
        case '{': ++at_; return make(TokKind::kLBrace, begin);
        case '}': ++at_; return make(TokKind::kRBrace, begin);
        case '[': ++at_; return make(TokKind::kLBracket, begin);
        case ']': ++at_; return make(TokKind::kRBracket, begin);
        case '(': ++at_; return make(TokKind::kLParen, begin);
        case ')': ++at_; return make(TokKind::kRParen, begin);
        case ',': ++at_; return make(TokKind::kComma, begin);
        case ';': ++at_; return make(TokKind::kSemi, begin);
        case '?': ++at_; return make(TokKind::kQuestion, begin);
        case '+': ++at_; return make(TokKind::kPlus, begin);
        case '*': ++at_; return make(TokKind::kStar, begin);
        case '/': ++at_; return make(TokKind::kSlash, begin);
        case '%': ++at_; return make(TokKind::kPercent, begin);
        case '-':
          if (two('>')) { at_ += 2; return make(TokKind::kArrow, begin); }
          ++at_;
          return make(TokKind::kMinus, begin);
        case ':':
          if (two('=')) { at_ += 2; return make(TokKind::kAssignOp, begin); }
          ++at_;
          return make(TokKind::kColon, begin);
        case '=':
          if (two('=')) { at_ += 2; return make(TokKind::kEqEq, begin); }
          ++at_;
          return make(TokKind::kEquals, begin);
        case '!':
          if (two('=')) { at_ += 2; return make(TokKind::kNotEq, begin); }
          ++at_;
          return make(TokKind::kBang, begin);
        case '<':
          if (two('=')) { at_ += 2; return make(TokKind::kLe, begin); }
          ++at_;
          return make(TokKind::kLt, begin);
        case '>':
          if (two('=')) { at_ += 2; return make(TokKind::kGe, begin); }
          ++at_;
          return make(TokKind::kGt, begin);
        case '&':
          if (two('&')) { at_ += 2; return make(TokKind::kAndAnd, begin); }
          break;
        case '|':
          if (two('|')) { at_ += 2; return make(TokKind::kOrOr, begin); }
          break;
        case '.':
          if (two('.')) { at_ += 2; return make(TokKind::kDotDot, begin); }
          ++at_;
          return make(TokKind::kDot, begin);
        default:
          break;
      }

      // Stray character: report once, resynchronise and loop (no
      // recursion — garbage input must not grow the stack).
      if (std::isprint(static_cast<unsigned char>(c))) {
        sink_.error(here(), util::format("unexpected character '%c'", c));
      } else {
        sink_.error(here(), util::format("unexpected byte 0x%02x",
                                         static_cast<unsigned char>(c)));
      }
      ++at_;
      skip_trivia();
    }
  }

  std::string_view text_;
  DiagnosticSink& sink_;
  std::size_t at_ = 0;
};

}  // namespace

std::vector<Token> lex(const Source& source, DiagnosticSink& sink) {
  return Lexer(source, sink).run();
}

}  // namespace tigat::lang
