// Positioned diagnostics for the .tg model language.
//
// Every stage of the pipeline (lexer → parser → elaborator) reports
// problems through a DiagnosticSink instead of throwing, so one compile
// pass can surface several independent errors.  A Diagnostic carries a
// 1-based line/column plus the offending source line, and renders in
// the familiar compiler style:
//
//   light.tg:12:9: error: unknown clock 'q'
//      12 |   edge Off -> Dim on touch? when q >= 20;
//         |                                  ^
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tigat::lang {

// Byte offset into the source text; diagnostics resolve it to
// line/column lazily via Source.
struct Pos {
  std::uint32_t offset = 0;
};

// A loaded source buffer with the line index needed to resolve Pos.
class Source {
 public:
  Source(std::string name, std::string text);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& text() const { return text_; }

  struct LineCol {
    std::uint32_t line = 1;    // 1-based
    std::uint32_t column = 1;  // 1-based, in bytes
  };
  [[nodiscard]] LineCol line_col(Pos pos) const;

  // The text of a 1-based line, without the trailing newline.
  [[nodiscard]] std::string_view line_text(std::uint32_t line) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::uint32_t> line_starts_;  // offset of each line start
};

// Extra context attached to a diagnostic — e.g. the instantiation
// trace of an error inside a template body ("in P(2), instantiated at
// line 40").  The message carries the verb; render appends the
// position.
struct Note {
  std::string message;
  Pos pos;
};

// One reported error.
struct Diagnostic {
  std::string message;
  std::uint32_t line = 0;    // 1-based; 0 = no position (I/O errors etc.)
  std::uint32_t column = 0;  // 1-based
  // Snippet of the offending source line.  Very long lines are
  // windowed around the column; snippet_offset is how many leading
  // characters were dropped (the caret renders at
  // column - snippet_offset).
  std::string line_text;
  std::uint32_t snippet_offset = 0;

  // Notes, innermost context first, already resolved to line/column.
  struct RenderedNote {
    std::string message;
    std::uint32_t line = 0;
    std::uint32_t column = 0;
  };
  std::vector<RenderedNote> notes;

  // "file:line:col: error: message" plus the snippet with a caret and
  // one "  note: <message> at file:line:col" line per note.
  [[nodiscard]] std::string render(std::string_view file) const;
};

// Collects diagnostics for one compilation; owned by the driver and
// shared by lexer, parser and elaborator.
class DiagnosticSink {
 public:
  // Errors beyond the cap are counted but not stored (one "too many
  // errors" marker is appended instead), so garbage input — every byte
  // a lexical error — stays O(n) in time and O(1) in report size.
  static constexpr std::size_t kMaxStoredErrors = 64;

  explicit DiagnosticSink(const Source& source) : source_(&source) {}

  void error(Pos pos, std::string message);
  // As above with a context trace, outermost context LAST (the renderer
  // emits innermost first, like a backtrace).
  void error(Pos pos, std::string message, const std::vector<Note>& notes);
  // A positionless error (I/O problems, bad command-line overrides).
  void error(std::string message);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  // Total errors reported, including those suppressed past the cap.
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] const Source& source() const { return *source_; }

  // All diagnostics rendered, one per line group, ready for a terminal.
  [[nodiscard]] std::string render_all() const;

 private:
  const Source* source_;
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

}  // namespace tigat::lang
