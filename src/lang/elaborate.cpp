#include "lang/elaborate.h"

#include <limits>
#include <unordered_map>

#include "util/text.h"

namespace tigat::lang {

namespace {

using tsystem::ChannelId;
using tsystem::Clock;
using tsystem::ClockConstraint;
using tsystem::Controllability;
using tsystem::Expr;
using tsystem::LocId;
using tsystem::ModelError;
using tsystem::Process;
using tsystem::System;
using tsystem::VarId;

enum class NameKind { kClock, kChannel, kConstant, kVariable, kProcess };

const char* to_string(NameKind k) {
  switch (k) {
    case NameKind::kClock: return "a clock";
    case NameKind::kChannel: return "a channel";
    case NameKind::kConstant: return "a constant";
    case NameKind::kVariable: return "a variable";
    case NameKind::kProcess: return "a process";
  }
  return "a name";
}

class Elaborator {
 public:
  Elaborator(const ModelAst& ast, const std::string& fallback_name,
             DiagnosticSink& sink)
      : ast_(ast), fallback_name_(fallback_name), sink_(sink) {}

  std::optional<ElaboratedModel> run() {
    sys_.emplace(ast_.system_name.empty() ? fallback_name_
                                          : ast_.system_name);
    declare_clocks();
    declare_channels();
    declare_constants();
    declare_variables();
    for (const ProcessDeclAst& proc : ast_.processes) elaborate_process(proc);
    if (ast_.processes.empty()) {
      sink_.error(ast_.system_pos, "a model needs at least one process");
    }
    if (sink_.has_errors()) return std::nullopt;

    try {
      sys_->finalize();
    } catch (const ModelError& e) {
      sink_.error(ast_.system_pos,
                  util::format("model validation failed: %s", e.what()));
      return std::nullopt;
    }

    ElaboratedModel out{std::move(*sys_), {}};
    for (const ControlDeclAst& control : ast_.controls) {
      elaborate_control(out.system, control, out.purposes);
    }
    if (sink_.has_errors()) return std::nullopt;
    return out;
  }

 private:
  // ── declarations ────────────────────────────────────────────────────
  // One global namespace: a second declaration of any name is an error.
  bool declare_name(const std::string& name, NameKind kind, Pos pos) {
    const auto [it, fresh] = names_.emplace(name, kind);
    if (!fresh) {
      sink_.error(pos, util::format("'%s' is already declared as %s",
                                    name.c_str(), to_string(it->second)));
      return false;
    }
    return true;
  }

  void declare_clocks() {
    for (const ClockDeclAst& decl : ast_.clocks) {
      if (!declare_name(decl.name, NameKind::kClock, decl.pos)) continue;
      clocks_.emplace(decl.name, sys_->add_clock(decl.name));
    }
  }

  void declare_channels() {
    for (const ChanDeclAst& decl : ast_.channels) {
      if (!declare_name(decl.name, NameKind::kChannel, decl.pos)) continue;
      channels_.emplace(decl.name,
                        sys_->add_channel(decl.name,
                                          decl.controllable
                                              ? Controllability::kControllable
                                              : Controllability::kUncontrollable));
    }
  }

  // Constants fold in declaration order, so a value may reference any
  // earlier constant (`const N = 3; const MaxAddr = N - 1;`); a
  // forward or unknown reference surfaces through fold_const's
  // "must be a constant integer expression" with the exact position.
  void declare_constants() {
    for (const ConstDeclAst& decl : ast_.constants) {
      if (!declare_name(decl.name, NameKind::kConstant, decl.pos)) continue;
      const auto value = fold_const(decl.value, "constant value");
      if (!value) continue;
      consts_.emplace(decl.name, *value);
    }
  }

  void declare_variables() {
    for (const VarDeclAst& decl : ast_.variables) {
      if (!declare_name(decl.name, NameKind::kVariable, decl.pos)) continue;
      const auto lo = fold_const(decl.lo, "range bound");
      const auto hi = fold_const(decl.hi, "range bound");
      if (!lo || !hi) continue;
      std::int64_t init = 0;
      if (decl.init) {
        const auto v = fold_const(decl.init, "initial value");
        if (!v) continue;
        init = *v;
      } else if (*lo > 0 || *hi < 0) {
        init = *lo;  // 0 is outside the range: default to the low bound
      }
      const auto fits_i32 = [](std::int64_t v) {
        return v >= std::numeric_limits<std::int32_t>::min() &&
               v <= std::numeric_limits<std::int32_t>::max();
      };
      if (!fits_i32(*lo) || !fits_i32(*hi) || !fits_i32(init)) {
        sink_.error(decl.pos,
                    util::format("'%s': range bounds and initial value must "
                                 "fit a 32-bit integer",
                                 decl.name.c_str()));
        continue;
      }
      try {
        if (decl.size) {
          const auto size = fold_const(decl.size, "array size");
          if (!size) continue;
          if (*size < 1 || *size > (1 << 20)) {
            sink_.error(decl.pos,
                        util::format("array size must be in [1, 2^20], got %lld",
                                     static_cast<long long>(*size)));
            continue;
          }
          vars_.emplace(decl.name,
                        sys_->data().add_array(
                            decl.name, static_cast<std::uint32_t>(*size),
                            static_cast<std::int32_t>(*lo),
                            static_cast<std::int32_t>(*hi),
                            static_cast<std::int32_t>(init)));
        } else {
          vars_.emplace(decl.name,
                        sys_->data().add_scalar(
                            decl.name, static_cast<std::int32_t>(*lo),
                            static_cast<std::int32_t>(*hi),
                            static_cast<std::int32_t>(init)));
        }
      } catch (const ModelError& e) {
        sink_.error(decl.pos, e.what());
      }
    }
  }

  // ── processes ───────────────────────────────────────────────────────
  void elaborate_process(const ProcessDeclAst& decl) {
    if (!declare_name(decl.name, NameKind::kProcess, decl.pos)) return;
    Process& proc = sys_->add_process(
        decl.name, decl.controllable_default
                       ? Controllability::kControllable
                       : Controllability::kUncontrollable);

    std::unordered_map<std::string, LocId> locs;
    for (const LocDeclAst& loc : decl.locations) {
      if (locs.contains(loc.name)) {
        sink_.error(loc.pos,
                    util::format("duplicate location '%s' in process '%s'",
                                 loc.name.c_str(), decl.name.c_str()));
        continue;
      }
      locs.emplace(loc.name, proc.add_location(loc.name, loc.kind));
    }

    for (const LocDeclAst& loc : decl.locations) {
      const auto it = locs.find(loc.name);
      if (it == locs.end()) continue;
      for (const ExprPtr& inv : loc.invariants) {
        for (const ExprAst* atom : split_conjuncts(inv)) {
          std::vector<ClockConstraint> cs;
          if (lower_clock_constraint(*atom, cs)) {
            for (const ClockConstraint& c : cs) {
              proc.set_invariant(it->second, c);
            }
          } else {
            sink_.error(atom->pos,
                        "invariants may only constrain clocks (e.g. 'x <= 3')");
          }
        }
      }
    }

    if (decl.init_loc.empty()) {
      sink_.error(decl.pos, util::format("process '%s' has no 'init' "
                                         "declaration",
                                         decl.name.c_str()));
    } else if (const auto it = locs.find(decl.init_loc); it != locs.end()) {
      proc.set_initial(it->second);
    } else {
      sink_.error(decl.init_pos,
                  util::format("unknown initial location '%s' in process '%s'",
                               decl.init_loc.c_str(), decl.name.c_str()));
    }

    for (const EdgeDeclAst& edge : decl.edges) {
      elaborate_edge(proc, decl, locs, edge);
    }
  }

  void elaborate_edge(Process& proc, const ProcessDeclAst& pdecl,
                      const std::unordered_map<std::string, LocId>& locs,
                      const EdgeDeclAst& edge) {
    // Resolve everything before bailing out, so one pass also surfaces
    // the guard/sync/update mistakes of an edge with a bad endpoint.
    const auto src = locs.find(edge.src);
    if (src == locs.end()) {
      sink_.error(edge.src_pos,
                  util::format("unknown location '%s' in process '%s'",
                               edge.src.c_str(), pdecl.name.c_str()));
    }
    const auto dst = locs.find(edge.dst);
    if (dst == locs.end()) {
      sink_.error(edge.dst_pos,
                  util::format("unknown location '%s' in process '%s'",
                               edge.dst.c_str(), pdecl.name.c_str()));
    }
    std::optional<tsystem::EdgeBuilder> builder;
    if (src != locs.end() && dst != locs.end()) {
      builder.emplace(proc.add_edge(src->second, dst->second));
    }

    if (edge.sync) {
      const auto chan = channels_.find(edge.sync->channel);
      if (chan == channels_.end()) {
        const auto known = names_.find(edge.sync->channel);
        sink_.error(edge.sync->pos,
                    known == names_.end()
                        ? util::format("unknown channel '%s'",
                                       edge.sync->channel.c_str())
                        : util::format("'%s' is %s, not a channel",
                                       edge.sync->channel.c_str(),
                                       to_string(known->second)));
      } else if (builder) {
        if (edge.sync->send) {
          builder->send(chan->second);
        } else {
          builder->receive(chan->second);
        }
      }
    }

    for (const ExprPtr& guard : edge.guards) {
      for (const ExprAst* atom : split_conjuncts(guard)) {
        std::vector<ClockConstraint> cs;
        if (lower_clock_constraint(*atom, cs)) {
          if (builder) {
            for (const ClockConstraint& c : cs) builder->guard(c);
          }
        } else {
          const Expr g = lower_expr(*atom);
          if (builder && !g.is_null()) builder->provided(g);
        }
      }
    }

    for (const UpdateAst& update : edge.updates) {
      elaborate_update(builder ? &*builder : nullptr, update);
    }

    if (builder && edge.ctrl_override) {
      builder->controllable(*edge.ctrl_override);
    }
    if (builder && !edge.label.empty()) builder->comment(edge.label);
  }

  // `builder` may be null (the edge had an unresolvable endpoint); the
  // update is still checked for its own errors.
  void elaborate_update(tsystem::EdgeBuilder* builder,
                        const UpdateAst& update) {
    if (const auto clock = clocks_.find(update.target);
        clock != clocks_.end()) {
      if (update.index) {
        sink_.error(update.pos, util::format("clock '%s' cannot be indexed",
                                             update.target.c_str()));
        return;
      }
      const auto value = fold_const(update.rhs, "clock reset value");
      if (!value) return;
      if (*value < 0 || *value >= tigat::dbm::kMaxBoundValue) {
        sink_.error(update.pos,
                    util::format("clock reset value must be a constant in "
                                 "[0, 2^28), got %lld",
                                 static_cast<long long>(*value)));
        return;
      }
      if (builder) {
        builder->reset(clock->second,
                       static_cast<tigat::dbm::bound_t>(*value));
      }
      return;
    }

    const auto var = vars_.find(update.target);
    if (var == vars_.end()) {
      const auto known = names_.find(update.target);
      sink_.error(update.pos,
                  known == names_.end()
                      ? util::format("unknown clock or variable '%s'",
                                     update.target.c_str())
                      : util::format("'%s' is %s and cannot be assigned",
                                     update.target.c_str(),
                                     to_string(known->second)));
      return;
    }
    const bool is_array = sys_->data().decl(var->second).is_array();
    if (is_array && !update.index) {
      sink_.error(update.pos,
                  util::format("array '%s' needs an index in assignments",
                               update.target.c_str()));
      return;
    }
    if (!is_array && update.index) {
      sink_.error(update.pos, util::format("'%s' is not an array",
                                           update.target.c_str()));
      return;
    }
    const Expr rhs = lower_expr(*update.rhs);
    if (rhs.is_null()) return;
    if (update.index) {
      const Expr index = lower_expr(*update.index);
      if (index.is_null()) return;
      if (builder) builder->assign_elem(var->second, index, rhs);
    } else if (builder) {
      builder->assign(var->second, rhs);
    }
  }

  // ── guard classification ────────────────────────────────────────────
  // Splits top-level `&&` into the atoms the System API wants.
  std::vector<const ExprAst*> split_conjuncts(const ExprPtr& e) {
    std::vector<const ExprAst*> out;
    split_conjuncts(e.get(), out);
    return out;
  }
  void split_conjuncts(const ExprAst* e, std::vector<const ExprAst*>& out) {
    if (e == nullptr) return;
    if (e->kind == ExprAst::Kind::kBinary && e->bin_op == BinOp::kAnd) {
      split_conjuncts(e->lhs.get(), out);
      split_conjuncts(e->rhs.get(), out);
      return;
    }
    out.push_back(e);
  }

  // A clock operand: `x` or `x - y` with both names clocks.
  struct ClockOperand {
    std::uint32_t i = 0, j = 0;  // x_i − x_j (j = 0 for a plain clock)
  };
  [[nodiscard]] std::optional<ClockOperand> as_clock_operand(
      const ExprAst& e) const {
    if (e.kind == ExprAst::Kind::kName) {
      const auto it = clocks_.find(e.name);
      if (it != clocks_.end()) return ClockOperand{it->second.id, 0};
      return std::nullopt;
    }
    if (e.kind == ExprAst::Kind::kBinary && e.bin_op == BinOp::kSub &&
        e.lhs->kind == ExprAst::Kind::kName &&
        e.rhs->kind == ExprAst::Kind::kName) {
      const auto a = clocks_.find(e.lhs->name);
      const auto b = clocks_.find(e.rhs->name);
      if (a != clocks_.end() && b != clocks_.end()) {
        return ClockOperand{a->second.id, b->second.id};
      }
    }
    return std::nullopt;
  }

  // Lowers `atom` into `out` when it is a clock constraint; returns
  // false when the atom belongs to the data world instead.
  bool lower_clock_constraint(const ExprAst& atom,
                              std::vector<ClockConstraint>& out) {
    if (atom.kind != ExprAst::Kind::kBinary) return false;
    BinOp op = atom.bin_op;
    if (op != BinOp::kEq && op != BinOp::kNe && op != BinOp::kLt &&
        op != BinOp::kLe && op != BinOp::kGt && op != BinOp::kGe) {
      return false;
    }
    std::optional<ClockOperand> clk = as_clock_operand(*atom.lhs);
    const ExprAst* bound_side = atom.rhs.get();
    if (!clk) {
      clk = as_clock_operand(*atom.rhs);
      if (!clk) return false;
      bound_side = atom.lhs.get();
      // Mirror: `c < x` ⇔ `x > c`.
      switch (op) {
        case BinOp::kLt: op = BinOp::kGt; break;
        case BinOp::kLe: op = BinOp::kGe; break;
        case BinOp::kGt: op = BinOp::kLt; break;
        case BinOp::kGe: op = BinOp::kLe; break;
        default: break;
      }
    }
    if (op == BinOp::kNe) {
      sink_.error(atom.pos, "'!=' is not a convex clock constraint");
      out.clear();
      return true;  // consumed (do not fall back to the data world)
    }
    const auto value = fold_const_expr(*bound_side);
    if (!value) {
      sink_.error(bound_side->pos,
                  "clock comparisons need a constant integer bound");
      out.clear();
      return true;
    }
    if (*value <= -tigat::dbm::kMaxBoundValue ||
        *value >= tigat::dbm::kMaxBoundValue) {
      sink_.error(bound_side->pos, "clock bound is out of range");
      out.clear();
      return true;
    }
    const auto c = static_cast<tigat::dbm::bound_t>(*value);
    const std::uint32_t i = clk->i, j = clk->j;
    switch (op) {
      case BinOp::kLt:
        out.push_back({i, j, tigat::dbm::make_strict(c)});
        break;
      case BinOp::kLe:
        out.push_back({i, j, tigat::dbm::make_weak(c)});
        break;
      case BinOp::kGt:
        out.push_back({j, i, tigat::dbm::make_strict(-c)});
        break;
      case BinOp::kGe:
        out.push_back({j, i, tigat::dbm::make_weak(-c)});
        break;
      case BinOp::kEq:
        out.push_back({i, j, tigat::dbm::make_weak(c)});
        out.push_back({j, i, tigat::dbm::make_weak(-c)});
        break;
      default:
        break;
    }
    return true;
  }

  // ── data expressions ────────────────────────────────────────────────
  // Lowers to tsystem::Expr; reports and returns a null Expr on errors.
  Expr lower_expr(const ExprAst& e) {
    switch (e.kind) {
      case ExprAst::Kind::kNumber:
        return Expr::constant(e.number);
      case ExprAst::Kind::kName: {
        for (std::size_t k = 0; k < binders_.size(); ++k) {
          if (binders_[binders_.size() - 1 - k] == e.name) {
            return Expr::bound_var(static_cast<std::uint32_t>(k));
          }
        }
        if (const auto c = consts_.find(e.name); c != consts_.end()) {
          return Expr::constant(c->second);
        }
        if (const auto var = vars_.find(e.name); var != vars_.end()) {
          if (sys_->data().decl(var->second).is_array()) {
            sink_.error(e.pos,
                        util::format("array '%s' needs an index here",
                                     e.name.c_str()));
            return {};
          }
          return Expr::var(var->second);
        }
        if (e.name == "true") return Expr::constant(1);
        if (e.name == "false") return Expr::constant(0);
        if (clocks_.contains(e.name)) {
          sink_.error(e.pos,
                      util::format("clock '%s' may only appear in simple "
                                   "comparisons like '%s <= 3'",
                                   e.name.c_str(), e.name.c_str()));
          return {};
        }
        sink_.error(e.pos,
                    util::format("unknown identifier '%s'", e.name.c_str()));
        return {};
      }
      case ExprAst::Kind::kIndex: {
        const auto var = vars_.find(e.name);
        if (var == vars_.end()) {
          sink_.error(e.pos,
                      util::format("unknown variable '%s'", e.name.c_str()));
          return {};
        }
        if (!sys_->data().decl(var->second).is_array()) {
          sink_.error(e.pos,
                      util::format("'%s' is not an array", e.name.c_str()));
          return {};
        }
        const Expr index = lower_expr(*e.lhs);
        if (index.is_null()) return {};
        return Expr::var(var->second, index);
      }
      case ExprAst::Kind::kUnary: {
        const Expr operand = lower_expr(*e.lhs);
        if (operand.is_null()) return {};
        return e.un_op == UnOp::kNeg ? -operand : !operand;
      }
      case ExprAst::Kind::kBinary: {
        const Expr lhs = lower_expr(*e.lhs);
        const Expr rhs = lower_expr(*e.rhs);
        if (lhs.is_null() || rhs.is_null()) return {};
        return Expr::binary(to_expr_kind(e.bin_op), lhs, rhs);
      }
      case ExprAst::Kind::kQuantifier: {
        std::int64_t lo = 0, hi = -1;
        if (!e.range_array.empty()) {
          const auto var = vars_.find(e.range_array);
          if (var == vars_.end() ||
              !sys_->data().decl(var->second).is_array()) {
            sink_.error(e.pos,
                        util::format("quantifier range '%s' is not a "
                                     "declared array",
                                     e.range_array.c_str()));
            return {};
          }
          hi = static_cast<std::int64_t>(
                   sys_->data().decl(var->second).size) -
               1;
        } else {
          const auto lo_v = fold_const(e.range_lo, "quantifier range");
          const auto hi_v = fold_const(e.range_hi, "quantifier range");
          if (!lo_v || !hi_v) return {};
          lo = *lo_v;
          hi = *hi_v;
        }
        binders_.push_back(e.name);
        const Expr body = lower_expr(*e.lhs);
        binders_.pop_back();
        if (body.is_null()) return {};
        return e.is_forall ? Expr::forall(lo, hi, body)
                           : Expr::exists(lo, hi, body);
      }
    }
    return {};
  }

  static Expr::Kind to_expr_kind(BinOp op) {
    switch (op) {
      case BinOp::kAdd: return Expr::Kind::kAdd;
      case BinOp::kSub: return Expr::Kind::kSub;
      case BinOp::kMul: return Expr::Kind::kMul;
      case BinOp::kDiv: return Expr::Kind::kDiv;
      case BinOp::kMod: return Expr::Kind::kMod;
      case BinOp::kEq: return Expr::Kind::kEq;
      case BinOp::kNe: return Expr::Kind::kNe;
      case BinOp::kLt: return Expr::Kind::kLt;
      case BinOp::kLe: return Expr::Kind::kLe;
      case BinOp::kGt: return Expr::Kind::kGt;
      case BinOp::kGe: return Expr::Kind::kGe;
      case BinOp::kAnd: return Expr::Kind::kAnd;
      case BinOp::kOr: return Expr::Kind::kOr;
    }
    return Expr::Kind::kAdd;
  }

  // ── constant folding ────────────────────────────────────────────────
  // Integer-folds an expression that may not mention clocks, variables
  // or quantifiers (declaration bounds, reset values, clock bounds).
  [[nodiscard]] std::optional<std::int64_t> fold_const_expr(
      const ExprAst& e) const {
    switch (e.kind) {
      case ExprAst::Kind::kNumber:
        return e.number;
      case ExprAst::Kind::kName: {
        if (e.name == "true") return 1;
        if (e.name == "false") return 0;
        const auto it = consts_.find(e.name);
        if (it != consts_.end()) return it->second;
        return std::nullopt;
      }
      case ExprAst::Kind::kUnary: {
        const auto v = fold_const_expr(*e.lhs);
        if (!v) return std::nullopt;
        if (e.un_op == UnOp::kNot) return *v == 0 ? 1 : 0;
        if (*v == std::numeric_limits<std::int64_t>::min()) {
          return std::nullopt;
        }
        return -*v;
      }
      case ExprAst::Kind::kBinary: {
        const auto a = fold_const_expr(*e.lhs);
        const auto b = fold_const_expr(*e.rhs);
        if (!a || !b) return std::nullopt;
        // Overflow makes the expression non-constant rather than UB.
        std::int64_t r = 0;
        switch (e.bin_op) {
          case BinOp::kAdd:
            if (__builtin_add_overflow(*a, *b, &r)) return std::nullopt;
            return r;
          case BinOp::kSub:
            if (__builtin_sub_overflow(*a, *b, &r)) return std::nullopt;
            return r;
          case BinOp::kMul:
            if (__builtin_mul_overflow(*a, *b, &r)) return std::nullopt;
            return r;
          case BinOp::kDiv:
            if (*b == 0 ||
                (*a == std::numeric_limits<std::int64_t>::min() && *b == -1)) {
              return std::nullopt;
            }
            return *a / *b;
          case BinOp::kMod:
            if (*b == 0 ||
                (*a == std::numeric_limits<std::int64_t>::min() && *b == -1)) {
              return std::nullopt;
            }
            return *a % *b;
          case BinOp::kEq: return *a == *b ? 1 : 0;
          case BinOp::kNe: return *a != *b ? 1 : 0;
          case BinOp::kLt: return *a < *b ? 1 : 0;
          case BinOp::kLe: return *a <= *b ? 1 : 0;
          case BinOp::kGt: return *a > *b ? 1 : 0;
          case BinOp::kGe: return *a >= *b ? 1 : 0;
          case BinOp::kAnd: return (*a != 0 && *b != 0) ? 1 : 0;
          case BinOp::kOr: return (*a != 0 || *b != 0) ? 1 : 0;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  // As fold_const_expr, but reports a positioned error on failure.
  std::optional<std::int64_t> fold_const(const ExprPtr& e, const char* what) {
    if (!e) return std::nullopt;
    const auto v = fold_const_expr(*e);
    if (!v) {
      sink_.error(e->pos,
                  util::format("%s must be a constant integer expression",
                               what));
    }
    return v;
  }

  // ── control properties ──────────────────────────────────────────────
  void elaborate_control(const System& system, const ControlDeclAst& decl,
                         std::vector<tsystem::TestPurpose>& purposes) {
    static constexpr std::string_view kPrefix = "control: ";
    const std::string text = std::string(kPrefix) + decl.text;
    try {
      purposes.push_back(tsystem::TestPurpose::parse(system, text));
    } catch (const tsystem::PurposeParseError& e) {
      const std::size_t rel =
          e.offset >= kPrefix.size() ? e.offset - kPrefix.size() : 0;
      // `detail` has no "offset N" prefix — the diagnostic carries the
      // file position itself.
      sink_.error({static_cast<std::uint32_t>(decl.pos.offset + rel)},
                  e.detail);
    } catch (const ModelError& e) {
      sink_.error(decl.pos, e.what());
    }
  }

  const ModelAst& ast_;
  const std::string& fallback_name_;
  DiagnosticSink& sink_;
  std::optional<System> sys_;
  std::unordered_map<std::string, NameKind> names_;
  std::unordered_map<std::string, Clock> clocks_;
  std::unordered_map<std::string, ChannelId> channels_;
  std::unordered_map<std::string, std::int64_t> consts_;
  std::unordered_map<std::string, VarId> vars_;
  std::vector<std::string> binders_;
};

}  // namespace

std::optional<ElaboratedModel> elaborate(const ModelAst& ast,
                                         const std::string& fallback_name,
                                         DiagnosticSink& sink) {
  return Elaborator(ast, fallback_name, sink).run();
}

}  // namespace tigat::lang
