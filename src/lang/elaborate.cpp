#include "lang/elaborate.h"

#include <limits>
#include <unordered_map>

#include "util/text.h"

namespace tigat::lang {

namespace {

using tsystem::ChannelId;
using tsystem::Clock;
using tsystem::ClockConstraint;
using tsystem::Controllability;
using tsystem::Expr;
using tsystem::LocId;
using tsystem::ModelError;
using tsystem::Process;
using tsystem::System;
using tsystem::VarId;

enum class NameKind {
  kClock, kChannel, kChannelArray, kConstant, kVariable, kProcess,
};

const char* to_string(NameKind k) {
  switch (k) {
    case NameKind::kClock: return "a clock";
    case NameKind::kChannel: return "a channel";
    case NameKind::kChannelArray: return "a channel array";
    case NameKind::kConstant: return "a constant";
    case NameKind::kVariable: return "a variable";
    case NameKind::kProcess: return "a process";
  }
  return "a name";
}

class Elaborator {
 public:
  Elaborator(const ModelAst& ast, const std::string& fallback_name,
             DiagnosticSink& sink, const CompileOptions& options)
      : ast_(ast),
        fallback_name_(fallback_name),
        sink_(sink),
        options_(options) {}

  std::optional<ElaboratedModel> run() {
    sys_.emplace(ast_.system_name.empty() ? fallback_name_
                                          : ast_.system_name);
    check_param_overrides();
    declare_clocks();
    declare_constants();  // before channels/variables: sizes fold constants
    declare_channels();
    declare_variables();
    register_templates();
    for (const ModelAst::UnitRef& unit : ast_.unit_order) {
      if (unit.kind == ModelAst::UnitKind::kProcess) {
        elaborate_process(ast_.processes[unit.index]);
      } else {
        elaborate_instantiation(ast_.instantiations[unit.index]);
      }
    }
    if (sys_->processes().empty()) {
      error(ast_.system_pos, "a model needs at least one process");
    }
    if (sink_.has_errors()) return std::nullopt;

    try {
      sys_->finalize();
    } catch (const ModelError& e) {
      error(ast_.system_pos,
            util::format("model validation failed: %s", e.what()));
      return std::nullopt;
    }

    ElaboratedModel out{std::move(*sys_), {}};
    for (const ControlDeclAst& control : ast_.controls) {
      elaborate_control(out.system, control, out.purposes);
    }
    if (sink_.has_errors()) return std::nullopt;
    return out;
  }

 private:
  // Every elaboration error goes through here so the current
  // instantiation/iteration trace rides along as notes.
  void error(Pos pos, std::string message) {
    sink_.error(pos, std::move(message), trace_);
  }

  [[nodiscard]] static bool fits_i32(std::int64_t v) {
    return v >= std::numeric_limits<std::int32_t>::min() &&
           v <= std::numeric_limits<std::int32_t>::max();
  }

  // ── declarations ────────────────────────────────────────────────────
  // One global namespace: a second declaration of any name is an error.
  bool declare_name(const std::string& name, NameKind kind, Pos pos) {
    const auto [it, fresh] = names_.emplace(name, kind);
    if (!fresh) {
      error(pos, util::format("'%s' is already declared as %s",
                              name.c_str(), to_string(it->second)));
      return false;
    }
    return true;
  }

  // `--param` overrides are validated up front: a name that matches no
  // `const` declaration (or repeats) would otherwise be silently inert.
  void check_param_overrides() {
    for (std::size_t i = 0; i < options_.params.size(); ++i) {
      const std::string& name = options_.params[i].first;
      bool declared = false;
      for (const ConstDeclAst& decl : ast_.constants) {
        declared |= decl.name == name;
      }
      if (!declared) {
        sink_.error(util::format("parameter override '%s=%lld' does not "
                                 "match any 'const' declaration",
                                 name.c_str(),
                                 static_cast<long long>(
                                     options_.params[i].second)));
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (options_.params[j].first == name) {
          sink_.error(util::format("duplicate parameter override '%s'",
                                   name.c_str()));
          break;
        }
      }
    }
  }

  [[nodiscard]] const std::int64_t* find_override(
      const std::string& name) const {
    for (const auto& [n, v] : options_.params) {
      if (n == name) return &v;
    }
    return nullptr;
  }

  void declare_clocks() {
    for (const ClockDeclAst& decl : ast_.clocks) {
      if (!declare_name(decl.name, NameKind::kClock, decl.pos)) continue;
      clocks_.emplace(decl.name, sys_->add_clock(decl.name));
    }
  }

  void declare_channels() {
    for (const ChanDeclAst& decl : ast_.channels) {
      const Controllability control = decl.controllable
                                          ? Controllability::kControllable
                                          : Controllability::kUncontrollable;
      if (!decl.size) {
        if (!declare_name(decl.name, NameKind::kChannel, decl.pos)) continue;
        channels_.emplace(decl.name, sys_->add_channel(decl.name, control));
        continue;
      }
      // A channel array stamps out members `name[0] .. name[size-1]`.
      if (!declare_name(decl.name, NameKind::kChannelArray, decl.pos)) {
        continue;
      }
      const auto size = fold_const(decl.size, "channel array size");
      if (!size) continue;
      if (*size < 1 || *size > kMaxChannelArray) {
        error(decl.pos,
              util::format("channel array size must be in [1, %d], got %lld",
                           kMaxChannelArray,
                           static_cast<long long>(*size)));
        continue;
      }
      chan_arrays_.emplace(decl.name, *size);
      for (std::int64_t k = 0; k < *size; ++k) {
        const std::string member =
            util::format("%s[%lld]", decl.name.c_str(),
                         static_cast<long long>(k));
        channels_.emplace(member, sys_->add_channel(member, control));
      }
    }
  }

  // Constants fold in declaration order, so a value may reference any
  // earlier constant (`const N = 3; const MaxAddr = N - 1;`); a
  // forward or unknown reference surfaces through fold_const's
  // "must be a constant integer expression" with the exact position.
  void declare_constants() {
    for (const ConstDeclAst& decl : ast_.constants) {
      if (!declare_name(decl.name, NameKind::kConstant, decl.pos)) continue;
      if (const std::int64_t* override_value = find_override(decl.name)) {
        consts_.emplace(decl.name, *override_value);
        continue;  // the declared value expression is replaced wholesale
      }
      const auto value = fold_const(decl.value, "constant value");
      if (!value) continue;
      consts_.emplace(decl.name, *value);
    }
  }

  void declare_variables() {
    for (const VarDeclAst& decl : ast_.variables) {
      if (!declare_name(decl.name, NameKind::kVariable, decl.pos)) continue;
      const auto lo = fold_const(decl.lo, "range bound");
      const auto hi = fold_const(decl.hi, "range bound");
      if (!lo || !hi) continue;
      std::int64_t init = 0;
      if (decl.init) {
        const auto v = fold_const(decl.init, "initial value");
        if (!v) continue;
        init = *v;
      } else if (*lo > 0 || *hi < 0) {
        init = *lo;  // 0 is outside the range: default to the low bound
      }
      if (!fits_i32(*lo) || !fits_i32(*hi) || !fits_i32(init)) {
        error(decl.pos,
                    util::format("'%s': range bounds and initial value must "
                                 "fit a 32-bit integer",
                                 decl.name.c_str()));
        continue;
      }
      try {
        if (decl.size) {
          const auto size = fold_const(decl.size, "array size");
          if (!size) continue;
          if (*size < 1 || *size > (1 << 20)) {
            error(decl.pos,
                        util::format("array size must be in [1, 2^20], got %lld",
                                     static_cast<long long>(*size)));
            continue;
          }
          vars_.emplace(decl.name,
                        sys_->data().add_array(
                            decl.name, static_cast<std::uint32_t>(*size),
                            static_cast<std::int32_t>(*lo),
                            static_cast<std::int32_t>(*hi),
                            static_cast<std::int32_t>(init)));
        } else {
          vars_.emplace(decl.name,
                        sys_->data().add_scalar(
                            decl.name, static_cast<std::int32_t>(*lo),
                            static_cast<std::int32_t>(*hi),
                            static_cast<std::int32_t>(init)));
        }
      } catch (const ModelError& e) {
        error(decl.pos, e.what());
      }
    }
  }

  // ── templates ───────────────────────────────────────────────────────
  struct TemplateInfo {
    const TemplateDeclAst* decl = nullptr;
    std::int64_t lo = 0, hi = -1;
    bool range_ok = false;
  };

  // Templates live in their own namespace — they never appear in
  // expressions or purposes, only after `system` with a '(' — so a
  // single instantiation may reuse the template's own name (`system
  // IUT(N) as IUT`).
  void register_templates() {
    for (const TemplateDeclAst& tpl : ast_.templates) {
      const std::string& name = tpl.body.name;
      if (templates_.contains(name)) {
        error(tpl.pos, util::format("duplicate template '%s'", name.c_str()));
        continue;
      }
      if (const auto it = names_.find(name); it != names_.end()) {
        error(tpl.pos,
              util::format("'%s' is already declared as %s and cannot also "
                           "name a template",
                           name.c_str(), to_string(it->second)));
        continue;
      }
      check_binder_shadow(tpl.param, tpl.param_pos, "template parameter");
      TemplateInfo info;
      info.decl = &tpl;
      const auto lo = fold_const(tpl.range_lo, "template parameter range");
      const auto hi = fold_const(tpl.range_hi, "template parameter range");
      if (lo && hi) {
        if (*lo > *hi) {
          error(tpl.param_pos,
                util::format("template parameter range %lld..%lld is empty",
                             static_cast<long long>(*lo),
                             static_cast<long long>(*hi)));
        } else {
          info.lo = *lo;
          info.hi = *hi;
          info.range_ok = true;
        }
      }
      templates_.emplace(name, info);
    }
  }

  // A template parameter or `for` variable must not shadow a declared
  // name — `template P(w : ...)` with a clock `w` would silently turn
  // every clock constraint into folded arithmetic.
  void check_binder_shadow(const std::string& name, Pos pos,
                           const char* what) {
    if (const auto it = names_.find(name); it != names_.end()) {
      error(pos, util::format("%s '%s' shadows %s", what, name.c_str(),
                              to_string(it->second)));
      return;
    }
    for (const auto& [scoped_name, value] : scoped_) {
      if (scoped_name == name) {
        error(pos, util::format("%s '%s' shadows an enclosing parameter",
                                what, name.c_str()));
        return;
      }
    }
  }

  void elaborate_instantiation(const InstantiationAst& inst) {
    for (const InstItemAst& item : inst.items) {
      const auto it = templates_.find(item.template_name);
      if (it == templates_.end()) {
        const auto known = names_.find(item.template_name);
        error(item.pos,
              known == names_.end()
                  ? util::format("unknown template '%s'",
                                 item.template_name.c_str())
                  : util::format("'%s' is %s, not a template",
                                 item.template_name.c_str(),
                                 to_string(known->second)));
        continue;
      }
      if (item.loop_var.empty()) {
        const auto arg = fold_const(item.arg, "instantiation argument");
        if (!arg) continue;
        instantiate(it->second, item, *arg, item.as_name);
        continue;
      }
      // Comprehension: `system P(expr-of-i) for i in lo..hi`.
      check_binder_shadow(item.loop_var, item.loop_var_pos,
                          "comprehension variable");
      const auto lo = fold_const(item.loop_lo, "comprehension range");
      const auto hi = fold_const(item.loop_hi, "comprehension range");
      if (!lo || !hi) continue;
      if (!fits_i32(*lo) || !fits_i32(*hi)) {
        error(item.loop_var_pos,
              "comprehension range bounds must fit a 32-bit integer");
        continue;
      }
      if (*hi - *lo + 1 > kMaxInstances) {
        error(item.loop_var_pos,
              util::format("comprehension stamps more than %d instances",
                           kMaxInstances));
        continue;
      }
      for (std::int64_t v = *lo; v <= *hi; ++v) {
        scoped_.push_back({item.loop_var, v});
        const auto arg = fold_const(item.arg, "instantiation argument");
        scoped_.pop_back();
        if (!arg) break;
        instantiate(it->second, item, *arg, std::string());
      }
    }
  }

  void instantiate(const TemplateInfo& info, const InstItemAst& item,
                   std::int64_t arg, const std::string& as_name) {
    const TemplateDeclAst& tpl = *info.decl;
    if (info.range_ok && (arg < info.lo || arg > info.hi)) {
      error(item.pos,
            util::format("cannot instantiate %s(%lld): the argument is "
                         "outside the declared parameter range %lld..%lld",
                         tpl.body.name.c_str(), static_cast<long long>(arg),
                         static_cast<long long>(info.lo),
                         static_cast<long long>(info.hi)));
      return;
    }
    if (++stamped_count_ > kMaxInstances) {
      if (stamped_count_ == kMaxInstances + 1) {
        error(item.pos,
              util::format("more than %d stamped processes", kMaxInstances));
      }
      return;
    }
    const std::string name =
        !as_name.empty()
            ? as_name
            : tpl.body.name + std::to_string(arg);
    // An `as` name may not hijack a *different* template's name.
    if (name != tpl.body.name && templates_.contains(name)) {
      error(item.as_pos,
            util::format("instance name '%s' is already a template name",
                         name.c_str()));
      return;
    }
    if (!declare_name(name, NameKind::kProcess, item.pos)) return;
    trace_.push_back({util::format("in %s(%lld), instantiated",
                                   tpl.body.name.c_str(),
                                   static_cast<long long>(arg)),
                      item.pos});
    scoped_.push_back({tpl.param, arg});
    elaborate_process_named(tpl.body, name);
    scoped_.pop_back();
    trace_.pop_back();
  }

  // ── processes ───────────────────────────────────────────────────────
  void elaborate_process(const ProcessDeclAst& decl) {
    if (templates_.contains(decl.name)) {
      error(decl.pos,
            util::format("process '%s' collides with a template of the same "
                         "name",
                         decl.name.c_str()));
      return;
    }
    if (!declare_name(decl.name, NameKind::kProcess, decl.pos)) return;
    elaborate_process_named(decl, decl.name);
  }

  // Lowers a (possibly stamped) process body; `name` is the declared or
  // stamped instance name, already registered in the global namespace.
  void elaborate_process_named(const ProcessDeclAst& decl,
                               const std::string& name) {
    Process& proc = sys_->add_process(
        name, decl.controllable_default
                  ? Controllability::kControllable
                  : Controllability::kUncontrollable);

    std::unordered_map<std::string, LocId> locs;
    for (const LocDeclAst& loc : decl.locations) {
      if (locs.contains(loc.name)) {
        error(loc.pos,
              util::format("duplicate location '%s' in process '%s'",
                           loc.name.c_str(), name.c_str()));
        continue;
      }
      locs.emplace(loc.name, proc.add_location(loc.name, loc.kind));
    }

    for (const LocDeclAst& loc : decl.locations) {
      const auto it = locs.find(loc.name);
      if (it == locs.end()) continue;
      for (const ExprPtr& inv : loc.invariants) {
        for (const ExprAst* atom : split_conjuncts(inv)) {
          std::vector<ClockConstraint> cs;
          if (lower_clock_constraint(*atom, cs)) {
            for (const ClockConstraint& c : cs) {
              proc.set_invariant(it->second, c);
            }
          } else {
            error(atom->pos,
                  "invariants may only constrain clocks (e.g. 'x <= 3')");
          }
        }
      }
    }

    if (decl.init_loc.empty()) {
      error(decl.pos, util::format("process '%s' has no 'init' "
                                   "declaration",
                                   name.c_str()));
    } else if (const auto it = locs.find(decl.init_loc); it != locs.end()) {
      proc.set_initial(it->second);
    } else {
      error(decl.init_pos,
            util::format("unknown initial location '%s' in process '%s'",
                         decl.init_loc.c_str(), name.c_str()));
    }

    std::int64_t edge_budget = kMaxEdgesPerProcess;
    elaborate_items(proc, name, locs, decl.items, edge_budget);
  }

  // Stamps the edges of a body in declaration order, expanding `for`
  // blocks.  `edge_budget` bounds the total stamped edges of one
  // process so a hostile range cannot explode the system.
  void elaborate_items(Process& proc, const std::string& pname,
                       const std::unordered_map<std::string, LocId>& locs,
                       const std::vector<ProcessItemAst>& items,
                       std::int64_t& edge_budget) {
    for (const ProcessItemAst& item : items) {
      if (edge_budget < 0) return;
      if (item.edge) {
        if (--edge_budget < 0) {
          error(item.edge->pos,
                util::format("process '%s' stamps more than %d edges",
                             pname.c_str(), kMaxEdgesPerProcess));
          return;
        }
        elaborate_edge(proc, pname, locs, *item.edge);
      } else if (item.loop) {
        elaborate_for(proc, pname, locs, *item.loop, edge_budget);
      }
    }
  }

  void elaborate_for(Process& proc, const std::string& pname,
                     const std::unordered_map<std::string, LocId>& locs,
                     const ForBlockAst& fb, std::int64_t& edge_budget) {
    check_binder_shadow(fb.var, fb.var_pos, "loop variable");
    const auto lo = fold_const(fb.lo, "'for' range bound");
    const auto hi = fold_const(fb.hi, "'for' range bound");
    if (!lo || !hi) return;
    // Bound the iteration count up front (not just the stamped edges):
    // an empty body over a huge — or int64-overflowing — range must
    // fail fast, not spin.  With 32-bit bounds the arithmetic below is
    // exact.
    if (!fits_i32(*lo) || !fits_i32(*hi)) {
      error(fb.pos, "'for' range bounds must fit a 32-bit integer");
      return;
    }
    if (*hi - *lo >= kMaxEdgesPerProcess) {
      error(fb.pos,
            util::format("'for' range spans more than %d iterations",
                         kMaxEdgesPerProcess));
      return;
    }
    // An empty range (lo > hi) stamps nothing — the n = 0 corner of a
    // template is a model with fewer edges, not an error.
    for (std::int64_t v = *lo; v <= *hi && edge_budget >= 0; ++v) {
      scoped_.push_back({fb.var, v});
      trace_.push_back({util::format("in 'for' iteration %s = %lld",
                                     fb.var.c_str(),
                                     static_cast<long long>(v)),
                        fb.pos});
      elaborate_items(proc, pname, locs, fb.items, edge_budget);
      trace_.pop_back();
      scoped_.pop_back();
    }
  }

  void elaborate_edge(Process& proc, const std::string& pname,
                      const std::unordered_map<std::string, LocId>& locs,
                      const EdgeDeclAst& edge) {
    // Resolve everything before bailing out, so one pass also surfaces
    // the guard/sync/update mistakes of an edge with a bad endpoint.
    const auto src = locs.find(edge.src);
    if (src == locs.end()) {
      error(edge.src_pos,
            util::format("unknown location '%s' in process '%s'",
                         edge.src.c_str(), pname.c_str()));
    }
    const auto dst = locs.find(edge.dst);
    if (dst == locs.end()) {
      error(edge.dst_pos,
            util::format("unknown location '%s' in process '%s'",
                         edge.dst.c_str(), pname.c_str()));
    }
    std::optional<tsystem::EdgeBuilder> builder;
    if (src != locs.end() && dst != locs.end()) {
      builder.emplace(proc.add_edge(src->second, dst->second));
    }

    if (edge.sync) {
      if (const auto name = resolve_sync_channel(*edge.sync)) {
        const auto chan = channels_.find(*name);
        if (chan == channels_.end()) {
          const auto known = names_.find(*name);
          error(edge.sync->pos,
                known == names_.end()
                    ? util::format("unknown channel '%s'", name->c_str())
                    : util::format("'%s' is %s, not a channel",
                                   name->c_str(),
                                   to_string(known->second)));
        } else if (builder) {
          if (edge.sync->send) {
            builder->send(chan->second);
          } else {
            builder->receive(chan->second);
          }
        }
      }
    }

    for (const ExprPtr& guard : edge.guards) {
      for (const ExprAst* atom : split_conjuncts(guard)) {
        std::vector<ClockConstraint> cs;
        if (lower_clock_constraint(*atom, cs)) {
          if (builder) {
            for (const ClockConstraint& c : cs) builder->guard(c);
          }
        } else {
          const Expr g = lower_expr(*atom);
          if (builder && !g.is_null()) builder->provided(g);
        }
      }
    }

    for (const UpdateAst& update : edge.updates) {
      elaborate_update(builder ? &*builder : nullptr, update);
    }

    if (builder && edge.ctrl_override) {
      builder->controllable(*edge.ctrl_override);
    }
    if (builder && !edge.label.empty()) builder->comment(edge.label);
  }

  // Resolves a sync to the concrete channel name: plain channels pass
  // through, `chan[i]` folds the index into a channel-array member.
  // Returns nullopt when an error was already reported here.
  std::optional<std::string> resolve_sync_channel(const SyncAst& sync) {
    const auto array = chan_arrays_.find(sync.channel);
    if (!sync.index) {
      if (array != chan_arrays_.end()) {
        error(sync.pos,
              util::format("channel array '%s' needs an index ('%s[i]%c')",
                           sync.channel.c_str(), sync.channel.c_str(),
                           sync.send ? '!' : '?'));
        return std::nullopt;
      }
      return sync.channel;
    }
    if (array == chan_arrays_.end()) {
      const auto known = names_.find(sync.channel);
      error(sync.pos,
            known == names_.end()
                ? util::format("unknown channel array '%s'",
                               sync.channel.c_str())
                : util::format("'%s' is %s, not a channel array",
                               sync.channel.c_str(),
                               to_string(known->second)));
      return std::nullopt;
    }
    const auto index = fold_const(sync.index, "channel index");
    if (!index) return std::nullopt;
    if (*index < 0 || *index >= array->second) {
      error(sync.index->pos,
            util::format("channel index %lld is outside '%s[0..%lld]'",
                         static_cast<long long>(*index),
                         sync.channel.c_str(),
                         static_cast<long long>(array->second - 1)));
      return std::nullopt;
    }
    return util::format("%s[%lld]", sync.channel.c_str(),
                        static_cast<long long>(*index));
  }

  // `builder` may be null (the edge had an unresolvable endpoint); the
  // update is still checked for its own errors.
  void elaborate_update(tsystem::EdgeBuilder* builder,
                        const UpdateAst& update) {
    if (const auto clock = clocks_.find(update.target);
        clock != clocks_.end()) {
      if (update.index || update.whole_array) {
        error(update.pos, util::format("clock '%s' cannot be indexed",
                                       update.target.c_str()));
        return;
      }
      const auto value = fold_const(update.rhs, "clock reset value");
      if (!value) return;
      if (*value < 0 || *value >= tigat::dbm::kMaxBoundValue) {
        error(update.pos,
              util::format("clock reset value must be a constant in "
                           "[0, 2^28), got %lld",
                           static_cast<long long>(*value)));
        return;
      }
      if (builder) {
        builder->reset(clock->second,
                       static_cast<tigat::dbm::bound_t>(*value));
      }
      return;
    }

    const auto var = vars_.find(update.target);
    if (var == vars_.end()) {
      for (const auto& [scoped_name, value] : scoped_) {
        if (scoped_name == update.target) {
          error(update.pos,
                util::format("'%s' is a template parameter or 'for' "
                             "variable and cannot be assigned",
                             update.target.c_str()));
          return;
        }
      }
      const auto known = names_.find(update.target);
      error(update.pos,
            known == names_.end()
                ? util::format("unknown clock or variable '%s'",
                               update.target.c_str())
                : util::format("'%s' is %s and cannot be assigned",
                               update.target.c_str(),
                               to_string(known->second)));
      return;
    }
    const bool is_array = sys_->data().decl(var->second).is_array();
    if (update.whole_array && !is_array) {
      error(update.pos,
            util::format("whole-array assignment '%s[] := ...' needs an "
                         "array; '%s' is a scalar",
                         update.target.c_str(), update.target.c_str()));
      return;
    }
    if (is_array && !update.index && !update.whole_array) {
      error(update.pos,
            util::format("array '%s' needs an index in assignments "
                         "(or '%s[] := ...' for every cell)",
                         update.target.c_str(), update.target.c_str()));
      return;
    }
    if (!is_array && update.index) {
      error(update.pos, util::format("'%s' is not an array",
                                     update.target.c_str()));
      return;
    }
    const Expr rhs = lower_expr(*update.rhs);
    if (rhs.is_null()) return;
    if (update.whole_array) {
      // `A[] := e` expands to one per-cell assignment, in index order;
      // `e` is evaluated per cell (it may not reference the index).
      if (builder) {
        const std::uint32_t size = sys_->data().decl(var->second).size;
        for (std::uint32_t k = 0; k < size; ++k) {
          builder->assign_elem(var->second, Expr::constant(k), rhs);
        }
      }
      return;
    }
    if (update.index) {
      const Expr index = lower_expr(*update.index);
      if (index.is_null()) return;
      if (builder) builder->assign_elem(var->second, index, rhs);
    } else if (builder) {
      builder->assign(var->second, rhs);
    }
  }

  // ── guard classification ────────────────────────────────────────────
  // Splits top-level `&&` into the atoms the System API wants.
  std::vector<const ExprAst*> split_conjuncts(const ExprPtr& e) {
    std::vector<const ExprAst*> out;
    split_conjuncts(e.get(), out);
    return out;
  }
  void split_conjuncts(const ExprAst* e, std::vector<const ExprAst*>& out) {
    if (e == nullptr) return;
    if (e->kind == ExprAst::Kind::kBinary && e->bin_op == BinOp::kAnd) {
      split_conjuncts(e->lhs.get(), out);
      split_conjuncts(e->rhs.get(), out);
      return;
    }
    out.push_back(e);
  }

  // A clock operand: `x` or `x - y` with both names clocks.
  struct ClockOperand {
    std::uint32_t i = 0, j = 0;  // x_i − x_j (j = 0 for a plain clock)
  };
  [[nodiscard]] std::optional<ClockOperand> as_clock_operand(
      const ExprAst& e) const {
    if (e.kind == ExprAst::Kind::kName) {
      const auto it = clocks_.find(e.name);
      if (it != clocks_.end()) return ClockOperand{it->second.id, 0};
      return std::nullopt;
    }
    if (e.kind == ExprAst::Kind::kBinary && e.bin_op == BinOp::kSub &&
        e.lhs->kind == ExprAst::Kind::kName &&
        e.rhs->kind == ExprAst::Kind::kName) {
      const auto a = clocks_.find(e.lhs->name);
      const auto b = clocks_.find(e.rhs->name);
      if (a != clocks_.end() && b != clocks_.end()) {
        return ClockOperand{a->second.id, b->second.id};
      }
    }
    return std::nullopt;
  }

  // Lowers `atom` into `out` when it is a clock constraint; returns
  // false when the atom belongs to the data world instead.
  bool lower_clock_constraint(const ExprAst& atom,
                              std::vector<ClockConstraint>& out) {
    if (atom.kind != ExprAst::Kind::kBinary) return false;
    BinOp op = atom.bin_op;
    if (op != BinOp::kEq && op != BinOp::kNe && op != BinOp::kLt &&
        op != BinOp::kLe && op != BinOp::kGt && op != BinOp::kGe) {
      return false;
    }
    std::optional<ClockOperand> clk = as_clock_operand(*atom.lhs);
    const ExprAst* bound_side = atom.rhs.get();
    if (!clk) {
      clk = as_clock_operand(*atom.rhs);
      if (!clk) return false;
      bound_side = atom.lhs.get();
      // Mirror: `c < x` ⇔ `x > c`.
      switch (op) {
        case BinOp::kLt: op = BinOp::kGt; break;
        case BinOp::kLe: op = BinOp::kGe; break;
        case BinOp::kGt: op = BinOp::kLt; break;
        case BinOp::kGe: op = BinOp::kLe; break;
        default: break;
      }
    }
    if (op == BinOp::kNe) {
      error(atom.pos, "'!=' is not a convex clock constraint");
      out.clear();
      return true;  // consumed (do not fall back to the data world)
    }
    const auto value = fold_const_expr(*bound_side);
    if (!value) {
      error(bound_side->pos,
                  "clock comparisons need a constant integer bound");
      out.clear();
      return true;
    }
    if (*value <= -tigat::dbm::kMaxBoundValue ||
        *value >= tigat::dbm::kMaxBoundValue) {
      error(bound_side->pos, "clock bound is out of range");
      out.clear();
      return true;
    }
    const auto c = static_cast<tigat::dbm::bound_t>(*value);
    const std::uint32_t i = clk->i, j = clk->j;
    switch (op) {
      case BinOp::kLt:
        out.push_back({i, j, tigat::dbm::make_strict(c)});
        break;
      case BinOp::kLe:
        out.push_back({i, j, tigat::dbm::make_weak(c)});
        break;
      case BinOp::kGt:
        out.push_back({j, i, tigat::dbm::make_strict(-c)});
        break;
      case BinOp::kGe:
        out.push_back({j, i, tigat::dbm::make_weak(-c)});
        break;
      case BinOp::kEq:
        out.push_back({i, j, tigat::dbm::make_weak(c)});
        out.push_back({j, i, tigat::dbm::make_weak(-c)});
        break;
      default:
        break;
    }
    return true;
  }

  // ── data expressions ────────────────────────────────────────────────
  // Lowers to tsystem::Expr; reports and returns a null Expr on errors.
  Expr lower_expr(const ExprAst& e) {
    switch (e.kind) {
      case ExprAst::Kind::kNumber:
        return Expr::constant(e.number);
      case ExprAst::Kind::kName: {
        for (std::size_t k = 0; k < binders_.size(); ++k) {
          if (binders_[binders_.size() - 1 - k] == e.name) {
            return Expr::bound_var(static_cast<std::uint32_t>(k));
          }
        }
        if (const std::int64_t* scoped = find_scoped(e.name)) {
          return Expr::constant(*scoped);
        }
        if (const auto c = consts_.find(e.name); c != consts_.end()) {
          return Expr::constant(c->second);
        }
        if (const auto var = vars_.find(e.name); var != vars_.end()) {
          if (sys_->data().decl(var->second).is_array()) {
            error(e.pos,
                        util::format("array '%s' needs an index here",
                                     e.name.c_str()));
            return {};
          }
          return Expr::var(var->second);
        }
        if (e.name == "true") return Expr::constant(1);
        if (e.name == "false") return Expr::constant(0);
        if (clocks_.contains(e.name)) {
          error(e.pos,
                      util::format("clock '%s' may only appear in simple "
                                   "comparisons like '%s <= 3'",
                                   e.name.c_str(), e.name.c_str()));
          return {};
        }
        error(e.pos,
                    util::format("unknown identifier '%s'", e.name.c_str()));
        return {};
      }
      case ExprAst::Kind::kIndex: {
        const auto var = vars_.find(e.name);
        if (var == vars_.end()) {
          error(e.pos,
                      util::format("unknown variable '%s'", e.name.c_str()));
          return {};
        }
        if (!sys_->data().decl(var->second).is_array()) {
          error(e.pos,
                      util::format("'%s' is not an array", e.name.c_str()));
          return {};
        }
        const Expr index = lower_expr(*e.lhs);
        if (index.is_null()) return {};
        return Expr::var(var->second, index);
      }
      case ExprAst::Kind::kUnary: {
        const Expr operand = lower_expr(*e.lhs);
        if (operand.is_null()) return {};
        return e.un_op == UnOp::kNeg ? -operand : !operand;
      }
      case ExprAst::Kind::kBinary: {
        const Expr lhs = lower_expr(*e.lhs);
        const Expr rhs = lower_expr(*e.rhs);
        if (lhs.is_null() || rhs.is_null()) return {};
        return Expr::binary(to_expr_kind(e.bin_op), lhs, rhs);
      }
      case ExprAst::Kind::kQuantifier: {
        std::int64_t lo = 0, hi = -1;
        if (!e.range_array.empty()) {
          const auto var = vars_.find(e.range_array);
          if (var == vars_.end() ||
              !sys_->data().decl(var->second).is_array()) {
            error(e.pos,
                        util::format("quantifier range '%s' is not a "
                                     "declared array",
                                     e.range_array.c_str()));
            return {};
          }
          hi = static_cast<std::int64_t>(
                   sys_->data().decl(var->second).size) -
               1;
        } else {
          const auto lo_v = fold_const(e.range_lo, "quantifier range");
          const auto hi_v = fold_const(e.range_hi, "quantifier range");
          if (!lo_v || !hi_v) return {};
          lo = *lo_v;
          hi = *hi_v;
        }
        binders_.push_back(e.name);
        const Expr body = lower_expr(*e.lhs);
        binders_.pop_back();
        if (body.is_null()) return {};
        return e.is_forall ? Expr::forall(lo, hi, body)
                           : Expr::exists(lo, hi, body);
      }
    }
    return {};
  }

  static Expr::Kind to_expr_kind(BinOp op) {
    switch (op) {
      case BinOp::kAdd: return Expr::Kind::kAdd;
      case BinOp::kSub: return Expr::Kind::kSub;
      case BinOp::kMul: return Expr::Kind::kMul;
      case BinOp::kDiv: return Expr::Kind::kDiv;
      case BinOp::kMod: return Expr::Kind::kMod;
      case BinOp::kEq: return Expr::Kind::kEq;
      case BinOp::kNe: return Expr::Kind::kNe;
      case BinOp::kLt: return Expr::Kind::kLt;
      case BinOp::kLe: return Expr::Kind::kLe;
      case BinOp::kGt: return Expr::Kind::kGt;
      case BinOp::kGe: return Expr::Kind::kGe;
      case BinOp::kAnd: return Expr::Kind::kAnd;
      case BinOp::kOr: return Expr::Kind::kOr;
    }
    return Expr::Kind::kAdd;
  }

  // ── constant folding ────────────────────────────────────────────────
  // Integer-folds an expression that may not mention clocks, variables
  // or quantifiers (declaration bounds, reset values, clock bounds).
  [[nodiscard]] std::optional<std::int64_t> fold_const_expr(
      const ExprAst& e) const {
    switch (e.kind) {
      case ExprAst::Kind::kNumber:
        return e.number;
      case ExprAst::Kind::kName: {
        if (e.name == "true") return 1;
        if (e.name == "false") return 0;
        if (const std::int64_t* scoped = find_scoped(e.name)) return *scoped;
        const auto it = consts_.find(e.name);
        if (it != consts_.end()) return it->second;
        return std::nullopt;
      }
      case ExprAst::Kind::kUnary: {
        const auto v = fold_const_expr(*e.lhs);
        if (!v) return std::nullopt;
        if (e.un_op == UnOp::kNot) return *v == 0 ? 1 : 0;
        if (*v == std::numeric_limits<std::int64_t>::min()) {
          return std::nullopt;
        }
        return -*v;
      }
      case ExprAst::Kind::kBinary: {
        const auto a = fold_const_expr(*e.lhs);
        const auto b = fold_const_expr(*e.rhs);
        if (!a || !b) return std::nullopt;
        // Overflow makes the expression non-constant rather than UB.
        std::int64_t r = 0;
        switch (e.bin_op) {
          case BinOp::kAdd:
            if (__builtin_add_overflow(*a, *b, &r)) return std::nullopt;
            return r;
          case BinOp::kSub:
            if (__builtin_sub_overflow(*a, *b, &r)) return std::nullopt;
            return r;
          case BinOp::kMul:
            if (__builtin_mul_overflow(*a, *b, &r)) return std::nullopt;
            return r;
          case BinOp::kDiv:
            if (*b == 0 ||
                (*a == std::numeric_limits<std::int64_t>::min() && *b == -1)) {
              return std::nullopt;
            }
            return *a / *b;
          case BinOp::kMod:
            if (*b == 0 ||
                (*a == std::numeric_limits<std::int64_t>::min() && *b == -1)) {
              return std::nullopt;
            }
            return *a % *b;
          case BinOp::kEq: return *a == *b ? 1 : 0;
          case BinOp::kNe: return *a != *b ? 1 : 0;
          case BinOp::kLt: return *a < *b ? 1 : 0;
          case BinOp::kLe: return *a <= *b ? 1 : 0;
          case BinOp::kGt: return *a > *b ? 1 : 0;
          case BinOp::kGe: return *a >= *b ? 1 : 0;
          case BinOp::kAnd: return (*a != 0 && *b != 0) ? 1 : 0;
          case BinOp::kOr: return (*a != 0 || *b != 0) ? 1 : 0;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  // As fold_const_expr, but reports a positioned error on failure.
  std::optional<std::int64_t> fold_const(const ExprPtr& e, const char* what) {
    if (!e) return std::nullopt;
    const auto v = fold_const_expr(*e);
    if (!v) {
      error(e->pos,
                  util::format("%s must be a constant integer expression",
                               what));
    }
    return v;
  }

  // ── control properties ──────────────────────────────────────────────
  void elaborate_control(const System& system, const ControlDeclAst& decl,
                         std::vector<tsystem::TestPurpose>& purposes) {
    static constexpr std::string_view kPrefix = "control: ";
    const std::string text = std::string(kPrefix) + decl.text;
    try {
      purposes.push_back(tsystem::TestPurpose::parse(system, text));
    } catch (const tsystem::PurposeParseError& e) {
      const std::size_t rel =
          e.offset >= kPrefix.size() ? e.offset - kPrefix.size() : 0;
      // `detail` has no "offset N" prefix — the diagnostic carries the
      // file position itself.
      error({static_cast<std::uint32_t>(decl.pos.offset + rel)},
                  e.detail);
    } catch (const ModelError& e) {
      error(decl.pos, e.what());
    }
  }

  // Innermost template parameter / `for` variable binding, or null.
  [[nodiscard]] const std::int64_t* find_scoped(
      const std::string& name) const {
    for (auto it = scoped_.rbegin(); it != scoped_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  static constexpr int kMaxChannelArray = 1024;
  static constexpr int kMaxInstances = 1024;
  static constexpr int kMaxEdgesPerProcess = 65536;

  const ModelAst& ast_;
  const std::string& fallback_name_;
  DiagnosticSink& sink_;
  const CompileOptions& options_;
  std::optional<System> sys_;
  std::unordered_map<std::string, NameKind> names_;
  std::unordered_map<std::string, Clock> clocks_;
  std::unordered_map<std::string, ChannelId> channels_;
  std::unordered_map<std::string, std::int64_t> chan_arrays_;
  std::unordered_map<std::string, std::int64_t> consts_;
  std::unordered_map<std::string, VarId> vars_;
  std::unordered_map<std::string, TemplateInfo> templates_;
  std::vector<std::string> binders_;
  // Template parameters and `for` variables in scope, outermost first.
  std::vector<std::pair<std::string, std::int64_t>> scoped_;
  // Instantiation/iteration context for diagnostics, outermost first.
  std::vector<Note> trace_;
  int stamped_count_ = 0;
};

}  // namespace

std::optional<ElaboratedModel> elaborate(const ModelAst& ast,
                                         const std::string& fallback_name,
                                         DiagnosticSink& sink,
                                         const CompileOptions& options) {
  return Elaborator(ast, fallback_name, sink, options).run();
}

}  // namespace tigat::lang
