// Public entry points of the .tg model language.
//
// A .tg file is a textual TIOGA network — clocks, bounded ints,
// channels with the controllable/uncontrollable game partition,
// processes with invariants/urgency/guards/syncs/resets/assignments —
// plus optional `control:` test purposes.  See README.md for the
// grammar and examples/models/ for the paper's two case studies:
//
//   lang::LoadedModel m = lang::load_model("examples/models/smart_light.tg");
//   game::GameSolver solver(m.system, m.purposes.at(0));
//   const auto solution = solver.solve();
//
// `load_model` throws LangError (a tsystem::ModelError) whose what()
// is the full rendered diagnostic report.  `compile_model` is the
// non-throwing variant used by tools that want the diagnostics
// themselves (tests, IDE-ish frontends).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/diag.h"
#include "lang/elaborate.h"
#include "tsystem/property.h"
#include "tsystem/system.h"

namespace tigat::lang {

using LoadedModel = ElaboratedModel;

// Raised by load_model on I/O and compile errors; what() carries every
// diagnostic, rendered with file/line/column and source snippets.
class LangError : public tsystem::ModelError {
 public:
  using tsystem::ModelError::ModelError;
};

// Parses + elaborates `source`.  `name` labels diagnostics (usually the
// file path) and provides the fallback system name.  Diagnostics land
// in `diagnostics`; the result is nullopt whenever an error was
// reported.  `options.params` overrides `const` declarations by name
// (the `run_model --param N=4` mechanism), so one templated model file
// serves every instance size.
[[nodiscard]] std::optional<LoadedModel> compile_model(
    std::string_view source, const std::string& name,
    std::vector<Diagnostic>& diagnostics, const CompileOptions& options = {});

// Reads and compiles a .tg file; throws LangError on any failure.
[[nodiscard]] LoadedModel load_model(const std::string& path,
                                     const CompileOptions& options = {});

// As load_model, for in-memory text (`name` labels diagnostics).
[[nodiscard]] LoadedModel load_model_from_string(
    std::string_view source, const std::string& name,
    const CompileOptions& options = {});

}  // namespace tigat::lang
