// Elaboration: name resolution + lowering of a ModelAst onto the
// tsystem::System fluent API.
//
// The elaborator owns every semantic rule of the language:
//
//   * one global namespace for clocks, channels, variables and
//     processes (duplicates are reported at the second declaration);
//   * `when` conjuncts are classified syntactically — a comparison with
//     a clock (or clock difference) on one side and a constant integer
//     expression on the other lowers to a DBM ClockConstraint (with
//     `==` expanding to the two weak bounds); everything else lowers to
//     a data guard Expr;
//   * `do` items lower to clock resets (constant right-hand sides) or
//     data assignments, preserving source order;
//   * `control:` declarations are handed to tsystem::TestPurpose::parse
//     against the finalized system, and parse errors are mapped back to
//     exact file positions via PurposeParseError::offset.
//
// All problems are reported through the DiagnosticSink; elaboration
// continues past per-edge errors so one pass surfaces as many
// independent mistakes as possible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lang/ast.h"
#include "lang/diag.h"
#include "tsystem/property.h"
#include "tsystem/system.h"

namespace tigat::lang {

struct ElaboratedModel {
  tsystem::System system;  // finalized
  std::vector<tsystem::TestPurpose> purposes;  // one per control decl
};

// Knobs the driver may pass into compilation.
struct CompileOptions {
  // `--param N=4` style overrides: each entry replaces the value of the
  // `const` declaration of that name before anything folds, so one
  // templated model file serves every instance size.  An override that
  // matches no `const` declaration is an error.
  std::vector<std::pair<std::string, std::int64_t>> params;
};

// Lowers `ast`; returns nullopt when any diagnostic of error severity
// was emitted (the sink then holds the full report).  `fallback_name`
// names the system when the source has no `system` declaration.
[[nodiscard]] std::optional<ElaboratedModel> elaborate(
    const ModelAst& ast, const std::string& fallback_name,
    DiagnosticSink& sink, const CompileOptions& options = {});

}  // namespace tigat::lang
