#include "lang/parser.h"

#include <cctype>

#include "util/text.h"

namespace tigat::lang {

namespace {

// A declaration keyword that can start a top-level declaration; used as
// a resynchronisation anchor after syntax errors.
bool is_top_keyword(const Token& t) {
  return t.is_keyword("system") || t.is_keyword("clock") ||
         t.is_keyword("chan") || t.is_keyword("const") ||
         t.is_keyword("int") || t.is_keyword("process") ||
         t.is_keyword("template") || t.is_keyword("control");
}

bool is_body_keyword(const Token& t) {
  return t.is_keyword("loc") || t.is_keyword("edge") || t.is_keyword("init") ||
         t.is_keyword("for") || t.is_keyword("urgent") ||
         t.is_keyword("committed");
}

class Parser {
 public:
  Parser(const Source& source, DiagnosticSink& sink)
      : source_(source), sink_(sink), toks_(lex(source, sink)) {}

  ModelAst run() {
    ModelAst model;
    while (!peek().is(TokKind::kEof)) {
      if (peek().is_keyword("system")) {
        parse_system(model);
      } else if (peek().is_keyword("clock")) {
        parse_clocks(model);
      } else if (peek().is_keyword("chan")) {
        parse_channels(model);
      } else if (peek().is_keyword("const")) {
        parse_constants(model);
      } else if (peek().is_keyword("int")) {
        parse_variable(model);
      } else if (peek().is_keyword("process")) {
        parse_process(model);
      } else if (peek().is_keyword("template")) {
        parse_template(model);
      } else if (peek().is_keyword("control")) {
        parse_control(model);
      } else {
        error(peek().pos,
              util::format("expected a declaration (system, clock, chan, "
                           "const, int, process, template or control), got %s",
                           describe(peek()).c_str()));
        // The offending token is by definition not a declaration start,
        // and sync() stops *at* '}' — consume it first so the loop
        // always makes progress.
        next();
        sync_top();
      }
    }
    return model;
  }

 private:
  // ── token plumbing ──────────────────────────────────────────────────
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = at_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (at_ + 1 < toks_.size()) ++at_;
    return t;
  }
  bool accept(TokKind kind) {
    if (!peek().is(kind)) return false;
    next();
    return true;
  }
  bool accept_kw(std::string_view kw) {
    if (!peek().is_keyword(kw)) return false;
    next();
    return true;
  }

  [[nodiscard]] std::string describe(const Token& t) const {
    if (t.is(TokKind::kIdent) || t.is(TokKind::kNumber)) {
      return util::format("'%.*s'", static_cast<int>(t.text.size()),
                          t.text.data());
    }
    return to_string(t.kind);
  }

  void error(Pos pos, std::string message) {
    sink_.error(pos, std::move(message));
  }

  // Reports "expected X, got Y" and throws out to the recovery point.
  struct SyntaxError {};
  [[noreturn]] void fail(const std::string& what) {
    error(peek().pos, util::format("expected %s, got %s", what.c_str(),
                                   describe(peek()).c_str()));
    throw SyntaxError{};
  }
  void expect(TokKind kind, const char* what) {
    if (!accept(kind)) fail(what ? what : to_string(kind));
  }
  std::string expect_ident(const char* what) {
    if (!peek().is(TokKind::kIdent)) fail(what);
    return std::string(next().text);
  }

  // Panic-mode recovery: skip to just past the next ';', to (not past)
  // a '}' or a declaration keyword, or to end of file.
  void sync_top() { sync(is_top_keyword); }
  void sync_body() { sync([](const Token& t) { return is_body_keyword(t); }); }
  template <typename Anchor>
  void sync(Anchor anchor) {
    while (!peek().is(TokKind::kEof)) {
      if (peek().is(TokKind::kSemi)) {
        next();
        return;
      }
      if (peek().is(TokKind::kRBrace) || anchor(peek()) ||
          is_top_keyword(peek())) {
        return;
      }
      next();
    }
  }

  // ── declarations ────────────────────────────────────────────────────
  // `system name ;` names the system; `system P(...) ... ;` is a
  // template-instantiation list, told apart by the '(' after the first
  // identifier.
  void parse_system(ModelAst& model) {
    try {
      const Token& kw = next();  // system
      const Pos kw_pos = kw.pos;
      const Pos first_pos = peek().pos;
      std::string first = expect_ident("system name or template name");
      if (peek().is(TokKind::kLParen)) {
        parse_instantiation(model, kw_pos, std::move(first), first_pos);
        return;
      }
      if (!model.system_name.empty()) {
        error(kw_pos, "duplicate 'system' declaration");
      }
      model.system_pos = kw_pos;
      model.system_name = std::move(first);
      expect(TokKind::kSemi, "';'");
    } catch (SyntaxError&) {
      sync_top();
    }
  }

  // system P(0), P(2) as Two, Q(i) for i in 0..N-1 ;
  // The first template name is already consumed (by parse_system).
  void parse_instantiation(ModelAst& model, Pos kw_pos, std::string first_name,
                           Pos first_pos) {
    InstantiationAst inst;
    inst.pos = kw_pos;
    bool first = true;
    do {
      InstItemAst item;
      if (first) {
        item.template_name = std::move(first_name);
        item.pos = first_pos;
        first = false;
      } else {
        item.pos = peek().pos;
        item.template_name = expect_ident("template name");
      }
      expect(TokKind::kLParen, "'(' after the template name");
      item.arg = parse_expr();
      expect(TokKind::kRParen, "')'");
      if (accept_kw("as")) {
        item.as_pos = peek().pos;
        item.as_name = expect_ident("instance name after 'as'");
      }
      if (peek().is_keyword("for")) {
        if (!item.as_name.empty()) {
          error(item.as_pos,
                "'as' cannot name a 'for' comprehension (each instance is "
                "named <template><value>)");
        }
        next();  // for
        item.loop_var_pos = peek().pos;
        item.loop_var = expect_ident("comprehension variable after 'for'");
        if (!accept_kw("in")) fail("'in' after the comprehension variable");
        item.loop_lo = parse_expr();
        expect(TokKind::kDotDot, "'..'");
        item.loop_hi = parse_expr();
      }
      inst.items.push_back(std::move(item));
    } while (accept(TokKind::kComma));
    expect(TokKind::kSemi, "';'");
    model.unit_order.push_back({ModelAst::UnitKind::kInstantiation,
                                model.instantiations.size()});
    model.instantiations.push_back(std::move(inst));
  }

  void parse_clocks(ModelAst& model) {
    try {
      next();  // clock
      do {
        const Pos pos = peek().pos;
        model.clocks.push_back({expect_ident("clock name"), pos});
      } while (accept(TokKind::kComma));
      expect(TokKind::kSemi, "';'");
    } catch (SyntaxError&) {
      sync_top();
    }
  }

  void parse_channels(ModelAst& model) {
    try {
      next();  // chan
      bool controllable = true;
      if (accept_kw("ctrl") || accept_kw("controllable")) {
        controllable = true;
      } else if (accept_kw("unctrl") || accept_kw("uncontrollable")) {
        controllable = false;
      } else {
        fail("'ctrl' or 'unctrl' after 'chan'");
      }
      do {
        ChanDeclAst decl;
        decl.pos = peek().pos;
        decl.name = expect_ident("channel name");
        decl.controllable = controllable;
        if (accept(TokKind::kLBracket)) {  // channel array
          decl.size = parse_expr();
          expect(TokKind::kRBracket, "']'");
        }
        model.channels.push_back(std::move(decl));
      } while (accept(TokKind::kComma));
      expect(TokKind::kSemi, "';'");
    } catch (SyntaxError&) {
      sync_top();
    }
  }

  // const name = expr {, name = expr} ;
  void parse_constants(ModelAst& model) {
    try {
      next();  // const
      do {
        ConstDeclAst decl;
        decl.pos = peek().pos;
        decl.name = expect_ident("constant name");
        expect(TokKind::kEquals, "'=' after the constant name");
        decl.value = parse_expr();
        model.constants.push_back(std::move(decl));
      } while (accept(TokKind::kComma));
      expect(TokKind::kSemi, "';'");
    } catch (SyntaxError&) {
      sync_top();
    }
  }

  // int [lo, hi] name ([size])? (= init)? {, name ...} ;
  void parse_variable(ModelAst& model) {
    try {
      next();  // int
      expect(TokKind::kLBracket, "'[' after 'int'");
      ExprPtr lo = parse_expr();
      expect(TokKind::kComma, "',' between range bounds");
      ExprPtr hi = parse_expr();
      expect(TokKind::kRBracket, "']'");
      bool first = true;
      do {
        VarDeclAst decl;
        decl.pos = peek().pos;
        decl.name = expect_ident("variable name");
        decl.lo = first ? std::move(lo) : model.variables.back().lo;
        decl.hi = first ? std::move(hi) : model.variables.back().hi;
        if (accept(TokKind::kLBracket)) {
          decl.size = parse_expr();
          expect(TokKind::kRBracket, "']'");
        }
        if (accept(TokKind::kEquals)) decl.init = parse_expr();
        model.variables.push_back(std::move(decl));
        first = false;
      } while (accept(TokKind::kComma));
      expect(TokKind::kSemi, "';'");
    } catch (SyntaxError&) {
      sync_top();
    }
  }

  void parse_process(ModelAst& model) {
    ProcessDeclAst proc;
    try {
      proc.pos = peek().pos;
      next();  // process
      proc.name = expect_ident("process name");
      if (accept_kw("controlled")) {
        proc.controllable_default = true;
      } else if (accept_kw("uncontrolled")) {
        proc.controllable_default = false;
      } else {
        fail("'controlled' or 'uncontrolled' after the process name");
      }
      expect(TokKind::kLBrace, "'{'");
    } catch (SyntaxError&) {
      sync_top();
      return;
    }

    parse_process_body(proc);
    model.unit_order.push_back(
        {ModelAst::UnitKind::kProcess, model.processes.size()});
    model.processes.push_back(std::move(proc));
  }

  // template P(i : lo..hi) (controlled|uncontrolled) { <process body> }
  void parse_template(ModelAst& model) {
    TemplateDeclAst tpl;
    try {
      tpl.pos = peek().pos;
      tpl.body.pos = tpl.pos;
      next();  // template
      tpl.body.name = expect_ident("template name");
      expect(TokKind::kLParen, "'(' after the template name");
      tpl.param_pos = peek().pos;
      tpl.param = expect_ident("parameter name");
      expect(TokKind::kColon, "':' after the parameter name");
      tpl.range_lo = parse_expr();
      expect(TokKind::kDotDot, "'..'");
      tpl.range_hi = parse_expr();
      expect(TokKind::kRParen, "')'");
      if (accept_kw("controlled")) {
        tpl.body.controllable_default = true;
      } else if (accept_kw("uncontrolled")) {
        tpl.body.controllable_default = false;
      } else {
        fail("'controlled' or 'uncontrolled' after the parameter list");
      }
      expect(TokKind::kLBrace, "'{'");
    } catch (SyntaxError&) {
      sync_top();
      return;
    }

    parse_process_body(tpl.body);
    model.templates.push_back(std::move(tpl));
  }

  // The shared `{ ... }` body of a process or template; consumes the
  // closing brace.
  void parse_process_body(ProcessDeclAst& proc) {
    while (!peek().is(TokKind::kRBrace) && !peek().is(TokKind::kEof)) {
      try {
        if (peek().is_keyword("loc") || peek().is_keyword("urgent") ||
            peek().is_keyword("committed")) {
          parse_location(proc);
        } else if (peek().is_keyword("edge")) {
          ProcessItemAst item;
          item.edge = parse_edge();
          proc.items.push_back(std::move(item));
        } else if (peek().is_keyword("for")) {
          ProcessItemAst item;
          item.loop = parse_for_block();
          proc.items.push_back(std::move(item));
        } else if (peek().is_keyword("init")) {
          const Token& kw = next();  // init
          if (!proc.init_loc.empty()) {
            error(kw.pos, util::format("duplicate 'init' in process '%s'",
                                       proc.name.c_str()));
          }
          proc.init_pos = peek().pos;
          proc.init_loc = expect_ident("initial location name");
          expect(TokKind::kSemi, "';'");
        } else if (is_top_keyword(peek())) {
          error(peek().pos,
                util::format("%s cannot appear inside a process "
                             "(missing '}'?)",
                             describe(peek()).c_str()));
          break;  // let the top level resume from the keyword
        } else {
          fail("'loc', 'edge', 'for' or 'init' inside the process body");
        }
      } catch (SyntaxError&) {
        sync_body();
      }
    }
    accept(TokKind::kRBrace);
  }

  // for (i : lo..hi) { <edges / nested for blocks> }
  ForBlockAst parse_for_block() {
    if (++for_depth_ > kMaxForDepth) {
      error(peek().pos, "'for' blocks are nested too deeply");
      --for_depth_;
      throw SyntaxError{};
    }
    const struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{for_depth_};

    ForBlockAst fb;
    fb.pos = peek().pos;
    next();  // for
    expect(TokKind::kLParen, "'(' after 'for'");
    fb.var_pos = peek().pos;
    fb.var = expect_ident("loop variable");
    expect(TokKind::kColon, "':' after the loop variable");
    fb.lo = parse_expr();
    expect(TokKind::kDotDot, "'..'");
    fb.hi = parse_expr();
    expect(TokKind::kRParen, "')'");
    expect(TokKind::kLBrace, "'{'");
    while (!peek().is(TokKind::kRBrace) && !peek().is(TokKind::kEof)) {
      ProcessItemAst item;
      if (peek().is_keyword("edge")) {
        item.edge = parse_edge();
      } else if (peek().is_keyword("for")) {
        item.loop = parse_for_block();
      } else {
        fail("'edge' or a nested 'for' inside the 'for' block");
      }
      fb.items.push_back(std::move(item));
    }
    expect(TokKind::kRBrace, "'}'");
    return fb;
  }

  void parse_location(ProcessDeclAst& proc) {
    LocDeclAst loc;
    if (accept_kw("urgent")) {
      loc.kind = tsystem::LocationKind::kUrgent;
    } else if (accept_kw("committed")) {
      loc.kind = tsystem::LocationKind::kCommitted;
    }
    if (!accept_kw("loc")) fail("'loc'");
    loc.pos = peek().pos;
    loc.name = expect_ident("location name");
    if (accept(TokKind::kLBrace)) {
      while (!peek().is(TokKind::kRBrace)) {
        if (accept_kw("inv")) {
          do {
            loc.invariants.push_back(parse_expr());
          } while (accept(TokKind::kComma));
          expect(TokKind::kSemi, "';'");
        } else {
          fail("'inv' or '}' in the location body");
        }
      }
      expect(TokKind::kRBrace, "'}'");
    } else {
      expect(TokKind::kSemi, "';' or '{' after the location name");
    }
    proc.locations.push_back(std::move(loc));
  }

  // edge A -> B (on chan[idx]! | on chan[idx]?)? (when e {, e})?
  //   (do u {, u})? (ctrl | unctrl)? (label "...")? ;
  EdgeDeclAst parse_edge() {
    EdgeDeclAst edge;
    edge.pos = peek().pos;
    next();  // edge
    edge.src_pos = peek().pos;
    edge.src = expect_ident("source location");
    expect(TokKind::kArrow, "'->'");
    edge.dst_pos = peek().pos;
    edge.dst = expect_ident("target location");

    if (accept_kw("on")) {
      SyncAst sync;
      sync.pos = peek().pos;
      sync.channel = expect_ident("channel name after 'on'");
      if (accept(TokKind::kLBracket)) {  // channel-array member
        sync.index = parse_expr();
        expect(TokKind::kRBracket, "']'");
      }
      if (accept(TokKind::kBang)) {
        sync.send = true;
      } else if (accept(TokKind::kQuestion)) {
        sync.send = false;
      } else {
        fail("'!' or '?' after the channel name");
      }
      edge.sync = std::move(sync);
    }
    if (accept_kw("when")) {
      do {
        edge.guards.push_back(parse_expr());
      } while (accept(TokKind::kComma));
    }
    if (accept_kw("do")) {
      do {
        UpdateAst update;
        update.pos = peek().pos;
        update.target = expect_ident("update target");
        if (accept(TokKind::kLBracket)) {
          if (accept(TokKind::kRBracket)) {
            update.whole_array = true;  // `A[] := e`
          } else {
            update.index = parse_expr();
            expect(TokKind::kRBracket, "']'");
          }
        }
        expect(TokKind::kAssignOp, "':='");
        update.rhs = parse_expr();
        edge.updates.push_back(std::move(update));
      } while (accept(TokKind::kComma));
    }
    if (accept_kw("ctrl")) {
      edge.ctrl_override = true;
    } else if (accept_kw("unctrl")) {
      edge.ctrl_override = false;
    }
    if (accept_kw("label")) {
      if (!peek().is(TokKind::kString)) fail("a string after 'label'");
      edge.label = std::string(next().text);
    }
    expect(TokKind::kSemi, "';'");
    return edge;
  }

  // control: <raw text up to ';'> ;
  void parse_control(ModelAst& model) {
    try {
      next();  // control
      expect(TokKind::kColon, "':' after 'control'");
      const Pos begin = peek().pos;
      if (peek().is(TokKind::kSemi) || peek().is(TokKind::kEof)) {
        fail("a property ('A<> ...' or 'A[] ...')");
      }
      Pos end = begin;
      while (!peek().is(TokKind::kSemi)) {
        if (peek().is(TokKind::kEof)) {
          error(begin, "unterminated control property (missing ';')");
          return;
        }
        const Token& t = next();
        end = {static_cast<std::uint32_t>(t.pos.offset + t.text.size())};
        // String tokens lose their quotes in `text`; none are legal in
        // a property, so the raw slice below stays exact.
      }
      next();  // ;
      std::string raw(std::string_view(source_.text())
                          .substr(begin.offset, end.offset - begin.offset));
      // The slice re-includes comment bytes the lexer skipped; blank
      // them (spaces keep every offset stable for error mapping) since
      // the property sub-parser knows nothing about comments.
      for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
        if (raw[i] != '/') continue;
        std::size_t stop;
        if (raw[i + 1] == '/') {
          stop = raw.find('\n', i);
        } else if (raw[i + 1] == '*') {
          stop = raw.find("*/", i + 2);
          if (stop != std::string::npos) stop += 2;
        } else {
          continue;
        }
        if (stop == std::string::npos) stop = raw.size();
        for (std::size_t k = i; k < stop; ++k) {
          if (raw[k] != '\n') raw[k] = ' ';
        }
        i = stop > 0 ? stop - 1 : 0;
      }
      while (!raw.empty() && std::isspace(static_cast<unsigned char>(
                                 raw.back()))) {
        raw.pop_back();
      }
      model.controls.push_back({std::move(raw), begin});
    } catch (SyntaxError&) {
      sync_top();
    }
  }

  // ── expressions ─────────────────────────────────────────────────────
  std::shared_ptr<ExprAst> make_expr(ExprAst::Kind kind, Pos pos) {
    auto e = std::make_shared<ExprAst>();
    e->kind = kind;
    e->pos = pos;
    return e;
  }

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (peek().is(TokKind::kOrOr) || peek().is_keyword("or")) {
      const Pos pos = next().pos;
      auto e = make_expr(ExprAst::Kind::kBinary, pos);
      e->bin_op = BinOp::kOr;
      e->lhs = std::move(lhs);
      e->rhs = parse_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (peek().is(TokKind::kAndAnd) || peek().is_keyword("and")) {
      const Pos pos = next().pos;
      auto e = make_expr(ExprAst::Kind::kBinary, pos);
      e->bin_op = BinOp::kAnd;
      e->lhs = std::move(lhs);
      e->rhs = parse_cmp();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    BinOp op;
    switch (peek().kind) {
      case TokKind::kEqEq: op = BinOp::kEq; break;
      case TokKind::kNotEq: op = BinOp::kNe; break;
      case TokKind::kLt: op = BinOp::kLt; break;
      case TokKind::kLe: op = BinOp::kLe; break;
      case TokKind::kGt: op = BinOp::kGt; break;
      case TokKind::kGe: op = BinOp::kGe; break;
      default: return lhs;
    }
    const Pos pos = next().pos;
    auto e = make_expr(ExprAst::Kind::kBinary, pos);
    e->bin_op = op;
    e->lhs = std::move(lhs);
    e->rhs = parse_add();
    return e;
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (peek().is(TokKind::kPlus) || peek().is(TokKind::kMinus)) {
      const BinOp op = peek().is(TokKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      const Pos pos = next().pos;
      auto e = make_expr(ExprAst::Kind::kBinary, pos);
      e->bin_op = op;
      e->lhs = std::move(lhs);
      e->rhs = parse_mul();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (peek().is(TokKind::kStar) || peek().is(TokKind::kSlash) ||
           peek().is(TokKind::kPercent)) {
      const BinOp op = peek().is(TokKind::kStar)    ? BinOp::kMul
                       : peek().is(TokKind::kSlash) ? BinOp::kDiv
                                                    : BinOp::kMod;
      const Pos pos = next().pos;
      auto e = make_expr(ExprAst::Kind::kBinary, pos);
      e->bin_op = op;
      e->lhs = std::move(lhs);
      e->rhs = parse_unary();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    // Every recursive expression path ('(' nesting, unary chains,
    // quantifier bodies) passes through here: cap the depth so hostile
    // input gets a diagnostic, not a stack overflow.
    if (++expr_depth_ > kMaxExprDepth) {
      error(peek().pos, "expression is too deeply nested");
      --expr_depth_;
      throw SyntaxError{};
    }
    const struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{expr_depth_};
    if (peek().is(TokKind::kMinus) || peek().is(TokKind::kBang) ||
        peek().is_keyword("not")) {
      const UnOp op = peek().is(TokKind::kMinus) ? UnOp::kNeg : UnOp::kNot;
      const Pos pos = next().pos;
      auto e = make_expr(ExprAst::Kind::kUnary, pos);
      e->un_op = op;
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.is(TokKind::kNumber)) {
      auto e = make_expr(ExprAst::Kind::kNumber, t.pos);
      e->number = next().number;
      return e;
    }
    if (t.is(TokKind::kLParen)) {
      next();
      ExprPtr e = parse_expr();
      expect(TokKind::kRParen, "')'");
      return e;
    }
    if (t.is_keyword("forall") || t.is_keyword("exists")) {
      return parse_quantifier();
    }
    if (t.is(TokKind::kIdent)) {
      auto e = make_expr(ExprAst::Kind::kName, t.pos);
      e->name = std::string(next().text);
      if (accept(TokKind::kLBracket)) {
        e->kind = ExprAst::Kind::kIndex;
        e->lhs = parse_expr();
        expect(TokKind::kRBracket, "']'");
      }
      return e;
    }
    fail("an expression");
  }

  // forall (i : lo..hi) body   |   forall (i : array) body
  ExprPtr parse_quantifier() {
    const Token& kw = next();
    auto e = make_expr(ExprAst::Kind::kQuantifier, kw.pos);
    e->is_forall = kw.is_keyword("forall");
    expect(TokKind::kLParen, "'('");
    e->name = expect_ident("binder name");
    expect(TokKind::kColon, "':'");
    // `ident` alone (not followed by '..') names an array range.
    if (peek().is(TokKind::kIdent) && !peek(1).is(TokKind::kDotDot)) {
      e->range_array = std::string(next().text);
    } else {
      e->range_lo = parse_expr();
      expect(TokKind::kDotDot, "'..'");
      e->range_hi = parse_expr();
    }
    expect(TokKind::kRParen, "')'");
    e->lhs = parse_expr();  // max-munch body; parenthesise to restrict
    return e;
  }

  static constexpr int kMaxExprDepth = 500;
  static constexpr int kMaxForDepth = 64;

  const Source& source_;
  DiagnosticSink& sink_;
  std::vector<Token> toks_;
  std::size_t at_ = 0;
  int expr_depth_ = 0;
  int for_depth_ = 0;
};

}  // namespace

ModelAst parse(const Source& source, DiagnosticSink& sink) {
  return Parser(source, sink).run();
}

}  // namespace tigat::lang
