// Hand-written lexer for the .tg model language.
//
// Produces the whole token stream up front (models are small), each
// token carrying its byte offset so diagnostics can point at the exact
// line/column.  `//` line comments and `/* */` block comments are
// skipped; an unterminated block comment and stray characters produce
// positioned diagnostics and lexing continues — the parser then sees a
// best-effort stream and can report its own errors in the same pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/diag.h"

namespace tigat::lang {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,   // names and keywords (keywords are contextual)
  kNumber,  // non-negative decimal integer
  kString,  // "..." (edge labels)
  // punctuation / operators
  kLBrace, kRBrace, kLBracket, kRBracket, kLParen, kRParen,
  kComma, kSemi, kColon,
  kArrow,      // ->
  kAssignOp,   // :=
  kEquals,     // =
  kBang,       // !   (send marker / logical not)
  kQuestion,   // ?
  kDot,        // .   (only inside control properties: `IUT.Bright`)
  kDotDot,     // ..
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEqEq, kNotEq, kLt, kLe, kGt, kGe,
  kAndAnd,     // &&
  kOrOr,       // ||
};

// Human-readable token-kind name for error messages ("'->'", "number").
[[nodiscard]] const char* to_string(TokKind kind);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string_view text;        // slice of the source buffer
  std::int64_t number = 0;      // for kNumber
  Pos pos;

  [[nodiscard]] bool is(TokKind k) const { return kind == k; }
  // Contextual keyword test: an identifier spelled exactly `kw`.
  [[nodiscard]] bool is_keyword(std::string_view kw) const {
    return kind == TokKind::kIdent && text == kw;
  }
};

// Lexes the whole source; diagnostics go to `sink`.  The returned
// stream always ends with a kEof token.
[[nodiscard]] std::vector<Token> lex(const Source& source,
                                     DiagnosticSink& sink);

}  // namespace tigat::lang
