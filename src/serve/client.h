// Client — a blocking tigat-serve connection for tests, tools and
// benchmarks.
//
// connect() dials the daemon's Unix-domain socket and reads the hello
// frame, so table identity (fingerprint, shape) is available before
// the first request.  decide() is the simple call-response form;
// send_decide()/read_move() split the two halves so callers can
// pipeline a window of requests per syscall batch — the server
// guarantees in-order replies.  One Client is one socket and is not
// thread-safe; spawn one per client thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "game/strategy.h"
#include "semantics/concrete.h"
#include "serve/protocol.h"

namespace tigat::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Dials `socket_path` and consumes the hello frame.  Throws
  // std::system_error on connection failure, ProtocolError on a bad
  // hello (including a protocol version mismatch).
  [[nodiscard]] static Client connect(const std::string& socket_path);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const Hello& hello() const { return hello_; }

  // One decide round trip.
  [[nodiscard]] game::Move decide(const semantics::ConcreteState& state,
                                  std::int64_t scale);

  // Pipelining: queue a request into the send buffer...
  void send_decide(const semantics::ConcreteState& state, std::int64_t scale);
  // ...push the queued bytes to the socket...
  void flush();
  // ...and read the next in-order reply (flushes first if needed).
  [[nodiscard]] game::Move read_move();

  // Liveness round trip; throws on any failure.
  void ping();
  // The info op — the hello body, re-fetched over the wire.
  [[nodiscard]] Hello info();

  void close();

 private:
  [[nodiscard]] std::vector<std::uint8_t> read_frame();

  int fd_ = -1;
  Hello hello_;
  std::vector<std::uint8_t> send_buffer_;
  std::vector<std::uint8_t> recv_buffer_;
  std::size_t recv_at_ = 0;
};

}  // namespace tigat::serve
