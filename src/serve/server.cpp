#include "serve/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "serve/protocol.h"
#include "util/assert.h"

namespace tigat::serve {

namespace {

// Output backlog past which a non-reading client is dropped instead of
// buffered further (64 MiB: far above any sane pipelining window).
constexpr std::size_t kMaxOutputBacklog = 64u << 20;

[[noreturn]] void raise(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

// One connection, owned by exactly one worker thread (no locking).
struct Connection {
  int fd = -1;
  std::vector<std::uint8_t> in;
  std::size_t in_at = 0;  // parsed prefix of `in`
  std::vector<std::uint8_t> out;
  std::size_t out_at = 0;  // flushed prefix of `out`
  bool want_write = false;
  // Scratch state reused across decide requests (allocation-free once
  // warm).
  semantics::ConcreteState state;
};

struct Server::Worker {
  int epoll_fd = -1;
  std::unordered_map<int, Connection> conns;
};

Server::Server(const decision::DecisionTable& table, ServerConfig config)
    : table_(&table), config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  TIGAT_ASSERT(!running_.load(), "server already started");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) raise("socket");
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = ENAMETOOLONG;
    raise("socket path");
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    raise("bind/listen");
  }
  stop_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (stop_event_fd_ < 0) raise("eventfd");

  unsigned n = config_.threads;
  if (n == 0) {
    const unsigned cores = std::thread::hardware_concurrency();
    n = cores ? cores : 1;
  }
  running_.store(true);
  workers_.reserve(n);
  threads_.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->epoll_fd < 0) raise("epoll_create1");
    // Every worker polls the shared listening socket (level-triggered;
    // EPOLLEXCLUSIVE needs a newer kernel than we target).  A wakeup
    // that loses the accept race reads EAGAIN and moves on.
    epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      raise("epoll_ctl listen");
    }
    ev.events = EPOLLIN;
    ev.data.fd = stop_event_fd_;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, stop_event_fd_, &ev) !=
        0) {
      raise("epoll_ctl stop event");
    }
    workers_.push_back(std::move(worker));
  }
  for (unsigned w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { run_worker(*workers_[w]); });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) {
    // Never started (or already stopped): still release any fds from a
    // start() that threw halfway.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (stop_event_fd_ >= 0) {
      ::close(stop_event_fd_);
      stop_event_fd_ = -1;
    }
    return;
  }
  const std::uint64_t one = 1;
  // Each worker consumes no bytes from the eventfd (it only observes
  // readability and re-checks running_), so one write wakes them all.
  (void)!::write(stop_event_fd_, &one, sizeof(one));
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  for (auto& worker : workers_) {
    for (auto& [fd, conn] : worker->conns) ::close(fd);
    if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_event_fd_);
  stop_event_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
  obs::progress().emit_serve("serve-done", connections_total(),
                             requests_total(), errors_total());
}

void Server::run_worker(Worker& worker) {
  const bool metrics = obs::metrics_enabled();
  obs::Counter* req_counter =
      metrics ? &obs::metrics().counter("serve.requests") : nullptr;
  obs::Counter* conn_counter =
      metrics ? &obs::metrics().counter("serve.connections") : nullptr;
  obs::Counter* err_counter =
      metrics ? &obs::metrics().counter("serve.errors") : nullptr;

  const std::vector<std::uint8_t> hello_payload = encode_hello({
      kProtoVersion,
      table_->fingerprint(),
      table_->clock_dim(),
      static_cast<std::uint32_t>(table_->view().proc_count()),
      static_cast<std::uint32_t>(table_->view().slot_count()),
      table_->purpose_kind(),
  });

  const auto drop = [&](int fd) {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    worker.conns.erase(fd);
  };

  // Flush as much of conn.out as the socket takes; arms/disarms
  // EPOLLOUT as the backlog dictates.  False = connection died.
  const auto flush = [&](Connection& conn) {
    while (conn.out_at < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_at,
                 conn.out.size() - conn.out_at, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_at += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;  // peer went away
    }
    if (conn.out_at == conn.out.size()) {
      conn.out.clear();
      conn.out_at = 0;
    } else if (conn.out_at > (16u << 10) && conn.out_at * 2 > conn.out.size()) {
      // Compact the flushed prefix occasionally so a long-lived
      // pipelining client does not grow the buffer monotonically.
      conn.out.erase(conn.out.begin(),
                     conn.out.begin() +
                         static_cast<std::ptrdiff_t>(conn.out_at));
      conn.out_at = 0;
    }
    const bool want_write = !conn.out.empty();
    if (want_write != conn.want_write) {
      conn.want_write = want_write;
      epoll_event ev = {};
      ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
      ev.data.fd = conn.fd;
      ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
    }
    return conn.out.size() <= kMaxOutputBacklog;
  };

  // Parses and answers every complete frame buffered on `conn`.
  // False = protocol violation (connection must close after the error
  // reply drains as far as one flush can take it).
  const auto process = [&](Connection& conn) {
    bool ok = true;
    while (ok) {
      std::optional<std::span<const std::uint8_t>> frame;
      try {
        frame = next_frame(conn.in, conn.in_at);
      } catch (const ProtocolError& e) {
        const auto reply = encode_error_reply(e.what());
        append_frame(conn.out, reply);
        ok = false;
        break;
      }
      if (!frame) break;
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (req_counter) req_counter->add(1);
      if (frame->empty()) {
        append_frame(conn.out, encode_error_reply("empty request"));
        ok = false;
        break;
      }
      const std::uint8_t op = (*frame)[0];
      const std::span<const std::uint8_t> body = frame->subspan(1);
      switch (op) {
        case kOpDecide: {
          std::int64_t scale = 1;
          try {
            decode_decide_request(body, conn.state, scale);
          } catch (const ProtocolError& e) {
            append_frame(conn.out, encode_error_reply(e.what()));
            ok = false;
            break;
          }
          if (conn.state.clocks.size() != table_->clock_dim() ||
              scale <= 0) {
            append_frame(conn.out,
                         encode_error_reply("state shape mismatch"));
            ok = false;
            break;
          }
          const game::Move move = table_->decide(conn.state, scale);
          append_frame(conn.out, encode_move_reply(move));
          break;
        }
        case kOpPing: {
          const std::uint8_t okb = kStatusOk;
          append_frame(conn.out, std::span<const std::uint8_t>(&okb, 1));
          break;
        }
        case kOpInfo: {
          std::vector<std::uint8_t> reply;
          reply.reserve(1 + hello_payload.size());
          reply.push_back(kStatusOk);
          reply.insert(reply.end(), hello_payload.begin(),
                       hello_payload.end());
          append_frame(conn.out, reply);
          break;
        }
        default:
          append_frame(conn.out, encode_error_reply("unknown op"));
          ok = false;
          break;
      }
    }
    // Shed the parsed prefix of the input buffer.
    if (conn.in_at == conn.in.size()) {
      conn.in.clear();
      conn.in_at = 0;
    } else if (conn.in_at > (16u << 10)) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_at));
      conn.in_at = 0;
    }
    return ok;
  };

  epoll_event events[64];
  std::uint8_t read_buffer[1 << 16];
  while (running_.load(std::memory_order_relaxed)) {
    const int ready =
        ::epoll_wait(worker.epoll_fd, events, 64, /*timeout ms=*/500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int e = 0; e < ready; ++e) {
      const int fd = events[e].data.fd;
      if (fd == stop_event_fd_) continue;  // running_ re-checked above
      if (fd == listen_fd_) {
        for (;;) {
          const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (client < 0) break;  // EAGAIN: another worker won the race
          Connection conn;
          conn.fd = client;
          append_frame(conn.out, hello_payload);
          epoll_event ev = {};
          ev.events = EPOLLIN;
          ev.data.fd = client;
          if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, client, &ev) != 0) {
            ::close(client);
            continue;
          }
          connections_.fetch_add(1, std::memory_order_relaxed);
          if (conn_counter) conn_counter->add(1);
          auto [it, inserted] = worker.conns.emplace(client, std::move(conn));
          if (!flush(it->second)) drop(client);
        }
        continue;
      }
      const auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;
      Connection& conn = it->second;
      bool alive = true;
      if (events[e].events & (EPOLLHUP | EPOLLERR)) {
        alive = false;
      }
      if (alive && (events[e].events & EPOLLIN)) {
        for (;;) {
          const ssize_t n = ::recv(fd, read_buffer, sizeof(read_buffer), 0);
          if (n > 0) {
            conn.in.insert(conn.in.end(), read_buffer, read_buffer + n);
            if (conn.in.size() - conn.in_at >
                kMaxFrameBytes + std::size_t{64}) {
              // A frame this incomplete can never finish legally.
              alive = false;
              break;
            }
            continue;
          }
          if (n == 0) {
            alive = false;  // orderly shutdown from the client
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          alive = false;
          break;
        }
        if (alive) {
          if (!process(conn)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            if (err_counter) err_counter->add(1);
            flush(conn);  // best-effort error reply
            alive = false;
          }
        }
      }
      if (alive && !flush(conn)) alive = false;
      if (!alive) drop(fd);
    }
    obs::progress().tick_serve(connections_total(), requests_total(),
                               errors_total());
  }
}

}  // namespace tigat::serve
