// Server — the tigat-serve decide daemon core.
//
// One read-only DecisionTable (usually DecisionTable::map over a .tgs
// v3 file — zero-copy, page-cache shared) answered over a Unix-domain
// stream socket by a thread-per-core epoll pool.  decide() is
// const-thread-safe and allocation-free, so the workers share the
// table with no locks; each worker owns its connections outright
// (accepted on the worker that saw them first), giving a
// shared-nothing data path: the only cross-thread state is the
// listening socket and the atomic stats below.
//
// Responses are written in request order per connection, and clients
// may pipeline arbitrarily many requests; when a client stops reading,
// the per-connection output buffer absorbs the burst and the worker
// falls back to EPOLLOUT-driven draining (backpressure, not memory
// growth without bound: the connection is dropped past
// kMaxOutputBacklog).
//
// Observability: request counts and decide latency land in the global
// obs registry ("serve.requests", "serve.connections", "serve.errors"
// counters; "decide.latency_ns" comes from the table itself), and the
// workers feed obs::Progress serve heartbeats when enabled.
//
// start() binds and spawns the workers and returns; stop() (or
// destruction) wakes every worker, joins them, and unlinks the socket
// path.  The table must outlive the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "decision/table.h"

namespace tigat::serve {

struct ServerConfig {
  std::string socket_path;
  // Worker threads; 0 = one per online core.
  unsigned threads = 0;
  // Connections queued in the kernel before accept.
  int listen_backlog = 128;
};

class Server {
 public:
  Server(const decision::DecisionTable& table, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket (unlinking a stale path first) and spawns the
  // workers.  Throws std::system_error on socket/bind/listen failure.
  void start();

  // Signals every worker, joins them, closes all connections and
  // unlinks the socket path.  Idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Lifetime totals across all workers.
  [[nodiscard]] std::uint64_t connections_total() const {
    return connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_total() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t errors_total() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;

  void run_worker(Worker& worker);

  const decision::DecisionTable* table_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int stop_event_fd_ = -1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace tigat::serve
