#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace tigat::serve {

namespace {

[[noreturn]] void raise(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      hello_(other.hello_),
      send_buffer_(std::move(other.send_buffer_)),
      recv_buffer_(std::move(other.recv_buffer_)),
      recv_at_(std::exchange(other.recv_at_, 0)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    hello_ = other.hello_;
    send_buffer_ = std::move(other.send_buffer_);
    recv_buffer_ = std::move(other.recv_buffer_);
    recv_at_ = std::exchange(other.recv_at_, 0);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_buffer_.clear();
  recv_buffer_.clear();
  recv_at_ = 0;
}

Client Client::connect(const std::string& socket_path) {
  Client client;
  client.fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (client.fd_ < 0) raise("socket");
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    raise("socket path");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(client.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    raise("connect");
  }
  client.hello_ = decode_hello(client.read_frame());
  if (client.hello_.proto != kProtoVersion) {
    throw ProtocolError("server speaks an unsupported protocol version");
  }
  return client;
}

std::vector<std::uint8_t> Client::read_frame() {
  for (;;) {
    try {
      const auto frame =
          next_frame(std::span<const std::uint8_t>(recv_buffer_), recv_at_);
      if (frame) {
        std::vector<std::uint8_t> payload(frame->begin(), frame->end());
        if (recv_at_ == recv_buffer_.size()) {
          recv_buffer_.clear();
          recv_at_ = 0;
        }
        return payload;
      }
    } catch (const ProtocolError&) {
      close();
      throw;
    }
    std::uint8_t buffer[1 << 16];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise("recv");
    }
    if (n == 0) {
      close();
      throw ProtocolError("server closed the connection");
    }
    recv_buffer_.insert(recv_buffer_.end(), buffer, buffer + n);
  }
}

void Client::send_decide(const semantics::ConcreteState& state,
                         std::int64_t scale) {
  append_frame(send_buffer_, encode_decide_request(state, scale));
}

void Client::flush() {
  std::size_t at = 0;
  while (at < send_buffer_.size()) {
    const ssize_t n = ::send(fd_, send_buffer_.data() + at,
                             send_buffer_.size() - at, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise("send");
    }
    at += static_cast<std::size_t>(n);
  }
  send_buffer_.clear();
}

game::Move Client::read_move() {
  if (!send_buffer_.empty()) flush();
  return decode_move_reply(read_frame());
}

game::Move Client::decide(const semantics::ConcreteState& state,
                          std::int64_t scale) {
  send_decide(state, scale);
  flush();
  return decode_move_reply(read_frame());
}

void Client::ping() {
  const std::uint8_t op = kOpPing;
  append_frame(send_buffer_, std::span<const std::uint8_t>(&op, 1));
  flush();
  const std::vector<std::uint8_t> reply = read_frame();
  if (reply.size() != 1 || reply[0] != kStatusOk) {
    throw ProtocolError("bad ping reply");
  }
}

Hello Client::info() {
  const std::uint8_t op = kOpInfo;
  append_frame(send_buffer_, std::span<const std::uint8_t>(&op, 1));
  flush();
  const std::vector<std::uint8_t> reply = read_frame();
  if (reply.empty() || reply[0] != kStatusOk) {
    throw ProtocolError("bad info reply");
  }
  return decode_hello(
      std::span<const std::uint8_t>(reply.data() + 1, reply.size() - 1));
}

}  // namespace tigat::serve
