// The tigat-serve wire protocol (proto v1).
//
// A client connects to the daemon's Unix-domain socket and speaks
// little-endian, length-prefixed frames:
//
//   frame   := u32 length | payload[length]
//   hello   := u32 proto | u64 fingerprint | u32 clock_dim
//            | u32 proc_count | u32 slot_count | u32 purpose_kind
//   request := u8 op | op-specific body
//   reply   := u8 status | status/op-specific body
//
// On connect the server immediately sends one hello frame, so a client
// can check the protocol version and the table identity (the model
// fingerprint) before issuing requests.  Requests:
//
//   kDecide (1): i64 scale | u32 nl, nl×u32 locs | u32 ns, ns×i32 data
//                | u32 nc, nc×i64 clocks
//     → kOk + move: u8 kind | u8 has_edge | u32 edge | u8 has_rank
//                 | u32 rank | i64 next_decision_ticks
//   kPing   (2): empty → kOk, empty (liveness / latency probe)
//   kInfo   (3): empty → kOk + the hello body again
//
// Replies come back in request order, so clients may pipeline any
// number of requests before reading (bench_serve drives the daemon
// this way).  A malformed frame gets kBadRequest with a u32 reason
// length + UTF-8 reason, after which the server closes the connection
// — desync recovery inside one stream is not attempted.
//
// Everything here is transport-free encode/decode over byte vectors;
// serve/server.h and serve/client.h own the sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "game/strategy.h"
#include "semantics/concrete.h"

namespace tigat::serve {

inline constexpr std::uint32_t kProtoVersion = 1;

// Upper bound on any frame this implementation sends or accepts.  A
// decide request for a big model is a few KiB; 1 MiB leaves slack
// without letting a corrupt length prefix allocate gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum Op : std::uint8_t {
  kOpDecide = 1,
  kOpPing = 2,
  kOpInfo = 3,
};

enum Status : std::uint8_t {
  kStatusOk = 0,
  kStatusBadRequest = 1,
};

// The hello / info body: protocol + table identity.
struct Hello {
  std::uint32_t proto = kProtoVersion;
  std::uint64_t fingerprint = 0;
  std::uint32_t clock_dim = 0;
  std::uint32_t proc_count = 0;
  std::uint32_t slot_count = 0;
  std::uint32_t purpose_kind = 0;

  [[nodiscard]] bool operator==(const Hello&) const = default;
};

// Raised by decoders on malformed frames (short body, counts past the
// frame, unknown op/status).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ── framing ─────────────────────────────────────────────────────────

// Appends `payload` to `out` as one frame (u32 length prefix).
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

// If `in` starting at `at` holds a complete frame, returns its payload
// (pointing into `in`) and advances `at` past it; std::nullopt when
// more bytes are needed.  Throws ProtocolError when the length prefix
// exceeds kMaxFrameBytes.
[[nodiscard]] std::optional<std::span<const std::uint8_t>> next_frame(
    std::span<const std::uint8_t> in, std::size_t& at);

// ── payload codecs (no length prefix; compose with append_frame) ────

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& hello);
[[nodiscard]] Hello decode_hello(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_decide_request(
    const semantics::ConcreteState& state, std::int64_t scale);
// Decodes a kDecide body (everything after the op byte) into `state`
// (resized/overwritten — reuse one scratch state per connection).
void decode_decide_request(std::span<const std::uint8_t> body,
                           semantics::ConcreteState& state,
                           std::int64_t& scale);

[[nodiscard]] std::vector<std::uint8_t> encode_move_reply(
    const game::Move& move);
[[nodiscard]] game::Move decode_move_reply(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_error_reply(
    const std::string& reason);

}  // namespace tigat::serve
