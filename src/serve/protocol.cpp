#include "serve/protocol.h"

#include <cstring>

namespace tigat::serve {

namespace {

// Little-endian append helpers over a byte vector.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) out.push_back((v >> (8 * k)) & 0xff);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) out.push_back((v >> (8 * k)) & 0xff);
}
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

// Bounds-checked little-endian cursor over a payload.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return bytes_[at_++];
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) v |= std::uint32_t{bytes_[at_++]} << (8 * k);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= std::uint64_t{bytes_[at_++]} << (8 * k);
    return v;
  }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(u32());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  // A count of `element_size`-byte records that must still fit in the
  // remaining payload — rejects forged counts before any allocation.
  [[nodiscard]] std::uint32_t count(std::size_t element_size) {
    const std::uint32_t n = u32();
    if (std::size_t{n} > (bytes_.size() - at_) / element_size) {
      throw ProtocolError("frame count exceeds payload");
    }
    return n;
  }
  void expect_end() const {
    if (at_ != bytes_.size()) throw ProtocolError("trailing bytes in frame");
  }

 private:
  void need(std::size_t n) {
    if (bytes_.size() - at_ < n) throw ProtocolError("frame truncated");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

}  // namespace

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::optional<std::span<const std::uint8_t>> next_frame(
    std::span<const std::uint8_t> in, std::size_t& at) {
  if (in.size() - at < 4) return std::nullopt;
  std::uint32_t length = 0;
  std::memcpy(&length, in.data() + at, 4);
  if (length > kMaxFrameBytes) {
    throw ProtocolError("frame length exceeds limit");
  }
  if (in.size() - at - 4 < length) return std::nullopt;
  const std::span<const std::uint8_t> payload = in.subspan(at + 4, length);
  at += 4 + std::size_t{length};
  return payload;
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 8 + 4 * 4);
  put_u32(out, hello.proto);
  put_u64(out, hello.fingerprint);
  put_u32(out, hello.clock_dim);
  put_u32(out, hello.proc_count);
  put_u32(out, hello.slot_count);
  put_u32(out, hello.purpose_kind);
  return out;
}

Hello decode_hello(std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  Hello hello;
  hello.proto = c.u32();
  hello.fingerprint = c.u64();
  hello.clock_dim = c.u32();
  hello.proc_count = c.u32();
  hello.slot_count = c.u32();
  hello.purpose_kind = c.u32();
  c.expect_end();
  return hello;
}

std::vector<std::uint8_t> encode_decide_request(
    const semantics::ConcreteState& state, std::int64_t scale) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 12 + 4 * state.locs.size() +
              4 * state.data.slot_count() + 8 * state.clocks.size());
  put_u8(out, kOpDecide);
  put_i64(out, scale);
  put_u32(out, static_cast<std::uint32_t>(state.locs.size()));
  for (const std::uint32_t l : state.locs) put_u32(out, l);
  put_u32(out, static_cast<std::uint32_t>(state.data.slot_count()));
  for (const std::int32_t v : state.data.values()) put_i32(out, v);
  put_u32(out, static_cast<std::uint32_t>(state.clocks.size()));
  for (const std::int64_t c : state.clocks) put_i64(out, c);
  return out;
}

void decode_decide_request(std::span<const std::uint8_t> body,
                           semantics::ConcreteState& state,
                           std::int64_t& scale) {
  Cursor c(body);
  scale = c.i64();
  const std::uint32_t nl = c.count(4);
  state.locs.resize(nl);
  for (std::uint32_t k = 0; k < nl; ++k) state.locs[k] = c.u32();
  const std::uint32_t ns = c.count(4);
  if (state.data.slot_count() == ns) {
    for (std::uint32_t k = 0; k < ns; ++k) state.data.set(k, c.i32());
  } else {
    std::vector<std::int32_t> values(ns);
    for (std::uint32_t k = 0; k < ns; ++k) values[k] = c.i32();
    state.data = tsystem::DataState(std::move(values));
  }
  const std::uint32_t nc = c.count(8);
  state.clocks.resize(nc);
  for (std::uint32_t k = 0; k < nc; ++k) state.clocks[k] = c.i64();
  c.expect_end();
}

std::vector<std::uint8_t> encode_move_reply(const game::Move& move) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 1 + 1 + 4 + 1 + 4 + 8);
  put_u8(out, kStatusOk);
  put_u8(out, static_cast<std::uint8_t>(move.kind));
  put_u8(out, move.edge.has_value() ? 1 : 0);
  put_u32(out, move.edge.value_or(0));
  put_u8(out, move.rank.has_value() ? 1 : 0);
  put_u32(out, move.rank.value_or(0));
  put_i64(out, move.next_decision_ticks);
  return out;
}

game::Move decode_move_reply(std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  const std::uint8_t status = c.u8();
  if (status != kStatusOk) {
    const std::uint32_t n = c.count(1);
    std::string reason(n, '\0');
    for (std::uint32_t k = 0; k < n; ++k) reason[k] = static_cast<char>(c.u8());
    throw ProtocolError("server rejected request: " + reason);
  }
  game::Move move;
  const std::uint8_t kind = c.u8();
  if (kind > static_cast<std::uint8_t>(game::MoveKind::kUnwinnable)) {
    throw ProtocolError("bad move kind in reply");
  }
  move.kind = static_cast<game::MoveKind>(kind);
  const bool has_edge = c.u8() != 0;
  const std::uint32_t edge = c.u32();
  if (has_edge) move.edge = edge;
  const bool has_rank = c.u8() != 0;
  const std::uint32_t rank = c.u32();
  if (has_rank) move.rank = rank;
  move.next_decision_ticks = c.i64();
  c.expect_end();
  return move;
}

std::vector<std::uint8_t> encode_error_reply(const std::string& reason) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 4 + reason.size());
  put_u8(out, kStatusBadRequest);
  put_u32(out, static_cast<std::uint32_t>(reason.size()));
  for (const char ch : reason) put_u8(out, static_cast<std::uint8_t>(ch));
  return out;
}

}  // namespace tigat::serve
