// Fixed-width table rendering for the benchmark harnesses.
//
// The Table 1 reproduction prints the same row/column layout as the
// paper; this helper keeps the column alignment logic out of the
// benchmark binaries.
#pragma once

#include <string>
#include <vector>

namespace tigat::util {

class TablePrinter {
 public:
  // `headers` fixes the column count; every row must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Renders with a header underline; columns are right-aligned except
  // the first (row label).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tigat::util
