#include "util/cancel.h"

#include <chrono>

namespace tigat::util {

std::int64_t Deadline::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Deadline::arm_ms(std::int64_t budget_ms) noexcept {
  cancelled_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(now_ns() + budget_ms * 1'000'000,
                     std::memory_order_relaxed);
}

void Deadline::disarm() noexcept {
  cancelled_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(kUnarmed, std::memory_order_relaxed);
}

void Deadline::cancel() noexcept {
  cancelled_.store(true, std::memory_order_relaxed);
}

bool Deadline::armed() const noexcept {
  return deadline_ns_.load(std::memory_order_relaxed) != kUnarmed;
}

bool Deadline::expired() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  const std::int64_t t = deadline_ns_.load(std::memory_order_relaxed);
  return t != kUnarmed && now_ns() >= t;
}

std::int64_t Deadline::remaining_ms() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return 0;
  const std::int64_t t = deadline_ns_.load(std::memory_order_relaxed);
  if (t == kUnarmed) return kUnarmed / 1'000'000;
  const std::int64_t left = t - now_ns();
  return left > 0 ? left / 1'000'000 : 0;
}

}  // namespace tigat::util
