// Small deterministic PRNG (splitmix64) for property tests, randomized
// model generation and the chaotic-environment simulators.
//
// Determinism matters: every randomized test logs its seed so a failure
// reproduces exactly; std::mt19937 would work but its state is bulky and
// its distributions are not portable across standard libraries.
#pragma once

#include <cstdint>

namespace tigat::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return next() % den < num;
  }

  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace tigat::util
