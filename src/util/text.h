// Small string helpers shared by the pretty printers and parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tigat::util {

// Joins `parts` with `sep`; empty input gives "".
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tigat::util
