#include "util/assert.h"

#include <cstdio>
#include <cstdlib>

namespace tigat::util {

void assert_fail(const char* file, int line, std::string_view message) {
  std::fprintf(stderr, "%s:%d: assertion failed: %.*s\n", file, line,
               static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace tigat::util
