// Byte accounting for the symbolic data structures.
//
// Table 1 of the paper reports the memory consumed by strategy
// generation.  Rather than sampling the process RSS (noisy, allocator
// dependent) the library keeps exact counters of the bytes held by
// zones, federations and symbolic-state tables.  Each counted structure
// calls `add`/`sub` from its constructor/destructor; `peak()` gives the
// high-water mark that the benchmark harness prints.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tigat::util {

class MemoryMeter {
 public:
  void add(std::size_t bytes) noexcept {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }
  void sub(std::size_t bytes) noexcept {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  [[nodiscard]] std::size_t current() const noexcept { return current_; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }

  // Forgets the history; used between benchmark cells.
  void reset() noexcept {
    current_ = 0;
    peak_ = 0;
  }
  // Keeps the live bytes but restarts the high-water mark from them.
  void reset_peak() noexcept { peak_ = current_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

// Process-wide meter used by the zone layer.  Single-threaded by design
// (the solver itself is single-threaded, as was UPPAAL-TIGA in 2008);
// keeping the counter plain avoids atomic traffic on the hottest path.
MemoryMeter& zone_memory() noexcept;

double to_mebibytes(std::size_t bytes) noexcept;

}  // namespace tigat::util
