// Byte accounting for the symbolic data structures.
//
// Table 1 of the paper reports the memory consumed by strategy
// generation.  Rather than sampling the process RSS (noisy, allocator
// dependent) the library keeps exact counters of the bytes held by
// zones, federations and symbolic-state tables.  Each counted structure
// calls `add`/`sub` from its constructor/destructor; `peak()` gives the
// high-water mark that the benchmark harness prints.
//
// The counters are relaxed atomics: the parallel solving pipeline
// (util::ThreadPool) constructs and destroys zones on every worker, so
// the meter must be race-free.  Relaxed ordering is enough — the
// counts are statistics, not synchronisation — and keeps the cost to
// one uncontended RMW per zone, which is noise next to the O(dim²)
// work every zone represents.  `peak` is maintained with a CAS loop
// and is exact up to the usual concurrent-high-water caveat (two
// simultaneous `add`s may each observe the pre-update peak; the final
// value still bounds every individually observed `current`).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tigat::util {

class MemoryMeter {
 public:
  void add(std::size_t bytes) noexcept {
    const std::size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void sub(std::size_t bytes) noexcept {
    // Clamped at zero (a reset() may race live zones); CAS keeps the
    // clamp exact under concurrency.
    std::size_t cur = current_.load(std::memory_order_relaxed);
    while (!current_.compare_exchange_weak(cur, bytes > cur ? 0 : cur - bytes,
                                           std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::size_t current() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  // Forgets the history; used between benchmark cells.
  void reset() noexcept {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }
  // Keeps the live bytes but restarts the high-water mark from them.
  void reset_peak() noexcept {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
};

// Process-wide meter used by the zone layer.
MemoryMeter& zone_memory() noexcept;

// Process high-water RSS from the OS (0 where unsupported).  The
// counters above measure the zone layer exactly; this measures
// everything — keys, edges, allocator overhead — and is what the
// bench harness reports alongside them.
std::size_t peak_rss_bytes() noexcept;

double to_mebibytes(std::size_t bytes) noexcept;

}  // namespace tigat::util
