#include "util/table_printer.h"

#include "util/assert.h"

namespace tigat::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TIGAT_ASSERT(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  TIGAT_ASSERT(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (c == 0) {
        out += row[c];
        out.append(pad, ' ');
      } else {
        out += "  ";
        out.append(pad, ' ');
        out += row[c];
      }
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace tigat::util
