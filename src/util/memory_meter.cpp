#include "util/memory_meter.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace tigat::util {

MemoryMeter& zone_memory() noexcept {
  static MemoryMeter meter;
  return meter;
}

std::size_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

double to_mebibytes(std::size_t bytes) noexcept {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace tigat::util
