#include "util/memory_meter.h"

namespace tigat::util {

MemoryMeter& zone_memory() noexcept {
  static MemoryMeter meter;
  return meter;
}

double to_mebibytes(std::size_t bytes) noexcept {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace tigat::util
