// A small fork-join worker pool for the solving pipeline.
//
// The only primitive is `parallel_for`: split an index range into
// chunks and let every thread — the caller included — steal chunks
// from a shared atomic cursor until the range is drained.  Chunk
// stealing gives dynamic load balancing (zone workloads are wildly
// uneven: one key's pred_t may cost 1000× its neighbour's) without any
// per-task allocation.
//
// Determinism contract: parallel_for assigns *work*, never *results*.
// Callers write each index's result into a preallocated slot and merge
// serially in index order afterwards; with that discipline the output
// is bit-identical for any worker count, which the game solver relies
// on (see game/solver.cpp) and tests/solver_determinism_test.cpp
// checks.
//
// Exceptions thrown by the body are caught, the remaining chunks are
// drained without running the body, and the first exception is
// rethrown on the calling thread once the range is complete — so
// ExplorationLimit and friends propagate exactly as in serial code.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tigat::util {

class ThreadPool {
 public:
  // `threads` counts total workers including the calling thread;
  // 0 means hardware_concurrency().  `threads <= 1` spawns nothing and
  // parallel_for degenerates to a plain loop.
  explicit ThreadPool(unsigned threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  // Total threads that participate in a parallel_for (callers + pool).
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  // Runs body(begin, end) over disjoint chunks covering [0, n), each at
  // most `grain` wide.  Blocks until every chunk completed.  Not
  // reentrant (the body must not call parallel_for on the same pool).
  // `label` (a string literal, or nullptr for none) names the job in
  // the obs trace: each participating thread records one span covering
  // its share of the chunks.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    const char* label = nullptr);

  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;       // workers: a new job was posted
  std::condition_variable finished_;   // caller: all items completed
  bool stop_ = false;
  std::uint64_t epoch_ = 0;  // bumped per job so late wakers never rerun one
  std::size_t acked_ = 0;    // workers done with the current epoch

  // Current job.  The fields are written under mutex_ when a job is
  // posted and read by workers after they observe the new epoch under
  // the same mutex; parallel_for does not return (and thus cannot
  // repost) until every worker acked the epoch from inside the lock.
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  const char* label_ = nullptr;  // trace span name for the current job
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> cursor_{0};  // next unclaimed index
  std::atomic<bool> aborted_{false};    // a body threw; skip remaining
  std::exception_ptr error_;            // first body exception (mutex_)
};

}  // namespace tigat::util
