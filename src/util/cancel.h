// Cooperative cancellation for test runs: a re-armable wall-clock
// deadline plus a manual trip wire, shared by everything on one run's
// critical path (the executor's step loop, a FaultInjector's simulated
// hang, a campaign watchdog).
//
// Nothing here preempts anything — holders must poll expired() at
// their own granularity (the executors check once per step, the fault
// injector once per sleep slice).  That is deliberate: preemptive
// cancellation of a thread in the middle of monitor/DBM updates would
// corrupt state; polling keeps every exit path an ordinary return.
//
// expired() is two relaxed atomic loads and a steady_clock read; cheap
// enough for per-step use.  An unarmed Deadline never expires, so a
// nullptr-or-unarmed deadline is the "no budget" configuration.
#pragma once

#include <atomic>
#include <cstdint>

namespace tigat::util {

class Deadline {
 public:
  Deadline() = default;

  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  // Starts (or restarts) a wall-clock budget of `budget_ms` from now
  // and clears any previous cancel().  A budget of 0 expires
  // immediately (useful for tests of the expiry path).
  void arm_ms(std::int64_t budget_ms) noexcept;

  // Back to the never-expires state.
  void disarm() noexcept;

  // Manual trip: expired() is true until the next arm_ms/disarm,
  // regardless of the clock.  Safe from any thread (e.g. a signal
  // handler shim or a campaign-level abort).
  void cancel() noexcept;

  [[nodiscard]] bool armed() const noexcept;

  // True iff cancelled, or armed and past the budget.
  [[nodiscard]] bool expired() const noexcept;

  // Milliseconds left before expiry; 0 when expired, a large positive
  // value when unarmed.  Pollers use it to size sleep slices.
  [[nodiscard]] std::int64_t remaining_ms() const noexcept;

 private:
  [[nodiscard]] static std::int64_t now_ns() noexcept;

  static constexpr std::int64_t kUnarmed = std::int64_t{1} << 62;

  std::atomic<std::int64_t> deadline_ns_{kUnarmed};  // steady_clock epoch
  std::atomic<bool> cancelled_{false};
};

}  // namespace tigat::util
