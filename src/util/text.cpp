#include "util/text.h"

#include <cstdarg>
#include <cstdio>

namespace tigat::util {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tigat::util
