// Wall-clock stopwatch used by the benchmark harnesses.
#pragma once

#include <chrono>

namespace tigat::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tigat::util
