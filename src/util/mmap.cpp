#include "util/mmap.h"

#include <cerrno>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tigat::util {

namespace {

[[noreturn]] void raise(const char* what, const std::string& path) {
  throw std::system_error(errno, std::generic_category(),
                          std::string(what) + " '" + path + "'");
}

}  // namespace

MappedFile::~MappedFile() { close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) raise("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    raise("cannot stat", path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    errno = EINVAL;
    raise("cannot map empty file", path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The fd only anchors the mapping; the mapping itself keeps the file
  // referenced after close.
  ::close(fd);
  if (addr == MAP_FAILED) raise("cannot mmap", path);
  MappedFile out;
  out.data_ = static_cast<const std::uint8_t*>(addr);
  out.size_ = size;
  return out;
}

void MappedFile::close() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace tigat::util
