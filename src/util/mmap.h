// MappedFile — a read-only, shared, page-cache-backed view of a file.
//
// The zero-copy serving path (`.tgs` v3, decision/view.h) needs the
// whole table resident as one contiguous byte image without reading it
// into process-private heap: `mmap(PROT_READ, MAP_SHARED)` gives every
// serving process the same physical pages, makes cold start O(1) in
// the table size, and lets the kernel evict and refault pages under
// memory pressure.  This wrapper owns exactly one mapping: open() maps
// the entire file, the destructor unmaps, moves transfer ownership
// (the mapped address is stable across moves, so non-owning views into
// the bytes stay valid).
//
// Errors (missing file, empty file, mmap failure) throw
// std::system_error carrying errno, so callers can distinguish I/O
// failures from format errors in the bytes themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace tigat::util {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only in full.  Throws std::system_error on any
  // OS-level failure (open, fstat, mmap) and for empty files (zero
  // bytes cannot be mapped; no valid .tgs is empty anyway).
  [[nodiscard]] static MappedFile open(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept { return data_ != nullptr; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }

  void close() noexcept;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tigat::util
