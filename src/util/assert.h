// Lightweight always-on assertion support.
//
// TIGAT_ASSERT checks internal invariants of the library (canonical DBM
// form, index ranges, ...).  Unlike <cassert> it is active in every build
// type: the symbolic algorithms are subtle enough that silently corrupt
// zones are far more expensive than the check.  The checks on hot paths
// are O(1); expensive diagnostics belong under TIGAT_DEBUG_ASSERT which
// compiles away in release builds.
#pragma once

#include <string_view>

namespace tigat::util {

// Prints `file:line: message` to stderr and aborts.  Out-of-line so the
// macro expansion stays tiny.
[[noreturn]] void assert_fail(const char* file, int line, std::string_view message);

}  // namespace tigat::util

#define TIGAT_ASSERT(cond, message)                                   \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::tigat::util::assert_fail(__FILE__, __LINE__, (message));      \
    }                                                                 \
  } while (false)

#ifndef NDEBUG
#define TIGAT_DEBUG_ASSERT(cond, message) TIGAT_ASSERT(cond, message)
#else
#define TIGAT_DEBUG_ASSERT(cond, message) \
  do {                                    \
  } while (false)
#endif
