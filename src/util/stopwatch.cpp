#include "util/stopwatch.h"

// Header-only in practice; this translation unit pins the vtable-free
// class into the library so every module shares one definition.
