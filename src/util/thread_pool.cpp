#include "util/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <string>

#ifdef __linux__
#include <pthread.h>
#endif

#include "obs/trace.h"

namespace tigat::util {

namespace {

// Names a worker for the obs trace, and at the OS level where
// supported, so trace rows, TSan reports and `top -H` all agree on
// which thread is which.
void name_worker(unsigned index) {
  char name[16];  // pthread limit: 15 chars + NUL
  std::snprintf(name, sizeof name, "tigat-w%u", index);
#ifdef __linux__
  pthread_setname_np(pthread_self(), name);
#endif
  obs::set_thread_name(name);
}

}  // namespace

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      name_worker(i);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    lock.unlock();
    run_chunks();
    lock.lock();
    // Ack the epoch and go straight back to wait without dropping the
    // mutex: after `acked_` reaches the worker count the caller knows
    // every worker is parked, so reposting can never race run_chunks.
    ++acked_;
    finished_.notify_all();
  }
}

void ThreadPool::run_chunks() {
  // One span per participating thread per job — the per-worker rows in
  // the trace.  Chunks inside it are too fine-grained to record
  // individually.
  TIGAT_SPAN(label_ != nullptr ? label_ : "parallel_for");
  // Claim chunks until the cursor runs off the end.  After a body
  // exception the remaining chunks are still claimed but skipped, so
  // the range drains and the first exception reaches the caller.
  for (;;) {
    const std::size_t begin =
        cursor_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= n_) return;
    const std::size_t end = std::min(begin + grain_, n_);
    if (aborted_.load(std::memory_order_acquire)) continue;
    try {
      (*body_)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      aborted_.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    const char* label) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (workers_.empty() || n <= grain) {
    TIGAT_SPAN(label != nullptr ? label : "parallel_for");
    body(0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    label_ = label;
    n_ = n;
    grain_ = grain;
    cursor_.store(0, std::memory_order_relaxed);
    aborted_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    acked_ = 0;
    ++epoch_;
  }
  wake_.notify_all();
  run_chunks();  // the caller participates
  // Wait until every worker acked the epoch (all are parked in wait
  // again); only then is it safe to return — releasing whatever the
  // body captured — or to post the next job.
  std::unique_lock<std::mutex> lock(mutex_);
  finished_.wait(lock, [&] { return acked_ == workers_.size(); });
  const std::exception_ptr err = error_;
  error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace tigat::util
