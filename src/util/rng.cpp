#include "util/rng.h"

// Intentionally empty: Rng is header-only, the file keeps the module's
// translation-unit list uniform.
