// A striped concurrent interner: find-or-insert of keys from many
// threads, with DETERMINISTIC global numbering.
//
// Keys are sharded by hash into S stripes.  Each stripe is a chained
// hash table whose bucket heads are atomics — lookups are lock-free
// (acquire-load the head, walk immutable chain links) and only
// insertion takes the stripe's mutex, so concurrent workers contend
// only when their keys land in the same stripe at the same time.
//
// Numbering protocol (the part the parallel zone-graph exploration
// leans on, see semantics/symbolic.cpp): work proceeds in WAVES.
// During a wave, workers intern keys carrying a caller-chosen RANK —
// the key's position in the serial processing order of the wave.  A
// racing duplicate intern keeps the MINIMUM rank (CAS loop), which is
// a deterministic function of the wave's content.  Between waves the
// (serial) caller invokes seal_wave(): the entries interned since the
// last seal are sorted by rank and numbered sequentially — exactly the
// first-encounter order a serial FIFO would have produced, whatever
// the thread count.  Ids are written and read only in serial phases
// (or after a fork-join barrier), so they stay plain fields.
//
// Each entry owns an Aux payload slot filled by the thread that won
// the insertion race (intern() returns inserted=true exactly once per
// key).  The slot is written after publication but only read after
// the wave's join barrier, which establishes the happens-before edge.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/assert.h"

namespace tigat::util {

template <class Key, class Aux>
class StripedInternMap {
 public:
  static constexpr std::uint32_t kUnassigned = 0xffffffffu;

  struct Entry {
    Entry(Key k, std::size_t h, Entry* n, std::uint64_t r)
        : key(std::move(k)), hash(h), next(n), rank(r) {}

    Key key;                 // immutable after publication
    std::size_t hash;        // cached full hash of `key`
    Entry* next;             // bucket chain; immutable after publication
    std::atomic<std::uint64_t> rank;  // min discovery rank of the open wave
    std::uint32_t id = kUnassigned;   // global number; serial phases only
    Aux aux{};               // payload; written once by the inserting thread
  };

  explicit StripedInternMap(std::uint32_t stripes = kDefaultStripes)
      : stripe_count_(round_up_pow2(stripes)),
        stripe_mask_(stripe_count_ - 1),
        stripes_(std::make_unique<Stripe[]>(stripe_count_)) {
    for (std::uint32_t s = 0; s < stripe_count_; ++s) {
      stripes_[s].rebuild(kInitialBuckets);
    }
  }

  // Find-or-insert; safe for concurrent callers.  `hash` must be the
  // key's hash, `rank` the caller's deterministic discovery rank (see
  // the file comment).  Returns the entry and whether this call
  // inserted it (the inserting caller owns the one-time aux write).
  std::pair<Entry*, bool> intern(Key&& key, std::size_t hash,
                                 std::uint64_t rank) {
    Stripe& s = stripes_[stripe_of(hash)];
    const std::size_t b = hash & s.bucket_mask;
    // Lock-free fast path: the release-store publishing a head makes
    // the entry's fields (and every older chain member) visible.
    if (Entry* e = probe(s.buckets[b].load(std::memory_order_acquire), key,
                         hash)) {
      note_rank(*e, rank);
      return {e, false};
    }
    std::lock_guard<std::mutex> lock(s.mutex);
    // Re-probe under the lock: a racing inserter may have won.
    std::atomic<Entry*>& head = s.buckets[hash & s.bucket_mask];
    if (Entry* e = probe(head.load(std::memory_order_relaxed), key, hash)) {
      note_rank(*e, rank);
      return {e, false};
    }
    s.entries.emplace_back(std::move(key), hash,
                           head.load(std::memory_order_relaxed), rank);
    Entry* e = &s.entries.back();
    s.pending.push_back(e);
    head.store(e, std::memory_order_release);
    return {e, true};
  }

  // Lock-free lookup; nullptr when the key was never interned.
  [[nodiscard]] Entry* find(const Key& key, std::size_t hash) const {
    const Stripe& s = stripes_[stripe_of(hash)];
    const std::size_t b = hash & s.bucket_mask;
    return probe(s.buckets[b].load(std::memory_order_acquire), key, hash);
  }

  // Serial, between waves: numbers every entry interned since the last
  // seal in ascending rank order (= the serial first-encounter order;
  // ranks of distinct new keys are distinct because a key's min rank
  // is the rank of its first discovery, and each rank names exactly
  // one successor).  Also grows overloaded stripe tables — legal only
  // here, while no reader is concurrent.  Returns the new entries in
  // id order.
  std::span<Entry* const> seal_wave() {
    wave_.clear();
    for (std::uint32_t si = 0; si < stripe_count_; ++si) {
      Stripe& s = stripes_[si];
      wave_.insert(wave_.end(), s.pending.begin(), s.pending.end());
      s.pending.clear();
      if (s.entries.size() > 2 * (s.bucket_mask + 1)) {
        s.rebuild(4 * (s.bucket_mask + 1));
      }
    }
    std::sort(wave_.begin(), wave_.end(), [](const Entry* a, const Entry* b) {
      return a->rank.load(std::memory_order_relaxed) <
             b->rank.load(std::memory_order_relaxed);
    });
    for (Entry* e : wave_) {
      e->id = static_cast<std::uint32_t>(by_id_.size());
      by_id_.push_back(e);
    }
    return {by_id_.data() + by_id_.size() - wave_.size(), wave_.size()};
  }

  // Entries numbered so far (serial phases / after a join).
  [[nodiscard]] std::size_t size() const noexcept { return by_id_.size(); }
  [[nodiscard]] Entry* entry(std::uint32_t id) const { return by_id_[id]; }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t total = by_id_.capacity() * sizeof(Entry*);
    for (std::uint32_t s = 0; s < stripe_count_; ++s) {
      total += stripes_[s].entries.size() * sizeof(Entry) +
               (stripes_[s].bucket_mask + 1) * sizeof(std::atomic<Entry*>);
    }
    return total;
  }

  [[nodiscard]] std::uint32_t stripe_count() const noexcept {
    return stripe_count_;
  }

 private:
  static constexpr std::uint32_t kDefaultStripes = 64;
  static constexpr std::size_t kInitialBuckets = 1024;

  struct Stripe {
    std::mutex mutex;
    std::vector<std::atomic<Entry*>> buckets;
    std::size_t bucket_mask = 0;
    std::deque<Entry> entries;       // stable addresses
    std::vector<Entry*> pending;     // interned but not yet numbered

    // Serial only (constructor / seal_wave): no concurrent readers.
    void rebuild(std::size_t n_buckets) {
      std::vector<std::atomic<Entry*>> fresh(n_buckets);
      for (auto& b : fresh) b.store(nullptr, std::memory_order_relaxed);
      bucket_mask = n_buckets - 1;
      for (Entry& e : entries) {
        std::atomic<Entry*>& head = fresh[e.hash & bucket_mask];
        e.next = head.load(std::memory_order_relaxed);
        head.store(&e, std::memory_order_relaxed);
      }
      buckets = std::move(fresh);
    }
  };

  static std::uint32_t round_up_pow2(std::uint32_t v) {
    std::uint32_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  // Stripe selection remixes the hash and uses HIGH bits so stripe and
  // bucket indices (raw low bits) stay independent even for weak hashes.
  [[nodiscard]] std::uint32_t stripe_of(std::size_t hash) const noexcept {
    const std::uint64_t mixed =
        static_cast<std::uint64_t>(hash) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>(mixed >> 48) & stripe_mask_;
  }

  static Entry* probe(Entry* head, const Key& key, std::size_t hash) {
    for (Entry* e = head; e != nullptr; e = e->next) {
      if (e->hash == hash && e->key == key) return e;
    }
    return nullptr;
  }

  static void note_rank(Entry& e, std::uint64_t rank) {
    std::uint64_t cur = e.rank.load(std::memory_order_relaxed);
    while (rank < cur && !e.rank.compare_exchange_weak(
                             cur, rank, std::memory_order_relaxed)) {
    }
  }

  std::uint32_t stripe_count_;
  std::uint32_t stripe_mask_;
  std::unique_ptr<Stripe[]> stripes_;
  std::vector<Entry*> by_id_;   // id → entry (serial phases)
  std::vector<Entry*> wave_;    // seal_wave scratch
};

}  // namespace tigat::util
