#include "tsystem/data.h"

#include "util/text.h"

namespace tigat::tsystem {

std::size_t DataState::hash() const noexcept {
  std::size_t h = 0x9e3779b9u;
  for (const std::int32_t v : values_) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(v)) + 0x9e3779b9u +
         (h << 6) + (h >> 2);
  }
  return h;
}

VarId DataLayout::add_scalar(std::string name, std::int32_t lo, std::int32_t hi,
                             std::int32_t init) {
  const VarId id = add_array(std::move(name), 1, lo, hi, init);
  decls_[id.index].declared_array = false;
  return id;
}

VarId DataLayout::add_array(std::string name, std::uint32_t size,
                            std::int32_t lo, std::int32_t hi,
                            std::int32_t init) {
  if (size == 0) throw ModelError("array '" + name + "' has size 0");
  if (lo > hi) throw ModelError("variable '" + name + "' has empty range");
  if (init < lo || init > hi) {
    throw ModelError("initial value of '" + name + "' outside range");
  }
  if (find(name)) throw ModelError("duplicate variable '" + name + "'");
  VarDecl d;
  d.name = std::move(name);
  d.lo = lo;
  d.hi = hi;
  d.init = init;
  d.size = size;
  d.declared_array = true;
  d.first_slot = next_slot_;
  next_slot_ += size;
  decls_.push_back(std::move(d));
  return VarId{static_cast<std::uint32_t>(decls_.size() - 1)};
}

std::optional<VarId> DataLayout::find(const std::string& name) const {
  for (std::uint32_t i = 0; i < decls_.size(); ++i) {
    if (decls_[i].name == name) return VarId{i};
  }
  return std::nullopt;
}

DataState DataLayout::initial_state() const {
  std::vector<std::int32_t> values(next_slot_);
  for (const VarDecl& d : decls_) {
    for (std::uint32_t k = 0; k < d.size; ++k) values[d.first_slot + k] = d.init;
  }
  return DataState(std::move(values));
}

std::uint32_t DataLayout::slot_of(VarId id, std::int64_t index) const {
  const VarDecl& d = decl(id);
  if (index < 0 || index >= static_cast<std::int64_t>(d.size)) {
    throw ModelError(util::format("index %lld out of range for '%s[%u]'",
                                  static_cast<long long>(index),
                                  d.name.c_str(), d.size));
  }
  return d.first_slot + static_cast<std::uint32_t>(index);
}

void DataLayout::checked_store(DataState& state, VarId id, std::int64_t index,
                               std::int64_t value) const {
  const VarDecl& d = decl(id);
  if (value < d.lo || value > d.hi) {
    throw ModelError(util::format("assignment %s := %lld outside [%d, %d]",
                                  d.name.c_str(), static_cast<long long>(value),
                                  d.lo, d.hi));
  }
  state.set(slot_of(id, index), static_cast<std::int32_t>(value));
}

std::string DataLayout::slot_name(std::uint32_t slot) const {
  for (const VarDecl& d : decls_) {
    if (slot >= d.first_slot && slot < d.first_slot + d.size) {
      if (d.is_array()) {
        return util::format("%s[%u]", d.name.c_str(), slot - d.first_slot);
      }
      return d.name;
    }
  }
  return util::format("slot%u", slot);
}

}  // namespace tigat::tsystem
