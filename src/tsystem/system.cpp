#include "tsystem/system.h"

#include <algorithm>

#include "util/assert.h"
#include "util/text.h"

namespace tigat::tsystem {

// ── EdgeBuilder ───────────────────────────────────────────────────────

Edge& EdgeBuilder::edge() { return process_->edges_[edge_]; }

EdgeBuilder& EdgeBuilder::guard(ClockConstraint c) {
  edge().guard.push_back(c);
  return *this;
}

EdgeBuilder& EdgeBuilder::guard(std::initializer_list<ClockConstraint> cs) {
  for (const auto& c : cs) edge().guard.push_back(c);
  return *this;
}

EdgeBuilder& EdgeBuilder::provided(Expr data_guard) {
  Edge& e = edge();
  e.data_guard = e.data_guard.is_null()
                     ? std::move(data_guard)
                     : (e.data_guard && std::move(data_guard));
  return *this;
}

EdgeBuilder& EdgeBuilder::send(ChannelId chan) {
  Edge& e = edge();
  e.sync = SyncKind::kSend;
  e.channel = chan;
  return *this;
}

EdgeBuilder& EdgeBuilder::receive(ChannelId chan) {
  Edge& e = edge();
  e.sync = SyncKind::kReceive;
  e.channel = chan;
  return *this;
}

EdgeBuilder& EdgeBuilder::reset(Clock x, dbm::bound_t value) {
  edge().resets.push_back({x.id, value});
  return *this;
}

EdgeBuilder& EdgeBuilder::assign(VarId var, Expr rhs) {
  edge().assignments.push_back({var, Expr(), std::move(rhs)});
  return *this;
}

EdgeBuilder& EdgeBuilder::assign_elem(VarId var, Expr index, Expr rhs) {
  edge().assignments.push_back({var, std::move(index), std::move(rhs)});
  return *this;
}

EdgeBuilder& EdgeBuilder::controllable(bool value) {
  edge().controllable_override = value;
  return *this;
}

EdgeBuilder& EdgeBuilder::comment(std::string text) {
  edge().comment = std::move(text);
  return *this;
}

// ── Process ───────────────────────────────────────────────────────────

LocId Process::add_location(std::string name, LocationKind kind) {
  if (find_location(name)) {
    throw ModelError("duplicate location '" + name + "' in process " + name_);
  }
  Location loc;
  loc.name = std::move(name);
  loc.kind = kind;
  locations_.push_back(std::move(loc));
  return static_cast<LocId>(locations_.size() - 1);
}

void Process::set_invariant(LocId loc, ClockConstraint c) {
  locations_.at(loc).invariant.push_back(c);
}

void Process::set_invariant(LocId loc,
                            std::initializer_list<ClockConstraint> cs) {
  for (const auto& c : cs) set_invariant(loc, c);
}

void Process::set_initial(LocId loc) {
  if (loc >= locations_.size()) {
    throw ModelError("initial location out of range in process " + name_);
  }
  initial_ = loc;
}

EdgeBuilder Process::add_edge(LocId src, LocId dst) {
  if (src >= locations_.size() || dst >= locations_.size()) {
    throw ModelError("edge endpoints out of range in process " + name_);
  }
  Edge e;
  e.src = src;
  e.dst = dst;
  edges_.push_back(std::move(e));
  return EdgeBuilder(*this, edges_.size() - 1);
}

LocId Process::initial() const {
  if (initial_) return *initial_;
  if (locations_.empty()) {
    throw ModelError("process " + name_ + " has no locations");
  }
  return 0;  // convention: first location is initial unless overridden
}

std::optional<LocId> Process::find_location(const std::string& n) const {
  for (LocId i = 0; i < locations_.size(); ++i) {
    if (locations_[i].name == n) return i;
  }
  return std::nullopt;
}

// ── System ────────────────────────────────────────────────────────────

Clock System::add_clock(std::string name) {
  if (finalized_) throw ModelError("cannot add clocks after finalize()");
  if (find_clock(name)) throw ModelError("duplicate clock '" + name + "'");
  clock_names_.push_back(std::move(name));
  max_constants_.push_back(0);
  return Clock{static_cast<std::uint32_t>(clock_names_.size() - 1)};
}

ChannelId System::add_channel(std::string name, Controllability control) {
  if (finalized_) throw ModelError("cannot add channels after finalize()");
  if (find_channel(name)) throw ModelError("duplicate channel '" + name + "'");
  channels_.push_back({std::move(name), control});
  return ChannelId{static_cast<std::uint32_t>(channels_.size() - 1)};
}

Process& System::add_process(std::string name,
                             Controllability default_control) {
  if (finalized_) throw ModelError("cannot add processes after finalize()");
  if (find_process(name)) throw ModelError("duplicate process '" + name + "'");
  processes_.push_back(Process(std::move(name), default_control));
  return processes_.back();
}

std::optional<std::uint32_t> System::find_process(
    const std::string& name) const {
  for (std::uint32_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].name() == name) return i;
  }
  return std::nullopt;
}

std::optional<ChannelId> System::find_channel(const std::string& name) const {
  for (std::uint32_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].name == name) return ChannelId{i};
  }
  return std::nullopt;
}

std::optional<Clock> System::find_clock(const std::string& name) const {
  for (std::uint32_t i = 1; i < clock_names_.size(); ++i) {
    if (clock_names_[i] == name) return Clock{i};
  }
  return std::nullopt;
}

bool System::edge_controllable(const Process& p, const Edge& e) const {
  if (e.controllable_override) return *e.controllable_override;
  if (e.sync != SyncKind::kNone) {
    return channels_.at(e.channel.id).control == Controllability::kControllable;
  }
  return p.default_control() == Controllability::kControllable;
}

void System::validate_constraint(const ClockConstraint& c,
                                 const std::string& where) const {
  if (c.i >= clock_count() || c.j >= clock_count() || c.i == c.j) {
    throw ModelError("bad clock constraint in " + where);
  }
  if (!dbm::is_infinity(c.bound) &&
      std::abs(dbm::bound_value(c.bound)) >= dbm::kMaxBoundValue / 2) {
    throw ModelError("constraint constant too large in " + where);
  }
}

void System::bump_max_constant(const ClockConstraint& c) {
  if (dbm::is_infinity(c.bound)) return;
  const dbm::bound_t v = std::abs(dbm::bound_value(c.bound));
  if (c.i != 0) max_constants_[c.i] = std::max(max_constants_[c.i], v);
  if (c.j != 0) max_constants_[c.j] = std::max(max_constants_[c.j], v);
}

void System::finalize() {
  if (finalized_) return;
  if (processes_.empty()) throw ModelError("system has no processes");
  for (const Process& p : processes_) {
    if (p.locations().empty()) {
      throw ModelError("process " + p.name() + " has no locations");
    }
    (void)p.initial();
    for (const Location& loc : p.locations()) {
      for (const auto& c : loc.invariant) {
        validate_constraint(c, p.name() + "." + loc.name + " invariant");
        bump_max_constant(c);
      }
    }
    for (const Edge& e : p.edges()) {
      const std::string where =
          p.name() + ": " + p.locations()[e.src].name + " -> " +
          p.locations()[e.dst].name;
      if (e.sync != SyncKind::kNone && e.channel.id >= channels_.size()) {
        throw ModelError("unknown channel on edge " + where);
      }
      for (const auto& c : e.guard) {
        validate_constraint(c, "guard of " + where);
        bump_max_constant(c);
      }
      for (const auto& r : e.resets) {
        if (r.clock == 0 || r.clock >= clock_count()) {
          throw ModelError("reset of bad clock on edge " + where);
        }
        if (r.value < 0) throw ModelError("negative reset value on " + where);
        max_constants_[r.clock] = std::max(max_constants_[r.clock], r.value);
      }
    }
  }
  finalized_ = true;
}

std::string System::to_string() const {
  std::string out = "system " + name_ + "\n";
  out += util::format("  clocks:");
  for (std::uint32_t i = 1; i < clock_count(); ++i) {
    out += " " + clock_names_[i];
  }
  out += "\n";
  for (const ChannelDecl& c : channels_) {
    out += "  chan " + c.name +
           (c.control == Controllability::kControllable ? " (input)"
                                                        : " (output)") +
           "\n";
  }
  for (const Process& p : processes_) {
    out += "  process " + p.name() + ":\n";
    for (LocId l = 0; l < p.locations().size(); ++l) {
      const Location& loc = p.locations()[l];
      out += "    loc " + loc.name;
      if (l == p.initial()) out += " (init)";
      if (loc.kind == LocationKind::kUrgent) out += " (urgent)";
      if (loc.kind == LocationKind::kCommitted) out += " (committed)";
      if (!loc.invariant.empty()) {
        out += " inv:";
        for (const auto& c : loc.invariant) {
          out += util::format(" %s-%s%s", clock_names_[c.i].c_str(),
                              clock_names_[c.j].c_str(),
                              dbm::bound_to_string(c.bound).c_str());
        }
      }
      out += "\n";
    }
    for (const Edge& e : p.edges()) {
      out += "    edge " + p.locations()[e.src].name + " -> " +
             p.locations()[e.dst].name;
      if (e.sync == SyncKind::kSend) out += " " + channels_[e.channel.id].name + "!";
      if (e.sync == SyncKind::kReceive) {
        out += " " + channels_[e.channel.id].name + "?";
      }
      for (const auto& c : e.guard) {
        out += util::format(" [%s-%s%s]", clock_names_[c.i].c_str(),
                            clock_names_[c.j].c_str(),
                            dbm::bound_to_string(c.bound).c_str());
      }
      if (!e.data_guard.is_null()) {
        out += " [" + e.data_guard.to_string(data_) + "]";
      }
      for (const auto& r : e.resets) {
        out += util::format(" {%s:=%d}", clock_names_[r.clock].c_str(), r.value);
      }
      out += edge_controllable(p, e) ? " [c]" : " [u]";
      if (!e.comment.empty()) out += "  // " + e.comment;
      out += "\n";
    }
  }
  return out;
}

}  // namespace tigat::tsystem
