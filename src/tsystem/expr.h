// Integer expression trees for data guards, updates and test purposes.
//
// Expressions are immutable and cheaply copyable (shared nodes).
// Booleans are 0/1 integers, mirroring UPPAAL's expression language.
// `forall`/`exists` bind an integer running over a constant range; the
// bound variable is referenced by its de Bruijn depth (0 = innermost),
// which keeps evaluation a simple stack walk and lets the parser reuse
// the machinery for nested quantifiers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tsystem/data.h"

namespace tigat::tsystem {

// Evaluation environment for quantifier-bound variables.
using BoundEnv = std::vector<std::int64_t>;

// Implementation node; opaque outside expr.cpp.
struct ExprNode;

class Expr {
 public:
  enum class Kind : std::uint8_t {
    kConst,
    kVar,       // scalar variable or array element (index child)
    kBoundVar,  // quantifier-bound integer, payload = de Bruijn depth
    kAdd, kSub, kMul, kDiv, kMod, kNeg,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr, kNot,
    kForall, kExists,  // payload children: body; lo/hi in node
  };

  // A default-constructed Expr is "absent" (used for optional guards);
  // it evaluates as true (1).
  Expr() = default;
  [[nodiscard]] bool is_null() const { return node_ == nullptr; }

  // ── constructors ────────────────────────────────────────────────────
  static Expr constant(std::int64_t value);
  static Expr var(VarId id);                 // scalar
  static Expr var(VarId id, Expr index);     // array element
  static Expr bound_var(std::uint32_t depth);
  static Expr binary(Kind op, Expr lhs, Expr rhs);
  static Expr unary(Kind op, Expr operand);
  // ∀/∃ i ∈ [lo, hi] : body, where body references the bound variable
  // at depth 0 (incrementing the depth of any outer binders).
  static Expr forall(std::int64_t lo, std::int64_t hi, Expr body);
  static Expr exists(std::int64_t lo, std::int64_t hi, Expr body);

  // ── evaluation ──────────────────────────────────────────────────────
  // Throws ModelError on division by zero.
  [[nodiscard]] std::int64_t eval(const DataState& state,
                                  const DataLayout& layout,
                                  BoundEnv& env) const;
  [[nodiscard]] std::int64_t eval(const DataState& state,
                                  const DataLayout& layout) const {
    BoundEnv env;
    return eval(state, layout, env);
  }
  [[nodiscard]] bool eval_bool(const DataState& state,
                               const DataLayout& layout) const {
    return is_null() || eval(state, layout) != 0;
  }

  [[nodiscard]] std::string to_string(const DataLayout& layout) const;

  [[nodiscard]] Kind kind() const;

  // ── operator sugar for the model-builder API ────────────────────────
  friend Expr operator+(Expr a, Expr b) { return binary(Kind::kAdd, a, b); }
  friend Expr operator-(Expr a, Expr b) { return binary(Kind::kSub, a, b); }
  friend Expr operator*(Expr a, Expr b) { return binary(Kind::kMul, a, b); }
  friend Expr operator/(Expr a, Expr b) { return binary(Kind::kDiv, a, b); }
  friend Expr operator%(Expr a, Expr b) { return binary(Kind::kMod, a, b); }
  friend Expr operator-(Expr a) { return unary(Kind::kNeg, a); }
  friend Expr operator==(Expr a, Expr b) { return binary(Kind::kEq, a, b); }
  friend Expr operator!=(Expr a, Expr b) { return binary(Kind::kNe, a, b); }
  friend Expr operator<(Expr a, Expr b) { return binary(Kind::kLt, a, b); }
  friend Expr operator<=(Expr a, Expr b) { return binary(Kind::kLe, a, b); }
  friend Expr operator>(Expr a, Expr b) { return binary(Kind::kGt, a, b); }
  friend Expr operator>=(Expr a, Expr b) { return binary(Kind::kGe, a, b); }
  friend Expr operator&&(Expr a, Expr b) { return binary(Kind::kAnd, a, b); }
  friend Expr operator||(Expr a, Expr b) { return binary(Kind::kOr, a, b); }
  friend Expr operator!(Expr a) { return unary(Kind::kNot, a); }

 private:
  explicit Expr(std::shared_ptr<const ExprNode> node) : node_(std::move(node)) {}
  std::shared_ptr<const ExprNode> node_;
};

// Mixed int/Expr convenience, e.g. `v == 1`.
inline Expr lit(std::int64_t v) { return Expr::constant(v); }

}  // namespace tigat::tsystem
