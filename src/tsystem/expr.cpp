#include "tsystem/expr.h"

#include "util/assert.h"
#include "util/text.h"

namespace tigat::tsystem {

struct ExprNode {
  Expr::Kind kind;
  std::int64_t payload = 0;   // constant / bound depth / quantifier lo
  std::int64_t payload2 = 0;  // quantifier hi
  VarId var{};
  std::shared_ptr<const ExprNode> lhs;
  std::shared_ptr<const ExprNode> rhs;
};

Expr Expr::constant(std::int64_t value) {
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kConst;
  n->payload = value;
  return Expr(std::move(n));
}

Expr Expr::var(VarId id) {
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kVar;
  n->var = id;
  return Expr(std::move(n));
}

Expr Expr::var(VarId id, Expr index) {
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kVar;
  n->var = id;
  n->lhs = std::move(index.node_);
  return Expr(std::move(n));
}

Expr Expr::bound_var(std::uint32_t depth) {
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kBoundVar;
  n->payload = depth;
  return Expr(std::move(n));
}

Expr Expr::binary(Kind op, Expr lhs, Expr rhs) {
  TIGAT_ASSERT(!lhs.is_null() && !rhs.is_null(), "binary op on null expr");
  auto n = std::make_shared<ExprNode>();
  n->kind = op;
  n->lhs = std::move(lhs.node_);
  n->rhs = std::move(rhs.node_);
  return Expr(std::move(n));
}

Expr Expr::unary(Kind op, Expr operand) {
  TIGAT_ASSERT(!operand.is_null(), "unary op on null expr");
  auto n = std::make_shared<ExprNode>();
  n->kind = op;
  n->lhs = std::move(operand.node_);
  return Expr(std::move(n));
}

Expr Expr::forall(std::int64_t lo, std::int64_t hi, Expr body) {
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kForall;
  n->payload = lo;
  n->payload2 = hi;
  n->lhs = std::move(body.node_);
  return Expr(std::move(n));
}

Expr Expr::exists(std::int64_t lo, std::int64_t hi, Expr body) {
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kExists;
  n->payload = lo;
  n->payload2 = hi;
  n->lhs = std::move(body.node_);
  return Expr(std::move(n));
}

Expr::Kind Expr::kind() const {
  TIGAT_ASSERT(node_ != nullptr, "kind() of null expr");
  return node_->kind;
}

namespace {

std::int64_t eval_node(const ExprNode* n, const DataState& state,
                       const DataLayout& layout, BoundEnv& env);

std::int64_t eval_child(const std::shared_ptr<const ExprNode>& n,
                        const DataState& state, const DataLayout& layout,
                        BoundEnv& env) {
  return eval_node(n.get(), state, layout, env);
}

std::int64_t eval_node(const ExprNode* n, const DataState& state,
                       const DataLayout& layout, BoundEnv& env) {
  using Kind = Expr::Kind;
  switch (n->kind) {
    case Kind::kConst:
      return n->payload;
    case Kind::kVar: {
      std::int64_t index = 0;
      if (n->lhs) index = eval_child(n->lhs, state, layout, env);
      return state.get(layout.slot_of(n->var, index));
    }
    case Kind::kBoundVar: {
      const auto depth = static_cast<std::size_t>(n->payload);
      if (depth >= env.size()) {
        throw ModelError("unbound quantifier variable in expression");
      }
      return env[env.size() - 1 - depth];
    }
    case Kind::kAdd:
      return eval_child(n->lhs, state, layout, env) +
             eval_child(n->rhs, state, layout, env);
    case Kind::kSub:
      return eval_child(n->lhs, state, layout, env) -
             eval_child(n->rhs, state, layout, env);
    case Kind::kMul:
      return eval_child(n->lhs, state, layout, env) *
             eval_child(n->rhs, state, layout, env);
    case Kind::kDiv: {
      const std::int64_t d = eval_child(n->rhs, state, layout, env);
      if (d == 0) throw ModelError("division by zero in expression");
      return eval_child(n->lhs, state, layout, env) / d;
    }
    case Kind::kMod: {
      const std::int64_t d = eval_child(n->rhs, state, layout, env);
      if (d == 0) throw ModelError("modulo by zero in expression");
      return eval_child(n->lhs, state, layout, env) % d;
    }
    case Kind::kNeg:
      return -eval_child(n->lhs, state, layout, env);
    case Kind::kEq:
      return eval_child(n->lhs, state, layout, env) ==
             eval_child(n->rhs, state, layout, env);
    case Kind::kNe:
      return eval_child(n->lhs, state, layout, env) !=
             eval_child(n->rhs, state, layout, env);
    case Kind::kLt:
      return eval_child(n->lhs, state, layout, env) <
             eval_child(n->rhs, state, layout, env);
    case Kind::kLe:
      return eval_child(n->lhs, state, layout, env) <=
             eval_child(n->rhs, state, layout, env);
    case Kind::kGt:
      return eval_child(n->lhs, state, layout, env) >
             eval_child(n->rhs, state, layout, env);
    case Kind::kGe:
      return eval_child(n->lhs, state, layout, env) >=
             eval_child(n->rhs, state, layout, env);
    case Kind::kAnd:
      return eval_child(n->lhs, state, layout, env) != 0 &&
             eval_child(n->rhs, state, layout, env) != 0;
    case Kind::kOr:
      return eval_child(n->lhs, state, layout, env) != 0 ||
             eval_child(n->rhs, state, layout, env) != 0;
    case Kind::kNot:
      return eval_child(n->lhs, state, layout, env) == 0;
    case Kind::kForall: {
      for (std::int64_t i = n->payload; i <= n->payload2; ++i) {
        env.push_back(i);
        const bool ok = eval_child(n->lhs, state, layout, env) != 0;
        env.pop_back();
        if (!ok) return 0;
      }
      return 1;
    }
    case Kind::kExists: {
      for (std::int64_t i = n->payload; i <= n->payload2; ++i) {
        env.push_back(i);
        const bool ok = eval_child(n->lhs, state, layout, env) != 0;
        env.pop_back();
        if (ok) return 1;
      }
      return 0;
    }
  }
  TIGAT_ASSERT(false, "unreachable expression kind");
  return 0;
}

std::string print_node(const ExprNode* n, const DataLayout& layout,
                       std::uint32_t binder_depth);

std::string print_child(const std::shared_ptr<const ExprNode>& n,
                        const DataLayout& layout, std::uint32_t depth) {
  return print_node(n.get(), layout, depth);
}

std::string print_node(const ExprNode* n, const DataLayout& layout,
                       std::uint32_t binder_depth) {
  using Kind = Expr::Kind;
  const auto binop = [&](const char* op) {
    return "(" + print_child(n->lhs, layout, binder_depth) + op +
           print_child(n->rhs, layout, binder_depth) + ")";
  };
  switch (n->kind) {
    case Kind::kConst:
      return std::to_string(n->payload);
    case Kind::kVar: {
      const auto& d = layout.decl(n->var);
      if (n->lhs) {
        return d.name + "[" + print_child(n->lhs, layout, binder_depth) + "]";
      }
      return d.name;
    }
    case Kind::kBoundVar: {
      // Bound variables print as i0, i1, ... outermost-first.
      const auto level = binder_depth - 1 - static_cast<std::uint32_t>(n->payload);
      return util::format("i%u", level);
    }
    case Kind::kAdd: return binop("+");
    case Kind::kSub: return binop("-");
    case Kind::kMul: return binop("*");
    case Kind::kDiv: return binop("/");
    case Kind::kMod: return binop("%");
    case Kind::kNeg: return "-" + print_child(n->lhs, layout, binder_depth);
    case Kind::kEq: return binop("==");
    case Kind::kNe: return binop("!=");
    case Kind::kLt: return binop("<");
    case Kind::kLe: return binop("<=");
    case Kind::kGt: return binop(">");
    case Kind::kGe: return binop(">=");
    case Kind::kAnd: return binop(" && ");
    case Kind::kOr: return binop(" || ");
    case Kind::kNot: return "!" + print_child(n->lhs, layout, binder_depth);
    case Kind::kForall:
    case Kind::kExists: {
      const char* q = n->kind == Kind::kForall ? "forall" : "exists";
      const std::string body = print_child(n->lhs, layout, binder_depth + 1);
      return util::format("%s (i%u : %lld..%lld) ", q, binder_depth,
                          static_cast<long long>(n->payload),
                          static_cast<long long>(n->payload2)) +
             body;
    }
  }
  return "?";
}

}  // namespace

std::int64_t Expr::eval(const DataState& state, const DataLayout& layout,
                        BoundEnv& env) const {
  TIGAT_ASSERT(node_ != nullptr, "eval of null expr");
  return eval_node(node_.get(), state, layout, env);
}

std::string Expr::to_string(const DataLayout& layout) const {
  if (is_null()) return "true";
  return print_node(node_.get(), layout, 0);
}

}  // namespace tigat::tsystem
