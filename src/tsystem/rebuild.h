// Structural transformation of finalized systems.
//
// Several features need "this system, but slightly different": mutation
// operators (testing/mutants.h), the all-controllable relaxation of
// cooperative testing (game/cooperative.h).  `rebuild_system` copies a
// finalized System declaration-by-declaration, letting hooks adjust or
// drop edges and adjust invariants on the way; the result is finalized.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tsystem/system.h"

namespace tigat::tsystem {

// May modify the edge copy; returning false drops the edge.
using EdgeRebuildHook =
    std::function<bool(std::uint32_t process, std::uint32_t edge, Edge& copy)>;
// May modify the invariant constraint list of a location.
using InvariantRebuildHook = std::function<void(
    std::uint32_t process, LocId loc, std::vector<ClockConstraint>& invariant)>;

[[nodiscard]] System rebuild_system(const System& source,
                                    const EdgeRebuildHook& edge_hook,
                                    const InvariantRebuildHook& invariant_hook,
                                    const std::string& name_suffix);

// Identity copy.
[[nodiscard]] System clone_system(const System& source);

// Copy in which every edge carries `controllable_override = true`: the
// one-player relaxation used by cooperative test generation.
[[nodiscard]] System relax_all_controllable(const System& source);

// The single-process subsystem containing only `process_name` (same
// clocks, channels and data; location ids preserved) — the plant a
// SimulatedImplementation interprets when a composed model names its
// IUT, e.g. `run_model --runs` deriving an IMP from a .tg file.
// Throws ModelError when no process has that name.
[[nodiscard]] System extract_process(const System& source,
                                     const std::string& process_name);

}  // namespace tigat::tsystem
