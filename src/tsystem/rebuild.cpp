#include "tsystem/rebuild.h"

#include "util/assert.h"

namespace tigat::tsystem {

namespace {

// Clocks, channels, data — the declaration prefix every rebuilt
// variant shares with its source.
void copy_declarations(const System& source, System& out) {
  for (std::uint32_t c = 1; c < source.clock_count(); ++c) {
    out.add_clock(source.clock_names()[c]);
  }
  for (const auto& chan : source.channels()) {
    out.add_channel(chan.name, chan.control);
  }
  for (std::uint32_t d = 0; d < source.data().decl_count(); ++d) {
    const auto& decl = source.data().decl(VarId{d});
    if (decl.is_array()) {
      out.data().add_array(decl.name, decl.size, decl.lo, decl.hi, decl.init);
    } else {
      out.data().add_scalar(decl.name, decl.lo, decl.hi, decl.init);
    }
  }
}

void copy_process(const System& source, std::uint32_t p, System& out,
                  const EdgeRebuildHook& edge_hook,
                  const InvariantRebuildHook& invariant_hook) {
  const Process& sp = source.processes()[p];
  Process& tp = out.add_process(sp.name(), sp.default_control());
  for (LocId l = 0; l < sp.locations().size(); ++l) {
    const auto& loc = sp.locations()[l];
    tp.add_location(loc.name, loc.kind);
    std::vector<ClockConstraint> inv = loc.invariant;
    if (invariant_hook) invariant_hook(p, l, inv);
    for (const auto& c : inv) tp.set_invariant(l, c);
  }
  tp.set_initial(sp.initial());
  for (std::uint32_t ei = 0; ei < sp.edges().size(); ++ei) {
    Edge copy = sp.edges()[ei];
    if (edge_hook && !edge_hook(p, ei, copy)) continue;  // dropped
    auto builder = tp.add_edge(copy.src, copy.dst);
    if (copy.sync == SyncKind::kSend) builder.send(copy.channel);
    if (copy.sync == SyncKind::kReceive) builder.receive(copy.channel);
    for (const auto& g : copy.guard) builder.guard(g);
    if (!copy.data_guard.is_null()) builder.provided(copy.data_guard);
    for (const auto& r : copy.resets) {
      builder.reset(Clock{r.clock}, r.value);
    }
    for (const auto& a : copy.assignments) {
      if (a.index.is_null()) {
        builder.assign(a.var, a.rhs);
      } else {
        builder.assign_elem(a.var, a.index, a.rhs);
      }
    }
    if (copy.controllable_override) {
      builder.controllable(*copy.controllable_override);
    }
    if (!copy.comment.empty()) builder.comment(copy.comment);
  }
}

}  // namespace

System rebuild_system(const System& source, const EdgeRebuildHook& edge_hook,
                      const InvariantRebuildHook& invariant_hook,
                      const std::string& name_suffix) {
  TIGAT_ASSERT(source.finalized(), "rebuild requires a finalized system");
  System out(source.name() + name_suffix);
  copy_declarations(source, out);
  for (std::uint32_t p = 0; p < source.processes().size(); ++p) {
    copy_process(source, p, out, edge_hook, invariant_hook);
  }
  out.finalize();
  return out;
}

System clone_system(const System& source) {
  return rebuild_system(source, nullptr, nullptr, "");
}

System relax_all_controllable(const System& source) {
  return rebuild_system(
      source,
      [](std::uint32_t, std::uint32_t, Edge& copy) {
        copy.controllable_override = true;
        return true;
      },
      nullptr, "__coop");
}

System extract_process(const System& source,
                       const std::string& process_name) {
  TIGAT_ASSERT(source.finalized(), "extract requires a finalized system");
  for (std::uint32_t p = 0; p < source.processes().size(); ++p) {
    if (source.processes()[p].name() != process_name) continue;
    System out(source.name() + "__plant_" + process_name);
    copy_declarations(source, out);
    copy_process(source, p, out, nullptr, nullptr);
    out.finalize();
    return out;
  }
  throw ModelError("no process named '" + process_name +
                   "' in system '" + source.name() + "'");
}

}  // namespace tigat::tsystem
