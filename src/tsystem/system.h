// Timed I/O Game Automata networks (Definitions 1–3 of the paper).
//
// A System is a network of processes sharing global clocks, bounded
// integer data and binary synchronisation channels, in the style of
// UPPAAL / UPPAAL-TIGA models:
//
//   * each Process is a timed automaton: locations (with invariants and
//     urgency), edges with clock guards, data guards, clock resets and
//     data assignments;
//   * edges either synchronise on a channel (`send` a!, `receive` a?)
//     or are internal (τ);
//   * the game partition (Definition 3): every action is either
//     controllable (an input the tester may offer) or uncontrollable
//     (an output the implementation decides).  Channels carry the
//     partition; internal edges default to their process's role and
//     can be overridden per edge.
//
// Build with the fluent API, then `finalize()` validates the model and
// freezes it for the semantics layer:
//
//   System sys("light");
//   const Clock x = sys.add_clock("x");
//   const ChannelId touch = sys.add_channel("touch", Controllability::kControllable);
//   Process& p = sys.add_process("IUT", Controllability::kUncontrollable);
//   const LocId off = p.add_location("Off");
//   p.add_edge(off, dim).receive(touch).guard(x >= 20).reset(x);
//   sys.finalize();
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "dbm/bound.h"
#include "tsystem/data.h"
#include "tsystem/expr.h"

namespace tigat::tsystem {

// ── clocks and clock constraints ──────────────────────────────────────

// Global clock handle; id 0 is the reference clock and is never handed
// out.  DBM dimension = clock_count() (reference included).
struct Clock {
  std::uint32_t id = 0;
};

// x_i − x_j ≺ bound, in DBM index space.
struct ClockConstraint {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  dbm::raw_t bound = dbm::kInfinity;
};

// Builder sugar: `x >= 20`, `x - y < 4`, ...
struct ClockDiff {
  std::uint32_t i, j;
};
inline ClockDiff operator-(Clock a, Clock b) { return {a.id, b.id}; }

inline ClockConstraint operator<(Clock x, dbm::bound_t c) {
  return {x.id, 0, dbm::make_strict(c)};
}
inline ClockConstraint operator<=(Clock x, dbm::bound_t c) {
  return {x.id, 0, dbm::make_weak(c)};
}
inline ClockConstraint operator>(Clock x, dbm::bound_t c) {
  return {0, x.id, dbm::make_strict(-c)};
}
inline ClockConstraint operator>=(Clock x, dbm::bound_t c) {
  return {0, x.id, dbm::make_weak(-c)};
}
inline ClockConstraint operator==(Clock x, dbm::bound_t c) = delete;
inline ClockConstraint operator<(ClockDiff d, dbm::bound_t c) {
  return {d.i, d.j, dbm::make_strict(c)};
}
inline ClockConstraint operator<=(ClockDiff d, dbm::bound_t c) {
  return {d.i, d.j, dbm::make_weak(c)};
}
inline ClockConstraint operator>(ClockDiff d, dbm::bound_t c) {
  return {d.j, d.i, dbm::make_strict(-c)};
}
inline ClockConstraint operator>=(ClockDiff d, dbm::bound_t c) {
  return {d.j, d.i, dbm::make_weak(-c)};
}

// ── channels and the game partition ───────────────────────────────────

enum class Controllability : std::uint8_t {
  kControllable,    // tester-chosen (input actions, Act_in = Act_c)
  kUncontrollable,  // SUT-chosen (output actions, Act_out = Act_u)
};

struct ChannelId {
  std::uint32_t id = 0;
};

struct ChannelDecl {
  std::string name;
  Controllability control = Controllability::kControllable;
};

// ── locations and edges ───────────────────────────────────────────────

using LocId = std::uint32_t;

enum class LocationKind : std::uint8_t {
  kNormal,
  kUrgent,     // time may not elapse while the process is here
  kCommitted,  // urgent + the process must move before non-committed ones
};

struct Location {
  std::string name;
  LocationKind kind = LocationKind::kNormal;
  std::vector<ClockConstraint> invariant;
};

enum class SyncKind : std::uint8_t { kNone, kSend, kReceive };

struct ClockReset {
  std::uint32_t clock = 0;
  dbm::bound_t value = 0;
};

struct Assignment {
  VarId var;
  Expr index;  // null for scalars
  Expr rhs;
};

struct Edge {
  LocId src = 0;
  LocId dst = 0;
  SyncKind sync = SyncKind::kNone;
  ChannelId channel;
  std::vector<ClockConstraint> guard;
  Expr data_guard;  // null = true
  std::vector<ClockReset> resets;
  std::vector<Assignment> assignments;
  std::optional<bool> controllable_override;
  std::string comment;
};

class Process;

// Fluent edge construction; returned by Process::add_edge.
class EdgeBuilder {
 public:
  EdgeBuilder& guard(ClockConstraint c);
  EdgeBuilder& guard(std::initializer_list<ClockConstraint> cs);
  EdgeBuilder& provided(Expr data_guard);  // conjoined if called twice
  EdgeBuilder& send(ChannelId chan);
  EdgeBuilder& receive(ChannelId chan);
  EdgeBuilder& reset(Clock x, dbm::bound_t value = 0);
  EdgeBuilder& assign(VarId var, Expr rhs);
  EdgeBuilder& assign_elem(VarId var, Expr index, Expr rhs);
  EdgeBuilder& controllable(bool value);
  EdgeBuilder& comment(std::string text);

 private:
  friend class Process;
  EdgeBuilder(Process& process, std::size_t edge_index)
      : process_(&process), edge_(edge_index) {}
  Edge& edge();
  Process* process_;
  std::size_t edge_;
};

// ── processes ─────────────────────────────────────────────────────────

class System;

class Process {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Controllability default_control() const { return default_control_; }

  LocId add_location(std::string name,
                     LocationKind kind = LocationKind::kNormal);
  // Conjoined with any existing invariant.
  void set_invariant(LocId loc, ClockConstraint c);
  void set_invariant(LocId loc, std::initializer_list<ClockConstraint> cs);
  void set_initial(LocId loc);

  EdgeBuilder add_edge(LocId src, LocId dst);

  [[nodiscard]] LocId initial() const;
  [[nodiscard]] const std::vector<Location>& locations() const {
    return locations_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::optional<LocId> find_location(const std::string& n) const;

 private:
  friend class System;
  friend class EdgeBuilder;
  Process(std::string name, Controllability default_control)
      : name_(std::move(name)), default_control_(default_control) {}

  std::string name_;
  Controllability default_control_;
  std::vector<Location> locations_;
  std::vector<Edge> edges_;
  std::optional<LocId> initial_;
};

// ── the network ───────────────────────────────────────────────────────

class System {
 public:
  explicit System(std::string name) : name_(std::move(name)) {}

  // Not copyable: processes hand out stable references.
  System(const System&) = delete;
  System& operator=(const System&) = delete;
  System(System&&) = default;
  System& operator=(System&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  Clock add_clock(std::string name);
  ChannelId add_channel(std::string name, Controllability control);
  Process& add_process(std::string name, Controllability default_control);

  [[nodiscard]] DataLayout& data() { return data_; }
  [[nodiscard]] const DataLayout& data() const { return data_; }

  // Validates the model, resolves edge controllability and computes the
  // per-clock maximal constants.  Must be called before the semantics
  // layer touches the system; throws ModelError on inconsistencies.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  // ── accessors (post-finalize) ───────────────────────────────────────
  [[nodiscard]] std::uint32_t clock_count() const {  // DBM dimension
    return static_cast<std::uint32_t>(clock_names_.size());
  }
  [[nodiscard]] const std::vector<std::string>& clock_names() const {
    return clock_names_;
  }
  [[nodiscard]] const std::vector<ChannelDecl>& channels() const {
    return channels_;
  }
  [[nodiscard]] const std::deque<Process>& processes() const {
    return processes_;
  }
  [[nodiscard]] std::optional<std::uint32_t> find_process(
      const std::string& name) const;
  [[nodiscard]] std::optional<ChannelId> find_channel(
      const std::string& name) const;
  [[nodiscard]] std::optional<Clock> find_clock(const std::string& name) const;

  // True when the edge is controllable under the game partition.
  [[nodiscard]] bool edge_controllable(const Process& p, const Edge& e) const;

  // Max constant per clock index (index 0 → 0), over guards, invariants
  // and reset values; the solver merges goal constraints on top.
  [[nodiscard]] const std::vector<dbm::bound_t>& max_constants() const {
    return max_constants_;
  }

  // Multi-line description of the network (used by --print-models).
  [[nodiscard]] std::string to_string() const;

 private:
  void validate_constraint(const ClockConstraint& c, const std::string& where) const;
  void bump_max_constant(const ClockConstraint& c);

  std::string name_;
  std::vector<std::string> clock_names_ = {"t0"};  // index 0 = reference
  std::vector<ChannelDecl> channels_;
  // deque: add_process hands out stable references across growth.
  std::deque<Process> processes_;
  DataLayout data_;
  std::vector<dbm::bound_t> max_constants_ = {0};
  bool finalized_ = false;
};

}  // namespace tigat::tsystem
