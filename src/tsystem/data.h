// Bounded integer state variables of a timed system.
//
// UPPAAL-style models pair clocks with discrete data (scalars and
// arrays of bounded integers).  The Leader Election case study needs
// both: per-buffer-slot `inUse[i]` flags and scalar bookkeeping such as
// `betterInfo`.  All variables live in one flat slot array so that a
// discrete state is a single vector (cheap to hash and copy during
// symbolic exploration).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace tigat::tsystem {

// Raised on malformed models and on runtime violations such as
// out-of-range assignments or division by zero in guards.
class ModelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Index of a declared variable (scalar or array base).
struct VarId {
  std::uint32_t index = 0;  // declaration index, not slot
};

struct VarDecl {
  std::string name;
  std::int32_t lo = 0;
  std::int32_t hi = 0;
  std::int32_t init = 0;
  std::uint32_t size = 1;        // 1 for scalars
  std::uint32_t first_slot = 0;  // into DataState
  // Declared via add_array (true even for size-1 arrays, which index
  // like any other array).
  bool declared_array = false;
  [[nodiscard]] bool is_array() const { return declared_array; }
};

// Concrete discrete state: one value per slot.
class DataState {
 public:
  DataState() = default;
  explicit DataState(std::vector<std::int32_t> values)
      : values_(std::move(values)) {}

  [[nodiscard]] std::int32_t get(std::uint32_t slot) const {
    return values_.at(slot);
  }
  void set(std::uint32_t slot, std::int32_t value) { values_.at(slot) = value; }
  [[nodiscard]] std::size_t slot_count() const { return values_.size(); }
  [[nodiscard]] const std::vector<std::int32_t>& values() const {
    return values_;
  }

  [[nodiscard]] bool operator==(const DataState&) const = default;
  [[nodiscard]] std::size_t hash() const noexcept;

 private:
  std::vector<std::int32_t> values_;
};

// The set of declarations; owned by the System.
class DataLayout {
 public:
  VarId add_scalar(std::string name, std::int32_t lo, std::int32_t hi,
                   std::int32_t init);
  VarId add_array(std::string name, std::uint32_t size, std::int32_t lo,
                  std::int32_t hi, std::int32_t init);

  [[nodiscard]] const VarDecl& decl(VarId id) const {
    return decls_.at(id.index);
  }
  [[nodiscard]] std::optional<VarId> find(const std::string& name) const;
  [[nodiscard]] std::uint32_t slot_count() const { return next_slot_; }
  [[nodiscard]] std::size_t decl_count() const { return decls_.size(); }

  [[nodiscard]] DataState initial_state() const;

  // Bounds-checked slot resolution for an array access.
  [[nodiscard]] std::uint32_t slot_of(VarId id, std::int64_t index) const;

  // Validates and stores a value; throws ModelError outside [lo, hi].
  void checked_store(DataState& state, VarId id, std::int64_t index,
                     std::int64_t value) const;

  // "name" or "name[i]" for diagnostics.
  [[nodiscard]] std::string slot_name(std::uint32_t slot) const;

 private:
  std::vector<VarDecl> decls_;
  std::uint32_t next_slot_ = 0;
};

}  // namespace tigat::tsystem
