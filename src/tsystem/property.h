// Test purposes: the annotated TCTL subset of the paper (Sec. 2.4).
//
//   control: A<> φ     — reachability game: the tester can force φ
//   control: A[] φ     — safety game: the tester can maintain φ
//
// φ is a boolean state formula over process locations and data
// variables, with bounded `forall`/`exists` quantifiers, e.g. the
// paper's LEP purposes:
//
//   control: A<> (IUT.betterInfo == 1) && IUT.forward
//   control: A<> forall (i : inUse) inUse[i] == 1
//   control: A<> (forall (i : inUse) inUse[i] == 1) && IUT.idle
//
// `forall (i : a..b)` ranges over the integer interval; `forall (i :
// arr)` abbreviates 0..size(arr)-1 for a declared array.  Both `&&/and`
// `||/or` `!/not` spellings are accepted.  A bare data expression in
// boolean position means `expr != 0`; a bare `Proc.Name` resolves to a
// location atom if the process has such a location, otherwise to the
// variable `Name`.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "tsystem/system.h"

namespace tigat::tsystem {

struct FormulaNode;  // opaque

// Boolean formula over (location vector, data state).
class StateFormula {
 public:
  StateFormula() = default;
  [[nodiscard]] bool is_null() const { return node_ == nullptr; }

  static StateFormula location(std::uint32_t process, LocId loc);
  static StateFormula data(Expr boolean_expr);
  static StateFormula conj(StateFormula a, StateFormula b);
  static StateFormula disj(StateFormula a, StateFormula b);
  static StateFormula neg(StateFormula a);
  static StateFormula forall(std::int64_t lo, std::int64_t hi, StateFormula body);
  static StateFormula exists(std::int64_t lo, std::int64_t hi, StateFormula body);

  [[nodiscard]] bool eval(std::span<const LocId> locations,
                          const DataState& state, const DataLayout& layout,
                          BoundEnv& env) const;
  [[nodiscard]] bool eval(std::span<const LocId> locations,
                          const DataState& state,
                          const DataLayout& layout) const {
    BoundEnv env;
    return eval(locations, state, layout, env);
  }

  [[nodiscard]] std::string to_string(const System& system) const;

 private:
  explicit StateFormula(std::shared_ptr<const FormulaNode> node)
      : node_(std::move(node)) {}
  std::shared_ptr<const FormulaNode> node_;
};

// Parse failure inside a test-purpose text.  Carries the byte offset
// of the offending token relative to the text given to
// TestPurpose::parse, so embedders (the .tg model language) can map it
// onto a source file position.
class PurposeParseError : public ModelError {
 public:
  PurposeParseError(const std::string& message, std::size_t offset)
      : ModelError(message), offset(offset), detail(message) {}
  PurposeParseError(const std::string& message, std::size_t offset,
                    std::string detail_text)
      : ModelError(message), offset(offset), detail(std::move(detail_text)) {}
  std::size_t offset = 0;
  // The message without any "offset N" prefix, for embedders that
  // render the position themselves.
  std::string detail;
};

enum class PurposeKind : std::uint8_t {
  kReach,   // control: A<> φ
  kSafety,  // control: A[] φ
};

// A parsed test purpose, ready for the game solver.
struct TestPurpose {
  PurposeKind kind = PurposeKind::kReach;
  StateFormula formula;
  std::string source;  // original text, for reports

  // Throws ModelError with a position-annotated message on bad input.
  static TestPurpose parse(const System& system, std::string_view text);

  // Programmatic construction.
  static TestPurpose reach(StateFormula formula, std::string label = {});
  static TestPurpose safety(StateFormula formula, std::string label = {});
};

}  // namespace tigat::tsystem
