#include "tsystem/property.h"

#include <cctype>
#include <utility>
#include <vector>

#include "util/assert.h"
#include "util/text.h"

namespace tigat::tsystem {

// ── formula AST ───────────────────────────────────────────────────────

struct FormulaNode {
  enum class Kind : std::uint8_t {
    kLocation, kData, kAnd, kOr, kNot, kForall, kExists,
  };
  Kind kind;
  std::uint32_t process = 0;
  LocId loc = 0;
  Expr expr;                 // kData
  std::int64_t lo = 0, hi = 0;  // quantifiers
  std::shared_ptr<const FormulaNode> lhs;
  std::shared_ptr<const FormulaNode> rhs;
};

using FKind = FormulaNode::Kind;

StateFormula StateFormula::location(std::uint32_t process, LocId loc) {
  auto n = std::make_shared<FormulaNode>();
  n->kind = FKind::kLocation;
  n->process = process;
  n->loc = loc;
  return StateFormula(std::move(n));
}

StateFormula StateFormula::data(Expr boolean_expr) {
  auto n = std::make_shared<FormulaNode>();
  n->kind = FKind::kData;
  n->expr = std::move(boolean_expr);
  return StateFormula(std::move(n));
}

StateFormula StateFormula::conj(StateFormula a, StateFormula b) {
  auto n = std::make_shared<FormulaNode>();
  n->kind = FKind::kAnd;
  n->lhs = std::move(a.node_);
  n->rhs = std::move(b.node_);
  return StateFormula(std::move(n));
}

StateFormula StateFormula::disj(StateFormula a, StateFormula b) {
  auto n = std::make_shared<FormulaNode>();
  n->kind = FKind::kOr;
  n->lhs = std::move(a.node_);
  n->rhs = std::move(b.node_);
  return StateFormula(std::move(n));
}

StateFormula StateFormula::neg(StateFormula a) {
  auto n = std::make_shared<FormulaNode>();
  n->kind = FKind::kNot;
  n->lhs = std::move(a.node_);
  return StateFormula(std::move(n));
}

StateFormula StateFormula::forall(std::int64_t lo, std::int64_t hi,
                                  StateFormula body) {
  auto n = std::make_shared<FormulaNode>();
  n->kind = FKind::kForall;
  n->lo = lo;
  n->hi = hi;
  n->lhs = std::move(body.node_);
  return StateFormula(std::move(n));
}

StateFormula StateFormula::exists(std::int64_t lo, std::int64_t hi,
                                  StateFormula body) {
  auto n = std::make_shared<FormulaNode>();
  n->kind = FKind::kExists;
  n->lo = lo;
  n->hi = hi;
  n->lhs = std::move(body.node_);
  return StateFormula(std::move(n));
}

namespace {

bool eval_node(const FormulaNode* n, std::span<const LocId> locs,
               const DataState& state, const DataLayout& layout,
               BoundEnv& env) {
  switch (n->kind) {
    case FKind::kLocation:
      return locs[n->process] == n->loc;
    case FKind::kData:
      return n->expr.eval(state, layout, env) != 0;
    case FKind::kAnd:
      return eval_node(n->lhs.get(), locs, state, layout, env) &&
             eval_node(n->rhs.get(), locs, state, layout, env);
    case FKind::kOr:
      return eval_node(n->lhs.get(), locs, state, layout, env) ||
             eval_node(n->rhs.get(), locs, state, layout, env);
    case FKind::kNot:
      return !eval_node(n->lhs.get(), locs, state, layout, env);
    case FKind::kForall:
      for (std::int64_t i = n->lo; i <= n->hi; ++i) {
        env.push_back(i);
        const bool ok = eval_node(n->lhs.get(), locs, state, layout, env);
        env.pop_back();
        if (!ok) return false;
      }
      return true;
    case FKind::kExists:
      for (std::int64_t i = n->lo; i <= n->hi; ++i) {
        env.push_back(i);
        const bool ok = eval_node(n->lhs.get(), locs, state, layout, env);
        env.pop_back();
        if (ok) return true;
      }
      return false;
  }
  TIGAT_ASSERT(false, "unreachable formula kind");
  return false;
}

std::string print_node(const FormulaNode* n, const System& sys,
                       std::uint32_t depth) {
  switch (n->kind) {
    case FKind::kLocation:
      return sys.processes()[n->process].name() + "." +
             sys.processes()[n->process].locations()[n->loc].name;
    case FKind::kData:
      return n->expr.to_string(sys.data());
    case FKind::kAnd:
      return "(" + print_node(n->lhs.get(), sys, depth) + " && " +
             print_node(n->rhs.get(), sys, depth) + ")";
    case FKind::kOr:
      return "(" + print_node(n->lhs.get(), sys, depth) + " || " +
             print_node(n->rhs.get(), sys, depth) + ")";
    case FKind::kNot:
      return "!" + print_node(n->lhs.get(), sys, depth);
    case FKind::kForall:
    case FKind::kExists:
      return util::format("%s (i%u : %lld..%lld) ",
                          n->kind == FKind::kForall ? "forall" : "exists",
                          depth, static_cast<long long>(n->lo),
                          static_cast<long long>(n->hi)) +
             print_node(n->lhs.get(), sys, depth + 1);
  }
  return "?";
}

}  // namespace

bool StateFormula::eval(std::span<const LocId> locations,
                        const DataState& state, const DataLayout& layout,
                        BoundEnv& env) const {
  TIGAT_ASSERT(node_ != nullptr, "eval of null formula");
  return eval_node(node_.get(), locations, state, layout, env);
}

std::string StateFormula::to_string(const System& system) const {
  if (is_null()) return "true";
  return print_node(node_.get(), system, 0);
}

// ── parser ────────────────────────────────────────────────────────────

namespace {

struct Token {
  enum class Kind : std::uint8_t {
    kIdent, kNumber, kSymbol, kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  std::int64_t number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return tok_; }
  Token take() {
    Token t = tok_;
    prev_pos_ = tok_.pos;
    advance();
    return t;
  }

  // Positioned at the lookahead token; use fail_prev when the
  // offending token has already been taken.
  [[noreturn]] void fail(const std::string& message) const {
    throw PurposeParseError(message, tok_.pos);
  }
  [[noreturn]] void fail_prev(const std::string& message) const {
    throw PurposeParseError(message, prev_pos_);
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    tok_ = Token{};
    tok_.pos = pos_;
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      tok_.kind = Token::Kind::kIdent;
      tok_.text = std::string(text_.substr(pos_, end - pos_));
      pos_ = end;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      std::int64_t v = 0;
      while (end < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[end]))) {
        v = v * 10 + (text_[end] - '0');
        ++end;
      }
      tok_.kind = Token::Kind::kNumber;
      tok_.number = v;
      tok_.text = std::string(text_.substr(pos_, end - pos_));
      pos_ = end;
      return;
    }
    // Multi-char symbols first.
    static constexpr std::string_view kTwo[] = {"&&", "||", "==", "!=",
                                                "<=", ">=", ".."};
    for (const auto& s : kTwo) {
      if (text_.substr(pos_, 2) == s) {
        tok_.kind = Token::Kind::kSymbol;
        tok_.text = std::string(s);
        pos_ += 2;
        return;
      }
    }
    tok_.kind = Token::Kind::kSymbol;
    tok_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t prev_pos_ = 0;
  Token tok_;
};

// Recursive-descent parser producing a StateFormula.  Data
// sub-expressions reuse the Expr machinery; quantifier-bound names are
// tracked in a scope stack and become de Bruijn indices.
class FormulaParser {
 public:
  FormulaParser(const System& system, std::string_view text)
      : sys_(system), lex_(text) {}

  StateFormula parse_full() {
    StateFormula f = parse_or();
    if (lex_.peek().kind != Token::Kind::kEnd) {
      lex_.fail("trailing input after formula");
    }
    return f;
  }

 private:
  bool is_symbol(const char* s) const {
    return lex_.peek().kind == Token::Kind::kSymbol && lex_.peek().text == s;
  }
  bool is_ident(const char* s) const {
    return lex_.peek().kind == Token::Kind::kIdent && lex_.peek().text == s;
  }
  void expect_symbol(const char* s) {
    if (!is_symbol(s)) lex_.fail(util::format("expected '%s'", s));
    lex_.take();
  }

  StateFormula parse_or() {
    StateFormula f = parse_and();
    while (is_symbol("||") || is_ident("or")) {
      lex_.take();
      f = StateFormula::disj(std::move(f), parse_and());
    }
    return f;
  }

  StateFormula parse_and() {
    StateFormula f = parse_unary();
    while (is_symbol("&&") || is_ident("and")) {
      lex_.take();
      f = StateFormula::conj(std::move(f), parse_unary());
    }
    return f;
  }

  StateFormula parse_unary() {
    if (is_symbol("!") || is_ident("not")) {
      lex_.take();
      return StateFormula::neg(parse_unary());
    }
    if (is_ident("forall") || is_ident("exists")) {
      const bool universal = lex_.take().text == "forall";
      expect_symbol("(");
      if (lex_.peek().kind != Token::Kind::kIdent) lex_.fail("expected binder name");
      const std::string binder = lex_.take().text;
      expect_symbol(":");
      const auto [lo, hi] = parse_range();
      expect_symbol(")");
      binders_.push_back(binder);
      StateFormula body = parse_unary();
      binders_.pop_back();
      return universal ? StateFormula::forall(lo, hi, std::move(body))
                       : StateFormula::exists(lo, hi, std::move(body));
    }
    if (is_symbol("(")) {
      // Could be a parenthesised formula or a parenthesised arithmetic
      // expression followed by a comparison.  Formula connectives never
      // appear inside arithmetic, so: parse as formula; if the next
      // token is a comparison/arithmetic operator, re-parse as data.
      const Lexer saved = lex_;
      lex_.take();
      StateFormula f = parse_or();
      expect_symbol(")");
      if (lex_.peek().kind == Token::Kind::kSymbol &&
          (lex_.peek().text == "==" || lex_.peek().text == "!=" ||
           lex_.peek().text == "<" || lex_.peek().text == "<=" ||
           lex_.peek().text == ">" || lex_.peek().text == ">=" ||
           lex_.peek().text == "+" || lex_.peek().text == "-" ||
           lex_.peek().text == "*" || lex_.peek().text == "/" ||
           lex_.peek().text == "%")) {
        lex_ = saved;  // it was arithmetic after all
        return parse_comparison();
      }
      return f;
    }
    return parse_comparison();
  }

  std::pair<std::int64_t, std::int64_t> parse_range() {
    if (lex_.peek().kind == Token::Kind::kNumber) {
      const std::int64_t lo = lex_.take().number;
      expect_symbol("..");
      if (lex_.peek().kind != Token::Kind::kNumber) lex_.fail("expected range end");
      return {lo, lex_.take().number};
    }
    if (lex_.peek().kind == Token::Kind::kIdent) {
      // `forall (i : arr)` ranges over the array's index set.
      const std::string name = lex_.take().text;
      if (const auto var = sys_.data().find(name)) {
        const auto& d = sys_.data().decl(*var);
        if (!d.is_array()) {
          lex_.fail_prev("quantifier range '" + name + "' is not an array");
        }
        return {0, static_cast<std::int64_t>(d.size) - 1};
      }
      lex_.fail_prev("unknown range '" + name + "'");
    }
    lex_.fail("expected quantifier range");
  }

  StateFormula parse_comparison() {
    // Try `Proc.Location` first.
    if (lex_.peek().kind == Token::Kind::kIdent) {
      const Lexer saved = lex_;
      const std::string first = lex_.take().text;
      if (is_symbol(".")) {
        if (const auto proc = sys_.find_process(first)) {
          lex_.take();
          if (lex_.peek().kind != Token::Kind::kIdent) {
            lex_.fail("expected location or variable after '.'");
          }
          const std::string second = lex_.peek().text;
          if (const auto loc =
                  sys_.processes()[*proc].find_location(second)) {
            lex_.take();
            return StateFormula::location(*proc, *loc);
          }
          // Fall through: `Proc.var` is variable access.
        }
      }
      lex_ = saved;
    }
    Expr lhs = parse_sum();
    if (lex_.peek().kind == Token::Kind::kSymbol) {
      const std::string op = lex_.peek().text;
      Expr::Kind kind;
      if (op == "==") kind = Expr::Kind::kEq;
      else if (op == "!=") kind = Expr::Kind::kNe;
      else if (op == "<") kind = Expr::Kind::kLt;
      else if (op == "<=") kind = Expr::Kind::kLe;
      else if (op == ">") kind = Expr::Kind::kGt;
      else if (op == ">=") kind = Expr::Kind::kGe;
      else return StateFormula::data(std::move(lhs));
      lex_.take();
      Expr rhs = parse_sum();
      return StateFormula::data(
          Expr::binary(kind, std::move(lhs), std::move(rhs)));
    }
    return StateFormula::data(std::move(lhs));
  }

  Expr parse_sum() {
    Expr e = parse_term();
    while (is_symbol("+") || is_symbol("-")) {
      const bool add = lex_.take().text == "+";
      Expr r = parse_term();
      e = Expr::binary(add ? Expr::Kind::kAdd : Expr::Kind::kSub, std::move(e),
                       std::move(r));
    }
    return e;
  }

  Expr parse_term() {
    Expr e = parse_factor();
    while (is_symbol("*") || is_symbol("/") || is_symbol("%")) {
      const std::string op = lex_.take().text;
      Expr r = parse_factor();
      const Expr::Kind k = op == "*"   ? Expr::Kind::kMul
                           : op == "/" ? Expr::Kind::kDiv
                                       : Expr::Kind::kMod;
      e = Expr::binary(k, std::move(e), std::move(r));
    }
    return e;
  }

  Expr parse_factor() {
    if (is_symbol("-")) {
      lex_.take();
      return Expr::unary(Expr::Kind::kNeg, parse_factor());
    }
    if (is_symbol("(")) {
      lex_.take();
      Expr e = parse_sum();
      expect_symbol(")");
      return e;
    }
    if (lex_.peek().kind == Token::Kind::kNumber) {
      return Expr::constant(lex_.take().number);
    }
    if (lex_.peek().kind == Token::Kind::kIdent) {
      std::string name = lex_.take().text;
      // `Proc.var` — the qualifier is decorative (data is global).
      if (is_symbol(".") && sys_.find_process(name)) {
        lex_.take();
        if (lex_.peek().kind != Token::Kind::kIdent) {
          lex_.fail("expected variable after '.'");
        }
        name = lex_.take().text;
      }
      // Quantifier-bound variable?
      for (std::size_t k = 0; k < binders_.size(); ++k) {
        if (binders_[binders_.size() - 1 - k] == name) {
          return Expr::bound_var(static_cast<std::uint32_t>(k));
        }
      }
      const auto var = sys_.data().find(name);
      if (!var) lex_.fail_prev("unknown identifier '" + name + "'");
      if (is_symbol("[")) {
        lex_.take();
        Expr index = parse_sum();
        expect_symbol("]");
        return Expr::var(*var, std::move(index));
      }
      return Expr::var(*var);
    }
    lex_.fail("expected expression");
  }

  const System& sys_;
  Lexer lex_;
  std::vector<std::string> binders_;
};

}  // namespace

TestPurpose TestPurpose::parse(const System& system, std::string_view text) {
  TIGAT_ASSERT(system.finalized(), "parse requires a finalized system");
  TestPurpose purpose;
  purpose.source = std::string(util::trim(text));
  std::string_view rest = util::trim(text);
  // Offset of the tail under scrutiny within `text` (trim/substr keep
  // views into the same buffer), so every error can carry an absolute
  // position.
  const auto offset_of = [&text](std::string_view tail) {
    return static_cast<std::size_t>(tail.data() - text.data());
  };
  if (!util::starts_with(rest, "control:")) {
    throw PurposeParseError("test purpose must start with 'control:'",
                            offset_of(rest));
  }
  rest = util::trim(rest.substr(std::string_view("control:").size()));
  if (util::starts_with(rest, "A<>")) {
    purpose.kind = PurposeKind::kReach;
    rest = rest.substr(3);
  } else if (util::starts_with(rest, "A[]")) {
    purpose.kind = PurposeKind::kSafety;
    rest = rest.substr(3);
  } else {
    throw PurposeParseError("expected 'A<>' or 'A[]' after 'control:'",
                            offset_of(rest));
  }
  FormulaParser parser(system, rest);
  try {
    purpose.formula = parser.parse_full();
  } catch (const PurposeParseError& e) {
    // Rebase the offset onto `text` and prefix the message with the
    // (now absolute) position, keeping the bare message in `detail`.
    const std::size_t offset = e.offset + offset_of(rest);
    throw PurposeParseError(
        util::format("test purpose, offset %zu: %s", offset, e.detail.c_str()),
        offset, e.detail);
  }
  return purpose;
}

TestPurpose TestPurpose::reach(StateFormula formula, std::string label) {
  TestPurpose p;
  p.kind = PurposeKind::kReach;
  p.formula = std::move(formula);
  p.source = std::move(label);
  return p;
}

TestPurpose TestPurpose::safety(StateFormula formula, std::string label) {
  TestPurpose p;
  p.kind = PurposeKind::kSafety;
  p.formula = std::move(formula);
  p.source = std::move(label);
  return p;
}

}  // namespace tigat::tsystem
