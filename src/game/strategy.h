// State-based winning strategies (Definitions 6–8 of the paper).
//
// A strategy maps concrete states to either a controllable action
// ("offer this input now") or λ ("wait").  It is extracted from the
// ranked winning sets of a GameSolution:
//
//   * rank 0          → the test purpose holds: the play is won;
//   * rank r, some controllable edge e with the current valuation in
//     pred_e(Win_{≤ r−1}[dst])   → take e (rank strictly decreases);
//   * otherwise       → λ; pred_t guarantees that delaying reaches a
//     lower-rank region or an action region in bounded time, and that
//     any SUT output fired meanwhile lands in Win_{≤ r−1}.
//
// For λ moves the strategy also reports the next *decision point* —
// the earliest tick at which the prescription changes — so a test
// executor knows how long it may sleep (Algorithm 3.1's "delay d").
//
// Safety games (`control: A[] φ`) have no rank structure: every state
// inside Safe has rank 0 and the prescription is time-driven — delay
// while delaying is harmless (Fed::safe_delay_bound over Safe,
// clipped one tick short of GameSolution::danger_region), take a
// Safe-preserving action at the boundary.  kGoalReached is never
// produced: a safety play is won by outlasting the budget, which is
// the executor's call, not the strategy's.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "game/solver.h"
#include "semantics/concrete.h"

namespace tigat::game {

enum class MoveKind : std::uint8_t {
  kGoalReached,  // rank 0: purpose satisfied
  kAction,       // offer the given controllable action now
  kDelay,        // λ: wait (see next_decision_ticks)
  kUnwinnable,   // state outside the winning set (strategy undefined)
};

struct Move {
  MoveKind kind = MoveKind::kUnwinnable;
  // kAction: the symbolic edge to take (index into graph().edges()).
  std::optional<std::uint32_t> edge;
  // kDelay: ticks until the strategy's choice can change (entry into
  // an action region or a lower rank within this key).  kNoDecision if
  // progress relies on the SUT acting (e.g. a forced output window).
  static constexpr std::int64_t kNoDecision = std::int64_t{1} << 62;
  std::int64_t next_decision_ticks = kNoDecision;
  // Rank of the current state, when winning.
  std::optional<std::uint32_t> rank;

  [[nodiscard]] bool operator==(const Move&) const = default;
};

class Strategy {
 public:
  explicit Strategy(std::shared_ptr<const GameSolution> solution);

  [[nodiscard]] const GameSolution& solution() const { return *solution_; }

  // Decides at a concrete state (clock values in ticks at `scale`).
  // Safe for concurrent callers: the lazily-built action-region cache
  // (GameSolution::action_region) is guarded internally, so one
  // Strategy can serve parallel test executions (see also
  // decision::DecisionTable for the lock-free compiled backend).
  [[nodiscard]] Move decide(const semantics::ConcreteState& state,
                            std::int64_t scale) const;

  // Fig. 5-style rendering: per discrete state, zone → prescription.
  [[nodiscard]] std::string to_string() const;

  // Number of (zone, move) rows the printed strategy has — the
  // "strategy size" metric used in the benchmarks.
  [[nodiscard]] std::size_t size() const;

 private:
  std::shared_ptr<const GameSolution> solution_;
};

}  // namespace tigat::game
