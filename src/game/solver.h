// The timed game solver — our re-implementation of the UPPAAL-TIGA
// core the paper builds on (Sec. 3.2; algorithm of Cassez, David,
// Fleury, Larsen, Lime, CONCUR 2005).  Reachability purposes
// (`control: A<> φ`) and safety purposes (`control: A[] φ`) share one
// attractor fixpoint; see the safety section below.
//
// Given a TIOGA network S and a test purpose `control: A<> φ`, the
// solver computes, per discrete state q of the forward-explored zone
// graph, the federation of clock valuations from which the controller
// (tester) can force φ whatever the uncontrollable (SUT) moves do.
// The fixpoint runs in synchronous rounds:
//
//   Win₀[q]   = Reach[q]                   if φ(q) else ∅
//   Winₖ₊₁[q] = Winₖ[q] ∪ ( pred_t(Bₖ[q], Gₖ[q]) ∩ Reach[q] )
//     Bₖ[q] = ( Winₖ[q] ∪ ⋃_{q →c q'} pred_e(Winₖ[q']) ) ∩ Reach[q]
//     Gₖ[q] =   ⋃_{q →u q'} pred_e(Reach[q'] \ Winₖ[q'])  ∩ Reach[q]
//
// pred_t is the safe-timed-predecessor of dbm::Fed (closed avoidance:
// simultaneous opponent moves win, the right semantics for black-box
// testing); pred_e pins resets and applies guards.  In time-frozen
// states (urgent/committed) pred_t degenerates to B \ G.
//
// B additionally contains the FORCED set: states on the (weak) upper
// boundary of the invariant where at least one uncontrollable edge is
// enabled.  There time cannot advance and — by the maximal-run
// semantics of Def. 7/8 (a blocked non-goal run only counts as maximal
// when no action is available) — the SUT must move; if no move escapes
// (the state is outside G), every outcome is winning.  This is what
// makes "wait for the forced output" strategies work, e.g. Smart Light
// L6 where the only path to Bright is the uncontrollable bright!
// bounded by Tp ≤ 2.  Deadlines induced by strict upper bounds are
// not attained and therefore never force a move (conservative).
//
// The round at which a state enters Win is its RANK.  Ranks are the
// progress measure that makes extracted strategies winning: a
// controllable action prescribed at rank r lands at rank < r, an
// uncontrollable move from a rank-r winning state lands at rank < r
// (it was avoided as an escape at r−1), and the delay prescribed by
// pred_t reaches B — rank < r territory — in bounded time.  Induction
// over ranks is exactly the paper's Def. 8 winning-strategy argument.
//
// Intersecting B with Reach[q] is not an optimisation but soundness:
// pred_t's endpoint must be a state the play can actually be in
// (delay-closed reach zones make Reach[q] ⊇ every delay successor that
// respects the invariant).  G ∩ Reach[q] is exact for the same reason.
//
// ── safety games (`control: A[] φ`) ────────────────────────────────────
//
// The tester wins a safety game by keeping φ true forever.  By
// determinacy this is the complement of a reachability game played by
// the ENVIRONMENT: compute the environment's attractor Attr to the
// ¬φ states — the very fixpoint above with the player roles swapped
// (the SUT's uncontrollable edges feed B, the tester's controllable
// edges feed G, and the FORCED set asks for an enabled CONTROLLABLE
// edge at an invariant deadline: there the TESTER must move, and if
// every tester move lands in Attr the environment wins) — and take
//
//   Safe[q] = Reach[q] \ Attr[q].
//
// One attractor loop thus serves both purpose kinds; the Jacobi round
// structure, serial in-key-order merges and compact-zones staging are
// shared verbatim, so safety solutions inherit the bit-identical-at-
// any-thread-count guarantee.  The published solution holds Safe as a
// single round-0 delta per key (a greatest fixpoint has no rank
// structure to exploit: the strategy is "stay inside Safe", not
// "descend a progress measure"), `goal_key(q)` reports whether φ
// holds at q, and `action_region(ei, 0)` is the region where taking
// edge ei keeps the play inside Safe — which is exactly what
// Strategy::decide and decision::compile consume.
//
// ── compact_zones ──────────────────────────────────────────────────────
//
// With SolverOptions::compact_zones the reach sets, the fixpoint's
// loss cache and the solution's winning/delta federations are all
// stored dictionary-compressed (dbm/zone_pool.h): a zone costs dim row
// ids instead of an inline dim×dim matrix, which is what makes LEP
// n = 6 strategy tables fit in CI-class memory.  Solutions are
// BIT-IDENTICAL with the flag on or off (tests/zone_pool_test.cpp);
// the executor-facing accessors (winning, deltas, winning_up_to,
// rank) materialize a key's federations on first touch and cache them
// — test execution visits a handful of keys per run, so serving stays
// cheap while bulk storage stays compressed.  Caveat: consumers that
// touch EVERY key (Strategy::to_string, decision::compile) fill that
// cache completely and re-inflate to plain-mode memory — extract
// strategies at the instance sizes plain mode can hold; compact_zones
// buys the solve + verdict at sizes it cannot.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "dbm/federation.h"
#include "dbm/zone_pool.h"
#include "semantics/symbolic.h"
#include "tsystem/property.h"

namespace tigat::game {

struct SolverOptions {
  semantics::ExplorationOptions exploration;
  std::size_t max_rounds = 1u << 20;
  // Worker threads for exploration and the fixpoint (the calling
  // thread included): 0 = hardware concurrency, 1 = serial.  Winning
  // federations, ranks, key numbering and strategies are bit-identical
  // at every value — work is distributed, results are merged in key
  // order (see solve()).
  unsigned threads = 0;
  // Dictionary-compress all bulk zone storage (see the file comment).
  // Mirrored into exploration.compact_zones by the solver.
  bool compact_zones = false;
};

struct SolverStats {
  std::size_t keys = 0;
  std::size_t reach_zones = 0;
  std::size_t winning_zones = 0;
  std::size_t edges = 0;
  std::size_t rounds = 0;
  std::size_t peak_zone_bytes = 0;
  double solve_seconds = 0.0;
  // Exploration phase split: parallel wave expansion vs the serial
  // seal+merge remainder (the striped interner shrinks the latter).
  double explore_expand_seconds = 0.0;
  double explore_merge_seconds = 0.0;
  // Zone-pool dictionary stats (0 unless compact_zones).
  std::size_t zone_pool_rows = 0;
  std::size_t zone_pool_bytes = 0;
};

// The solved game: symbolic graph + ranked winning federations.
// Shared (immutably) by strategies and the test executor.
class GameSolution {
 public:
  struct Delta {
    std::uint32_t round;
    dbm::Fed gained;
  };

  GameSolution(std::unique_ptr<semantics::SymbolicGraph> graph,
               tsystem::TestPurpose purpose);

  [[nodiscard]] const semantics::SymbolicGraph& graph() const {
    return *graph_;
  }
  [[nodiscard]] const tsystem::TestPurpose& purpose() const { return purpose_; }

  [[nodiscard]] bool goal_key(std::uint32_t k) const { return goal_key_[k]; }

  // Full winning federation of a key.  compact_zones: materialized and
  // cached on first touch.
  [[nodiscard]] const dbm::Fed& winning(std::uint32_t k) const;
  // Winning states of rank ≤ round.  Served from the cumulative
  // per-round cache built at solve time (the executor asks on every
  // decision; rebuilding the union federation per call dominated the
  // per-decision hot path).
  [[nodiscard]] const dbm::Fed& winning_up_to(std::uint32_t k,
                                              std::uint32_t round) const;
  [[nodiscard]] const std::vector<Delta>& deltas(std::uint32_t k) const;

  // Rank of a concrete valuation (ticks at `scale`), if winning.
  [[nodiscard]] std::optional<std::uint32_t> rank(
      std::uint32_t k, std::span<const std::int64_t> clocks,
      std::int64_t scale) const;

  // pred_e(Win_{≤ round}[dst]) ∩ Reach[src] for edge index `ei` — the
  // region where the strategy prescribes taking `ei` from rank
  // round+1 (safety: round 0 — the region where taking `ei` keeps the
  // play inside Safe).  Lazily computed, cached, safe for concurrent
  // callers; the single home of this computation, shared by
  // Strategy::decide and decision::compile so their results stay
  // bit-identical.
  [[nodiscard]] const dbm::Fed& action_region(std::uint32_t ei,
                                              std::uint32_t round) const;

  // Safety games only: the sub-region of Reach[k] where some enabled
  // uncontrollable edge exits Safe.  Inside Safe \ Danger delaying is
  // harmless; the strategy must act no later than the play enters
  // Danger (the closed-avoidance fixpoint guarantees a safe
  // controllable escape is available by then — ties go to the
  // tester).  Lazily computed, cached, safe for concurrent callers.
  [[nodiscard]] const dbm::Fed& danger_region(std::uint32_t k) const;

  [[nodiscard]] bool winning_from_initial() const;

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  friend class GameSolver;

  struct PooledDelta {
    std::uint32_t round;
    dbm::PooledFed gained;
  };
  // A key's executor-facing federations, materialized from the pooled
  // store on first access (compact mode only).
  struct MaterializedKey {
    dbm::Fed win;
    std::vector<Delta> deltas;
    std::vector<dbm::Fed> up_to;  // delta-prefix unions minus the last
  };

  [[nodiscard]] bool compact() const { return graph_->zones_compacted(); }
  // Compact mode: materializes key k (idempotent, thread-safe) and
  // returns its cache node; plain mode: nullptr.
  const MaterializedKey* materialized(std::uint32_t k) const;

  std::unique_ptr<semantics::SymbolicGraph> graph_;
  tsystem::TestPurpose purpose_;
  std::vector<bool> goal_key_;
  // Plain mode stores.  In compact mode win federations live ONLY in
  // deltas_pooled_ (a key's winning set is the concatenation of its
  // delta federations — gains are disjoint, so no filtering applies).
  std::vector<dbm::Fed> win_all_;
  std::vector<std::vector<Delta>> deltas_;
  // win_up_to_[k][i] = union of deltas_[k][0..i].gained, so
  // winning_up_to is a lookup instead of a federation rebuild.
  std::vector<std::vector<dbm::Fed>> win_up_to_;
  // Compact mode stores.
  std::vector<std::vector<PooledDelta>> deltas_pooled_;
  mutable std::unordered_map<std::uint32_t, MaterializedKey> mat_cache_;
  dbm::Fed empty_fed_;  // returned for rounds before the first delta
  // Guards mat_cache_, action_cache_ and danger_cache_ (behind
  // pointers to keep the class movable).  Node-based maps, so returned
  // references survive rehashes; entries are immutable once inserted.
  std::unique_ptr<std::shared_mutex> action_mutex_;
  std::unique_ptr<std::shared_mutex> mat_mutex_;
  mutable std::unordered_map<std::uint64_t, dbm::Fed> action_cache_;
  mutable std::unordered_map<std::uint32_t, dbm::Fed> danger_cache_;
  SolverStats stats_;
};

// Solves `control: A<> φ` (PurposeKind::kReach) and `control: A[] φ`
// (PurposeKind::kSafety) over a finalized system, dispatching on the
// purpose kind (see the file comment for the safety reduction).
// Throws semantics::ExplorationLimit if the exploration budget is
// exceeded.
class GameSolver {
 public:
  GameSolver(const tsystem::System& system, tsystem::TestPurpose purpose,
             SolverOptions options = {});

  [[nodiscard]] std::shared_ptr<const GameSolution> solve();

 private:
  const tsystem::System* sys_;
  tsystem::TestPurpose purpose_;
  SolverOptions options_;
};

}  // namespace tigat::game
