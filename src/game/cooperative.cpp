#include "game/cooperative.h"

#include "tsystem/rebuild.h"

namespace tigat::game {

CooperativeResult solve_cooperative(const tsystem::System& system,
                                    const tsystem::TestPurpose& purpose,
                                    SolverOptions options) {
  CooperativeResult result;
  result.relaxed_system = std::make_unique<tsystem::System>(
      tsystem::relax_all_controllable(system));
  GameSolver solver(*result.relaxed_system, purpose, std::move(options));
  result.solution = solver.solve();
  result.reachable = result.solution->winning_from_initial();
  return result;
}

}  // namespace tigat::game
