// Region-graph timed-game solver — an INDEPENDENT oracle and baseline.
//
// This is the classical construction of Maler–Pnueli–Sifakis (STACS
// 1995), which proved timed reachability games decidable: build the
// Alur–Dill region graph (finite, exact time-abstract bisimulation for
// diagonal-free automata) and run an attractor computation on it.  It
// shares NO code with the zone solver: regions instead of DBMs, an
// explicit chain-walk instead of pred_t — which is precisely what
// makes it a credible cross-check (tests/game_region_cross_test.cpp)
// and the performance baseline the on-the-fly zone algorithm of
// UPPAAL-TIGA was built to beat (bench/bench_ablation_solver.cpp).
//
// Semantics matched with the zone solver:
//   * ties go to the opponent: a node where an uncontrollable edge
//     escapes the attractor is unsafe even if the controller could act
//     there simultaneously;
//   * forced progress: a TIME-PUNCTUAL node (some clock fraction is 0,
//     or an urgent/committed location) without a delay successor and
//     with an enabled uncontrollable edge forces the SUT to move;
//     time-open boundary nodes (strict invariants) never force.
//
// Restriction: diagonal-free models only (guards/invariants of the
// form x ≺ c).  The constructor rejects diagonal constraints.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "semantics/concrete.h"
#include "tsystem/property.h"

namespace tigat::game {

class RegionGameSolver {
 public:
  struct Stats {
    std::size_t nodes = 0;     // reachable region-graph nodes
    std::size_t winning = 0;   // nodes in the controller attractor
    std::size_t edges = 0;     // action edges explored
    double solve_seconds = 0.0;
  };

  RegionGameSolver(const tsystem::System& system,
                   tsystem::TestPurpose purpose);
  ~RegionGameSolver();
  RegionGameSolver(RegionGameSolver&&) noexcept;
  RegionGameSolver& operator=(RegionGameSolver&&) noexcept;

  // Builds the reachable region graph and computes the attractor.
  void solve();

  [[nodiscard]] bool winning_from_initial() const;

  // Membership of a concrete state (ticks at `scale`); requires
  // solve().  States outside the reachable graph return false.
  [[nodiscard]] bool state_winning(const semantics::ConcreteState& state,
                                   std::int64_t scale) const;

  [[nodiscard]] const Stats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tigat::game
