#include "game/region_solver.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "semantics/transition.h"
#include "util/assert.h"
#include "util/stopwatch.h"

namespace tigat::game {

using semantics::TransitionInstance;
using tsystem::ClockConstraint;
using tsystem::LocId;

namespace {

// Alur–Dill region over the clocks 1..dim-1.
//   ip[i]  : integer part, clamped to M_i + 1 ("above M_i")
//   grp[i] : -1 above M_i; 0 fraction zero; 1..m increasing fractions
struct Region {
  std::vector<std::int32_t> ip;
  std::vector<std::int8_t> grp;

  bool operator==(const Region&) const = default;
};

struct Node {
  std::vector<LocId> locs;
  tsystem::DataState data;
  Region region;

  bool operator==(const Node&) const = default;

  [[nodiscard]] std::size_t hash() const noexcept {
    std::size_t h = data.hash();
    for (const LocId l : locs) h = h * 31 + l;
    for (const auto v : region.ip) h = h * 31 + static_cast<std::size_t>(v + 1);
    for (const auto v : region.grp) h = h * 31 + static_cast<std::size_t>(v + 2);
    return h;
  }
};

// Renumbers fraction groups densely: 0 stays 0, positive groups become
// 1..m in order of their old ids.
void normalize(Region& r) {
  std::vector<std::int8_t> present;
  for (const auto g : r.grp) {
    if (g > 0 && std::find(present.begin(), present.end(), g) == present.end()) {
      present.push_back(g);
    }
  }
  std::sort(present.begin(), present.end());
  for (auto& g : r.grp) {
    if (g > 0) {
      g = static_cast<std::int8_t>(
          1 + (std::find(present.begin(), present.end(), g) - present.begin()));
    }
  }
}

}  // namespace

struct RegionGameSolver::Impl {
  const tsystem::System* sys;
  tsystem::TestPurpose purpose;
  std::vector<dbm::bound_t> max_const;
  std::uint32_t dim;

  std::vector<Node> nodes;
  std::unordered_map<std::size_t, std::vector<std::uint32_t>> lookup;
  // Per node: action successors (with controllability) and the delay
  // successor (if any).
  struct ActionSucc {
    std::uint32_t target;
    bool controllable;
  };
  std::vector<std::vector<ActionSucc>> succs;
  std::vector<std::optional<std::uint32_t>> delay_succ;
  std::vector<bool> time_punctual;  // zero-fraction clock or frozen loc
  std::vector<bool> goal;
  std::vector<bool> winning;
  Stats stats;
  bool solved = false;

  // ── region primitives ───────────────────────────────────────────────

  [[nodiscard]] bool above(const Region& r, std::uint32_t i) const {
    return r.grp[i] < 0;
  }

  [[nodiscard]] Region region_of(std::span<const std::int64_t> ticks,
                                 std::int64_t scale) const {
    Region r;
    r.ip.assign(dim, 0);
    r.grp.assign(dim, 0);
    // Order clocks by fractional remainder.
    std::vector<std::pair<std::int64_t, std::uint32_t>> fracs;
    for (std::uint32_t i = 1; i < dim; ++i) {
      if (ticks[i] > static_cast<std::int64_t>(max_const[i]) * scale) {
        r.ip[i] = max_const[i] + 1;
        r.grp[i] = -1;
        continue;
      }
      r.ip[i] = static_cast<std::int32_t>(ticks[i] / scale);
      const std::int64_t rem = ticks[i] % scale;
      if (rem == 0) {
        r.grp[i] = 0;
      } else {
        fracs.emplace_back(rem, i);
      }
    }
    std::sort(fracs.begin(), fracs.end());
    std::int8_t next = 1;
    std::int64_t prev = -1;
    for (const auto& [rem, i] : fracs) {
      if (rem != prev) {
        r.grp[i] = next++;
        prev = rem;
      } else {
        r.grp[i] = static_cast<std::int8_t>(next - 1);
      }
    }
    return r;
  }

  // Constraint x_i ≺ c on a region (diagonal-free only).
  [[nodiscard]] bool region_satisfies(const Region& r,
                                      const ClockConstraint& c) const {
    if (dbm::is_infinity(c.bound)) return true;
    const dbm::bound_t v = dbm::bound_value(c.bound);
    const bool weak = dbm::is_weak(c.bound);
    if (c.j == 0) {
      // x_i ≺ v
      const std::uint32_t i = c.i;
      if (above(r, i)) return false;  // x > M ≥ v: never < / ≤
      if (r.grp[i] == 0) return weak ? r.ip[i] <= v : r.ip[i] < v;
      return r.ip[i] < v;
    }
    // -x_j ≺ v, i.e. x_j ≻ -v.
    const std::uint32_t j = c.j;
    const dbm::bound_t w = -v;  // x_j > w (strict) or x_j ≥ w (weak)
    if (above(r, j)) return true;
    if (r.grp[j] == 0) return weak ? r.ip[j] >= w : r.ip[j] > w;
    return r.ip[j] >= w;  // ip < x < ip+1: x > w ⟺ ip ≥ w
  }

  [[nodiscard]] bool invariant_ok(const std::vector<LocId>& locs,
                                  const Region& r) const {
    const auto& procs = sys->processes();
    for (std::uint32_t p = 0; p < procs.size(); ++p) {
      for (const ClockConstraint& c : procs[p].locations()[locs[p]].invariant) {
        if (!region_satisfies(r, c)) return false;
      }
    }
    return true;
  }

  // Immediate time successor, or nullopt when the region is the final
  // all-above one (time successor is itself).
  [[nodiscard]] std::optional<Region> region_delay_succ(const Region& r) const {
    std::vector<std::uint32_t> zero_clocks;
    std::int8_t top = 0;
    for (std::uint32_t i = 1; i < dim; ++i) {
      if (above(r, i)) continue;
      if (r.grp[i] == 0) zero_clocks.push_back(i);
      top = std::max(top, r.grp[i]);
    }
    Region s = r;
    if (!zero_clocks.empty()) {
      // Zero-fraction clocks acquire the new smallest positive
      // fraction — unless they sit exactly at their max constant, in
      // which case any positive fraction takes them above it.
      for (auto& g : s.grp) {
        if (g > 0) ++g;
      }
      for (const std::uint32_t i : zero_clocks) {
        if (s.ip[i] >= max_const[i]) {
          s.ip[i] = max_const[i] + 1;
          s.grp[i] = -1;
        } else {
          s.grp[i] = 1;
        }
      }
      normalize(s);
      return s;
    }
    if (top == 0) return std::nullopt;  // all clocks above M
    // Top-fraction clocks reach the next integer.
    for (std::uint32_t i = 1; i < dim; ++i) {
      if (!above(s, i) && s.grp[i] == top) {
        s.ip[i] += 1;
        if (s.ip[i] > max_const[i]) {
          s.ip[i] = max_const[i] + 1;
          s.grp[i] = -1;
        } else {
          s.grp[i] = 0;
        }
      }
    }
    normalize(s);
    return s;
  }

  [[nodiscard]] bool is_time_punctual(const std::vector<LocId>& locs,
                                      const Region& r) const {
    if (semantics::time_frozen(*sys, locs)) return true;
    for (std::uint32_t i = 1; i < dim; ++i) {
      if (!above(r, i) && r.grp[i] == 0) return true;
    }
    return false;
  }

  // ── graph construction ──────────────────────────────────────────────

  std::uint32_t intern(Node node) {
    const std::size_t h = node.hash();
    if (const auto it = lookup.find(h); it != lookup.end()) {
      for (const std::uint32_t n : it->second) {
        if (nodes[n] == node) return n;
      }
    }
    const auto idx = static_cast<std::uint32_t>(nodes.size());
    lookup[h].push_back(idx);
    nodes.push_back(std::move(node));
    succs.emplace_back();
    delay_succ.emplace_back();
    const Node& nd = nodes.back();
    time_punctual.push_back(is_time_punctual(nd.locs, nd.region));
    goal.push_back(purpose.formula.eval(nd.locs, nd.data, sys->data()));
    return idx;
  }

  [[nodiscard]] bool edge_guard_ok(const Node& n,
                                   const semantics::EdgeRef& ref) const {
    const tsystem::Edge& e = sys->processes()[ref.process].edges()[ref.edge];
    for (const ClockConstraint& c : e.guard) {
      if (!region_satisfies(n.region, c)) return false;
    }
    return e.data_guard.eval_bool(n.data, sys->data());
  }

  void apply_effects(Node& n, const semantics::EdgeRef& ref) const {
    const tsystem::Edge& e = sys->processes()[ref.process].edges()[ref.edge];
    n.locs[ref.process] = e.dst;
    for (const auto& rst : e.resets) {
      TIGAT_ASSERT(rst.value <= max_const[rst.clock],
                   "reset above max constant");
      n.region.ip[rst.clock] = rst.value;
      n.region.grp[rst.clock] = 0;
    }
    for (const auto& a : e.assignments) {
      const std::int64_t index =
          a.index.is_null() ? 0 : a.index.eval(n.data, sys->data());
      sys->data().checked_store(n.data, a.var, index,
                                a.rhs.eval(n.data, sys->data()));
    }
  }

  void build() {
    Node init;
    for (const auto& p : sys->processes()) init.locs.push_back(p.initial());
    init.data = sys->data().initial_state();
    init.region.ip.assign(dim, 0);
    init.region.grp.assign(dim, 0);
    TIGAT_ASSERT(invariant_ok(init.locs, init.region),
                 "initial state violates invariants");

    std::deque<std::uint32_t> work;
    work.push_back(intern(std::move(init)));
    std::vector<bool> expanded;

    while (!work.empty()) {
      const std::uint32_t n = work.front();
      work.pop_front();
      if (n < expanded.size() && expanded[n]) continue;
      if (expanded.size() <= n) expanded.resize(n + 1, false);
      expanded[n] = true;

      // Delay successor (only when time may elapse).
      if (!semantics::time_frozen(*sys, nodes[n].locs)) {
        if (const auto succ = region_delay_succ(nodes[n].region)) {
          if (invariant_ok(nodes[n].locs, *succ)) {
            Node next{nodes[n].locs, nodes[n].data, *succ};
            const std::uint32_t t = intern(std::move(next));
            delay_succ[n] = t;
            if (t >= expanded.size() || !expanded[t]) work.push_back(t);
          }
        }
      }

      // Action successors.
      for (const TransitionInstance& inst :
           semantics::instances_from(*sys, nodes[n].locs)) {
        if (!edge_guard_ok(nodes[n], inst.primary)) continue;
        if (inst.receiver && !edge_guard_ok(nodes[n], *inst.receiver)) continue;
        Node next = nodes[n];
        apply_effects(next, inst.primary);
        if (inst.receiver) apply_effects(next, *inst.receiver);
        normalize(next.region);
        if (!invariant_ok(next.locs, next.region)) continue;
        const std::uint32_t t = intern(std::move(next));
        succs[n].push_back({t, inst.controllable});
        ++stats.edges;
        if (t >= expanded.size() || !expanded[t]) work.push_back(t);
      }
    }
  }

  // ── the attractor ───────────────────────────────────────────────────

  [[nodiscard]] bool unc_escape(std::uint32_t n) const {
    for (const ActionSucc& s : succs[n]) {
      if (!s.controllable && !winning[s.target]) return true;
    }
    return false;
  }

  [[nodiscard]] bool has_enabled_unc(std::uint32_t n) const {
    return std::any_of(succs[n].begin(), succs[n].end(),
                       [](const ActionSucc& s) { return !s.controllable; });
  }

  [[nodiscard]] bool ctrl_into_winning(std::uint32_t n) const {
    for (const ActionSucc& s : succs[n]) {
      if (s.controllable && winning[s.target]) return true;
    }
    return false;
  }

  // Can the controller force the attractor from n by waiting along the
  // delay chain?  (Chain nodes must all be opponent-safe.)
  [[nodiscard]] bool force(std::uint32_t start) const {
    std::uint32_t n = start;
    std::vector<bool> visited(nodes.size(), false);
    for (;;) {
      if (visited[n]) return false;  // delay cycle without progress
      visited[n] = true;
      // Delaying into W ends the play favourably; W states are either
      // goal (escapes moot) or escape-free by construction.
      if (n != start && winning[n]) return true;
      if (unc_escape(n)) return false;  // ties go to the SUT
      if (ctrl_into_winning(n)) return true;
      if (!delay_succ[n]) {
        // End of the chain: a time-punctual node with an enabled
        // uncontrollable move forces the SUT (all its moves are safe
        // here, i.e. winning, since unc_escape failed).
        return time_punctual[n] && has_enabled_unc(n);
      }
      n = *delay_succ[n];
    }
  }

  void attractor() {
    winning.assign(nodes.size(), false);
    for (std::uint32_t n = 0; n < nodes.size(); ++n) winning[n] = goal[n];
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t n = 0; n < nodes.size(); ++n) {
        if (winning[n]) continue;
        if (force(n)) {
          winning[n] = true;
          changed = true;
        }
      }
    }
  }
};

RegionGameSolver::RegionGameSolver(const tsystem::System& system,
                                   tsystem::TestPurpose purpose)
    : impl_(std::make_unique<Impl>()) {
  TIGAT_ASSERT(system.finalized(), "system must be finalized");
  if (purpose.kind != tsystem::PurposeKind::kReach) {
    throw tsystem::ModelError("RegionGameSolver handles control: A<> only");
  }
  impl_->sys = &system;
  impl_->purpose = std::move(purpose);
  impl_->max_const = system.max_constants();
  impl_->dim = system.clock_count();

  // Reject diagonal constraints: regions are exact only without them.
  const auto check = [](const ClockConstraint& c) {
    if (c.i != 0 && c.j != 0) {
      throw tsystem::ModelError(
          "RegionGameSolver requires diagonal-free models");
    }
  };
  for (const auto& p : system.processes()) {
    for (const auto& loc : p.locations()) {
      for (const auto& c : loc.invariant) check(c);
    }
    for (const auto& e : p.edges()) {
      for (const auto& c : e.guard) check(c);
    }
  }
}

RegionGameSolver::~RegionGameSolver() = default;
RegionGameSolver::RegionGameSolver(RegionGameSolver&&) noexcept = default;
RegionGameSolver& RegionGameSolver::operator=(RegionGameSolver&&) noexcept =
    default;

void RegionGameSolver::solve() {
  if (impl_->solved) return;
  util::Stopwatch watch;
  impl_->build();
  impl_->attractor();
  impl_->stats.nodes = impl_->nodes.size();
  impl_->stats.winning = static_cast<std::size_t>(
      std::count(impl_->winning.begin(), impl_->winning.end(), true));
  impl_->stats.solve_seconds = watch.seconds();
  impl_->solved = true;
}

bool RegionGameSolver::winning_from_initial() const {
  TIGAT_ASSERT(impl_->solved, "call solve() first");
  return impl_->winning[0];
}

bool RegionGameSolver::state_winning(const semantics::ConcreteState& state,
                                     std::int64_t scale) const {
  TIGAT_ASSERT(impl_->solved, "call solve() first");
  Node node{state.locs, state.data,
            impl_->region_of(state.clocks, scale)};
  const std::size_t h = node.hash();
  const auto it = impl_->lookup.find(h);
  if (it == impl_->lookup.end()) return false;
  for (const std::uint32_t n : it->second) {
    if (impl_->nodes[n] == node) return impl_->winning[n];
  }
  return false;
}

const RegionGameSolver::Stats& RegionGameSolver::stats() const {
  return impl_->stats;
}

}  // namespace tigat::game
