#include "game/strategy.h"

#include <algorithm>

#include "util/assert.h"
#include "util/text.h"

namespace tigat::game {

using dbm::Fed;
using semantics::SymbolicEdge;

Strategy::Strategy(std::shared_ptr<const GameSolution> solution)
    : solution_(std::move(solution)) {
  TIGAT_ASSERT(solution_ != nullptr, "strategy needs a solution");
}

Move Strategy::decide(const semantics::ConcreteState& state,
                      std::int64_t scale) const {
  const auto& g = solution_->graph();
  Move move;

  semantics::DiscreteKey key{state.locs, state.data};
  const auto k = g.find_key(key);
  if (!k) return move;  // not even discretely reachable

  const auto rank = solution_->rank(*k, state.clocks, scale);
  if (!rank) return move;
  move.rank = rank;

  if (solution_->purpose().kind == tsystem::PurposeKind::kSafety) {
    // Safety: every winning state has rank 0 (Safe is one round-0
    // delta).  The prescription is time-driven, not rank-driven:
    // delay while delaying is harmless, act before the play reaches a
    // state where an enabled SUT move exits Safe.
    const Fed& safe = solution_->winning(*k);
    const Fed& danger = solution_->danger_region(*k);
    // Latest harmless wait: stay inside Safe and stop one tick short
    // of Danger — arriving at the boundary with the escape already
    // prescribed beats racing the SUT at the exact threat instant.
    std::int64_t deadline = safe.safe_delay_bound(state.clocks, scale);
    const auto danger_in = danger.earliest_entry_delay(state.clocks, scale);
    if (danger_in && *danger_in > 0) {
      deadline = std::min(deadline, *danger_in - 1);
    }
    const bool threat_now = danger_in && *danger_in == 0;
    if (deadline > 0 && !threat_now) {
      move.kind = MoveKind::kDelay;
      move.next_decision_ticks = std::min(deadline, Move::kNoDecision);
      return move;
    }
    // Boundary (or live threat): take an action that keeps the play
    // inside Safe.
    for (const std::uint32_t ei : g.edges_out(*k)) {
      const SymbolicEdge& e = g.edges()[ei];
      if (!e.inst.controllable) continue;
      const Fed& region = solution_->action_region(ei, 0);
      if (region.contains_point(state.clocks, scale)) {
        move.kind = MoveKind::kAction;
        move.edge = ei;
        return move;
      }
    }
    // No safe action yet: wait for the threat instant itself (the
    // closed-avoidance fixpoint hands that tie to the tester), or —
    // when the threat is live or time is up — for the SUT's forced
    // move (next = 0; the executor resolves against the invariant).
    move.kind = MoveKind::kDelay;
    move.next_decision_ticks = danger_in && *danger_in > 0 ? *danger_in : 0;
    return move;
  }

  if (*rank == 0) {
    move.kind = MoveKind::kGoalReached;
    return move;
  }

  // A controllable edge whose target is strictly lower-ranked?
  for (const std::uint32_t ei : g.edges_out(*k)) {
    const SymbolicEdge& e = g.edges()[ei];
    if (!e.inst.controllable) continue;
    const Fed& region = solution_->action_region(ei, *rank - 1);
    if (region.contains_point(state.clocks, scale)) {
      move.kind = MoveKind::kAction;
      move.edge = ei;
      return move;
    }
  }

  // λ: wait.  The next decision point is the earliest entry into an
  // action region at this rank or into a lower rank within this key.
  move.kind = MoveKind::kDelay;
  std::int64_t next = Move::kNoDecision;
  for (const std::uint32_t ei : g.edges_out(*k)) {
    const SymbolicEdge& e = g.edges()[ei];
    if (!e.inst.controllable) continue;
    const Fed& region = solution_->action_region(ei, *rank - 1);
    if (const auto d = region.earliest_entry_delay(state.clocks, scale)) {
      next = std::min(next, *d);
    }
  }
  const Fed& lower = solution_->winning_up_to(*k, *rank - 1);
  if (const auto d = lower.earliest_entry_delay(state.clocks, scale)) {
    next = std::min(next, *d);
  }
  move.next_decision_ticks = next;
  return move;
}

std::size_t Strategy::size() const {
  // = sum over keys of the delta-federation zone counts, which the
  // solver already tallied — and, under compact_zones, counting via
  // deltas(k) would materialize every key.
  return solution_->stats().winning_zones;
}

std::string Strategy::to_string() const {
  const auto& g = solution_->graph();
  const auto& sys = g.system();
  const auto& names = sys.clock_names();
  const bool safety_game =
      solution_->purpose().kind == tsystem::PurposeKind::kSafety;
  std::string out;
  out += "strategy for: " + solution_->purpose().source + "\n";

  for (std::uint32_t k = 0; k < g.key_count(); ++k) {
    const auto& deltas = solution_->deltas(k);
    if (deltas.empty()) continue;

    // Discrete state header.
    std::string header = "state (";
    for (std::uint32_t p = 0; p < sys.processes().size(); ++p) {
      if (p != 0) header += ", ";
      header += sys.processes()[p].name() + "." +
                sys.processes()[p].locations()[g.key(k).locs[p]].name;
    }
    header += ")";
    for (std::uint32_t slot = 0; slot < g.key(k).data.slot_count(); ++slot) {
      header += util::format(" %s=%d", sys.data().slot_name(slot).c_str(),
                             g.key(k).data.get(slot));
    }
    out += header + ":\n";

    if (safety_game) {
      // One Safe row per key plus the prescriptions that keep the play
      // inside it: the region whose entry forces an action, and the
      // escape actions available (in edge order, like decide()).
      out += "  while " + solution_->winning(k).to_string(names) +
             " -> stay safe\n";
      const Fed& danger = solution_->danger_region(k);
      if (!danger.is_empty()) {
        out += "    act on entering " + danger.to_string(names) + "\n";
      }
      for (const std::uint32_t ei : g.edges_out(k)) {
        const SymbolicEdge& e = g.edges()[ei];
        if (!e.inst.controllable) continue;
        const Fed& region = solution_->action_region(ei, 0);
        if (region.is_empty()) continue;
        out += "    take " + e.inst.label(sys) + " while " +
               region.to_string(names) + "\n";
      }
      continue;
    }

    for (const GameSolution::Delta& d : deltas) {
      if (d.round == 0) {
        out += "  while " + d.gained.to_string(names) + " -> goal reached\n";
        continue;
      }
      // Partition the delta among the controllable actions that the
      // strategy would prescribe there; the remainder is a wait.
      Fed rest = d.gained;
      for (const std::uint32_t ei : g.edges_out(k)) {
        const SymbolicEdge& e = g.edges()[ei];
        if (!e.inst.controllable) continue;
        Fed region = g.pred_through(e, solution_->winning_up_to(e.dst, d.round - 1));
        region = region.intersection(rest);
        if (region.is_empty()) continue;
        out += "  while " + region.to_string(names) + " -> take " +
               e.inst.label(sys) + "\n";
        rest = rest.minus(region);
        if (rest.is_empty()) break;
      }
      if (!rest.is_empty()) {
        out += "  while " + rest.to_string(names) + " -> delay\n";
      }
    }
  }
  return out;
}

}  // namespace tigat::game
