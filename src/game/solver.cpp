#include "game/solver.h"

#include <algorithm>
#include <mutex>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace tigat::game {

using dbm::Dbm;
using dbm::Fed;
using semantics::SymbolicEdge;
using semantics::SymbolicGraph;

GameSolution::GameSolution(std::unique_ptr<SymbolicGraph> graph,
                           tsystem::TestPurpose purpose)
    : graph_(std::move(graph)),
      purpose_(std::move(purpose)),
      empty_fed_(graph_->system().clock_count()),
      action_mutex_(std::make_unique<std::shared_mutex>()),
      mat_mutex_(std::make_unique<std::shared_mutex>()) {}

const GameSolution::MaterializedKey* GameSolution::materialized(
    std::uint32_t k) const {
  if (!compact()) return nullptr;
  {
    std::shared_lock lock(*mat_mutex_);
    const auto it = mat_cache_.find(k);
    if (it != mat_cache_.end()) return &it->second;
  }
  // Decode outside the lock (reads only the immutable pooled store); a
  // racing caller may duplicate the work, but emplace keeps the first
  // insertion and the loser's copy is discarded.  The winning
  // federation is the concatenation of the delta federations — gains
  // are pairwise disjoint, so Fed::add's filtering never fires and
  // plain append reproduces the plain-mode member order exactly.
  const dbm::ZonePool& pool = *graph_->zone_pool();
  const std::uint32_t dim = graph_->system().clock_count();
  MaterializedKey m{Fed(dim), {}, {}};
  for (const PooledDelta& pd : deltas_pooled_[k]) {
    Fed gained(dim);
    pd.gained.materialize(gained, pool);
    for (const Dbm& z : gained.zones()) m.win.append_raw(z);
    m.deltas.push_back({pd.round, std::move(gained)});
  }
  if (m.deltas.size() >= 2) {
    m.up_to.reserve(m.deltas.size() - 1);
    Fed acc = m.deltas.front().gained;
    m.up_to.push_back(acc);
    for (std::size_t d = 1; d + 1 < m.deltas.size(); ++d) {
      acc |= m.deltas[d].gained;
      m.up_to.push_back(acc);
    }
  }
  std::unique_lock lock(*mat_mutex_);
  return &mat_cache_.emplace(k, std::move(m)).first->second;
}

const Fed& GameSolution::winning(std::uint32_t k) const {
  const MaterializedKey* m = materialized(k);
  return m != nullptr ? m->win : win_all_[k];
}

const std::vector<GameSolution::Delta>& GameSolution::deltas(
    std::uint32_t k) const {
  const MaterializedKey* m = materialized(k);
  return m != nullptr ? m->deltas : deltas_[k];
}

const Fed& GameSolution::action_region(std::uint32_t ei,
                                       std::uint32_t round) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(ei) << 32) | round;
  {
    std::shared_lock lock(*action_mutex_);
    const auto it = action_cache_.find(key);
    if (it != action_cache_.end()) return it->second;
  }
  // Compute outside any lock (reads only immutable state); a racing
  // caller may duplicate the work, but emplace keeps the first
  // insertion and the loser's copy is discarded.
  const SymbolicEdge& e = graph_->edges()[ei];
  Fed region = graph_->pred_through(e, winning_up_to(e.dst, round));
  Fed scratch(graph_->system().clock_count());
  region &= graph_->reach(e.src, scratch);
  std::unique_lock lock(*action_mutex_);
  return action_cache_.emplace(key, std::move(region)).first->second;
}

const Fed& GameSolution::danger_region(std::uint32_t k) const {
  {
    std::shared_lock lock(*action_mutex_);
    const auto it = danger_cache_.find(k);
    if (it != danger_cache_.end()) return it->second;
  }
  // Compute outside any lock (winning() takes its own); a racing
  // caller may duplicate the work, but emplace keeps the first
  // insertion and the loser's copy is discarded.
  const std::uint32_t dim = graph_->system().clock_count();
  Fed danger(dim);
  Fed scratch(dim);
  for (const std::uint32_t ei : graph_->edges_out(k)) {
    const SymbolicEdge& e = graph_->edges()[ei];
    if (e.inst.controllable) continue;
    Fed bad = graph_->reach(e.dst, scratch).minus(winning(e.dst));
    if (bad.is_empty()) continue;
    danger |= graph_->pred_through(e, bad);
  }
  danger &= graph_->reach(k, scratch);
  std::unique_lock lock(*action_mutex_);
  return danger_cache_.emplace(k, std::move(danger)).first->second;
}

const Fed& GameSolution::winning_up_to(std::uint32_t k,
                                       std::uint32_t round) const {
  const MaterializedKey* m = materialized(k);
  const std::vector<Delta>& ds = m != nullptr ? m->deltas : deltas_[k];
  // deltas are in round order; find how many apply.
  std::size_t idx = ds.size();
  while (idx > 0 && ds[idx - 1].round > round) --idx;
  if (idx == 0) return empty_fed_;
  // The full prefix is the complete winning set; intermediate prefixes
  // come from the cumulative cache (which omits the last level to
  // avoid duplicating the full federation).
  if (idx == ds.size()) return m != nullptr ? m->win : win_all_[k];
  return m != nullptr ? m->up_to[idx - 1] : win_up_to_[k][idx - 1];
}

std::optional<std::uint32_t> GameSolution::rank(
    std::uint32_t k, std::span<const std::int64_t> clocks,
    std::int64_t scale) const {
  for (const Delta& d : deltas(k)) {  // deltas are in round order
    if (d.gained.contains_point(clocks, scale)) return d.round;
  }
  return std::nullopt;
}

bool GameSolution::winning_from_initial() const {
  const std::vector<std::int64_t> zero(graph_->system().clock_count(), 0);
  if (compact()) {
    // Pooled membership test — no materialization for the one question
    // every Table 1 cell asks.
    const dbm::ZonePool& pool = *graph_->zone_pool();
    for (const PooledDelta& pd : deltas_pooled_[graph_->initial_key()]) {
      if (pd.gained.contains_point(zero, pool, 1)) return true;
    }
    return false;
  }
  return win_all_[graph_->initial_key()].contains_point(zero, 1);
}

GameSolver::GameSolver(const tsystem::System& system,
                       tsystem::TestPurpose purpose, SolverOptions options)
    : sys_(&system), purpose_(std::move(purpose)), options_(std::move(options)) {
  TIGAT_ASSERT(system.finalized(), "system must be finalized");
}

// Parallelisation scheme (the Jacobi structure makes this sound): a
// round-r computation reads only round-r−1 state, so every per-key
// computation of a round is independent.  Work is fanned out over the
// pool into per-item result slots and merged SERIALLY IN KEY ORDER
// afterwards; since each slot's value is a deterministic function of
// the previous round, the merged state — and hence every subsequent
// round, rank and strategy — is bit-identical at any thread count.
//
// compact_zones: the bulk stores (reach, loss, win/deltas) hold row
// ids; workers decode into chunk-local scratch federations, and every
// pool WRITE (compressing gains and refreshed loss sets) happens in
// the serial merge sections, in key order — so the dictionary content
// is deterministic too.
std::shared_ptr<const GameSolution> GameSolver::solve() {
  TIGAT_SPAN("solve");
  util::Stopwatch watch;
  util::zone_memory().reset_peak();
  util::ThreadPool pool(options_.threads);

  // Safety games run the SAME attractor fixpoint with the player roles
  // swapped: the attacker is the environment, its attractor seeds are
  // the ¬φ keys, and the published solution is the complement
  // Safe = Reach \ Attr (see solver.h).  `attacker_ctrl` selects which
  // edge polarity feeds the B term; the defender's edges feed G and
  // the FORCED set.
  const bool safety = purpose_.kind == tsystem::PurposeKind::kSafety;
  const bool attacker_ctrl = !safety;

  semantics::ExplorationOptions expl = options_.exploration;
  expl.compact_zones = expl.compact_zones || options_.compact_zones;
  auto graph = std::make_unique<SymbolicGraph>(*sys_, expl);
  graph->explore(&pool);
  const std::uint32_t n = graph->key_count();
  const std::uint32_t dim = sys_->clock_count();

  auto solution = std::make_shared<GameSolution>(std::move(graph), purpose_);
  const SymbolicGraph& g = *solution->graph_;
  dbm::ZonePool* zpool = solution->graph_->zone_pool();
  const bool compact = zpool != nullptr;

  // Decodes a key's winning federation (the concatenation of its delta
  // federations; see GameSolution::materialized) into `out`.
  const auto win_fed = [&](std::uint32_t k, Fed& out) {
    out.clear();
    for (const auto& pd : solution->deltas_pooled_[k]) {
      const std::size_t zones = pd.gained.size();
      for (std::size_t z = 0; z < zones; ++z) {
        out.append_raw(pd.gained.zone(z, *zpool));
      }
    }
  };
  const auto win_empty = [&](std::uint32_t k) {
    return compact ? solution->deltas_pooled_[k].empty()
                   : solution->win_all_[k].is_empty();
  };

  // Round 0: attractor seed keys win everywhere they are reachable
  // (reach: the φ goal keys; safety: the ¬φ keys the environment
  // drives the play towards — both are formulas over the discrete
  // part; Sec. 2.4's purposes are location/data predicates).  The scan
  // is per-key independent.  `is_goal` always records φ itself (it
  // feeds goal_key_); the seed derives from it per purpose kind.
  std::vector<Fed> loss;                    // plain: Reach \ Win cache
  std::vector<dbm::PooledFed> loss_pooled;  // compact twin
  std::vector<char> is_goal(n, 0);
  const auto seed_key = [&](std::uint32_t k) {
    return safety ? is_goal[k] == 0 : is_goal[k] != 0;
  };
  if (compact) {
    solution->deltas_pooled_.assign(n, {});
    loss_pooled.assign(n, dbm::PooledFed(dim));
    pool.parallel_for(n, 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto k = static_cast<std::uint32_t>(i);
        const auto& key = g.key(k);
        if (purpose_.formula.eval(key.locs, key.data, sys_->data())) {
          is_goal[k] = 1;
        }
      }
    }, "solve.goal_scan");
    // Row-id copies are cheap; run them serially so the pool stays a
    // single-writer structure.
    for (std::uint32_t k = 0; k < n; ++k) {
      if (seed_key(k)) {
        solution->deltas_pooled_[k].push_back({0, g.reach_pooled(k)});
      } else {
        loss_pooled[k] = g.reach_pooled(k);
      }
    }
  } else {
    solution->win_all_.assign(n, Fed(dim));
    loss.assign(n, Fed(dim));
    pool.parallel_for(n, 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto k = static_cast<std::uint32_t>(i);
        const auto& key = g.key(k);
        if (purpose_.formula.eval(key.locs, key.data, sys_->data())) {
          is_goal[k] = 1;
        }
        if (seed_key(k)) {
          solution->win_all_[k] = g.reach(k);
        } else {
          loss[k] = g.reach(k);
        }
      }
    }, "solve.goal_scan");
  }
  solution->goal_key_.assign(n, false);
  if (!compact) solution->deltas_.assign(n, {});
  std::vector<bool> dirty(n, false);   // winning changed in last round
  std::vector<bool> saturated(n, false);  // win == reach, nothing to gain
  for (std::uint32_t k = 0; k < n; ++k) {
    if (is_goal[k]) solution->goal_key_[k] = true;
    if (!seed_key(k)) continue;
    if (!compact) {
      solution->deltas_[k].push_back({0, solution->win_all_[k]});
    }
    dirty[k] = true;
    saturated[k] = true;
  }

  // Forced candidates (round-independent): invariant-deadline states
  // with an enabled DEFENDER edge (reach: the SUT's uncontrollable
  // edges; safety attractor: the tester's controllable ones).  The
  // defender must move there — the attacker simply refuses to, time
  // cannot advance, and the maximal-run semantics of Def. 7/8 forbids
  // stopping while an action is enabled; the per-round G-avoidance
  // then decides whether every defender move favours the attacker.
  // Per-key independent: fanned out over the pool.
  std::vector<Fed> forced(n, Fed(dim));
  pool.parallel_for(n, 8, [&](std::size_t begin, std::size_t end) {
    Fed scratch(dim);
    for (std::size_t i = begin; i < end; ++i) {
      const auto k = static_cast<std::uint32_t>(i);
      // Upper invariant boundary: some weak bound x_i ≤ b holds with
      // equality.  Strict bounds have no attained deadline.
      Fed boundary(dim);
      const auto& key = g.key(k);
      const auto& procs = sys_->processes();
      for (std::uint32_t p = 0; p < procs.size(); ++p) {
        for (const tsystem::ClockConstraint& c :
             procs[p].locations()[key.locs[p]].invariant) {
          if (c.j != 0 || dbm::is_infinity(c.bound) || !dbm::is_weak(c.bound)) {
            continue;  // only weak upper bounds block delay attainably
          }
          dbm::Dbm at_deadline = g.invariant(k);
          if (at_deadline.constrain(
                  0, c.i, dbm::make_weak(-dbm::bound_value(c.bound)))) {
            boundary.add(std::move(at_deadline));
          }
        }
      }
      if (boundary.is_empty() && !semantics::time_frozen(*sys_, key.locs)) {
        continue;
      }
      Fed def_enabled(dim);
      for (const std::uint32_t ei : g.edges_out(k)) {
        const SymbolicEdge& e = g.edges()[ei];
        if (e.inst.controllable == attacker_ctrl) continue;  // defender only
        def_enabled |= g.pred_through(e, g.reach(e.dst, scratch));
      }
      if (def_enabled.is_empty()) continue;
      if (semantics::time_frozen(*sys_, key.locs)) {
        // Urgent/committed: every state is a deadline.
        forced[k] = def_enabled.intersection(g.reach(k, scratch));
      } else {
        forced[k] =
            boundary.intersection(def_enabled).intersection(
                g.reach(k, scratch));
      }
    }
  }, "solve.forced");

  // Synchronous rounds with dirtiness filtering: a key can only gain
  // in round r if itself or a successor gained in round r−1.
  std::size_t rounds = 0;
  std::vector<std::uint32_t> work;    // keys to recompute this round
  std::vector<Fed> gains;             // per-work-item staged gain
  std::vector<Fed> loss_staged;       // compact: per-changed-key refresh
  std::vector<std::uint32_t> changed; // keys that actually gained
  // compact: the round's gains, compressed batch by batch and applied
  // only once the round is complete.
  std::vector<std::pair<std::uint32_t, GameSolution::PooledDelta>> staged;
  const std::uint64_t reach_zone_count = g.stats().zones;
  for (std::uint32_t r = 1;; ++r) {
    if (r > options_.max_rounds) {
      throw semantics::ExplorationLimit("fixpoint round limit exceeded");
    }
    TIGAT_SPAN("fixpoint.round", r);
    obs::progress().tick("fixpoint", n, reach_zone_count, r);
    std::vector<bool> recompute(n, false);
    bool any = false;
    for (std::uint32_t k = 0; k < n; ++k) {
      if (!dirty[k]) continue;
      for (const std::uint32_t ei : g.edges_in(k)) {
        const std::uint32_t src = g.edges()[ei].src;
        if (!saturated[src]) {
          recompute[src] = true;
          any = true;
        }
      }
      if (!saturated[k]) {
        recompute[k] = true;
        any = true;
      }
    }
    if (!any) break;
    work.clear();
    for (std::uint32_t k = 0; k < n; ++k) {
      if (recompute[k]) work.push_back(k);
    }

    // Jacobi iteration: every round-r computation reads only round-r−1
    // winning sets, so the round index is a sound progress measure for
    // strategy extraction (an action prescribed at rank r provably
    // lands at rank < r) — and the per-key computations of a round are
    // independent, the source of all parallelism here.  Gains are
    // staged per work item and applied after the round.  compact mode
    // processes the work list in batches — compute a slice in
    // parallel, compress its gains serially, move on — so the
    // uncompressed staging buffer stays bounded; the compressed stage
    // is still applied only after the WHOLE round (Jacobi reads
    // round-r−1 state throughout).
    const auto round_body = [&](std::size_t base) {
      return [&, base](std::size_t begin, std::size_t end) {
      Fed scratch(dim);
      Fed other(dim);   // compact: decoded win/loss of a neighbour
      Fed win_k(dim);   // compact: decoded win of k
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t k = work[base + i];

        // B: already-winning here, an attacker edge into winning, or a
        // deadline where the defender is forced to move (G filters out
        // forced states with a non-winning escape).
        if (compact) win_fed(k, win_k);
        const Fed& wk = compact ? win_k : solution->win_all_[k];
        Fed b = wk;
        if (!forced[k].is_empty()) b |= forced[k];
        // G: a defender edge can escape to a non-winning state.
        Fed gbad(dim);
        for (const std::uint32_t ei : g.edges_out(k)) {
          const SymbolicEdge& e = g.edges()[ei];
          if (e.inst.controllable == attacker_ctrl) {
            if (!win_empty(e.dst)) {
              if (compact) {
                win_fed(e.dst, other);
                b |= g.pred_through(e, other);
              } else {
                b |= g.pred_through(e, solution->win_all_[e.dst]);
              }
            }
          } else {
            const bool loss_empty = compact ? loss_pooled[e.dst].is_empty()
                                            : loss[e.dst].is_empty();
            if (!loss_empty) {
              if (compact) {
                loss_pooled[e.dst].materialize(other, *zpool);
                gbad |= g.pred_through(e, other);
              } else {
                gbad |= g.pred_through(e, loss[e.dst]);
              }
            }
          }
        }
        // One decode serves all three intersections (materializing a
        // pooled federation per use tripled the hot-loop decode cost).
        const Fed& rk = g.reach(k, scratch);
        b &= rk;
        gbad &= rk;

        Fed new_win = semantics::time_frozen(*sys_, g.key(k).locs)
                          ? b.minus(gbad)
                          : b.pred_t(gbad);
        new_win &= rk;

        Fed gained = new_win.minus(wk);
        if (gained.is_empty()) continue;
        gained.reduce();
        gains[i] = std::move(gained);
      }
      };
    };

    // Serial merge in key index order: bit-identical to the serial
    // staged application whatever the thread count.  All pool writes
    // (compressing the gains) happen here.
    std::vector<bool> new_dirty(n, false);
    changed.clear();
    constexpr std::size_t kGainBatch = std::size_t{1} << 16;
    if (compact) {
      staged.clear();
      for (std::size_t base = 0; base < work.size(); base += kGainBatch) {
        const std::size_t count = std::min(kGainBatch, work.size() - base);
        gains.assign(count, Fed(dim));
        pool.parallel_for(count, 1, round_body(base), "fixpoint.recompute");
        TIGAT_SPAN("fixpoint.compress_gains");
        for (std::size_t i = 0; i < count; ++i) {
          if (gains[i].is_empty()) continue;
          GameSolution::PooledDelta pd{r, dbm::PooledFed(dim)};
          pd.gained.assign(gains[i], *zpool);
          staged.emplace_back(work[base + i], std::move(pd));
        }
      }
      // Apply only after the whole round was computed (Jacobi).
      for (auto& [k, pd] : staged) {
        solution->deltas_pooled_[k].push_back(std::move(pd));
        new_dirty[k] = true;
        changed.push_back(k);
      }
    } else {
      gains.assign(work.size(), Fed(dim));
      pool.parallel_for(work.size(), 1, round_body(0), "fixpoint.recompute");
      for (std::size_t i = 0; i < work.size(); ++i) {
        if (gains[i].is_empty()) continue;
        const std::uint32_t k = work[i];
        solution->deltas_[k].push_back({r, gains[i]});
        solution->win_all_[k] |= gains[i];
        new_dirty[k] = true;
        changed.push_back(k);
      }
    }
    // Loss refresh (Reach \ Win) per changed key, again independent.
    // compact: the subtraction fans out into staging slots, the
    // re-compression (a pool write) stays serial in key order.
    if (compact) {
      for (std::size_t base = 0; base < changed.size(); base += kGainBatch) {
        const std::size_t count = std::min(kGainBatch, changed.size() - base);
        loss_staged.assign(count, Fed(dim));
        pool.parallel_for(count, 4, [&](std::size_t begin, std::size_t end) {
          Fed scratch(dim);
          Fed win_k(dim);
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t k = changed[base + i];
            win_fed(k, win_k);
            loss_staged[i] = g.reach(k, scratch).minus(win_k);
          }
        }, "fixpoint.refresh_loss");
        // Loss sets are only read by the NEXT round's body, so batch
        // application is safe; the pool write stays serial.
        for (std::size_t i = 0; i < count; ++i) {
          loss_pooled[changed[base + i]].assign(loss_staged[i], *zpool);
          loss_staged[i] = Fed(dim);
        }
      }
    } else {
      pool.parallel_for(changed.size(), 4,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            const std::uint32_t k = changed[i];
                            loss[k] = g.reach(k).minus(solution->win_all_[k]);
                          }
                        }, "fixpoint.refresh_loss");
    }
    for (const std::uint32_t k : changed) {
      const bool empty =
          compact ? loss_pooled[k].is_empty() : loss[k].is_empty();
      if (empty) saturated[k] = true;
    }
    if (obs::metrics_enabled()) {
      obs::metrics().counter("solver.fixpoint.recomputed_keys")
          .add(work.size());
      obs::metrics().counter("solver.fixpoint.gained_keys")
          .add(changed.size());
      std::uint64_t gained_zones = 0;
      // `changed` has one entry per gain applied this round, so the
      // round's zones are the last delta of each changed key.
      for (const std::uint32_t k : changed) {
        gained_zones += compact
                            ? solution->deltas_pooled_[k].back().gained.size()
                            : solution->deltas_[k].back().gained.size();
      }
      obs::metrics().counter("solver.fixpoint.gained_zones").add(gained_zones);
    }
    dirty = std::move(new_dirty);
    rounds = r;
    if (std::none_of(dirty.begin(), dirty.end(), [](bool d) { return d; })) {
      break;
    }
  }

  // Safety: the rounds above computed the environment's attractor to
  // ¬φ; the published solution is its complement Safe = Reach \ Attr.
  // The loss caches hold exactly that difference already (initialised
  // to Reach off the seed, refreshed to Reach \ Attr for every key
  // that gained), so publication is a move: each key becomes a single
  // round-0 delta holding Safe.  A greatest fixpoint has no rank
  // structure — the strategy is "stay inside Safe" — so one delta is
  // the honest shape, and every downstream consumer (winning_up_to,
  // rank, action_region, decision::compile) works off round 0.  All
  // pooled writes behind loss_pooled happened serially in key order
  // during the rounds, so the compact store and the published
  // solution stay bit-identical at any thread count.
  if (safety) {
    if (compact) {
      for (std::uint32_t k = 0; k < n; ++k) {
        solution->deltas_pooled_[k].clear();
        if (!loss_pooled[k].is_empty()) {
          solution->deltas_pooled_[k].push_back(
              {0, std::move(loss_pooled[k])});
        }
      }
    } else {
      for (std::uint32_t k = 0; k < n; ++k) {
        solution->win_all_[k] = std::move(loss[k]);
        solution->deltas_[k].clear();
        if (!solution->win_all_[k].is_empty()) {
          solution->deltas_[k].push_back({0, solution->win_all_[k]});
        }
      }
    }
  }

  // Solve-time peak, sampled BEFORE building the executor-facing
  // cache below so the Table 1 memory column keeps the paper's
  // semantics (memory consumed by strategy generation).
  const std::size_t solve_peak_bytes = util::zone_memory().peak();

  // Cumulative winning_up_to cache: per key, the union of the delta
  // prefix at every round but the last (the full prefix is win_all_).
  // It's what the executor's per-decision lookups read.  compact mode
  // builds it lazily per touched key instead (GameSolution::
  // materialized) — eagerly decoding every key would re-inflate the
  // memory the pooled store just saved.
  if (!compact) {
    solution->win_up_to_.assign(n, {});
    pool.parallel_for(n, 16, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto k = static_cast<std::uint32_t>(i);
        const auto& ds = solution->deltas_[k];
        if (ds.size() < 2) continue;
        auto& cum = solution->win_up_to_[k];
        cum.reserve(ds.size() - 1);
        Fed acc = ds.front().gained;
        cum.push_back(acc);
        for (std::size_t d = 1; d + 1 < ds.size(); ++d) {
          acc |= ds[d].gained;
          cum.push_back(acc);
        }
      }
    }, "solve.up_to_cache");
  }

  // Stats.
  const auto gstats = g.stats();
  SolverStats& st = solution->stats_;
  st.keys = gstats.keys;
  st.reach_zones = gstats.zones;
  st.edges = gstats.edges;
  st.rounds = rounds;
  if (compact) {
    for (const auto& pds : solution->deltas_pooled_) {
      for (const auto& pd : pds) st.winning_zones += pd.gained.size();
    }
  } else {
    for (const Fed& w : solution->win_all_) st.winning_zones += w.size();
  }
  st.peak_zone_bytes = solve_peak_bytes;
  st.explore_expand_seconds = gstats.expand_seconds;
  st.explore_merge_seconds = gstats.merge_seconds;
  st.zone_pool_rows = gstats.pool_rows;
  st.zone_pool_bytes = gstats.pool_bytes;
  st.solve_seconds = watch.seconds();

  // Publish the finished stats into the metrics registry: same fields,
  // same values (set(), not add(), so counters equal SolverStats
  // bit-for-bit — tests/obs_test.cpp holds us to that).
  if (obs::metrics_enabled()) {
    auto& m = obs::metrics();
    m.counter("solver.keys").set(st.keys);
    m.counter("solver.reach_zones").set(st.reach_zones);
    m.counter("solver.winning_zones").set(st.winning_zones);
    m.counter("solver.edges").set(st.edges);
    m.counter("solver.rounds").set(st.rounds);
    m.counter("solver.peak_zone_bytes").set(st.peak_zone_bytes);
    m.counter("solver.zone_pool_rows").set(st.zone_pool_rows);
    m.counter("solver.zone_pool_bytes").set(st.zone_pool_bytes);
    m.gauge("solver.solve_seconds").set(st.solve_seconds);
    m.gauge("solver.explore_expand_seconds").set(st.explore_expand_seconds);
    m.gauge("solver.explore_merge_seconds").set(st.explore_merge_seconds);
  }
  // Final heartbeat so even sub-period solves report once.
  obs::progress().emit("done", st.keys, st.reach_zones, st.rounds);
  return solution;
}

}  // namespace tigat::game
