#include "game/solver.h"

#include <algorithm>
#include <mutex>

#include "util/assert.h"
#include "util/memory_meter.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace tigat::game {

using dbm::Fed;
using semantics::SymbolicEdge;
using semantics::SymbolicGraph;

GameSolution::GameSolution(std::unique_ptr<SymbolicGraph> graph,
                           tsystem::TestPurpose purpose)
    : graph_(std::move(graph)),
      purpose_(std::move(purpose)),
      empty_fed_(graph_->system().clock_count()),
      action_mutex_(std::make_unique<std::shared_mutex>()) {}

const Fed& GameSolution::action_region(std::uint32_t ei,
                                       std::uint32_t round) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(ei) << 32) | round;
  {
    std::shared_lock lock(*action_mutex_);
    const auto it = action_cache_.find(key);
    if (it != action_cache_.end()) return it->second;
  }
  // Compute outside any lock (reads only immutable state); a racing
  // caller may duplicate the work, but emplace keeps the first
  // insertion and the loser's copy is discarded.
  const SymbolicEdge& e = graph_->edges()[ei];
  Fed region = graph_->pred_through(e, winning_up_to(e.dst, round));
  region &= graph_->reach(e.src);
  std::unique_lock lock(*action_mutex_);
  return action_cache_.emplace(key, std::move(region)).first->second;
}

const Fed& GameSolution::winning_up_to(std::uint32_t k,
                                       std::uint32_t round) const {
  // deltas are in round order; find how many apply.
  const std::vector<Delta>& ds = deltas_[k];
  std::size_t idx = ds.size();
  while (idx > 0 && ds[idx - 1].round > round) --idx;
  if (idx == 0) return empty_fed_;
  // The full prefix is the complete winning set; intermediate prefixes
  // come from the cumulative cache (which omits the last level to
  // avoid duplicating win_all_).
  if (idx == ds.size()) return win_all_[k];
  return win_up_to_[k][idx - 1];
}

std::optional<std::uint32_t> GameSolution::rank(
    std::uint32_t k, std::span<const std::int64_t> clocks,
    std::int64_t scale) const {
  for (const Delta& d : deltas_[k]) {  // deltas are in round order
    if (d.gained.contains_point(clocks, scale)) return d.round;
  }
  return std::nullopt;
}

bool GameSolution::winning_from_initial() const {
  const std::vector<std::int64_t> zero(graph_->system().clock_count(), 0);
  return win_all_[graph_->initial_key()].contains_point(zero, 1);
}

GameSolver::GameSolver(const tsystem::System& system,
                       tsystem::TestPurpose purpose, SolverOptions options)
    : sys_(&system), purpose_(std::move(purpose)), options_(std::move(options)) {
  TIGAT_ASSERT(system.finalized(), "system must be finalized");
  if (purpose_.kind != tsystem::PurposeKind::kReach) {
    throw tsystem::ModelError(
        "GameSolver handles reachability purposes (control: A<>) — "
        "every purpose in the paper is one; safety games (control: A[]) "
        "parse but are not solved yet");
  }
}

// Parallelisation scheme (the Jacobi structure makes this sound): a
// round-r computation reads only round-r−1 state, so every per-key
// computation of a round is independent.  Work is fanned out over the
// pool into per-item result slots and merged SERIALLY IN KEY ORDER
// afterwards; since each slot's value is a deterministic function of
// the previous round, the merged state — and hence every subsequent
// round, rank and strategy — is bit-identical at any thread count.
std::shared_ptr<const GameSolution> GameSolver::solve() {
  util::Stopwatch watch;
  util::zone_memory().reset_peak();
  util::ThreadPool pool(options_.threads);

  auto graph = std::make_unique<SymbolicGraph>(*sys_, options_.exploration);
  graph->explore(&pool);
  const std::uint32_t n = graph->key_count();
  const std::uint32_t dim = sys_->clock_count();

  auto solution = std::make_shared<GameSolution>(std::move(graph), purpose_);
  const SymbolicGraph& g = *solution->graph_;

  // Round 0: goal keys win everywhere they are reachable (goals are
  // formulas over the discrete part; Sec. 2.4's purposes are
  // location/data predicates).  The scan is per-key independent.
  solution->win_all_.assign(n, Fed(dim));
  std::vector<Fed> loss(n, Fed(dim));  // Reach \ Win cache
  std::vector<char> is_goal(n, 0);
  pool.parallel_for(n, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto k = static_cast<std::uint32_t>(i);
      const auto& key = g.key(k);
      if (purpose_.formula.eval(key.locs, key.data, sys_->data())) {
        is_goal[k] = 1;
        solution->win_all_[k] = g.reach(k);
      } else {
        loss[k] = g.reach(k);
      }
    }
  });
  solution->goal_key_.assign(n, false);
  solution->deltas_.assign(n, {});
  std::vector<bool> dirty(n, false);   // winning changed in last round
  std::vector<bool> saturated(n, false);  // win == reach, nothing to gain
  for (std::uint32_t k = 0; k < n; ++k) {
    if (!is_goal[k]) continue;
    solution->goal_key_[k] = true;
    solution->deltas_[k].push_back({0, solution->win_all_[k]});
    dirty[k] = true;
    saturated[k] = true;
  }

  // Forced candidates (round-independent): invariant-deadline states
  // with an enabled uncontrollable edge.  The SUT must move there; the
  // per-round G-avoidance decides whether every move is winning.
  // Per-key independent: fanned out over the pool.
  std::vector<Fed> forced(n, Fed(dim));
  pool.parallel_for(n, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto k = static_cast<std::uint32_t>(i);
      // Upper invariant boundary: some weak bound x_i ≤ b holds with
      // equality.  Strict bounds have no attained deadline.
      Fed boundary(dim);
      const auto& key = g.key(k);
      const auto& procs = sys_->processes();
      for (std::uint32_t p = 0; p < procs.size(); ++p) {
        for (const tsystem::ClockConstraint& c :
             procs[p].locations()[key.locs[p]].invariant) {
          if (c.j != 0 || dbm::is_infinity(c.bound) || !dbm::is_weak(c.bound)) {
            continue;  // only weak upper bounds block delay attainably
          }
          dbm::Dbm at_deadline = g.invariant(k);
          if (at_deadline.constrain(
                  0, c.i, dbm::make_weak(-dbm::bound_value(c.bound)))) {
            boundary.add(std::move(at_deadline));
          }
        }
      }
      if (boundary.is_empty() && !semantics::time_frozen(*sys_, key.locs)) {
        continue;
      }
      Fed unc_enabled(dim);
      for (const std::uint32_t ei : g.edges_out(k)) {
        const SymbolicEdge& e = g.edges()[ei];
        if (e.inst.controllable) continue;
        unc_enabled |= g.pred_through(e, g.reach(e.dst));
      }
      if (unc_enabled.is_empty()) continue;
      if (semantics::time_frozen(*sys_, key.locs)) {
        // Urgent/committed: every state is a deadline.
        forced[k] = unc_enabled.intersection(g.reach(k));
      } else {
        forced[k] =
            boundary.intersection(unc_enabled).intersection(g.reach(k));
      }
    }
  });

  // Synchronous rounds with dirtiness filtering: a key can only gain
  // in round r if itself or a successor gained in round r−1.
  std::size_t rounds = 0;
  std::vector<std::uint32_t> work;    // keys to recompute this round
  std::vector<Fed> gains;             // per-work-item staged gain
  std::vector<std::uint32_t> changed; // keys that actually gained
  for (std::uint32_t r = 1;; ++r) {
    if (r > options_.max_rounds) {
      throw semantics::ExplorationLimit("fixpoint round limit exceeded");
    }
    std::vector<bool> recompute(n, false);
    bool any = false;
    for (std::uint32_t k = 0; k < n; ++k) {
      if (!dirty[k]) continue;
      for (const std::uint32_t ei : g.edges_in(k)) {
        const std::uint32_t src = g.edges()[ei].src;
        if (!saturated[src]) {
          recompute[src] = true;
          any = true;
        }
      }
      if (!saturated[k]) {
        recompute[k] = true;
        any = true;
      }
    }
    if (!any) break;
    work.clear();
    for (std::uint32_t k = 0; k < n; ++k) {
      if (recompute[k]) work.push_back(k);
    }

    // Jacobi iteration: every round-r computation reads only round-r−1
    // winning sets, so the round index is a sound progress measure for
    // strategy extraction (an action prescribed at rank r provably
    // lands at rank < r) — and the per-key computations of a round are
    // independent, the source of all parallelism here.  Gains are
    // staged per work item and applied after the round.
    gains.assign(work.size(), Fed(dim));
    pool.parallel_for(work.size(), 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t k = work[i];

        // B: already-winning here, a controllable edge into winning, or
        // a deadline where the SUT is forced to move (G filters out
        // forced states with a non-winning escape).
        Fed b = solution->win_all_[k];
        if (!forced[k].is_empty()) b |= forced[k];
        // G: an uncontrollable edge can escape to a non-winning state.
        Fed gbad(dim);
        for (const std::uint32_t ei : g.edges_out(k)) {
          const SymbolicEdge& e = g.edges()[ei];
          if (e.inst.controllable) {
            if (!solution->win_all_[e.dst].is_empty()) {
              b |= g.pred_through(e, solution->win_all_[e.dst]);
            }
          } else {
            if (!loss[e.dst].is_empty()) {
              gbad |= g.pred_through(e, loss[e.dst]);
            }
          }
        }
        b &= g.reach(k);
        gbad &= g.reach(k);

        Fed new_win = semantics::time_frozen(*sys_, g.key(k).locs)
                          ? b.minus(gbad)
                          : b.pred_t(gbad);
        new_win &= g.reach(k);

        Fed gained = new_win.minus(solution->win_all_[k]);
        if (gained.is_empty()) continue;
        gained.reduce();
        gains[i] = std::move(gained);
      }
    });

    // Serial merge in key index order: bit-identical to the serial
    // staged application whatever the thread count.
    std::vector<bool> new_dirty(n, false);
    changed.clear();
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (gains[i].is_empty()) continue;
      const std::uint32_t k = work[i];
      solution->deltas_[k].push_back({r, gains[i]});
      solution->win_all_[k] |= gains[i];
      new_dirty[k] = true;
      changed.push_back(k);
    }
    // Loss refresh (Reach \ Win) per changed key, again independent.
    pool.parallel_for(changed.size(), 4,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          const std::uint32_t k = changed[i];
                          loss[k] = g.reach(k).minus(solution->win_all_[k]);
                        }
                      });
    for (const std::uint32_t k : changed) {
      if (loss[k].is_empty()) saturated[k] = true;
    }
    dirty = std::move(new_dirty);
    rounds = r;
    if (std::none_of(dirty.begin(), dirty.end(), [](bool d) { return d; })) {
      break;
    }
  }

  // Solve-time peak, sampled BEFORE building the executor-facing
  // cache below so the Table 1 memory column keeps the paper's
  // semantics (memory consumed by strategy generation).
  const std::size_t solve_peak_bytes = util::zone_memory().peak();

  // Cumulative winning_up_to cache: per key, the union of the delta
  // prefix at every round but the last (the full prefix is win_all_).
  // It's what the executor's per-decision lookups read.
  solution->win_up_to_.assign(n, {});
  pool.parallel_for(n, 16, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto k = static_cast<std::uint32_t>(i);
      const auto& ds = solution->deltas_[k];
      if (ds.size() < 2) continue;
      auto& cum = solution->win_up_to_[k];
      cum.reserve(ds.size() - 1);
      Fed acc = ds.front().gained;
      cum.push_back(acc);
      for (std::size_t d = 1; d + 1 < ds.size(); ++d) {
        acc |= ds[d].gained;
        cum.push_back(acc);
      }
    }
  });

  // Stats.
  const auto gstats = g.stats();
  SolverStats& st = solution->stats_;
  st.keys = gstats.keys;
  st.reach_zones = gstats.zones;
  st.edges = gstats.edges;
  st.rounds = rounds;
  for (const Fed& w : solution->win_all_) st.winning_zones += w.size();
  st.peak_zone_bytes = solve_peak_bytes;
  st.solve_seconds = watch.seconds();
  return solution;
}

}  // namespace tigat::game
