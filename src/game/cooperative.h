// Cooperative testing — the paper's future-work item 4: "if there does
// not exist a winning strategy, we hope to make a small retreat by
// doing cooperative testing".
//
// When `control: A<> φ` has no winning strategy, the tester can still
// try: solve the game PRETENDING every action is controllable (a plain
// reachability plan).  The resulting cooperative strategy prescribes
// both tester inputs and hoped-for SUT outputs.  Executing it (see
// testing::CooperativeExecutor):
//
//   * reaching φ            → PASS      (purpose exercised)
//   * a tioco violation     → FAIL      (still sound: the monitor only
//                                        rejects SPEC-forbidden output)
//   * the SUT deviating from the hoped path, or silence where output
//     was hoped for         → INCONCLUSIVE (the SUT was within its
//                                        rights; the test just didn't
//                                        reach its purpose)
//
// Safety purposes (`control: A[] φ`) relax the same way: the
// all-controllable game computes the largest region the play can keep
// φ in when the SUT cooperates.  Execution flips accordingly — PASS by
// outlasting the budget with φ intact, FAIL when a SPEC-legal move
// (even a hoped-for one the SUT drifted from) lands in ¬φ — see the
// safety section of testing/executor.h.
#pragma once

#include <memory>

#include "game/solver.h"
#include "game/strategy.h"

namespace tigat::game {

struct CooperativeResult {
  // The all-controllable copy the plan was computed on.  The strategy
  // below holds zone references into its graph; keep it alive.
  std::unique_ptr<tsystem::System> relaxed_system;
  std::shared_ptr<const GameSolution> solution;
  // True when φ is reachable at all under full cooperation; false
  // means the purpose is infeasible and testing it is pointless.
  bool reachable = false;
};

// Builds the all-controllable relaxation of `system` and solves the
// (now one-player) reachability game for `purpose`.
[[nodiscard]] CooperativeResult solve_cooperative(
    const tsystem::System& system, const tsystem::TestPurpose& purpose,
    SolverOptions options = {});

}  // namespace tigat::game
